#!/usr/bin/env python3
"""Explore the NIC/driver design space with the analytical model.

The paper's model is meant to let designers "quickly assess the impact of
alternatives when designing custom NIC functionality" (§3).  This example
does exactly that: starting from the naive per-packet design it adds one
optimisation at a time (descriptor batching, interrupt moderation, doorbell
batching, descriptor write-back polling) and reports where 40 Gb/s line rate
becomes sustainable, ending with a custom design sized for a 100 Gb/s link.

Run with::

    python examples/nic_design_space.py
"""

from repro.analysis import format_series_table, format_table
from repro.core.config import GEN3_X16_CONFIG
from repro.core.ethernet import ETHERNET_100G, ETHERNET_40G
from repro.core.model import PCIeModel
from repro.core.nic import MODERN_NIC_DPDK, MODERN_NIC_KERNEL, SIMPLE_NIC


def incremental_optimisations() -> None:
    """Add one optimisation at a time and watch the line-rate crossover move."""
    steps = [
        ("Naive per-packet NIC", SIMPLE_NIC),
        (
            "+ descriptor batching (40 TX / 8 RX)",
            SIMPLE_NIC.with_(
                name="batched",
                tx_descriptor_batch=40.0,
                tx_writeback_batch=8.0,
                rx_freelist_batch=8.0,
                rx_writeback_batch=8.0,
                tx_descriptor_writeback=True,
            ),
        ),
        (
            "+ interrupt moderation and doorbell batching",
            MODERN_NIC_KERNEL.with_(name="moderated"),
        ),
        (
            "+ poll-mode driver (no interrupts, no register reads)",
            MODERN_NIC_DPDK.with_(name="poll-mode"),
        ),
    ]

    rows = []
    for label, model in steps:
        crossover = model.line_rate_crossover(ETHERNET_40G)
        rows.append(
            [
                label,
                f"{model.throughput_gbps(64):.1f}",
                f"{model.throughput_gbps(256):.1f}",
                f"{model.throughput_gbps(1500):.1f}",
                f"{crossover} B" if crossover else "never",
            ]
        )
    print(
        format_table(
            ["design", "64B Gb/s", "256B Gb/s", "1500B Gb/s", "40G line rate from"],
            rows,
            title="Incremental NIC/driver optimisations (PCIe Gen3 x8)",
        )
    )
    print()


def per_transaction_cost_breakdown() -> None:
    """Show where the PCIe bytes go for one 256 B packet on the simple NIC."""
    sequence = SIMPLE_NIC.tx_sequence(256)
    rows = [
        [
            row["label"],
            row["size"],
            row["per_packets"],
            row["device_to_host_bytes_per_packet"],
            row["host_to_device_bytes_per_packet"],
        ]
        for row in sequence.describe(PCIeModel.gen3_x8().config)
    ]
    print(
        format_table(
            ["transaction", "bytes", "per packets", "to host B/pkt", "to device B/pkt"],
            rows,
            title="Simple NIC, TX path, 256 B packet: per-packet PCIe cost",
        )
    )
    print()


def size_a_100g_nic() -> None:
    """Check whether the DPDK-style design survives a move to 100G on Gen3 x16."""
    model_40g = PCIeModel.gen3_x8()
    model_100g = PCIeModel(config=GEN3_X16_CONFIG, ethernet=ETHERNET_100G)
    sizes = (64, 128, 256, 512, 1024, 1500)
    series = {
        "100G Ethernet requirement": [
            (size, model_100g.ethernet_throughput_gbps(size)) for size in sizes
        ],
        "DPDK NIC on Gen3 x16": model_100g.nic_throughput_sweep(MODERN_NIC_DPDK, sizes),
        "DPDK NIC on Gen3 x8 (40G)": model_40g.nic_throughput_sweep(
            MODERN_NIC_DPDK, sizes
        ),
    }
    print(
        format_series_table(
            series, x_label="size (B)", title="Scaling the design to 100 Gb/s"
        )
    )
    crossover = MODERN_NIC_DPDK.line_rate_crossover(
        ETHERNET_100G, GEN3_X16_CONFIG
    )
    print(
        "\nOn a Gen3 x16 link the DPDK-style NIC sustains 100G line rate from "
        f"{crossover} B frames — small-packet 100G needs either a wider link, "
        "a smarter descriptor format, or on-NIC batching."
    )


def main() -> None:
    incremental_optimisations()
    per_transaction_cost_breakdown()
    size_a_100g_nic()


if __name__ == "__main__":
    main()
