#!/usr/bin/env python3
"""Quickstart: the analytical model and one simulated micro-benchmark.

Run with::

    python examples/quickstart.py

This walks through the three layers of the library in a couple of minutes:

1. the analytical PCIe model (equations (1)-(3) of the paper) — how much
   bandwidth a Gen3 x8 link really delivers for a given DMA size;
2. the NIC/driver interaction models behind Figure 1 — why a naive NIC
   design cannot do 40 Gb/s with small packets;
3. the simulated pcie-bench micro-benchmarks — measuring latency and
   bandwidth against a modelled Xeon host, no hardware required.
"""

from repro import PCIeModel, SIMPLE_NIC, MODERN_NIC_DPDK
from repro.analysis import format_series_table
from repro.bench import bw_rd, lat_rd
from repro.units import KIB


def analytical_model() -> None:
    """Evaluate the protocol-level model for a few DMA sizes."""
    model = PCIeModel.gen3_x8()
    print("PCIe configuration:", model.config.describe())
    print()

    sizes = (64, 128, 256, 512, 1024, 1500)
    series = {
        "Effective PCIe BW (bidirectional)": model.bandwidth_sweep(
            sizes, kind="bidirectional"
        ),
        "40G Ethernet requirement": [
            (size, model.ethernet_throughput_gbps(size)) for size in sizes
        ],
        "Simple NIC": model.nic_throughput_sweep(SIMPLE_NIC, sizes),
        "Modern NIC (DPDK driver)": model.nic_throughput_sweep(MODERN_NIC_DPDK, sizes),
    }
    print(format_series_table(series, x_label="size (B)", title="Gb/s by transfer size"))
    print()

    crossover = SIMPLE_NIC.line_rate_crossover()
    print(
        "The Simple NIC only sustains 40G Ethernet line rate for frames of "
        f"{crossover} bytes and larger — the paper's Figure 1 observation."
    )
    print()


def simulated_microbenchmarks() -> None:
    """Run LAT_RD and BW_RD against the simulated NFP6000-HSW system."""
    latency = lat_rd(64, system="NFP6000-HSW", cache_state="host_warm",
                     transactions=5000)
    print(
        "Simulated LAT_RD, 64 B, warm 8 KiB buffer on NFP6000-HSW: "
        f"median {latency.latency.median:.0f} ns "
        f"(p99 {latency.latency.p99:.0f} ns) — "
        "the paper measures a 547 ns median on this system."
    )

    bandwidth = bw_rd(64, system="NFP6000-HSW", window_size=8 * KIB,
                      cache_state="host_warm", transactions=4000)
    print(
        "Simulated BW_RD, 64 B: "
        f"{bandwidth.bandwidth_gbps:.1f} Gb/s "
        f"({bandwidth.transactions_per_second / 1e6:.1f} M transactions/s) — "
        "below the 30.5 Gb/s that 40G Ethernet needs at this packet size."
    )


def main() -> None:
    analytical_model()
    simulated_microbenchmarks()


if __name__ == "__main__":
    main()
