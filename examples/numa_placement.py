#!/usr/bin/env python3
"""Where should descriptor rings and packet buffers live on a NUMA host?

The paper's Figure 8 and Table 2 distil the NUMA story into two placement
rules: keep small, latency-critical structures (descriptor rings) on the
node the NIC is attached to, but place large packet buffers wherever the
consuming application runs.  This example reproduces the measurements behind
both rules on the simulated two-socket Broadwell system.

Run with::

    python examples/numa_placement.py
"""

from repro.analysis import format_table
from repro.bench import BenchmarkParams, BenchmarkRunner
from repro.units import KIB

SYSTEM = "NFP6000-BDW"
TRANSACTIONS = 2500


def bandwidth(runner: BenchmarkRunner, size: int, placement: str) -> float:
    """Warm-cache DMA read bandwidth for one transfer size and placement."""
    params = BenchmarkParams(
        kind="BW_RD",
        transfer_size=size,
        window_size=16 * KIB,
        cache_state="host_warm",
        placement=placement,
        system=SYSTEM,
        transactions=TRANSACTIONS,
    )
    return runner.run(params).bandwidth_gbps


def latency(runner: BenchmarkRunner, size: int, placement: str) -> float:
    """Median DMA read latency for one transfer size and placement."""
    params = BenchmarkParams(
        kind="LAT_RD",
        transfer_size=size,
        window_size=8 * KIB,
        cache_state="host_warm",
        placement=placement,
        system=SYSTEM,
        transactions=4000,
    )
    return runner.run(params).latency.median


def main() -> None:
    runner = BenchmarkRunner()

    rows = []
    for size in (64, 128, 256, 512, 1024):
        local = bandwidth(runner, size, "local")
        remote = bandwidth(runner, size, "remote")
        change = 100.0 * (remote - local) / local
        rows.append([f"{size} B", f"{local:.1f}", f"{remote:.1f}", f"{change:+.1f}%"])
    print(
        format_table(
            ["transfer", "local Gb/s", "remote Gb/s", "change"],
            rows,
            title=f"Warm-cache DMA read bandwidth by buffer placement ({SYSTEM})",
        )
    )
    print()

    local_lat = latency(runner, 64, "local")
    remote_lat = latency(runner, 64, "remote")
    print(
        f"Median 64 B read latency: {local_lat:.0f} ns local vs {remote_lat:.0f} ns "
        f"remote — the interconnect adds about {remote_lat - local_lat:.0f} ns "
        "(the paper reports ~100 ns)."
    )
    print()
    print("Placement guidance reproduced from the measurements above:")
    print(
        " * descriptor rings (small, touched per packet): keep them on the NIC's"
        " local node — small reads lose 10-20% of their throughput when remote;"
    )
    print(
        " * packet buffers (large transfers): place them on the node where the"
        " application runs — 512 B+ DMAs show no measurable remote penalty."
    )


if __name__ == "__main__":
    main()
