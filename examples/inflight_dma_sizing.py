#!/usr/bin/env python3
"""Size a NIC's DMA engine: how many in-flight DMAs does line rate need?

Sections 2 and 7 of the paper work through this calculation for the
Netronome firmware: at 40 Gb/s a 128 B packet arrives every ~30 ns, PCIe
round trips take 500-900 ns, so the firmware must keep tens of DMAs in
flight, plus headroom for descriptor DMAs, IOTLB misses and latency
variance.  This example redoes that sizing from *measured* (simulated)
latencies on several systems and then verifies the answer by sweeping the
engine's concurrency in the bandwidth simulation.

Run with::

    python examples/inflight_dma_sizing.py
"""

import math

from repro.analysis import format_table
from repro.bench import lat_rd
from repro.core.ethernet import ETHERNET_40G
from repro.sim import DmaEngine, HostSystem
from repro.units import KIB

FRAME = 128
SYSTEMS = ("NFP6000-HSW", "NFP6000-BDW", "NFP6000-HSW-E3")


def sizing_from_latency() -> None:
    """Derive the required concurrency from measured latency percentiles."""
    budget = ETHERNET_40G.inter_packet_time_ns(FRAME)
    print(
        f"At 40 Gb/s a {FRAME} B packet must be handled every {budget:.1f} ns; "
        "each DMA that takes longer than that must overlap with others."
    )
    print()

    rows = []
    for system in SYSTEMS:
        result = lat_rd(FRAME, system=system, cache_state="host_warm",
                        transactions=8000)
        median_need = math.ceil(result.latency.median / budget)
        tail_need = math.ceil(result.latency.p99 / budget)
        with_descriptors = 2 * median_need  # one descriptor DMA per packet DMA
        rows.append(
            [
                system,
                f"{result.latency.median:.0f}",
                f"{result.latency.p99:.0f}",
                median_need,
                tail_need,
                with_descriptors,
            ]
        )
    print(
        format_table(
            [
                "system",
                "median ns",
                "p99 ns",
                "in-flight (median)",
                "in-flight (p99)",
                "with descriptor DMAs",
            ],
            rows,
            title=f"Concurrency needed for 40G line rate with {FRAME} B packets",
        )
    )
    print()
    print(
        "The Xeon E3's latency tail is why the paper warns that some hosts force "
        "far deeper DMA pipelines (and larger on-NIC buffering) than the median "
        "latency suggests."
    )
    print()


def verify_by_sweeping_concurrency() -> None:
    """Check the sizing by actually running the engine at each concurrency."""
    requirement = ETHERNET_40G.frame_throughput_gbps(FRAME)
    host = HostSystem.from_profile("NFP6000-HSW", seed=1)
    rows = []
    for inflight in (4, 8, 16, 24, 32, 48):
        device = host.device.with_engine(max_inflight=inflight)
        engine = DmaEngine(host, device=device)
        buffer = host.allocate_buffer(8 * KIB, FRAME)
        host.prepare(buffer, "host_warm")
        gbps = engine.measure_bandwidth(buffer, "read", 3000).gbps
        rows.append(
            [inflight, f"{gbps:.1f}", "yes" if gbps >= requirement else "no"]
        )
    print(
        format_table(
            ["in-flight DMAs", f"{FRAME} B read Gb/s", f"meets {requirement:.1f} Gb/s?"],
            rows,
            title="Measured read bandwidth vs DMA-engine concurrency (NFP6000-HSW)",
        )
    )


def main() -> None:
    sizing_from_latency()
    verify_by_sweeping_concurrency()


if __name__ == "__main__":
    main()
