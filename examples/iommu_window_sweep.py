#!/usr/bin/env python3
"""Reproduce the IOMMU working-set cliff and evaluate the super-page fix.

The paper's Figure 9 shows DMA read bandwidth collapsing by up to ~70% once
the I/O working set exceeds the IOTLB reach (64 entries x 4 KiB = 256 KiB),
and Table 2 recommends co-locating I/O buffers into super-pages.  This
example measures both: the cliff with 4 KiB mappings and its disappearance
with 2 MiB mappings, plus the latency cost of a single IOTLB miss.

Run with::

    python examples/iommu_window_sweep.py
"""

from repro.analysis import ascii_plot, format_series_table
from repro.bench import BenchmarkParams, BenchmarkRunner
from repro.units import KIB, MIB, format_size

SYSTEM = "NFP6000-BDW"
WINDOWS = [64 * KIB, 256 * KIB, 1 * MIB, 4 * MIB, 16 * MIB, 64 * MIB]
TRANSFER = 64
TRANSACTIONS = 2500


def measure(runner: BenchmarkRunner, *, iommu: bool, page_size: int) -> list[tuple[int, float]]:
    """64 B BW_RD across window sizes for one IOMMU configuration."""
    points = []
    for window in WINDOWS:
        params = BenchmarkParams(
            kind="BW_RD",
            transfer_size=TRANSFER,
            window_size=window,
            cache_state="host_warm",
            iommu_enabled=iommu,
            iommu_page_size=page_size,
            system=SYSTEM,
            transactions=TRANSACTIONS,
        )
        points.append((window, runner.run(params).bandwidth_gbps))
    return points


def main() -> None:
    runner = BenchmarkRunner()
    series = {
        "IOMMU off": measure(runner, iommu=False, page_size=4 * KIB),
        "IOMMU on, 4KiB pages": measure(runner, iommu=True, page_size=4 * KIB),
        "IOMMU on, 2MiB super-pages": measure(runner, iommu=True, page_size=2 * MIB),
    }
    print(
        format_series_table(
            series,
            x_label="window (B)",
            title=f"64 B DMA read bandwidth (Gb/s) on {SYSTEM}",
        )
    )
    print()
    print(ascii_plot(series, x_label="window size", y_label="Gb/s", logx=True))
    print()

    baseline = dict(series["IOMMU off"])
    cliff = dict(series["IOMMU on, 4KiB pages"])
    fixed = dict(series["IOMMU on, 2MiB super-pages"])
    worst = min(WINDOWS, key=lambda w: cliff[w] / baseline[w])
    print(
        f"Worst case at window {format_size(worst)}: "
        f"{100 * (cliff[worst] - baseline[worst]) / baseline[worst]:.0f}% with 4 KiB "
        f"pages, {100 * (fixed[worst] - baseline[worst]) / baseline[worst]:.0f}% with "
        "2 MiB super-pages — which is why Table 2 says to co-locate I/O buffers "
        "into super-pages."
    )

    # The latency view: what one IOTLB miss costs.
    lat = {}
    for iommu in (False, True):
        params = BenchmarkParams(
            kind="LAT_RD",
            transfer_size=64,
            window_size=64 * MIB,
            cache_state="host_warm",
            iommu_enabled=iommu,
            system=SYSTEM,
            transactions=4000,
        )
        lat[iommu] = runner.run(params).latency.median
    print(
        f"Median 64 B read latency over a 64 MiB window: {lat[False]:.0f} ns without "
        f"the IOMMU, {lat[True]:.0f} ns with it — an IOTLB miss and page-table walk "
        f"costs about {lat[True] - lat[False]:.0f} ns (the paper reports ~330 ns)."
    )


if __name__ == "__main__":
    main()
