#!/usr/bin/env python3
"""Plan a rack against a latency SLO: spread or pack the noisy tenants?

A capacity planner's question the single-host chapters cannot answer
alone: given a Zipf-skewed tenant population and a latency SLO on the
victim's p99, does spreading tenants across every host or packing them
onto half the rack keep more hosts inside the SLO?  This example sweeps
rack size x placement policy, runs each fleet with O(1)-memory streaming
statistics (per-host quantile sketches merged rack-wide), and prints the
SLO-violation table both policies produce.

Run with::

    python examples/fleet_slo_planning.py
"""

from repro.analysis import format_fleet_summary, format_table
from repro.bench import FleetParams, run_fleet_benchmark

#: Latency SLO on each host's victim p99 (ns).
SLO_NS = 20_000.0

RACK_SIZES = (4, 8)
POLICIES = ("spread", "pack")


def main() -> None:
    """Rack size x placement grid, scored against the SLO."""
    rows = []
    last = None
    for hosts in RACK_SIZES:
        for policy in POLICIES:
            params = FleetParams(
                hosts=hosts,
                placement=policy,
                tenants=2 * hosts,
                victim_packets=200,
                aggressor_packets=800,
                seed=7,
            )
            result = run_fleet_benchmark(params)
            fraction = result.slo_violation_fraction(SLO_NS)
            rows.append(
                [
                    hosts,
                    policy,
                    f"{result.fleet_latency.p99:.0f}",
                    f"{fraction * 100:.0f}%",
                    ", ".join(result.violating_hosts(SLO_NS)) or "-",
                ]
            )
            last = result
    print(
        format_table(
            [
                "hosts",
                "placement",
                "fleet p99 (ns)",
                f"violating p99 < {SLO_NS:.0f} ns",
                "violating hosts",
            ],
            rows,
            title="Placement policy vs the fleet-wide latency SLO",
        )
    )
    print()
    print("Detail of the last run:")
    print()
    assert last is not None
    print(format_fleet_summary(last.as_dict(), thresholds_ns=(SLO_NS,)))


if __name__ == "__main__":
    main()
