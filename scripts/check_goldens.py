"""Exact (bit-for-bit) golden reproduction check for the event-core refactor.

The golden *tests* compare within a 1e-6 relative tolerance; this script
holds the simulator to the stricter standard the refactor promises: the
serialised result records must be **exactly** equal to the committed golden
files, value for value.  Run it after any change to the event core:

    PYTHONPATH=src python scripts/check_goldens.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "tests" / "golden"


def _diff(path: str, old: object, new: object, out: list[str]) -> None:
    if isinstance(old, dict) and isinstance(new, dict):
        for key in sorted(set(old) | set(new)):
            if key not in old:
                out.append(f"{path}.{key}: only in new")
            elif key not in new:
                out.append(f"{path}.{key}: only in golden")
            else:
                _diff(f"{path}.{key}", old[key], new[key], out)
    elif isinstance(old, list) and isinstance(new, list):
        if len(old) != len(new):
            out.append(f"{path}: length {len(old)} != {len(new)}")
        for index, (a, b) in enumerate(zip(old, new)):
            _diff(f"{path}[{index}]", a, b, out)
    elif old != new:
        out.append(f"{path}: golden {old!r} != new {new!r}")


def check(name: str, produce) -> bool:
    golden = json.loads((GOLDEN_DIR / name).read_text())
    fresh = produce(golden)
    # Round-trip through JSON so float repr and int/float typing match the
    # serialised form exactly, as a regenerated file would.
    fresh = json.loads(json.dumps(fresh))
    problems: list[str] = []
    _diff("$", golden["result"], fresh, problems)
    status = "OK (bit-identical)" if not problems else "MISMATCH"
    print(f"{name}: {status}")
    for line in problems[:20]:
        print(f"  {line}")
    if len(problems) > 20:
        print(f"  ... and {len(problems) - 20} more")
    return not problems


def main() -> int:
    from repro.bench.fleet import FleetParams, run_fleet_benchmark
    from repro.bench.nicsim import NicSimParams, run_nicsim_benchmark

    ok = True
    for name in ("nicsim_seeded.json", "nicsim_multiqueue_seeded.json"):
        ok &= check(
            name,
            lambda g: run_nicsim_benchmark(
                NicSimParams.from_dict(g["params"])
            ).as_dict(),
        )
    ok &= check(
        "fleet_seeded.json",
        lambda g: run_fleet_benchmark(
            FleetParams.from_dict(g["params"])
        ).as_dict(),
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
