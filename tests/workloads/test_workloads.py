"""Tests for the traffic-workload subsystem (sizes, arrivals, schedules)."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.sim.rng import SimRng
from repro.workloads import (
    IMIX,
    SATURATING_LOAD_GBPS,
    BurstyArrivals,
    FixedSize,
    PacketSchedule,
    PoissonArrivals,
    SingleHotFlow,
    TrimodalSize,
    UniformArrivals,
    UniformFlows,
    UniformSize,
    Workload,
    ZipfFlows,
    build_flow_model,
    build_workload,
    canonical_flow_name,
    flow_model_names,
    rss_queue,
    rss_queues,
    workload_names,
)


def _rng():
    return SimRng(7).spawn("test")


class TestSizeDistributions:
    def test_fixed_size_is_constant(self):
        sizes = FixedSize(256).sample(100, _rng())
        assert (sizes == 256).all()
        assert FixedSize(256).mean_size() == 256.0

    def test_uniform_size_stays_in_range(self):
        dist = UniformSize(64, 1518)
        sizes = dist.sample(5000, _rng())
        assert sizes.min() >= 64
        assert sizes.max() <= 1518
        assert dist.mean_size() == pytest.approx(791.0)

    def test_imix_uses_only_the_three_frame_sizes(self):
        sizes = IMIX.sample(12_000, _rng())
        values, counts = np.unique(sizes, return_counts=True)
        assert set(values) == {64, 594, 1518}
        fractions = dict(zip(values, counts / sizes.size))
        assert fractions[64] == pytest.approx(7 / 12, abs=0.03)
        assert fractions[594] == pytest.approx(4 / 12, abs=0.03)
        assert fractions[1518] == pytest.approx(1 / 12, abs=0.03)

    def test_trimodal_mean(self):
        dist = TrimodalSize((100, 200), (1.0, 1.0))
        assert dist.mean_size() == pytest.approx(150.0)

    def test_validation_errors(self):
        with pytest.raises(ValidationError):
            FixedSize(0)
        with pytest.raises(ValidationError):
            UniformSize(512, 64)
        with pytest.raises(ValidationError):
            TrimodalSize((64,), (1.0, 2.0))
        with pytest.raises(ValidationError):
            TrimodalSize((64, 128), (1.0, -1.0))
        with pytest.raises(ValidationError):
            FixedSize(64).sample(0, _rng())


class TestArrivalProcesses:
    def test_uniform_arrivals_keep_nominal_gaps(self):
        nominal = np.full(50, 12.5)
        gaps = UniformArrivals().gaps(nominal, _rng())
        assert np.allclose(gaps, nominal)

    def test_poisson_arrivals_preserve_mean_rate(self):
        nominal = np.full(50_000, 20.0)
        gaps = PoissonArrivals().gaps(nominal, _rng())
        assert gaps.mean() == pytest.approx(20.0, rel=0.05)
        assert gaps.std() > 10.0  # exponential, not deterministic

    def test_bursty_arrivals_preserve_total_time_exactly(self):
        nominal = np.full(1024, 10.0)
        arrivals = BurstyArrivals(burst_size=32, peak_factor=8.0)
        gaps = arrivals.gaps(nominal, _rng())
        # The final burst's idle credit is redistributed over the other
        # inter-burst gaps, so the total time is preserved exactly.
        assert gaps.sum() == pytest.approx(nominal.sum(), rel=1e-9)
        # Within a burst, arrivals run peak_factor times faster.
        assert gaps[1] == pytest.approx(10.0 / 8.0)

    def test_bursty_realised_load_matches_request(self):
        workload = build_workload("bursty", size=512, load_gbps=5.0)
        schedule = workload.generate(320, SimRng(1))
        assert schedule.offered_load_gbps() == pytest.approx(5.0, rel=0.02)

    def test_bursty_realised_load_exact_with_partial_final_burst(self):
        # 40 packets with burst_size 32 leaves an 8-packet final burst; the
        # idle redistribution must account for its saved time too.
        workload = build_workload("bursty", size=512, load_gbps=24.0)
        schedule = workload.generate(40, SimRng(1))
        assert schedule.offered_load_gbps() == pytest.approx(24.0, rel=0.05)

    def test_bursty_single_burst_rejected(self):
        # With one burst every packet would arrive at peak rate — 8x the
        # configured load — so short runs are refused outright.
        workload = build_workload("bursty", size=512, load_gbps=5.0)
        with pytest.raises(ValidationError):
            workload.generate(32, SimRng(1))

    def test_bursty_validation(self):
        with pytest.raises(ValidationError):
            BurstyArrivals(burst_size=1)
        with pytest.raises(ValidationError):
            BurstyArrivals(peak_factor=1.0)


class TestWorkloads:
    def test_schedule_starts_at_zero_and_is_monotonic(self):
        workload = build_workload("imix", load_gbps=20.0)
        schedule = workload.generate(2000, SimRng(3))
        times = schedule.arrival_times_ns
        assert times[0] == 0.0
        assert (np.diff(times) >= 0).all()

    def test_offered_load_matches_request(self):
        workload = build_workload("fixed", size=512, load_gbps=25.0)
        schedule = workload.generate(4000, SimRng(3))
        assert schedule.offered_load_gbps() == pytest.approx(25.0, rel=0.02)

    def test_offered_load_unbiased_for_mixed_sizes(self):
        # The realised-load estimate must hold exactly for smooth arrivals
        # even when frame sizes vary wildly (the span excludes the first
        # packet's source slot, not the last one's bytes).
        workload = build_workload("uniform", load_gbps=25.0)
        schedule = workload.generate(2000, SimRng(3))
        assert schedule.offered_load_gbps() == pytest.approx(25.0, rel=1e-9)

    def test_saturating_default(self):
        workload = build_workload("fixed")
        assert workload.is_saturating
        assert workload.load_gbps == SATURATING_LOAD_GBPS

    def test_same_seed_reproduces_schedule(self):
        workload = build_workload("bursty-imix", load_gbps=30.0)
        a = workload.generate(500, SimRng(11))
        b = workload.generate(500, SimRng(11))
        assert np.array_equal(a.sizes, b.sizes)
        assert np.allclose(a.arrival_times_ns, b.arrival_times_ns)

    def test_tx_and_rx_streams_are_independent(self):
        workload = build_workload("imix", load_gbps=30.0)
        rng = SimRng(11)
        tx = workload.generate(500, rng, stream="tx")
        rx = workload.generate(500, rng, stream="rx")
        assert not np.array_equal(tx.sizes, rx.sizes)

    def test_registry_names_and_unknown_workload(self):
        names = workload_names()
        for expected in ("fixed", "imix", "uniform", "poisson", "bursty"):
            assert expected in names
        with pytest.raises(ValidationError):
            build_workload("carrier-pigeon")

    def test_workload_validation(self):
        with pytest.raises(ValidationError):
            build_workload("fixed", load_gbps=-1.0)
        workload = build_workload("fixed")
        with pytest.raises(ValidationError):
            workload.generate(0, SimRng(1))

    def test_with_and_describe(self):
        workload = build_workload("fixed", size=256)
        tx_only = workload.with_(duplex=False)
        assert not tx_only.duplex
        description = workload.describe()
        assert description["name"] == "fixed"
        assert description["duplex"] is True


class TestFlowModels:
    def test_uniform_flows_stay_in_range(self):
        model = UniformFlows(16)
        labels = model.sample(5000, _rng())
        assert labels.min() >= 0
        assert labels.max() < 16
        # Every flow shows up under a uniform draw of this size.
        assert np.unique(labels).size == 16

    def test_zipf_flows_rank_zero_dominates(self):
        model = ZipfFlows(flows=32, skew=1.2)
        labels = model.sample(20_000, _rng())
        values, counts = np.unique(labels, return_counts=True)
        by_flow = dict(zip(values, counts))
        assert by_flow[0] == max(by_flow.values())
        # Zipf with s=1.2 over 32 flows puts roughly a quarter of the
        # packets on the top flow; check the heavy head loosely.
        assert by_flow[0] / labels.size > 0.15

    def test_single_hot_flow_carries_the_configured_fraction(self):
        model = SingleHotFlow(flows=16, hot_fraction=0.9)
        labels = model.sample(20_000, _rng())
        hot_share = (labels == 0).sum() / labels.size
        assert hot_share == pytest.approx(0.9, abs=0.02)
        background = labels[labels != 0]
        assert background.min() >= 1
        assert background.max() < 16

    def test_builder_names_and_aliases(self):
        assert flow_model_names() == ["uniform", "zipf", "hot"]
        assert isinstance(build_flow_model("uniform"), UniformFlows)
        assert isinstance(build_flow_model("skewed"), ZipfFlows)
        assert isinstance(build_flow_model("single-hot-flow"), SingleHotFlow)
        assert canonical_flow_name("Skewed") == "zipf"
        with pytest.raises(ValidationError):
            build_flow_model("round-robin")

    def test_flow_model_validation(self):
        with pytest.raises(ValidationError):
            UniformFlows(0)
        with pytest.raises(ValidationError):
            ZipfFlows(flows=8, skew=0.0)
        with pytest.raises(ValidationError):
            SingleHotFlow(flows=1)
        with pytest.raises(ValidationError):
            SingleHotFlow(flows=8, hot_fraction=1.0)


class TestRssSteering:
    def test_mapping_is_deterministic_per_seed(self):
        flows = np.arange(1000, dtype=np.int64)
        first = rss_queues(flows, 8, seed=42)
        second = rss_queues(flows, 8, seed=42)
        assert np.array_equal(first, second)
        assert first.min() >= 0
        assert first.max() < 8

    def test_reseeding_rekeys_the_hash(self):
        flows = np.arange(1000, dtype=np.int64)
        a = rss_queues(flows, 8, seed=1)
        b = rss_queues(flows, 8, seed=2)
        assert not np.array_equal(a, b)

    def test_uniform_flows_spread_roughly_evenly(self):
        flows = np.arange(4096, dtype=np.int64)
        counts = np.bincount(rss_queues(flows, 4, seed=7), minlength=4)
        assert counts.min() > 0.8 * flows.size / 4

    def test_single_queue_short_circuits(self):
        flows = np.arange(100, dtype=np.int64)
        assert (rss_queues(flows, 1, seed=9) == 0).all()

    def test_scalar_wrapper_matches_vector(self):
        flows = np.arange(50, dtype=np.int64)
        mapped = rss_queues(flows, 4, seed=3)
        for flow in range(50):
            assert rss_queue(flow, 4, seed=3) == mapped[flow]

    def test_validation(self):
        with pytest.raises(ValidationError):
            rss_queues(np.arange(4), 0)
        with pytest.raises(ValidationError):
            rss_queues(np.asarray([-1, 2]), 4)


class TestFlowLabelledSchedules:
    def test_schedule_without_flow_model_is_unlabelled(self):
        schedule = build_workload("imix").generate(200, SimRng(5))
        assert schedule.flows is None
        assert schedule.packet(0).flow == 0

    def test_flow_model_labels_every_packet(self):
        workload = build_workload("imix").with_(flows=build_flow_model("zipf"))
        schedule = workload.generate(200, SimRng(5))
        assert schedule.flows is not None
        assert schedule.flows.size == 200
        packet = schedule.packet(3)
        assert packet.size == int(schedule.sizes[3])
        assert packet.flow == int(schedule.flows[3])
        assert packet.arrival_ns == float(schedule.arrival_times_ns[3])

    def test_attaching_flows_keeps_sizes_and_gaps_bit_identical(self):
        # The backward-compatibility keystone: flow labels are drawn after
        # sizes and gaps, so a flow model must not perturb either — this
        # is what keeps single-queue goldens unchanged.
        plain = build_workload("bursty-imix", load_gbps=30.0)
        labelled = plain.with_(flows=build_flow_model("hot"))
        a = plain.generate(500, SimRng(11))
        b = labelled.generate(500, SimRng(11))
        assert np.array_equal(a.sizes, b.sizes)
        assert np.array_equal(a.arrival_times_ns, b.arrival_times_ns)

    def test_describe_names_the_flow_model(self):
        workload = build_workload("fixed").with_(flows=build_flow_model("hot"))
        assert workload.describe()["flows"] == "hot-64f-0.9"
        assert "flows" not in build_workload("fixed").describe()

    def test_mismatched_flow_length_rejected(self):
        with pytest.raises(ValidationError):
            PacketSchedule(
                arrival_times_ns=np.asarray([0.0, 1.0]),
                sizes=np.asarray([64, 64]),
                flows=np.asarray([1]),
            )
