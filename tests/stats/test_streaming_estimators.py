"""Unit tests for the repro.stats streaming estimators."""

import math

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.stats import (
    DEFAULT_RELATIVE_ACCURACY,
    QuantileSketch,
    ReservoirSample,
    StreamingMoments,
)
from repro.stats.sketch import MIN_TRACKED_VALUE


class TestQuantileSketch:
    def test_default_accuracy_is_half_the_experiment_budget(self):
        assert DEFAULT_RELATIVE_ACCURACY == 0.005
        assert QuantileSketch().relative_accuracy == 0.005

    def test_rejects_bad_accuracy(self):
        for accuracy in (0.0, 1.0, -0.1, 2.0):
            with pytest.raises(ValidationError):
                QuantileSketch(accuracy)

    def test_rejects_bad_values(self):
        sketch = QuantileSketch()
        for value in (-1.0, math.nan, math.inf):
            with pytest.raises(ValidationError):
                sketch.add(value)

    def test_empty_sketch_raises_on_queries(self):
        sketch = QuantileSketch()
        assert sketch.count == 0
        assert sketch.bucket_count == 0
        for query in (lambda: sketch.mean, lambda: sketch.minimum,
                      lambda: sketch.maximum, lambda: sketch.quantile(0.5)):
            with pytest.raises(ValidationError):
                query()

    def test_quantile_range_is_validated(self):
        sketch = QuantileSketch()
        sketch.add(1.0)
        for q in (-0.1, 1.1):
            with pytest.raises(ValidationError):
                sketch.quantile(q)

    def test_single_value(self):
        sketch = QuantileSketch()
        sketch.add(123.0)
        assert sketch.count == 1
        assert sketch.minimum == sketch.maximum == 123.0
        assert sketch.mean == 123.0
        for q in (0.0, 0.5, 0.99, 1.0):
            assert sketch.quantile(q) == pytest.approx(123.0, rel=0.005)

    def test_extreme_quantiles_are_exact(self):
        sketch = QuantileSketch()
        sketch.add_many([3.0, 1.0, 2.0, 10.0])
        assert sketch.quantile(0.0) == 1.0
        assert sketch.quantile(1.0) == 10.0
        assert sketch.minimum == 1.0
        assert sketch.maximum == 10.0

    def test_zero_values_fold_into_zero_bucket(self):
        sketch = QuantileSketch()
        sketch.add_many([0.0, 0.0, 0.0, 5.0])
        assert sketch.count == 4
        assert sketch.quantile(0.25) == 0.0
        assert sketch.minimum == 0.0
        assert sketch.maximum == 5.0
        # The zero bucket counts as one bucket of memory.
        assert sketch.bucket_count == 2
        assert sketch.quantile(1.0) == 5.0

    def test_tiny_values_count_as_zero(self):
        sketch = QuantileSketch()
        sketch.add(MIN_TRACKED_VALUE / 2.0)
        sketch.add(1.0)
        assert sketch.quantile(0.0) == MIN_TRACKED_VALUE / 2.0
        assert sketch.count == 2

    def test_mean_count_min_max_are_exact(self):
        rng = np.random.default_rng(7)
        samples = rng.exponential(500.0, 5000)
        sketch = QuantileSketch()
        sketch.add_many(samples)
        assert sketch.count == samples.size
        assert sketch.mean == pytest.approx(float(samples.mean()), rel=1e-12)
        assert sketch.minimum == float(samples.min())
        assert sketch.maximum == float(samples.max())

    def test_documented_relative_error_bound(self):
        rng = np.random.default_rng(11)
        samples = rng.lognormal(6.5, 1.5, 40000)
        sketch = QuantileSketch()
        sketch.add_many(samples)
        for q in (0.5, 0.9, 0.99, 0.999):
            exact = float(np.percentile(samples, q * 100.0, method="lower"))
            estimate = sketch.quantile(q)
            assert abs(estimate - exact) <= sketch.relative_accuracy * exact

    def test_memory_is_bounded_by_dynamic_range_not_count(self):
        rng = np.random.default_rng(3)
        small = QuantileSketch()
        big = QuantileSketch()
        small.add_many(rng.lognormal(6.0, 1.0, 2000))
        big.add_many(rng.lognormal(6.0, 1.0, 20000))
        # Ten times the samples over the same distribution: essentially the
        # same number of occupied buckets (never the 10x a sample store pays).
        assert big.bucket_count <= small.bucket_count * 2

    def test_merge_requires_matching_accuracy_and_type(self):
        sketch = QuantileSketch(0.005)
        with pytest.raises(ValidationError):
            sketch.merge(QuantileSketch(0.01))
        with pytest.raises(ValidationError):
            sketch.merge("not a sketch")

    def test_merge_matches_single_pass_quantiles_exactly(self):
        rng = np.random.default_rng(13)
        samples = rng.lognormal(6.0, 1.0, 3000)
        whole = QuantileSketch()
        whole.add_many(samples)
        left, right = QuantileSketch(), QuantileSketch()
        left.add_many(samples[:1000])
        right.add_many(samples[1000:])
        merged = left.merge(right)
        assert merged.count == whole.count
        for q in (0.1, 0.5, 0.9, 0.99, 0.999):
            assert merged.quantile(q) == whole.quantile(q)

    def test_merge_with_empty_is_identity(self):
        sketch = QuantileSketch()
        sketch.add_many([1.0, 2.0, 3.0])
        before = sketch.as_dict()
        sketch.merge(QuantileSketch())
        assert sketch.as_dict() == before
        empty = QuantileSketch()
        empty.merge(sketch)
        assert empty.as_dict() == before

    def test_copy_is_independent(self):
        sketch = QuantileSketch()
        sketch.add(10.0)
        clone = sketch.copy()
        clone.add(20.0)
        assert sketch.count == 1
        assert clone.count == 2

    def test_round_trip_serialisation(self):
        sketch = QuantileSketch()
        sketch.add_many([0.0, 1.0, 250.0, 1e7])
        restored = QuantileSketch.from_dict(sketch.as_dict())
        assert restored == sketch
        assert restored.quantile(0.5) == sketch.quantile(0.5)
        # Empty sketches round trip too (a fleet host may see no traffic).
        assert QuantileSketch.from_dict(QuantileSketch().as_dict()) == QuantileSketch()

    def test_as_dict_is_json_safe(self):
        import json

        sketch = QuantileSketch()
        sketch.add_many([1.0, 5.0, 0.0])
        encoded = json.dumps(sketch.as_dict())
        assert QuantileSketch.from_dict(json.loads(encoded)) == sketch

    def test_repr_mentions_count_and_buckets(self):
        sketch = QuantileSketch()
        sketch.add(5.0)
        text = repr(sketch)
        assert "count=1" in text and "buckets=1" in text


class TestStreamingMoments:
    def test_matches_numpy_moments(self):
        rng = np.random.default_rng(5)
        samples = rng.normal(100.0, 15.0, 4000)
        moments = StreamingMoments()
        moments.push_many(samples)
        assert moments.count == samples.size
        assert moments.mean == pytest.approx(float(samples.mean()), rel=1e-9)
        assert moments.std == pytest.approx(float(samples.std()), rel=1e-9)
        assert moments.variance == pytest.approx(float(samples.var()), rel=1e-9)
        assert moments.minimum == float(samples.min())
        assert moments.maximum == float(samples.max())

    def test_empty_raises(self):
        moments = StreamingMoments()
        assert moments.count == 0
        for query in (lambda: moments.mean, lambda: moments.variance,
                      lambda: moments.minimum, lambda: moments.maximum):
            with pytest.raises(ValidationError):
                query()

    def test_rejects_non_finite(self):
        moments = StreamingMoments()
        with pytest.raises(ValidationError):
            moments.push(math.inf)

    def test_merge_matches_single_pass(self):
        rng = np.random.default_rng(9)
        samples = rng.exponential(50.0, 3000)
        whole = StreamingMoments()
        whole.push_many(samples)
        left, right = StreamingMoments(), StreamingMoments()
        left.push_many(samples[:1234])
        right.push_many(samples[1234:])
        merged = left.merge(right)
        assert merged.count == whole.count
        assert merged.mean == pytest.approx(whole.mean, rel=1e-12)
        assert merged.variance == pytest.approx(whole.variance, rel=1e-9)
        assert merged.minimum == whole.minimum
        assert merged.maximum == whole.maximum

    def test_merge_with_empty_and_type_error(self):
        moments = StreamingMoments()
        moments.push_many([1.0, 2.0])
        snapshot = moments.as_dict()
        assert moments.merge(StreamingMoments()).as_dict() == snapshot
        empty = StreamingMoments()
        assert empty.merge(moments).as_dict() == snapshot
        with pytest.raises(ValidationError):
            moments.merge(42)

    def test_round_trip_and_copy(self):
        moments = StreamingMoments()
        moments.push_many([3.0, 5.0, 8.0])
        assert StreamingMoments.from_dict(moments.as_dict()) == moments
        clone = moments.copy()
        clone.push(100.0)
        assert moments.count == 3
        assert StreamingMoments.from_dict(StreamingMoments().as_dict()).count == 0


class TestReservoirSample:
    def test_validation(self):
        with pytest.raises(ValidationError):
            ReservoirSample(0, seed=1)
        with pytest.raises(ValidationError):
            ReservoirSample(4, seed="abc")

    def test_keeps_everything_below_capacity(self):
        reservoir = ReservoirSample(10, seed=1)
        reservoir.add_many([1.0, 2.0, 3.0])
        assert len(reservoir) == 3
        assert reservoir.count == 3
        assert sorted(reservoir.values()) == [1.0, 2.0, 3.0]

    def test_caps_at_capacity_with_subset_of_stream(self):
        reservoir = ReservoirSample(8, seed=42)
        stream = [float(i) for i in range(200)]
        reservoir.add_many(stream)
        assert len(reservoir) == 8
        assert reservoir.count == 200
        assert set(reservoir.values()) <= set(stream)

    def test_seeded_determinism(self):
        first = ReservoirSample(8, seed=7)
        second = ReservoirSample(8, seed=7)
        stream = [float(i) * 1.5 for i in range(500)]
        first.add_many(stream)
        second.add_many(stream)
        assert first.values() == second.values()
        assert first == second

    def test_merge_requires_matching_capacity_and_type(self):
        reservoir = ReservoirSample(4, seed=1)
        with pytest.raises(ValidationError):
            reservoir.merge(ReservoirSample(8, seed=1))
        with pytest.raises(ValidationError):
            reservoir.merge(None)

    def test_merge_sums_offered_counts(self):
        left = ReservoirSample(4, seed=1)
        right = ReservoirSample(4, seed=2)
        left.add_many([1.0] * 30)
        right.add_many([2.0] * 20)
        assert left.merge(right).count == 50

    def test_round_trip_and_copy(self):
        import json

        reservoir = ReservoirSample(4, seed=3)
        reservoir.add_many([float(i) for i in range(50)])
        encoded = json.dumps(reservoir.as_dict())
        restored = ReservoirSample.from_dict(json.loads(encoded))
        assert restored == reservoir
        assert restored.count == reservoir.count
        clone = reservoir.copy()
        clone.add(999.0)
        assert clone.count == reservoir.count + 1
