"""Hardening regressions for the streaming-stats layer.

Pins the three field-reported failure modes of PR 8's sweep: the
``math domain error`` from a cancellation-produced negative second
moment, silently-poisoned accumulators rebuilt from corrupt records,
and reservoir self-merge / shared-shard double counting.
"""

import math

import pytest

from repro.errors import ValidationError
from repro.stats import (
    QuantileSketch,
    ReservoirSample,
    StreamingMoments,
    WindowedStats,
)


class TestNegativeSecondMomentClamp:
    """``std`` must never raise over a rounding artefact."""

    def test_sum_of_squares_shard_record_yields_negative_m2(self):
        # A shard that computed m2 as sum(x^2) - n*mean^2 (the
        # cancellation-prone textbook formula) over three copies of
        # 1000000000.7 rounds to m2 = -512.0.  Its record is honest
        # about what the shard computed; from_dict must accept it and
        # the variance clamp must absorb it.
        values = [1000000000.7] * 3
        naive_m2 = math.fsum(v * v for v in values) - len(values) * (
            math.fsum(values) / len(values)
        ) ** 2
        assert naive_m2 < 0.0
        shard = StreamingMoments.from_dict(
            {
                "count": len(values),
                "mean": math.fsum(values) / len(values),
                "m2": naive_m2,
                "min": min(values),
                "max": max(values),
            }
        )
        assert shard.variance == 0.0
        assert shard.std == 0.0

    def test_merge_of_poisoned_shard_keeps_std_finite(self):
        shard = StreamingMoments.from_dict(
            {"count": 3, "mean": 1000000000.7, "m2": -512.0,
             "min": 1000000000.7, "max": 1000000000.7}
        )
        total = StreamingMoments()
        total.push(1000000000.7)
        total.merge(shard)
        assert total.count == 4
        assert total.std >= 0.0
        assert math.isfinite(total.std)

    def test_live_pushes_never_go_negative(self):
        moments = StreamingMoments()
        for _ in range(1000):
            moments.push(1000000000.7)
        assert moments.variance >= 0.0
        assert moments.std >= 0.0


class TestFromDictValidation:
    """Corrupt records must raise, not silently poison later merges."""

    def test_moments_rejects_negative_count(self):
        with pytest.raises(ValidationError):
            StreamingMoments.from_dict({"count": -1, "mean": 0.0, "m2": 0.0})

    def test_moments_requires_min_max_when_counted(self):
        with pytest.raises(ValidationError):
            StreamingMoments.from_dict({"count": 2, "mean": 1.0, "m2": 0.0})

    def test_sketch_rejects_negative_counts(self):
        with pytest.raises(ValidationError):
            QuantileSketch.from_dict({"count": -4, "zero_count": 0})
        with pytest.raises(ValidationError):
            QuantileSketch.from_dict({"count": 0, "zero_count": -1})

    def test_sketch_rejects_negative_bucket_and_bad_buckets(self):
        with pytest.raises(ValidationError):
            QuantileSketch.from_dict(
                {"count": 2, "zero_count": 0, "min": 1.0, "max": 2.0,
                 "buckets": {"10": -2}}
            )
        with pytest.raises(ValidationError):
            QuantileSketch.from_dict(
                {"count": 0, "zero_count": 0, "buckets": [1, 2, 3]}
            )

    def test_sketch_requires_min_max_when_counted(self):
        with pytest.raises(ValidationError):
            QuantileSketch.from_dict(
                {"count": 2, "zero_count": 0, "buckets": {"10": 2}}
            )

    def test_reservoir_rejects_negative_offered_and_next_tag(self):
        with pytest.raises(ValidationError):
            ReservoirSample.from_dict(
                {"capacity": 4, "seed": 1, "offered": -1, "items": []}
            )
        with pytest.raises(ValidationError):
            ReservoirSample.from_dict(
                {"capacity": 4, "seed": 1, "offered": 0, "next_tag": -5,
                 "items": []}
            )

    def test_reservoir_rejects_malformed_and_overfull_items(self):
        with pytest.raises(ValidationError):
            ReservoirSample.from_dict(
                {"capacity": 4, "seed": 1, "offered": 1,
                 "items": [[1, 2, 3]]}
            )
        with pytest.raises(ValidationError):
            ReservoirSample.from_dict(
                {"capacity": 4, "seed": 1, "offered": 1,
                 "items": [[-1, 0, 0, 2.0]]}
            )
        with pytest.raises(ValidationError):
            ReservoirSample.from_dict(
                {"capacity": 1, "seed": 1, "offered": 2,
                 "items": [[1, 1, 0, 2.0], [2, 1, 1, 3.0]]}
            )

    def test_round_trip_still_works_after_validation(self):
        reservoir = ReservoirSample(4, seed=7)
        reservoir.add_many([1.0, 2.0, 3.0])
        rebuilt = ReservoirSample.from_dict(reservoir.as_dict())
        assert rebuilt.values() == reservoir.values()
        assert rebuilt.count == reservoir.count


class TestReservoirMergeUnionSemantics:
    def test_self_merge_is_rejected(self):
        reservoir = ReservoirSample(4, seed=3)
        reservoir.add_many([1.0, 2.0])
        with pytest.raises(ValidationError):
            reservoir.merge(reservoir)
        # Rejection left the reservoir untouched.
        assert reservoir.count == 2
        assert len(reservoir) == 2

    def test_copy_merge_dedupes_shared_stream(self):
        # A copy shares seed AND tag range: every kept item collides.
        # The merge must not double count or duplicate items.
        reservoir = ReservoirSample(8, seed=3)
        reservoir.add_many([1.0, 2.0, 3.0])
        before_values = reservoir.values()
        reservoir.merge(reservoir.copy())
        assert reservoir.values() == before_values
        assert reservoir.count == 3

    def test_partial_overlap_dedupes_only_the_overlap(self):
        # Two shards that share a seed over overlapping tag ranges:
        # one saw items 0..4, the other a superset 0..7 of the same
        # stream.  The union's offered total is 8, not 13.
        small = ReservoirSample(16, seed=9)
        small.add_many([float(i) for i in range(5)])
        large = ReservoirSample(16, seed=9)
        large.add_many([float(i) for i in range(8)])
        small.merge(large)
        assert small.count == 8
        assert sorted(small.values()) == [float(i) for i in range(8)]

    def test_disjoint_shards_still_sum(self):
        a = ReservoirSample(4, seed=1)
        a.add_many([1.0, 2.0, 3.0])
        b = ReservoirSample(4, seed=2)
        b.add_many([4.0, 5.0])
        a.merge(b)
        assert a.count == 5


class TestWindowedStats:
    def test_snapshot_resets_window_and_keeps_cumulative(self):
        stats = WindowedStats()
        stats.record(1.0)
        stats.record(2.0)
        first = stats.snapshot()
        assert first.index == 0
        assert first.count == 2
        assert stats.window_count == 0
        stats.record(3.0)
        sketch, moments = stats.cumulative()
        assert sketch.count == 3
        assert moments.count == 3
        assert stats.count == 3

    def test_empty_window_is_well_defined(self):
        stats = WindowedStats()
        empty = stats.snapshot()
        assert empty.count == 0
        assert empty.index == 0
        with pytest.raises(ValidationError):
            empty.quantile(0.99)
        # The empty window contributes nothing to the cumulative view.
        stats.record(5.0)
        sketch, moments = stats.cumulative()
        assert sketch.count == 1
        assert moments.mean == 5.0

    def test_cumulative_copies_do_not_disturb_the_window(self):
        stats = WindowedStats()
        stats.record(1.0)
        sketch, _ = stats.cumulative()
        sketch.add(100.0)
        again, moments = stats.cumulative()
        assert again.count == 1
        assert moments.count == 1
