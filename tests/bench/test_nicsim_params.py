"""Tests for NIC datapath simulation parameters and runner integration."""

import pytest

from repro.bench.nicsim import NICSIM_KIND, NicSimParams, run_nicsim_benchmark
from repro.bench.params import BenchmarkParams
from repro.bench.runner import BenchmarkRunner
from repro.errors import ValidationError
from repro.sim.nicsim import NicSimResult


class TestNicSimParams:
    def test_model_aliases_normalised(self):
        assert NicSimParams(model="dpdk").model == "Modern NIC (DPDK driver)"
        assert NicSimParams(model="simple").model == "Simple NIC"

    def test_unknown_model_and_workload_rejected(self):
        with pytest.raises(ValidationError):
            NicSimParams(model="quantum")
        with pytest.raises(ValidationError):
            NicSimParams(workload="morse-code")

    def test_numeric_validation(self):
        with pytest.raises(ValidationError):
            NicSimParams(packets=0)
        with pytest.raises(ValidationError):
            NicSimParams(packet_size=-64)
        with pytest.raises(ValidationError):
            NicSimParams(ring_depth=0)
        with pytest.raises(ValidationError):
            NicSimParams(offered_load_gbps=0.0)

    def test_label_mentions_the_interesting_knobs(self):
        label = NicSimParams(
            model="kernel", workload="bursty", packet_size=256,
            offered_load_gbps=24.0, duplex=False,
        ).label()
        assert NICSIM_KIND in label
        assert "bursty" in label
        assert "256B" in label
        assert "24Gb/s" in label
        assert "tx-only" in label

    def test_kind_and_dict_round_trip(self):
        params = NicSimParams(
            model="dpdk", workload="imix", offered_load_gbps=30.0, seed=9
        )
        assert params.kind == NICSIM_KIND
        restored = NicSimParams.from_dict(params.as_dict())
        assert restored == params

    def test_with_derives_variants(self):
        base = NicSimParams(model="dpdk")
        variant = base.with_(ring_depth=64, workload="bursty")
        assert variant.ring_depth == 64
        assert variant.model == base.model


class TestMultiQueueAndTagParams:
    def test_queue_and_tag_knobs_round_trip(self):
        params = NicSimParams(
            model="dpdk", workload="imix", num_queues=4, rss="skewed",
            dma_tags=16, seed=2,
        )
        assert params.rss == "zipf"  # alias canonicalised
        record = params.as_dict()
        assert record["num_queues"] == 4
        assert record["rss"] == "zipf"
        assert record["dma_tags"] == 16
        assert NicSimParams.from_dict(record) == params

    def test_non_default_rss_survives_single_queue_round_trip(self):
        # The rss key must be gated on its own default, not on num_queues:
        # a single-queue params with rss="hot" still round-trips exactly.
        params = NicSimParams(model="dpdk", rss="hot", num_queues=1)
        assert NicSimParams.from_dict(params.as_dict()) == params

    def test_default_knobs_are_omitted_from_serialisation(self):
        record = NicSimParams(model="dpdk").as_dict()
        for key in ("num_queues", "rss", "dma_tags"):
            assert key not in record

    def test_label_mentions_queue_and_tag_knobs(self):
        label = NicSimParams(
            model="dpdk", num_queues=4, rss="hot", dma_tags=8
        ).label()
        assert "queues=4" in label
        assert "rss=hot" in label
        assert "tags=8" in label
        single = NicSimParams(model="dpdk").label()
        assert "queues=" not in single
        assert "tags=" not in single

    def test_invalid_queue_and_tag_knobs_rejected(self):
        with pytest.raises(ValidationError):
            NicSimParams(model="dpdk", num_queues=0)
        with pytest.raises(ValidationError):
            NicSimParams(model="dpdk", num_queues=300)
        with pytest.raises(ValidationError):
            NicSimParams(model="dpdk", dma_tags=0)
        with pytest.raises(ValidationError):
            NicSimParams(model="dpdk", rss="round-robin")

    def test_multiqueue_tagged_run_partitions_and_accounts(self):
        params = NicSimParams(
            model="dpdk", workload="imix", packets=300,
            offered_load_gbps=10.0, num_queues=2, dma_tags=16, seed=4,
        )
        result = run_nicsim_benchmark(params)
        assert result.tx.queues is not None and len(result.tx.queues) == 2
        assert (
            sum(queue.offered_packets for queue in result.tx.queues) == 300
        )
        assert result.tags is not None
        assert result.tags.capacity == 16


class TestHostCouplingParams:
    def test_host_fields_default_to_decoupled(self):
        params = NicSimParams(model="dpdk")
        assert params.system is None
        assert params.host_config() is None

    def test_system_normalised_and_host_config_built(self):
        params = NicSimParams(
            model="dpdk", system="nfp6000-bdw", iommu_enabled=True,
            payload_window=1024 * 1024, payload_cache_state="warm",
        )
        assert params.system == "NFP6000-BDW"
        assert params.payload_cache_state == "host_warm"
        host = params.host_config()
        assert host is not None
        assert host.iommu_enabled
        assert host.payload_window == 1024 * 1024

    def test_iommu_and_remote_require_a_system(self):
        with pytest.raises(ValidationError):
            NicSimParams(model="dpdk", iommu_enabled=True)
        with pytest.raises(ValidationError):
            NicSimParams(model="dpdk", payload_placement="remote")

    def test_invalid_host_knobs_rejected(self):
        with pytest.raises(ValidationError):
            NicSimParams(model="dpdk", system="NFP6000-BDW", iommu_page_size=8192)
        with pytest.raises(ValidationError):
            NicSimParams(
                model="dpdk", system="NFP6000-HSW", payload_placement="remote"
            )

    def test_label_mentions_host_knobs(self):
        label = NicSimParams(
            model="dpdk", system="NFP6000-BDW", iommu_enabled=True,
            payload_window=16 * 1024 * 1024, payload_placement="remote",
            payload_cache_state="device_warm",
        ).label()
        assert "host=NFP6000-BDW" in label
        assert "window=16M" in label
        assert "iommu(4K pages)" in label
        assert "remote" in label
        assert "device_warm" in label

    def test_host_fields_round_trip(self):
        params = NicSimParams(
            model="kernel", system="NFP6000-BDW", iommu_enabled=True,
            iommu_page_size=2 * 1024 * 1024, payload_window=4 * 1024 * 1024,
            payload_placement="remote", seed=3,
        )
        assert NicSimParams.from_dict(params.as_dict()) == params

    def test_coupled_run_produces_host_stats(self):
        params = NicSimParams(
            model="dpdk", packets=300, packet_size=512,
            offered_load_gbps=10.0, system="NFP6000-HSW",
            payload_window=256 * 1024,
        )
        result = run_nicsim_benchmark(params)
        assert result.host is not None
        assert result.host.accesses > 0


class TestRunnerIntegration:
    def test_run_dispatches_nicsim_params(self):
        runner = BenchmarkRunner()
        result = runner.run(
            NicSimParams(model="dpdk", packets=400, packet_size=512)
        )
        assert isinstance(result, NicSimResult)
        assert result.tx.delivered_packets == 400

    def test_run_all_handles_mixed_parameter_lists(self):
        runner = BenchmarkRunner()
        params_list = [
            BenchmarkParams(kind="BW_WR", transfer_size=256, transactions=300),
            NicSimParams(model="kernel", packets=400, packet_size=512),
        ]
        results = runner.run_all(params_list)
        assert results[0].bandwidth_gbps is not None
        assert isinstance(results[1], NicSimResult)

    def test_run_nicsim_benchmark_is_deterministic(self):
        params = NicSimParams(
            model="dpdk", workload="imix", packets=400,
            offered_load_gbps=20.0, seed=3,
        )
        assert run_nicsim_benchmark(params) == run_nicsim_benchmark(params)

    def test_save_json_accepts_mixed_results(self, tmp_path):
        import json

        runner = BenchmarkRunner()
        results = runner.run_all(
            [
                BenchmarkParams(kind="BW_WR", transfer_size=256, transactions=200),
                NicSimParams(model="dpdk", packets=200, packet_size=512),
            ]
        )
        path = tmp_path / "mixed.json"
        runner.save(results, path)
        records = json.loads(path.read_text())
        assert len(records) == 2
        assert "bandwidth_gbps" in records[0]
        assert records[1]["kind"] == "NICSIM"
        assert records[1]["model"] == "Modern NIC (DPDK driver)"
        # And the mixed file loads back into typed results.
        from repro.bench.results import load_results_json

        loaded = load_results_json(path)
        assert loaded[0] == results[0]
        assert loaded[1] == results[1]

    def test_save_csv_rejects_simulation_results(self, tmp_path):
        from repro.errors import BenchmarkError

        runner = BenchmarkRunner()
        results = runner.run_all([NicSimParams(model="dpdk", packets=150)])
        with pytest.raises(BenchmarkError):
            runner.save(results, tmp_path / "out.csv", fmt="csv")
