"""Tests for benchmark result records and their (de)serialisation."""

import numpy as np
import pytest

from repro.bench.params import BenchmarkKind, BenchmarkParams
from repro.bench.results import (
    BenchmarkResult,
    filter_results,
    load_results_json,
    save_results_csv,
    save_results_json,
)
from repro.bench.stats import LatencyStats
from repro.errors import AnalysisError, ValidationError


def latency_result(size=64, system="NFP6000-HSW"):
    params = BenchmarkParams(kind="LAT_RD", transfer_size=size, system=system)
    stats = LatencyStats.from_samples([500.0, 510.0, 520.0, 530.0])
    return BenchmarkResult(params=params, latency=stats, cache_hit_rate=1.0)


def bandwidth_result(size=64, gbps=30.0):
    params = BenchmarkParams(kind="BW_RD", transfer_size=size)
    return BenchmarkResult(
        params=params,
        bandwidth_gbps=gbps,
        transactions_per_second=1e6,
        iotlb_miss_rate=0.0,
    )


class TestBenchmarkResult:
    def test_latency_kind_requires_latency_stats(self):
        params = BenchmarkParams(kind="LAT_RD", transfer_size=64)
        with pytest.raises(ValidationError):
            BenchmarkResult(params=params, bandwidth_gbps=10.0)

    def test_bandwidth_kind_requires_bandwidth(self):
        params = BenchmarkParams(kind="BW_RD", transfer_size=64)
        with pytest.raises(ValidationError):
            BenchmarkResult(
                params=params, latency=LatencyStats.from_samples([1.0, 2.0])
            )

    def test_metric_selects_median_or_bandwidth(self):
        assert latency_result().metric == pytest.approx(515.0)
        assert bandwidth_result(gbps=42.0).metric == 42.0

    def test_dict_round_trip_latency(self):
        original = latency_result()
        rebuilt = BenchmarkResult.from_dict(original.as_dict())
        # Serialisation records the effective transaction count that ran, so
        # compare against the original with that count made explicit.
        assert rebuilt.params == original.params.with_(
            transactions=original.params.effective_transactions
        )
        assert rebuilt.latency.median == original.latency.median

    def test_dict_round_trip_bandwidth(self):
        original = bandwidth_result()
        rebuilt = BenchmarkResult.from_dict(original.as_dict())
        assert rebuilt.bandwidth_gbps == original.bandwidth_gbps
        assert rebuilt.transactions_per_second == original.transactions_per_second

    def test_samples_included_only_on_request(self):
        params = BenchmarkParams(kind="LAT_RD", transfer_size=64)
        result = BenchmarkResult(
            params=params,
            latency=LatencyStats.from_samples([1.0, 2.0]),
            samples_ns=np.array([1.0, 2.0]),
        )
        assert "samples_ns" not in result.as_dict()
        assert result.as_dict(include_samples=True)["samples_ns"] == [1.0, 2.0]


class TestPersistence:
    def test_json_round_trip(self, tmp_path):
        results = [latency_result(), bandwidth_result()]
        path = tmp_path / "results.json"
        save_results_json(results, path)
        loaded = load_results_json(path)
        assert len(loaded) == 2
        assert loaded[0].params.kind is BenchmarkKind.LAT_RD
        assert loaded[1].bandwidth_gbps == pytest.approx(30.0)

    def test_json_rejects_non_list(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        with pytest.raises(AnalysisError):
            load_results_json(path)

    def test_csv_contains_one_row_per_result(self, tmp_path):
        results = [bandwidth_result(64), bandwidth_result(128, gbps=40.0)]
        path = tmp_path / "results.csv"
        save_results_csv(results, path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 3  # header + 2 rows
        assert "bandwidth_gbps" in lines[0]

    def test_csv_requires_results(self, tmp_path):
        with pytest.raises(AnalysisError):
            save_results_csv([], tmp_path / "empty.csv")


class TestFiltering:
    def test_filter_by_kind_and_size(self):
        results = [latency_result(64), latency_result(128), bandwidth_result(64)]
        selected = filter_results(results, kind=BenchmarkKind.LAT_RD, transfer_size=64)
        assert len(selected) == 1
        assert selected[0].params.transfer_size == 64

    def test_filter_accepts_string_values(self):
        results = [latency_result(system="NFP6000-HSW")]
        assert filter_results(results, system="NFP6000-HSW")

    def test_filter_unknown_key_rejected(self):
        with pytest.raises(ValidationError):
            filter_results([latency_result()], flavour="vanilla")
