"""Tests for benchmark parameter validation and serialisation."""

import pytest

from repro.bench.params import (
    COMMON_TRANSFER_SIZES,
    WINDOW_SWEEP,
    BenchmarkKind,
    BenchmarkParams,
    NumaPlacement,
)
from repro.errors import ValidationError
from repro.sim.cache import CacheState
from repro.sim.hostbuffer import AccessPattern
from repro.units import KIB, MIB


class TestBenchmarkKind:
    def test_latency_vs_bandwidth_partition(self):
        latency = {k for k in BenchmarkKind if k.is_latency}
        bandwidth = {k for k in BenchmarkKind if k.is_bandwidth}
        assert latency == {BenchmarkKind.LAT_RD, BenchmarkKind.LAT_WRRD}
        assert bandwidth == {
            BenchmarkKind.BW_RD,
            BenchmarkKind.BW_WR,
            BenchmarkKind.BW_RDWR,
        }

    def test_dma_operation_mapping(self):
        assert BenchmarkKind.LAT_RD.dma_operation == "read"
        assert BenchmarkKind.LAT_WRRD.dma_operation == "write_read"
        assert BenchmarkKind.BW_RDWR.dma_operation == "read_write"

    def test_from_value_case_insensitive(self):
        assert BenchmarkKind.from_value("bw_rd") is BenchmarkKind.BW_RD

    def test_from_value_invalid(self):
        with pytest.raises(ValidationError):
            BenchmarkKind.from_value("BW_SIDEWAYS")


class TestBenchmarkParams:
    def test_string_coercion_of_enums(self):
        params = BenchmarkParams(
            kind="BW_RD",
            transfer_size=64,
            cache_state="warm",
            pattern="sequential",
            placement="remote",
        )
        assert params.kind is BenchmarkKind.BW_RD
        assert params.cache_state is CacheState.HOST_WARM
        assert params.pattern is AccessPattern.SEQUENTIAL
        assert params.placement is NumaPlacement.REMOTE

    def test_window_must_cover_transfer(self):
        with pytest.raises(ValidationError):
            BenchmarkParams(kind="BW_RD", transfer_size=8 * KIB, window_size=4 * KIB)

    def test_offset_bounds(self):
        with pytest.raises(ValidationError):
            BenchmarkParams(kind="BW_RD", transfer_size=64, offset=64)

    def test_default_transaction_counts_differ_by_kind(self):
        latency = BenchmarkParams(kind="LAT_RD", transfer_size=64)
        bandwidth = BenchmarkParams(kind="BW_RD", transfer_size=64)
        assert latency.effective_transactions > bandwidth.effective_transactions

    def test_explicit_transactions_override_default(self):
        params = BenchmarkParams(kind="BW_RD", transfer_size=64, transactions=123)
        assert params.effective_transactions == 123

    def test_invalid_transactions(self):
        with pytest.raises(ValidationError):
            BenchmarkParams(kind="BW_RD", transfer_size=64, transactions=0)

    def test_with_replaces_and_revalidates(self):
        params = BenchmarkParams(kind="BW_RD", transfer_size=64)
        bigger = params.with_(transfer_size=1024, window_size=1 * MIB)
        assert bigger.transfer_size == 1024
        with pytest.raises(ValidationError):
            params.with_(transfer_size=0)

    def test_label_mentions_key_facts(self):
        params = BenchmarkParams(
            kind="BW_RD",
            transfer_size=64,
            window_size=64 * MIB,
            cache_state="cold",
            placement="remote",
            iommu_enabled=True,
        )
        label = params.label()
        assert "BW_RD" in label and "64B" in label and "win=64M" in label
        assert "remote" in label and "iommu" in label

    def test_as_dict_from_dict_round_trip(self):
        params = BenchmarkParams(
            kind="LAT_WRRD",
            transfer_size=128,
            window_size=4 * MIB,
            cache_state="cold",
            iommu_enabled=True,
            system="NFP6000-BDW",
            transactions=500,
        )
        rebuilt = BenchmarkParams.from_dict(params.as_dict())
        assert rebuilt == params.with_(transactions=500)

    def test_from_dict_parses_window_strings(self):
        params = BenchmarkParams.from_dict(
            {"kind": "BW_RD", "transfer_size": 64, "window_size": "8K"}
        )
        assert params.window_size == 8 * KIB


class TestSweepConstants:
    def test_window_sweep_spans_4k_to_64m(self):
        assert WINDOW_SWEEP[0] == 4 * KIB
        assert WINDOW_SWEEP[-1] == 64 * MIB

    def test_common_transfer_sizes_cover_paper_range(self):
        assert 64 in COMMON_TRANSFER_SIZES and 2048 in COMMON_TRANSFER_SIZES
