"""Tests for parallel suite execution and suite parameter deduplication."""

import pytest

from repro.bench.nicsim import NicSimParams
from repro.bench.params import BenchmarkKind, BenchmarkParams
from repro.bench.runner import BenchmarkRunner, full_suite_params
from repro.errors import ValidationError
from repro.units import KIB


def _mixed_params():
    """A small list spanning kinds, seeds and parameter types."""
    return [
        # Two runs on the same host configuration: isolation means their
        # results must not depend on each other or on worker placement.
        BenchmarkParams(
            kind="BW_RD", transfer_size=64, transactions=300, seed=21
        ),
        BenchmarkParams(
            kind="BW_RD", transfer_size=256, transactions=300, seed=21
        ),
        BenchmarkParams(
            kind="LAT_RD", transfer_size=64, transactions=300, seed=21
        ),
        # A different host key (other seed).
        BenchmarkParams(
            kind="BW_WR", transfer_size=512, transactions=300, seed=5
        ),
        # A datapath simulation rides along in the same list.
        NicSimParams(model="dpdk", packets=300, packet_size=512, seed=5),
    ]


class TestParallelRunAll:
    def test_parallel_results_identical_to_serial(self):
        serial = BenchmarkRunner().run_all(_mixed_params())
        parallel = BenchmarkRunner().run_all(_mixed_params(), jobs=2)
        assert len(parallel) == len(serial)
        for serial_result, parallel_result in zip(serial, parallel):
            assert type(parallel_result) is type(serial_result)
            assert parallel_result == serial_result

    def test_jobs_one_matches_default(self):
        params = _mixed_params()[:2]
        assert BenchmarkRunner().run_all(params, jobs=1) == (
            BenchmarkRunner().run_all(params)
        )

    def test_progress_fires_once_per_completed_run(self):
        # In parallel mode the callback reports completions: a running
        # count as the index, one call per parameter set.
        seen = []
        runner = BenchmarkRunner(
            progress=lambda index, total, params: seen.append((index, total))
        )
        params = _mixed_params()[:3]
        runner.run_all(params, jobs=2)
        assert seen == [(0, 3), (1, 3), (2, 3)]

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValidationError):
            BenchmarkRunner().run_all(_mixed_params()[:1], jobs=0)


class TestFullSuiteParams:
    def test_overlapping_inputs_are_deduplicated(self):
        base = full_suite_params(
            transfer_sizes=(64, 128),
            windows=(8 * KIB, 64 * KIB),
            cache_states=("cold",),
            kinds=(BenchmarkKind.BW_RD,),
        )
        duplicated = full_suite_params(
            transfer_sizes=(64, 64, 128),
            windows=(8 * KIB, 8 * KIB, 64 * KIB),
            cache_states=("cold",),
            kinds=(BenchmarkKind.BW_RD,),
        )
        assert duplicated == base
        assert len(duplicated) == len(set(duplicated))

    def test_window_smaller_than_transfer_still_skipped(self):
        params = full_suite_params(
            transfer_sizes=(2048,),
            windows=(1024, 4096),
            cache_states=("cold",),
            kinds=(BenchmarkKind.BW_WR,),
        )
        assert all(p.window_size >= p.transfer_size for p in params)
        assert len(params) == 1
