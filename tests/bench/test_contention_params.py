"""Tests for the contention benchmark surface (repro.bench.contention)."""

from __future__ import annotations

import pytest

from repro.bench.contention import (
    ContentionParams,
    run_contention_benchmark,
    solo_device_params,
)
from repro.bench.nicsim import NicSimParams, run_nicsim_benchmark
from repro.bench.runner import (
    BenchmarkRunner,
    contention_suite_params,
    full_suite_params,
)
from repro.bench.results import load_results_json
from repro.errors import BenchmarkError, ValidationError
from repro.sim.fabric import ContentionResult
from repro.units import KIB, MIB


def _pair(**overrides) -> ContentionParams:
    victim = NicSimParams(
        model="dpdk",
        workload="fixed",
        packet_size=512,
        offered_load_gbps=5.0,
        packets=200,
        ring_depth=64,
        payload_window=256 * KIB,
    )
    aggressor = NicSimParams(
        model="kernel", workload="imix", packets=1200, payload_window=16 * MIB
    )
    fields = dict(
        devices=(victim, aggressor),
        names=("victim", "aggressor"),
        system="NFP6000-HSW",
        iommu_enabled=True,
        arbiter="rr",
    )
    fields.update(overrides)
    return ContentionParams(**fields)


class TestContentionParams:
    def test_round_trips_through_dict(self):
        params = _pair(arbiter="wrr", weights=(8.0, 1.0), seed=3)
        rebuilt = ContentionParams.from_dict(params.as_dict())
        assert rebuilt == params
        assert rebuilt.as_dict() == params.as_dict()

    def test_kind_and_label(self):
        params = _pair(arbiter="wrr", weights=(8.0, 1.0))
        assert params.kind == "CONTENTION"
        label = params.label()
        assert "CONTENTION" in label
        assert "arbiter=wrr" in label
        assert "weights=8:1" in label
        assert "victim" in label and "aggressor" in label

    def test_device_names_default_to_indices(self):
        params = _pair(names=None)
        assert params.device_names() == ("dev0", "dev1")

    def test_rejects_devices_with_their_own_host(self):
        coupled = NicSimParams(system="NFP6000-HSW", packets=100)
        with pytest.raises(ValidationError):
            ContentionParams(devices=(coupled,))

    def test_rejects_mismatched_names_and_weights(self):
        with pytest.raises(ValidationError):
            _pair(names=("only-one",))
        with pytest.raises(ValidationError):
            _pair(names=("twin", "twin"))
        with pytest.raises(ValidationError):
            _pair(arbiter="wrr", weights=(1.0,))
        with pytest.raises(ValidationError):
            _pair(arbiter="wrr", weights=(1.0, -2.0))
        with pytest.raises(ValidationError):
            _pair(arbiter="lottery")
        with pytest.raises(ValidationError):
            ContentionParams(devices=())

    def test_weights_rejected_for_schemes_that_ignore_them(self):
        # fcfs/rr never read weights; advertising them in labels while
        # silently ignoring them would mislead the operator.
        with pytest.raises(ValidationError):
            _pair(arbiter="rr", weights=(8.0, 1.0))
        with pytest.raises(ValidationError):
            _pair(arbiter="fcfs", weights=(8.0, 1.0))

    def test_weights_accepted_by_age_and_sliced(self):
        assert _pair(arbiter="age", weights=(8.0, 1.0)).weights == (8.0, 1.0)
        sliced = _pair(
            arbiter="sliced", weights=(8.0, 1.0), quantum_ns=16.0
        )
        assert sliced.quantum_ns == 16.0
        assert "quantum=16ns" in sliced.label()

    def test_topology_quantum_partition_round_trip(self):
        params = _pair(
            topology="victim=root,aggressor=sw0,sw0=root",
            ddio_partition=(3.0, 1.0),
        )
        rebuilt = ContentionParams.from_dict(params.as_dict())
        assert rebuilt == params
        assert rebuilt.topology == "victim=root,aggressor=sw0,sw0=root"
        assert rebuilt.ddio_partition == (3.0, 1.0)
        label = params.label()
        assert "topology=depth2" in label
        assert "ddio=3:1" in label
        # Flat-era records carry none of the new keys.
        assert "topology" not in _pair().as_dict()
        assert "quantum_ns" not in _pair().as_dict()
        assert "ddio_partition" not in _pair().as_dict()
        assert "cache_model" not in _pair().as_dict()
        faithful = _pair(cache_model="faithful")
        assert ContentionParams.from_dict(faithful.as_dict()) == faithful
        assert "cache=faithful" in faithful.label()

    def test_topology_quantum_partition_validation(self):
        with pytest.raises(ValidationError):
            _pair(topology="victim=root")  # aggressor missing
        with pytest.raises(ValidationError):
            _pair(topology="victim=root,aggressor=nowhere")
        with pytest.raises(ValidationError):
            _pair(quantum_ns=16.0)  # rr ignores quanta
        with pytest.raises(ValidationError):
            _pair(arbiter="sliced", quantum_ns=-1.0)
        with pytest.raises(ValidationError):
            _pair(ddio_partition=(1.0,))
        with pytest.raises(ValidationError):
            _pair(ddio_partition=(1.0, -1.0))
        with pytest.raises(ValidationError):
            _pair(cache_model="magic")

    def test_solo_device_params_couples_to_the_fabric_host(self):
        params = _pair(seed=17)
        solo = solo_device_params(params, 0)
        assert solo.system == params.system
        assert solo.iommu_enabled is params.iommu_enabled
        assert solo.seed == 17  # inherits the run seed
        assert solo.workload == params.devices[0].workload
        with pytest.raises(ValidationError):
            solo_device_params(params, 9)

    def test_solo_params_equal_one_device_contention_run(self):
        params = _pair(seed=5)
        solo = run_nicsim_benchmark(solo_device_params(params, 0))
        one_device = run_contention_benchmark(
            params.with_(
                devices=(params.devices[0],), names=("victim",), weights=None
            )
        )
        assert one_device.devices[0].result == solo

    def test_solo_equivalence_holds_under_a_device_seed_override(self):
        # A device seed overrides the run seed for a plain NICSIM run's
        # host too, so a one-device contention run resolves its host seed
        # the same way — the degenerate contract must survive seeding.
        params = _pair(seed=5)
        seeded = params.devices[0].with_(seed=23)
        solo = run_nicsim_benchmark(
            solo_device_params(params.with_(devices=(seeded, params.devices[1])), 0)
        )
        one_device = run_contention_benchmark(
            params.with_(devices=(seeded,), names=("victim",), weights=None)
        )
        assert one_device.devices[0].result == solo


class TestRunnerDispatch:
    def test_runner_executes_contention_params(self):
        result = BenchmarkRunner().run(_pair(seed=2))
        assert isinstance(result, ContentionResult)
        assert {record.name for record in result.devices} == {
            "victim",
            "aggressor",
        }

    def test_parallel_results_identical_to_serial_with_contention(self):
        def mixed():
            return [
                NicSimParams(model="dpdk", packets=200, packet_size=512, seed=5),
                _pair(seed=9),
                _pair(arbiter="wrr", weights=(4.0, 1.0), seed=9),
            ]

        serial = BenchmarkRunner().run_all(mixed())
        parallel = BenchmarkRunner().run_all(mixed(), jobs=2)
        assert len(parallel) == len(serial)
        for serial_result, parallel_result in zip(serial, parallel):
            assert type(parallel_result) is type(serial_result)
            assert parallel_result == serial_result

    def test_save_and_load_round_trip(self, tmp_path):
        runner = BenchmarkRunner()
        results = runner.run_all([_pair(seed=2)])
        path = tmp_path / "contention.json"
        runner.save(results, path)
        restored = load_results_json(path)
        assert len(restored) == 1
        assert isinstance(restored[0], ContentionResult)
        assert restored[0] == results[0]

    def test_csv_export_rejects_contention_results(self, tmp_path):
        runner = BenchmarkRunner()
        results = runner.run_all([_pair(seed=2)])
        with pytest.raises(BenchmarkError):
            runner.save(results, tmp_path / "contention.csv", fmt="csv")


class TestSuiteSurface:
    def test_contention_suite_covers_every_scheme_and_a_quad(self):
        scenarios = contention_suite_params(packets=100)
        pairs = [
            params
            for params in scenarios
            if params.device_names() == ("victim", "aggressor")
        ]
        assert [params.arbiter for params in pairs] == ["fcfs", "rr", "wrr"]
        assert pairs[-1].weights == (8.0, 1.0)
        quads = [params for params in scenarios if len(params.devices) == 4]
        assert len(quads) == 2
        assert all(
            params.device_names()
            == ("victim", "aggressor", "bulk2", "streamer")
            for params in quads
        )
        # One weighted flat fabric, one switch tree with the victim on
        # its own root port.
        assert quads[0].arbiter == "wrr"
        assert quads[0].weights == (8.0, 1.0, 2.0, 2.0)
        assert quads[1].topology is not None
        assert "victim=root" in quads[1].topology

    def test_full_suite_count_includes_contention_when_asked(self):
        base = full_suite_params()
        extended = full_suite_params(include_contention=True)
        assert len(extended) == len(base) + len(contention_suite_params())
        assert not any(
            isinstance(params, ContentionParams) for params in base
        )
        assert (
            sum(
                1
                for params in extended
                if isinstance(params, ContentionParams)
            )
            == 5
        )
