"""Tests for latency statistics and distribution helpers."""

import numpy as np
import pytest

from repro.bench.stats import (
    LatencyStats,
    cdf,
    fraction_within,
    histogram,
    percentile_ratio,
)
from repro.errors import AnalysisError


class TestLatencyStats:
    def test_basic_statistics(self):
        stats = LatencyStats.from_samples([100.0, 200.0, 300.0, 400.0, 500.0])
        assert stats.count == 5
        assert stats.mean == pytest.approx(300.0)
        assert stats.median == pytest.approx(300.0)
        assert stats.minimum == 100.0
        assert stats.maximum == 500.0

    def test_percentiles_ordered(self):
        samples = np.random.default_rng(0).exponential(100.0, 10_000)
        stats = LatencyStats.from_samples(samples)
        assert stats.median <= stats.p90 <= stats.p95 <= stats.p99 <= stats.p999

    def test_spread_metric(self):
        stats = LatencyStats.from_samples([100.0, 110.0, 120.0, 400.0])
        assert stats.spread_95_to_min == pytest.approx(stats.p95 - 100.0)

    def test_as_dict_keys(self):
        stats = LatencyStats.from_samples([1.0, 2.0])
        assert set(stats.as_dict()) == {
            "count", "mean", "median", "min", "max", "std", "p90", "p95", "p99", "p99.9",
        }

    def test_empty_samples_rejected(self):
        with pytest.raises(AnalysisError):
            LatencyStats.from_samples([])


class TestCdf:
    def test_cdf_monotone_and_bounded(self):
        samples = np.random.default_rng(1).normal(500.0, 50.0, 5000)
        xs, ys = cdf(samples, points=100)
        assert len(xs) == len(ys) == 100
        assert (np.diff(xs) >= 0).all()
        assert ys[0] == 0.0 and ys[-1] == 1.0

    def test_cdf_median_at_half(self):
        samples = np.arange(1, 1002, dtype=float)
        xs, ys = cdf(samples, points=101)
        index = np.argmin(np.abs(ys - 0.5))
        assert xs[index] == pytest.approx(501.0, abs=10.0)

    def test_cdf_invalid_inputs(self):
        with pytest.raises(AnalysisError):
            cdf([])
        with pytest.raises(AnalysisError):
            cdf([1.0, 2.0], points=1)


class TestHistogramAndFractions:
    def test_histogram_counts_sum_to_samples(self):
        samples = np.random.default_rng(2).uniform(0, 100, 1000)
        edges, counts = histogram(samples, bins=20)
        assert counts.sum() == 1000
        assert len(edges) == 21

    def test_fraction_within(self):
        samples = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert fraction_within(samples, 2.0, 4.0) == pytest.approx(0.6)

    def test_fraction_within_validates_bounds(self):
        with pytest.raises(AnalysisError):
            fraction_within([1.0], 5.0, 1.0)
        with pytest.raises(AnalysisError):
            fraction_within([], 0.0, 1.0)

    def test_percentile_ratio(self):
        samples = np.arange(1, 101, dtype=float)
        assert percentile_ratio(samples, 99, 50) == pytest.approx(
            np.percentile(samples, 99) / np.percentile(samples, 50)
        )

    def test_percentile_ratio_rejects_zero_denominator(self):
        with pytest.raises(AnalysisError):
            percentile_ratio([0.0, 0.0, 1.0], 99, 10)
