"""Tests for the rack-scale fleet surface (repro.bench.fleet, repro.fleet)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench.fleet import FleetParams, FleetResult, run_fleet_benchmark
from repro.bench.nicsim import NicSimParams
from repro.errors import ValidationError
from repro.fleet import (
    DIURNAL_TROUGH,
    FLASH_FACTOR,
    LOAD_PROFILES,
    PLACEMENT_POLICIES,
    canonical_load_profile,
    canonical_placement,
    fleet_host_seed,
    host_demand_shares,
    load_profile_factors,
    place_tenants,
    zipf_tenant_weights,
)
from repro.workloads import SATURATING_LOAD_GBPS

GOLDEN_PATH = Path(__file__).parent.parent / "golden" / "fleet_seeded.json"


class TestTenantPopulation:
    def test_zipf_weights_normalised_and_monotone(self):
        weights = zipf_tenant_weights(16, 1.2)
        assert len(weights) == 16
        assert sum(weights) == pytest.approx(1.0)
        assert all(a > b for a, b in zip(weights, weights[1:]))

    def test_zero_skew_is_uniform(self):
        weights = zipf_tenant_weights(5, 0.0)
        assert all(w == pytest.approx(0.2) for w in weights)

    def test_rejects_bad_population(self):
        with pytest.raises(ValidationError):
            zipf_tenant_weights(0)
        with pytest.raises(ValidationError):
            zipf_tenant_weights(4, -0.5)

    def test_spread_deals_round_robin(self):
        placement = place_tenants(6, 3, "spread")
        assert placement == ((0, 3), (1, 4), (2, 5))

    def test_pack_fills_half_the_rack(self):
        placement = place_tenants(6, 4, "pack")
        # 4 hosts -> 2 packed hosts, blocks of 3; the tail runs clean.
        assert placement == ((0, 1, 2), (3, 4, 5), (), ())

    def test_pack_on_one_host_takes_everything(self):
        assert place_tenants(3, 1, "pack") == ((0, 1, 2),)

    def test_canonical_placement_normalises_case(self):
        assert canonical_placement("  Pack ") == "pack"
        with pytest.raises(ValidationError):
            canonical_placement("optimal")
        assert set(PLACEMENT_POLICIES) == {"spread", "pack"}

    def test_demand_shares_sum_to_one(self):
        weights = zipf_tenant_weights(8)
        for policy in PLACEMENT_POLICIES:
            shares = host_demand_shares(weights, place_tenants(8, 4, policy))
            assert sum(shares) == pytest.approx(1.0)
        # Pack concentrates: its loaded hosts beat every spread host.
        spread = host_demand_shares(weights, place_tenants(8, 4, "spread"))
        pack = host_demand_shares(weights, place_tenants(8, 4, "pack"))
        assert pack[2] == pack[3] == 0.0
        assert max(pack) > max(spread)

    def test_demand_shares_reject_out_of_range_tenants(self):
        with pytest.raises(ValidationError):
            host_demand_shares((0.5, 0.5), ((0, 7),))


class TestLoadProfiles:
    def test_flat_is_all_ones(self):
        assert load_profile_factors("flat", 4) == (1.0, 1.0, 1.0, 1.0)

    def test_diurnal_peaks_at_host_zero_and_bottoms_at_the_trough(self):
        factors = load_profile_factors("diurnal", 8)
        assert factors[0] == pytest.approx(1.0)
        assert factors[4] == pytest.approx(DIURNAL_TROUGH)
        assert all(DIURNAL_TROUGH <= f <= 1.0 for f in factors)

    def test_flash_spikes_only_the_flash_host(self):
        factors = load_profile_factors("flash", 4, flash_host=2)
        assert factors == (1.0, 1.0, FLASH_FACTOR, 1.0)
        with pytest.raises(ValidationError):
            load_profile_factors("flash", 4, flash_host=4)

    def test_canonical_profile_normalises_case(self):
        assert canonical_load_profile(" Diurnal ") == "diurnal"
        with pytest.raises(ValidationError):
            canonical_load_profile("weekend")
        assert set(LOAD_PROFILES) == {"flat", "diurnal", "flash"}


class TestHostSeeding:
    def test_seed_is_a_pure_function_of_the_index(self):
        seeds = [fleet_host_seed(7, index) for index in range(8)]
        assert seeds == [fleet_host_seed(7, index) for index in range(8)]
        assert len(set(seeds)) == 8

    def test_different_fleet_seeds_give_different_substreams(self):
        assert fleet_host_seed(7, 0) != fleet_host_seed(8, 0)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValidationError):
            fleet_host_seed(7, -1)
        with pytest.raises(ValidationError):
            fleet_host_seed(7.5, 0)  # type: ignore[arg-type]


class TestFleetParams:
    def test_round_trips_through_dict(self):
        params = FleetParams(
            hosts=3, placement="pack", tenants=6, load_profile="flash", seed=7
        )
        rebuilt = FleetParams.from_dict(params.as_dict())
        assert rebuilt == params
        assert rebuilt.as_dict() == params.as_dict()
        assert params.as_dict()["kind"] == "FLEET"

    def test_kind_label_and_canonicalisation(self):
        params = FleetParams(hosts=4, placement=" SPREAD ", load_profile="Flat")
        assert params.kind == "FLEET"
        assert params.placement == "spread"
        assert params.load_profile == "flat"
        label = params.label()
        assert "FLEET" in label and "4 hosts" in label
        assert "placement=spread" in label and "profile=flat" in label

    def test_with_replaces_fields(self):
        params = FleetParams(hosts=4, seed=7)
        packed = params.with_(placement="pack")
        assert packed.placement == "pack"
        assert packed.hosts == 4 and packed.seed == 7

    def test_validation_errors(self):
        with pytest.raises(ValidationError):
            FleetParams(hosts=0)
        with pytest.raises(ValidationError):
            FleetParams(hosts=257)
        with pytest.raises(ValidationError):
            FleetParams(placement="optimal")
        with pytest.raises(ValidationError):
            FleetParams(load_profile="weekend")
        with pytest.raises(ValidationError):
            FleetParams(system="i386")
        with pytest.raises(ValidationError):
            FleetParams(arbiter="lottery")
        with pytest.raises(ValidationError):
            FleetParams(tenant_skew=-1.0)
        with pytest.raises(ValidationError):
            FleetParams(victim_packets=0)
        with pytest.raises(ValidationError):
            FleetParams(aggressor_packets=-5)
        with pytest.raises(ValidationError):
            FleetParams(rack_load_gbps=0.0)

    def test_host_aggressor_loads_follow_the_placement(self):
        params = FleetParams(hosts=4, tenants=8, placement="pack", seed=7)
        loads = params.host_aggressor_loads()
        assert len(loads) == 4
        # Pack leaves the tail of the rack aggressor-free.
        assert loads[2] is None and loads[3] is None
        assert all(
            load is None or 0.0 < load <= SATURATING_LOAD_GBPS
            for load in loads
        )
        spread_loads = params.with_(placement="spread").host_aggressor_loads()
        assert all(load is not None for load in spread_loads)

    def test_flash_profile_lands_on_the_host_carrying_tenant_zero(self):
        params = FleetParams(
            hosts=4, tenants=8, load_profile="flash", rack_load_gbps=40.0
        )
        flat = params.with_(load_profile="flat").host_aggressor_loads()
        flash = params.host_aggressor_loads()
        # Tenant 0 spreads onto host 0; only that host's load is scaled.
        assert flash[0] == pytest.approx(min(flat[0] * FLASH_FACTOR,
                                             SATURATING_LOAD_GBPS))
        assert flash[1:] == flat[1:]

    def test_host_params_stream_and_use_derived_seeds(self):
        params = FleetParams(hosts=3, tenants=6, placement="pack", seed=7)
        all_params = params.all_host_params()
        assert len(all_params) == 3
        loads = params.host_aggressor_loads()
        for index, host in enumerate(all_params):
            assert host.seed == fleet_host_seed(7, index)
            assert host.names[0] == "victim"
            assert all(
                device.retain_samples is False for device in host.devices
            )
            if loads[index] is None:
                assert host.names == ("victim",)
            else:
                assert host.names == ("victim", "aggressor")
                aggressor = host.devices[1]
                assert isinstance(aggressor, NicSimParams)
                assert aggressor.offered_load_gbps == pytest.approx(
                    loads[index]
                )
        with pytest.raises(ValidationError):
            params.host_params(3)

    def test_host_names_are_stable(self):
        assert FleetParams(hosts=3).host_names() == ("host0", "host1", "host2")


class TestFleetResultMethods:
    """Exercise the result API on the checked-in golden record (no sim)."""

    @pytest.fixture(scope="class")
    def golden_result(self) -> FleetResult:
        golden = json.loads(GOLDEN_PATH.read_text())
        return FleetResult.from_dict(golden["result"])

    def test_host_lookup(self, golden_result):
        assert golden_result.host("host1").name == "host1"
        with pytest.raises(ValidationError):
            golden_result.host("host9")

    def test_slo_violation_fraction_moves_with_the_threshold(
        self, golden_result
    ):
        tails = sorted(
            host.victim_latency.p99 for host in golden_result.hosts
        )
        below_all = golden_result.slo_violation_fraction(tails[-1] + 1.0)
        above_all = golden_result.slo_violation_fraction(tails[0] / 2.0)
        assert below_all == 0.0
        assert above_all == 1.0
        middle = (tails[0] + tails[-1]) / 2.0
        fraction = golden_result.slo_violation_fraction(middle)
        assert 0.0 < fraction < 1.0
        names = golden_result.violating_hosts(middle)
        assert len(names) == round(fraction * len(golden_result.hosts))
        with pytest.raises(ValidationError):
            golden_result.slo_violation_fraction(0.0)

    def test_fleet_latency_count_spans_every_host(self, golden_result):
        assert golden_result.fleet_latency.count == sum(
            host.victim_latency.count for host in golden_result.hosts
        )
        assert golden_result.kind == "FLEET"

    def test_aggressor_free_hosts_record_no_load(self, golden_result):
        # The golden record is a packed rack: host0 is loaded, the tail clean.
        assert golden_result.host("host0").aggressor_load_gbps is not None
        assert golden_result.host("host2").aggressor_load_gbps is None


class TestSingleHostFleet:
    def test_one_host_rack_runs_and_reduces(self):
        params = FleetParams(
            hosts=1,
            tenants=2,
            victim_packets=100,
            aggressor_packets=200,
            rack_load_gbps=20.0,
            seed=3,
        )
        result = run_fleet_benchmark(params)
        assert len(result.hosts) == 1
        assert result.fleet_latency.count == result.hosts[0].victim_latency.count
        assert result.fleet_latency.sketch is not None
