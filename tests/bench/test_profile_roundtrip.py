"""Engine-profile serialisation: round-trips and result attachment."""

from __future__ import annotations

from repro.bench.contention import (
    ContentionParams,
    noisy_neighbour_pair,
    run_contention_benchmark,
)
from repro.bench.nicsim import NicSimParams, run_nicsim_benchmark
from repro.sim.engine import EngineProfile
from repro.sim.fabric import ContentionResult
from repro.sim.nicsim import NicSimResult


def _small_nicsim() -> NicSimParams:
    return NicSimParams(
        model="dpdk",
        workload="fixed",
        packet_size=512,
        packets=60,
        seed=3,
    )


def _small_contention(**overrides) -> ContentionParams:
    victim, aggressor = noisy_neighbour_pair(
        victim_packets=60, aggressor_packets=120
    )
    return ContentionParams(
        devices=(victim, aggressor),
        names=("victim", "aggressor"),
        seed=5,
        **overrides,
    )


class TestEngineProfileRoundTrip:
    def test_as_dict_from_dict_identity(self) -> None:
        profile = EngineProfile(
            label="test run", build_s=0.01, events_s=0.2, stats_s=0.005,
            events=1234,
        )
        assert EngineProfile.from_dict(profile.as_dict()) == profile

    def test_derived_keys_are_recomputed(self) -> None:
        profile = EngineProfile(
            label="x", build_s=1.0, events_s=2.0, stats_s=3.0, events=10
        )
        record = profile.as_dict()
        assert record["total_s"] == 6.0
        assert record["events_per_sec"] == 5.0
        rebuilt = EngineProfile.from_dict(record)
        assert rebuilt.total_s == 6.0
        assert rebuilt.events_per_sec == 5.0


class TestProfileAttachment:
    def test_nicsim_attaches_profile_when_profiled(self) -> None:
        sink: list = []
        result = run_nicsim_benchmark(_small_nicsim(), profile_sink=sink)
        assert len(sink) == 1
        assert result.profile is sink[0]
        rebuilt = NicSimResult.from_dict(result.as_dict())
        assert rebuilt.profile == result.profile

    def test_nicsim_omits_profile_by_default(self) -> None:
        result = run_nicsim_benchmark(_small_nicsim())
        assert result.profile is None
        assert "profile" not in result.as_dict()

    def test_contend_attaches_profile_via_params_flag(self) -> None:
        result = run_contention_benchmark(
            _small_contention(engine_profile=True)
        )
        assert result.profile is not None
        rebuilt = ContentionResult.from_dict(result.as_dict())
        assert rebuilt.profile == result.profile

    def test_contend_omits_profile_by_default(self) -> None:
        result = run_contention_benchmark(_small_contention())
        assert result.profile is None
        assert "profile" not in result.as_dict()

    def test_profile_flag_does_not_perturb_results(self) -> None:
        import json

        plain = run_contention_benchmark(_small_contention()).as_dict()
        profiled = run_contention_benchmark(
            _small_contention(engine_profile=True)
        ).as_dict()
        # engine_profile attaches the (wall-clock, run-varying) profile
        # but changes nothing about the simulation itself.
        profiled.pop("profile")
        assert json.dumps(plain, sort_keys=True) == json.dumps(
            profiled, sort_keys=True
        )


class TestContentionParamsRoundTrip:
    def test_engine_profile_field_round_trips(self) -> None:
        params = _small_contention(engine_profile=True)
        record = params.as_dict()
        assert record["engine_profile"] is True
        assert ContentionParams.from_dict(record) == params

    def test_engine_profile_omitted_when_off(self) -> None:
        params = _small_contention()
        record = params.as_dict()
        assert "engine_profile" not in record
        assert ContentionParams.from_dict(record) == params
