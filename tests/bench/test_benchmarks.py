"""End-to-end tests of the latency/bandwidth benchmark entry points and runner."""

import pytest

from repro.bench.bandwidth import bw_rd, bw_rdwr, bw_wr, run_bandwidth_benchmark
from repro.bench.latency import lat_rd, lat_wrrd, run_latency_benchmark
from repro.bench.params import BenchmarkKind, BenchmarkParams
from repro.bench.runner import BenchmarkRunner, full_suite_params
from repro.errors import BenchmarkError
from repro.units import KIB, MIB

FAST = {"transactions": 400}


class TestLatencyEntryPoints:
    def test_lat_rd_returns_latency_result(self):
        result = lat_rd(64, **FAST)
        assert result.latency is not None
        assert result.bandwidth_gbps is None
        assert 300 <= result.latency.median <= 1000

    def test_lat_wrrd_slower_than_lat_rd(self):
        rd = lat_rd(64, seed=11, **FAST)
        wrrd = lat_wrrd(64, seed=11, **FAST)
        assert wrrd.latency.median > rd.latency.median

    def test_cold_cache_slower_than_warm(self):
        warm = lat_rd(64, cache_state="host_warm", seed=7, **FAST)
        cold = lat_rd(64, cache_state="cold", seed=7, **FAST)
        assert cold.latency.median > warm.latency.median

    def test_wrong_kind_rejected(self):
        params = BenchmarkParams(kind="BW_RD", transfer_size=64, transactions=10)
        with pytest.raises(BenchmarkError):
            run_latency_benchmark(params)

    def test_keep_samples(self):
        params = BenchmarkParams(kind="LAT_RD", transfer_size=64, transactions=50)
        result = run_latency_benchmark(params, keep_samples=True)
        assert result.samples_ns is not None and len(result.samples_ns) == 50


class TestBandwidthEntryPoints:
    def test_bw_rd_reports_bandwidth(self):
        result = bw_rd(256, **FAST)
        assert result.bandwidth_gbps is not None
        assert 0 < result.bandwidth_gbps < 60

    def test_bw_wr_small_transfers_issue_limited(self):
        small = bw_wr(64, **FAST)
        large = bw_wr(1024, **FAST)
        assert small.bandwidth_gbps < large.bandwidth_gbps

    def test_bw_rdwr_most_constrained_at_small_sizes(self):
        rd = bw_rd(64, seed=3, **FAST)
        rdwr = bw_rdwr(64, seed=3, **FAST)
        assert rdwr.bandwidth_gbps < rd.bandwidth_gbps

    def test_wrong_kind_rejected(self):
        params = BenchmarkParams(kind="LAT_RD", transfer_size=64, transactions=10)
        with pytest.raises(BenchmarkError):
            run_bandwidth_benchmark(params)

    def test_iommu_flag_propagates(self):
        off = bw_rd(64, window_size=16 * MIB, iommu_enabled=False,
                    system="NFP6000-BDW", **FAST)
        on = bw_rd(64, window_size=16 * MIB, iommu_enabled=True,
                   system="NFP6000-BDW", **FAST)
        assert on.bandwidth_gbps < off.bandwidth_gbps
        assert on.iotlb_miss_rate > 0.5


class TestRunner:
    def test_runner_caches_hosts_per_configuration(self):
        runner = BenchmarkRunner()
        a = BenchmarkParams(kind="BW_RD", transfer_size=64, transactions=50)
        b = a.with_(transfer_size=128)
        c = a.with_(iommu_enabled=True)
        runner.run(a)
        runner.run(b)
        runner.run(c)
        assert len(runner._hosts) == 2

    def test_sweep_transfer_size_orders_results(self):
        runner = BenchmarkRunner()
        base = BenchmarkParams(kind="BW_WR", transfer_size=64, transactions=200)
        results = runner.sweep_transfer_size(base, [64, 256, 1024])
        assert [r.params.transfer_size for r in results] == [64, 256, 1024]

    def test_sweep_window_size(self):
        runner = BenchmarkRunner()
        base = BenchmarkParams(kind="BW_RD", transfer_size=64, transactions=200)
        results = runner.sweep_window_size(base, [4 * KIB, 64 * KIB])
        assert [r.params.window_size for r in results] == [4 * KIB, 64 * KIB]

    def test_sweep_cache_state(self):
        runner = BenchmarkRunner()
        base = BenchmarkParams(kind="LAT_RD", transfer_size=64, transactions=200)
        results = runner.sweep_cache_state(base)
        assert len(results) == 2

    def test_progress_callback_invoked(self):
        calls = []
        runner = BenchmarkRunner(progress=lambda i, n, p: calls.append((i, n)))
        base = BenchmarkParams(kind="BW_WR", transfer_size=64, transactions=50)
        runner.run_all([base, base.with_(transfer_size=128)])
        assert calls == [(0, 2), (1, 2)]

    def test_save_json_and_csv(self, tmp_path):
        runner = BenchmarkRunner()
        results = [runner.run(BenchmarkParams(kind="BW_WR", transfer_size=64, transactions=50))]
        runner.save(results, tmp_path / "r.json", fmt="json")
        runner.save(results, tmp_path / "r.csv", fmt="csv")
        assert (tmp_path / "r.json").exists()
        assert (tmp_path / "r.csv").exists()
        with pytest.raises(BenchmarkError):
            runner.save(results, tmp_path / "r.xml", fmt="xml")

    def test_full_suite_params_cross_product(self):
        params = full_suite_params(
            transfer_sizes=(64, 128),
            windows=(4 * KIB, 64 * KIB),
            cache_states=("cold",),
            kinds=(BenchmarkKind.BW_RD, BenchmarkKind.LAT_RD),
        )
        assert len(params) == 8
        assert all(p.window_size >= p.transfer_size for p in params)

    def test_full_suite_skips_windows_smaller_than_transfer(self):
        params = full_suite_params(
            transfer_sizes=(8 * KIB,),
            windows=(4 * KIB,),
            cache_states=("cold",),
            kinds=(BenchmarkKind.BW_RD,),
        )
        assert params == []
