"""Unit tests for the control runtime: steering, windows, actuators.

The runtime is exercised against the real :class:`EventLoop` but with
toy queue/coupling stand-ins, pinning the wiring contracts the fabric
simulator relies on: observers feed per-queue windows, ticks freeze
per-window deltas, actuators log exactly the actions that changed
something, and the tick chain dies with the traffic.
"""

import math
from functools import partial

import pytest

from repro.control import (
    Actuators,
    ControlAction,
    ControlRuntime,
    RssSteering,
    StaticController,
    identity_table,
    steering_table_length,
)
from repro.errors import ValidationError
from repro.sim.engine import EventLoop

WINDOW_NS = 1000.0


class FakeRing:
    def __init__(self, depth=8, occupancy=2):
        self.depth = depth
        self.occupancy = occupancy


class FakeQueue:
    """A TX datapath stand-in: observer slot, ring, arrival log."""

    def __init__(self):
        self.observer = None
        self.ring = FakeRing()
        self.arrivals = []

    def on_arrival(self, now, size):
        self.arrivals.append((now, size))
        if self.observer is not None:
            self.observer(float(size))  # latency := size, keeps tests legible


class FakeCoupling:
    def __init__(self):
        self.counters = (0, 0)

    def descriptor_counters(self):
        return self.counters


class RecordingController(StaticController):
    name = "recording"

    def __init__(self):
        self.ticks = []

    def tick(self, now_ns, devices, actuators):
        self.ticks.append((now_ns, devices))


def build_runtime(controller, *, queues=1):
    loop = EventLoop()
    runtime = ControlRuntime(controller, WINDOW_NS, loop)
    tx = [FakeQueue() for _ in range(queues)]
    steering = RssSteering(tx, identity_table(queues))
    runtime.add_device("dev0", 0, tx, [steering], FakeCoupling())
    return loop, runtime, tx, steering


class TestSteeringTable:
    def test_identity_table_matches_direct_hashing(self):
        for num_queues in (1, 2, 3, 4, 8, 64, 100):
            length = steering_table_length(num_queues)
            table = identity_table(num_queues)
            assert len(table) == length
            for bucket in range(length):
                assert table[bucket] == bucket % num_queues

    def test_dispatch_routes_and_counts(self):
        queues = [FakeQueue(), FakeQueue()]
        steering = RssSteering(queues, [0, 1, 1, 0])
        steering.dispatch(1, 10.0, 64)
        steering.dispatch(1, 20.0, 64)
        steering.dispatch(3, 30.0, 64)
        assert queues[1].arrivals == [(10.0, 64), (20.0, 64)]
        assert queues[0].arrivals == [(30.0, 64)]
        assert steering.window_buckets == [0, 2, 0, 1]
        steering.reset_window()
        assert steering.window_buckets == [0, 0, 0, 0]

    def test_set_table_rewrites_in_place_and_validates(self):
        queues = [FakeQueue(), FakeQueue()]
        steering = RssSteering(queues, [0, 1])
        steering.set_table([1, 0])
        steering.dispatch(0, 1.0, 64)
        assert queues[1].arrivals == [(1.0, 64)]
        with pytest.raises(ValidationError):
            steering.set_table([0])  # length is fixed
        with pytest.raises(ValidationError):
            steering.set_table([0, 2])  # queue out of range
        with pytest.raises(ValidationError):
            RssSteering(queues, [0, 5])


class TestRuntimeTicks:
    def test_windows_carry_per_window_deltas(self):
        controller = RecordingController()
        loop, runtime, tx, steering = build_runtime(controller)
        loop.feed_many(
            (100.0 * (i + 1), partial(steering.dispatch, i % 4), 64)
            for i in range(12)
        )
        runtime.start()
        loop.run()
        assert runtime.windows_ticked >= 2
        first = controller.ticks[0][1][0]
        assert first.device == "dev0"
        # Arrivals at 100..1000 land before the t=1000 tick (the arrival
        # was fed first, and same-time events pop FIFO).
        assert first.count == 10
        assert first.window_ns == WINDOW_NS
        assert first.bucket_counts is not None
        assert sum(first.bucket_counts) == 10
        second = controller.ticks[1][1][0]
        assert second.count == 2  # 1100, 1200 (delta, not cumulative)
        assert second.window_index == 1

    def test_tick_chain_dies_with_the_traffic(self):
        controller = RecordingController()
        loop, runtime, tx, _ = build_runtime(controller)
        loop.feed_many([(50.0, tx[0].on_arrival, 64)])
        runtime.start()
        loop.run()
        # One tick fires at t=1000 (the loop still held it); with no
        # further traffic the chain must not self-perpetuate.
        assert runtime.windows_ticked == 1
        assert loop.peek_time() == math.inf

    def test_descriptor_hit_rate_is_a_window_delta(self):
        controller = RecordingController()
        loop, runtime, tx, _ = build_runtime(controller)
        coupling = runtime._devices[0].coupling
        coupling.counters = (10, 5)
        loop.feed_many([(100.0, tx[0].on_arrival, 64),
                        (1100.0, tx[0].on_arrival, 64)])
        runtime.start()
        loop.run()
        assert controller.ticks[0][1][0].descriptor_hit_rate == 0.5
        # No new accesses in window 2: hit rate is undefined, not 0/0.
        assert controller.ticks[1][1][0].descriptor_hit_rate is None

    def test_port_stats_fold_into_fabric_share(self):
        controller = RecordingController()
        loop, runtime, tx, _ = build_runtime(controller)
        totals = iter([(100.0, 800.0), (150.0, 900.0)])
        last = {}

        def source(index):
            last[index] = next(totals, last.get(index, (0.0, 0.0)))
            return last[index]

        runtime.bind_port_stats(source)
        loop.feed_many([(100.0, tx[0].on_arrival, 64),
                        (1100.0, tx[0].on_arrival, 64)])
        runtime.start()
        loop.run()
        first = controller.ticks[0][1][0]
        assert first.wait_ns_delta == 100.0
        assert first.busy_ns_delta == 800.0
        assert first.fabric_share == pytest.approx(0.8)
        second = controller.ticks[1][1][0]
        assert second.wait_ns_delta == 50.0
        assert second.busy_ns_delta == pytest.approx(100.0)

    def test_devices_must_register_in_index_order(self):
        loop = EventLoop()
        runtime = ControlRuntime(StaticController(), WINDOW_NS, loop)
        with pytest.raises(ValidationError):
            runtime.add_device("dev1", 1, [FakeQueue()], [], FakeCoupling())

    def test_window_must_be_positive(self):
        with pytest.raises(ValidationError):
            ControlRuntime(StaticController(), 0.0, EventLoop())


class TestActuators:
    def test_unbound_actuators_report_unavailable(self):
        loop, runtime, _, _ = build_runtime(StaticController())
        actuators = runtime.actuators
        assert actuators.weights() is None
        assert actuators.ddio_shares() is None
        assert not actuators.set_weights((2.0,), device="dev0", reason="x")
        assert not actuators.set_ddio_shares((2.0,), device="dev0", reason="x")
        assert runtime.actions == []

    def test_weights_apply_to_every_sink_and_log_once(self):
        loop, runtime, _, _ = build_runtime(StaticController())
        applied = []
        runtime.bind_weights(
            (1.0, 1.0),
            [lambda w: applied.append(("ingress", tuple(w))),
             lambda w: applied.append(("walker", tuple(w)))],
        )
        actuators = runtime.actuators
        assert actuators.set_weights((4.0, 1.0), device="dev0", reason="r")
        assert applied == [("ingress", (4.0, 1.0)), ("walker", (4.0, 1.0))]
        assert actuators.weights() == (4.0, 1.0)
        [action] = runtime.actions
        assert action.actuator == "weights"
        assert action.before == (1.0, 1.0)
        assert action.after == (4.0, 1.0)

    def test_no_op_actuations_are_not_logged(self):
        loop, runtime, _, steering = build_runtime(StaticController())
        runtime.bind_weights((1.0,), [lambda w: None])
        actuators = runtime.actuators
        assert not actuators.set_weights((1.0,), device="dev0", reason="same")
        assert not actuators.set_rss_table(0, steering.table, reason="same")
        assert runtime.actions == []

    def test_rss_actuation_rewrites_every_direction(self):
        loop = EventLoop()
        runtime = ControlRuntime(StaticController(), WINDOW_NS, loop)
        tx = [FakeQueue(), FakeQueue()]
        rx = [FakeQueue(), FakeQueue()]
        tx_steer = RssSteering(tx, identity_table(2))
        rx_steer = RssSteering(rx, identity_table(2))
        runtime.add_device("dev0", 0, tx, [tx_steer, rx_steer], FakeCoupling())
        new_table = [0] * steering_table_length(2)
        assert runtime.actuators.set_rss_table(0, new_table, reason="pin")
        assert tx_steer.table == new_table
        assert rx_steer.table == new_table
        assert runtime.actuators.rss_table(0) == tuple(new_table)
        [action] = runtime.actions
        assert action.actuator == "rss"

    def test_ddio_actuation_repartitions_and_validates(self):
        loop, runtime, _, _ = build_runtime(StaticController())
        seen = []
        runtime.bind_ddio((1.0, 1.0), lambda shares: seen.append(tuple(shares)))
        actuators = runtime.actuators
        with pytest.raises(ValidationError):
            actuators.set_ddio_shares((1.0,), device="dev0", reason="short")
        with pytest.raises(ValidationError):
            actuators.set_ddio_shares((1.0, -2.0), device="dev0", reason="neg")
        assert actuators.set_ddio_shares((2.0, 1.0), device="dev0", reason="up")
        assert seen == [(2.0, 1.0)]
        assert actuators.ddio_shares() == (2.0, 1.0)

    def test_weight_vector_length_is_validated(self):
        loop, runtime, _, _ = build_runtime(StaticController())
        runtime.bind_weights((1.0, 1.0), [lambda w: None])
        with pytest.raises(ValidationError):
            runtime.actuators.set_weights((1.0,), device="dev0", reason="x")


class TestControlActionRecord:
    def test_round_trip(self):
        action = ControlAction(
            time_ns=50_000.0,
            device="victim",
            actuator="weights",
            reason="wait-dominated",
            before=(1.0, 16.0),
            after=(2.0, 16.0),
        )
        record = action.as_dict()
        assert record["before"] == [1.0, 16.0]
        assert ControlAction.from_dict(record) == action

    def test_unknown_actuator_rejected(self):
        with pytest.raises(ValidationError):
            ControlAction(
                time_ns=0.0, device="d", actuator="voltage",
                reason="r", before=(1.0,), after=(2.0,),
            )
