"""End-to-end tests: the control plane threaded through the fabric.

Small (sub-second) controlled contention runs pinning the wiring
contracts: parameter validation and serialisation, the action log riding
on the result, live weight actuation actually changing the victim's
outcome, and the static default staying free of controller keys (the
record back-compat the goldens rely on).
"""

from __future__ import annotations

import pytest

from repro.bench.contention import ContentionParams, run_contention_benchmark
from repro.bench.nicsim import NicSimParams
from repro.errors import ValidationError
from repro.sim.fabric import (
    ContentionResult,
    FabricConfig,
    FabricDevice,
    FabricSimulator,
)
from repro.units import KIB, MIB
from repro.workloads import SingleHotFlow, build_workload


def _pair(**overrides) -> ContentionParams:
    victim = NicSimParams(
        model="dpdk",
        workload="fixed",
        packet_size=512,
        offered_load_gbps=5.0,
        packets=200,
        ring_depth=64,
        payload_window=256 * KIB,
    )
    aggressor = NicSimParams(
        model="kernel", workload="imix", packets=1200, payload_window=16 * MIB
    )
    fields = dict(
        devices=(victim, aggressor),
        names=("victim", "aggressor"),
        system="NFP6000-HSW",
        iommu_enabled=True,
        arbiter="wrr",
        weights=(1.0, 16.0),
    )
    fields.update(overrides)
    return ContentionParams(**fields)


class TestControllerParams:
    def test_unknown_controller_rejected(self):
        with pytest.raises(ValidationError):
            FabricConfig(controller="pid")
        with pytest.raises(ValidationError):
            _pair(controller="pid")

    def test_window_requires_a_live_controller(self):
        with pytest.raises(ValidationError):
            FabricConfig(controller="static", control_window_ns=50_000.0)
        with pytest.raises(ValidationError):
            _pair(control_window_ns=50_000.0)

    def test_window_must_be_positive(self):
        with pytest.raises(ValidationError):
            FabricConfig(controller="threshold", control_window_ns=0.0)
        with pytest.raises(ValidationError):
            _pair(controller="threshold", control_window_ns=-1.0)

    def test_label_and_round_trip_carry_controller_fields(self):
        params = _pair(controller="threshold", control_window_ns=20_000.0)
        assert "controller=threshold" in params.label()
        assert "window=20000ns" in params.label()
        rebuilt = ContentionParams.from_dict(params.as_dict())
        assert rebuilt.controller == "threshold"
        assert rebuilt.control_window_ns == 20_000.0

    def test_static_params_emit_no_controller_keys(self):
        record = _pair().as_dict()
        assert "controller" not in record
        assert "control_window_ns" not in record
        rebuilt = ContentionParams.from_dict(record)
        assert rebuilt.controller == "static"
        assert rebuilt.control_window_ns is None


class TestControlledRuns:
    @pytest.fixture(scope="class")
    def threshold_run(self) -> ContentionResult:
        return run_contention_benchmark(
            _pair(controller="threshold", control_window_ns=20_000.0)
        )

    def test_mistuned_weights_draw_boost_actions(self, threshold_run):
        actions = threshold_run.control_actions
        assert len(actions) > 0
        boosts = [a for a in actions if a.actuator == "weights"]
        assert boosts, "expected the victim's weight to be boosted"
        first = boosts[0]
        assert first.device == "victim"
        assert first.after[0] > first.before[0]
        assert first.before == (1.0, 16.0)

    def test_result_round_trips_with_the_action_log(self, threshold_run):
        record = threshold_run.as_dict()
        assert record["controller"] == "threshold"
        assert record["control_window_ns"] == 20_000.0
        assert len(record["control_actions"]) == len(
            threshold_run.control_actions
        )
        rebuilt = ContentionResult.from_dict(record)
        assert rebuilt == threshold_run

    def test_threshold_beats_the_mistuned_static_victim(self, threshold_run):
        static = run_contention_benchmark(_pair())
        static_p99 = static.device("victim").result.tx.latency.p99
        controlled_p99 = (
            threshold_run.device("victim").result.tx.latency.p99
        )
        assert controlled_p99 < static_p99

    def test_static_result_emits_no_controller_keys(self):
        record = run_contention_benchmark(_pair()).as_dict()
        assert "controller" not in record
        assert "control_actions" not in record

    def test_aimd_also_runs_and_logs(self):
        result = run_contention_benchmark(
            _pair(controller="aimd", control_window_ns=20_000.0)
        )
        assert result.controller == "aimd"
        assert len(result.control_actions) > 0

    def test_default_window_applies_when_unset(self):
        params = _pair(controller="threshold")
        assert params.control_window_ns is None
        result = run_contention_benchmark(params)
        assert result.control_window_ns == 50_000.0


class TestHotFlowSteering:
    def test_controller_rewrites_the_indirection_table_live(self):
        workload = build_workload(
            "fixed", size=512, load_gbps=42.0
        ).with_(flows=SingleHotFlow(flows=64, hot_fraction=0.75))
        device = FabricDevice(
            workload=workload,
            model="dpdk",
            packets=1500,
            ring_depth=32,
            num_queues=2,
        )
        fabric = FabricConfig(
            controller="threshold", control_window_ns=20_000.0
        )
        result = FabricSimulator([device], fabric).run()
        rss_actions = [
            a for a in result.control_actions if a.actuator == "rss"
        ]
        assert rss_actions, "expected the hot flow to trigger a re-steer"
        action = rss_actions[0]
        assert len(action.after) == len(action.before)
        assert action.after != action.before
        static = FabricSimulator([device], FabricConfig()).run()
        controlled_p99 = result.devices[0].result.tx.latency.p99
        static_p99 = static.devices[0].result.tx.latency.p99
        assert controlled_p99 < static_p99
