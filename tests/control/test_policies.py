"""Unit tests for the control policies, on hand-built observations.

Policies consume immutable :class:`DeviceWindow` records and talk back
only through the actuator interface, so everything here runs without a
simulator: windows are synthesised, the actuators are a recorder.
"""

import pytest

from repro.control import (
    CONTROL_POLICIES,
    AimdController,
    StaticController,
    ThresholdController,
    build_controller,
)
from repro.control.observations import DeviceWindow, QueueWindow
from repro.control.policies import BULK_FABRIC_SHARE, MIN_WINDOW_COUNT
from repro.errors import ValidationError
from repro.stats import QuantileSketch, StreamingMoments, WindowSnapshot

WINDOW_NS = 50_000.0


def make_window(
    *,
    device="victim",
    index=0,
    window_index=0,
    values=(1000.0,) * 20,
    ring_fill=0.2,
    hit_rate=None,
    wait_fraction=0.0,
    fabric_share=0.0,
    bucket_counts=None,
    rss_table=None,
    num_queues=None,
):
    """A DeviceWindow whose derived signals hit the requested values."""
    sketch = QuantileSketch()
    moments = StreamingMoments()
    for value in values:
        sketch.add(value)
        moments.push(value)
    count = sketch.count
    mean = sketch.mean if count else 0.0
    snapshot = WindowSnapshot(index=window_index, sketch=sketch, moments=moments)
    if num_queues is None:
        num_queues = 1 + max(rss_table) if rss_table else 1
    return DeviceWindow(
        device=device,
        index=index,
        window_index=window_index,
        queues=tuple(
            QueueWindow(queue_index=q, snapshot=snapshot, ring_fill=ring_fill)
            for q in range(num_queues)
        ),
        sketch=sketch,
        moments=moments,
        ring_fill=ring_fill,
        descriptor_hit_rate=hit_rate,
        wait_ns_delta=wait_fraction * mean * count,
        busy_ns_delta=fabric_share * WINDOW_NS,
        window_ns=WINDOW_NS,
        bucket_counts=bucket_counts,
        rss_table=rss_table,
    )


class RecordingActuators:
    """Actuator stand-in: applies everything, records every call."""

    def __init__(self, *, weights=None, shares=None, tables=None):
        self._weights = weights
        self._shares = shares
        self._tables = dict(tables or {})
        self.calls = []

    def weights(self):
        return self._weights

    def set_weights(self, weights, *, device, reason):
        self.calls.append(("weights", tuple(weights), device, reason))
        self._weights = tuple(weights)
        return True

    def rss_table(self, device_index):
        return self._tables.get(device_index)

    def set_rss_table(self, device_index, table, *, reason):
        self.calls.append(("rss", device_index, tuple(table), reason))
        self._tables[device_index] = tuple(table)
        return True

    def ddio_shares(self):
        return self._shares

    def set_ddio_shares(self, shares, *, device, reason):
        self.calls.append(("ddio", tuple(shares), device, reason))
        self._shares = tuple(shares)
        return True

    def of_kind(self, kind):
        return [call for call in self.calls if call[0] == kind]


class TestSignals:
    def test_fabric_share_and_wait_fraction_land_where_requested(self):
        window = make_window(wait_fraction=0.4, fabric_share=1.2)
        assert window.fabric_share == pytest.approx(1.2)
        assert window.wait_fraction == pytest.approx(0.4)

    def test_empty_window_signals_are_defined(self):
        window = make_window(values=())
        assert window.count == 0
        assert window.p99_ns is None
        assert window.mean_ns is None
        assert window.wait_fraction == 0.0
        assert window.queues[0].p99_ns is None


class TestStaticController:
    def test_never_actuates(self):
        controller = StaticController()
        actuators = RecordingActuators(weights=(1.0, 1.0))
        for tick in range(5):
            controller.tick(
                tick * WINDOW_NS,
                [make_window(wait_fraction=0.9, window_index=tick)],
                actuators,
            )
        assert actuators.calls == []


class TestThresholdController:
    def test_boosts_after_patience_then_keeps_escalating(self):
        controller = ThresholdController(patience=2)
        actuators = RecordingActuators(weights=(1.0, 16.0))
        for tick in range(3):
            controller.tick(
                tick * WINDOW_NS,
                [make_window(wait_fraction=0.9, window_index=tick)],
                actuators,
            )
        boosts = actuators.of_kind("weights")
        # Nothing for the first window (patience), then one boost per
        # violating window — no streak reset after acting.
        assert [call[1] for call in boosts] == [(2.0, 16.0), (4.0, 16.0)]
        assert "wait-dominated" in boosts[0][3]

    def test_bulk_device_is_never_boosted(self):
        controller = ThresholdController(patience=1)
        actuators = RecordingActuators(weights=(1.0, 1.0))
        bulk = make_window(
            device="aggressor", index=1,
            wait_fraction=0.9, fabric_share=BULK_FABRIC_SHARE + 0.1,
        )
        for tick in range(4):
            controller.tick(tick * WINDOW_NS, [bulk], actuators)
        assert actuators.calls == []

    def test_low_count_window_freezes_the_streak(self):
        controller = ThresholdController(patience=2)
        actuators = RecordingActuators(weights=(1.0, 1.0))
        thin = make_window(
            values=(1000.0,) * (MIN_WINDOW_COUNT - 1), wait_fraction=0.9
        )
        for tick in range(4):
            controller.tick(tick * WINDOW_NS, [thin], actuators)
        assert actuators.calls == []

    def test_dead_band_holds_the_boost(self):
        controller = ThresholdController(patience=1)
        actuators = RecordingActuators(weights=(1.0, 1.0))
        controller.tick(0.0, [make_window(wait_fraction=0.9)], actuators)
        assert len(actuators.of_kind("weights")) == 1
        # In the dead band (between clear 0.10 and violate 0.35) the
        # violating streak holds, so escalation continues; comfort only
        # begins below the clear threshold.
        controller.tick(
            WINDOW_NS, [make_window(wait_fraction=0.2, window_index=1)],
            actuators,
        )
        assert len(actuators.of_kind("weights")) == 2

    def test_decays_back_to_base_when_comfortable(self):
        controller = ThresholdController(patience=1)
        actuators = RecordingActuators(weights=(1.0, 1.0))
        controller.tick(0.0, [make_window(wait_fraction=0.9)], actuators)
        assert actuators._weights == (2.0, 1.0)
        for tick in range(1, 4):
            controller.tick(
                tick * WINDOW_NS,
                [make_window(wait_fraction=0.01, window_index=tick)],
                actuators,
            )
        # Decayed back to the base weight and stopped (no undershoot).
        assert actuators._weights == (1.0, 1.0)
        decays = [
            call for call in actuators.of_kind("weights")
            if "decaying" in call[3]
        ]
        assert len(decays) == 1

    def test_weight_cap_is_respected(self):
        controller = ThresholdController(patience=1, max_weight=4.0)
        actuators = RecordingActuators(weights=(1.0, 1.0))
        for tick in range(6):
            controller.tick(
                tick * WINDOW_NS,
                [make_window(wait_fraction=0.9, window_index=tick)],
                actuators,
            )
        assert actuators._weights == (4.0, 1.0)

    def test_hot_queue_pathology_triggers_full_respread(self):
        controller = ThresholdController(patience=2)
        actuators = RecordingActuators()
        table = (0, 0, 0, 1)
        counts = (90, 5, 5, 10)  # bucket 0 is the elephant, queue 0 hot
        windows = [
            make_window(
                window_index=tick,
                values=(1000.0,) * 110,
                bucket_counts=counts,
                rss_table=table,
            )
            for tick in range(2)
        ]
        controller.tick(0.0, [windows[0]], actuators)
        assert actuators.of_kind("rss") == []  # patience not yet met
        controller.tick(WINDOW_NS, [windows[1]], actuators)
        moves = actuators.of_kind("rss")
        assert len(moves) == 1
        _, device_index, new_table, reason = moves[0]
        assert device_index == 0
        # The elephant keeps queue 0; both mice buckets moved off it.
        assert new_table[0] == 0
        assert new_table[1] != 0 and new_table[2] != 0
        assert "isolating bucket 0" in reason

    def test_isolated_elephant_is_left_alone(self):
        controller = ThresholdController(patience=1)
        actuators = RecordingActuators()
        window = make_window(
            values=(1000.0,) * 100,
            bucket_counts=(90, 5, 5),
            rss_table=(0, 1, 1),  # elephant already alone on queue 0
        )
        for tick in range(3):
            controller.tick(tick * WINDOW_NS, [window], actuators)
        assert actuators.of_kind("rss") == []

    def test_ddio_boost_requires_low_hit_rate_and_violation(self):
        controller = ThresholdController(patience=1)
        actuators = RecordingActuators(weights=(1.0, 1.0), shares=(1.0, 1.0))
        controller.tick(
            0.0, [make_window(wait_fraction=0.9, hit_rate=0.3)], actuators
        )
        boosts = actuators.of_kind("ddio")
        assert len(boosts) == 1
        assert boosts[0][1][0] > 1.0
        # Healthy hit rate: no ddio action even while violating.
        calm = RecordingActuators(weights=(1.0, 1.0), shares=(1.0, 1.0))
        fresh = ThresholdController(patience=1)
        fresh.tick(
            0.0, [make_window(wait_fraction=0.9, hit_rate=0.95)], calm
        )
        assert calm.of_kind("ddio") == []

    def test_validates_parameters(self):
        with pytest.raises(ValidationError):
            ThresholdController(patience=0)
        with pytest.raises(ValidationError):
            ThresholdController(boost=1.0)


class TestAimdController:
    def test_additive_increase_multiplicative_decrease(self):
        controller = AimdController()
        actuators = RecordingActuators(weights=(1.0, 1.0))
        for tick in range(3):
            controller.tick(
                tick * WINDOW_NS,
                [make_window(wait_fraction=0.9, window_index=tick)],
                actuators,
            )
        assert actuators._weights == (4.0, 1.0)  # +1 per violating window
        controller.tick(
            3 * WINDOW_NS, [make_window(wait_fraction=0.01, window_index=3)],
            actuators,
        )
        assert actuators._weights == (2.0, 1.0)  # *0.5, floored at base later
        reasons = [call[3] for call in actuators.of_kind("weights")]
        assert any("additive increase" in reason for reason in reasons)
        assert any("multiplicative decrease" in reason for reason in reasons)

    def test_moves_one_bucket_per_window(self):
        controller = AimdController()
        actuators = RecordingActuators()
        window = make_window(
            values=(1000.0,) * 110,
            bucket_counts=(90, 8, 5, 7),
            rss_table=(0, 0, 0, 1),
        )
        controller.tick(0.0, [window], actuators)
        moves = actuators.of_kind("rss")
        assert len(moves) == 1
        # Only the heaviest movable bucket (1) moved; bucket 2 stayed.
        assert moves[0][2] == (0, 1, 0, 1)

    def test_validates_parameters(self):
        with pytest.raises(ValidationError):
            AimdController(increase=0.0)
        with pytest.raises(ValidationError):
            AimdController(decrease=1.0)


class TestBuildController:
    def test_registry_round_trip(self):
        assert set(CONTROL_POLICIES) == {"static", "threshold", "aimd"}
        for name in CONTROL_POLICIES:
            assert build_controller(name).name == name
        assert build_controller(" Threshold ").name == "threshold"

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValidationError):
            build_controller("pid")
