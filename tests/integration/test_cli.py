"""Tests for the pcie-bench command line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_present(self):
        parser = build_parser()
        args = parser.parse_args(["systems"])
        assert args.command == "systems"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "BW_RD"])
        assert args.kind == "BW_RD"
        assert args.size == 64
        assert args.window == "8K"

    def test_experiment_requires_valid_id(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "figure-42"])

    def test_nicsim_defaults(self):
        args = build_parser().parse_args(["nicsim"])
        assert args.model == "dpdk"
        assert args.workload == "fixed"
        assert args.load is None

    def test_nicsim_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nicsim", "--workload", "avalanche"])

    def test_suite_accepts_jobs(self):
        args = build_parser().parse_args(["suite", "--jobs", "4"])
        assert args.jobs == 4

    def test_suite_accepts_contention_flag(self):
        args = build_parser().parse_args(["suite", "--contention"])
        assert args.contention is True

    def test_nicsim_and_contend_accept_profile_flag(self):
        assert build_parser().parse_args(["nicsim", "--profile"]).profile
        assert build_parser().parse_args(["contend", "--profile"]).profile
        assert not build_parser().parse_args(["nicsim"]).profile

    def test_contend_defaults(self):
        args = build_parser().parse_args(["contend"])
        assert args.device is None
        assert args.arbiter == "fcfs"
        assert args.weights is None

    def test_contend_rejects_unknown_arbiter(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["contend", "--arbiter", "lottery"])


class TestCommands:
    def test_systems_lists_table1(self, capsys):
        assert main(["systems"]) == 0
        out = capsys.readouterr().out
        assert "NFP6000-HSW" in out and "NetFPGA-HSW" in out

    def test_model_command_prints_series(self, capsys):
        assert main(["model", "--sizes", "64", "256"]) == 0
        out = capsys.readouterr().out
        assert "Effective PCIe BW" in out
        assert "Simple NIC" in out

    def test_model_command_with_plot(self, capsys):
        assert main(["model", "--sizes", "64", "256", "512", "--plot"]) == 0
        assert "legend" in capsys.readouterr().out

    def test_run_bandwidth_benchmark(self, capsys):
        code = main(
            ["run", "BW_WR", "--size", "256", "--transactions", "300"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "bandwidth (Gb/s)" in out

    def test_run_latency_benchmark(self, capsys):
        code = main(["run", "LAT_RD", "--size", "64", "--transactions", "300"])
        assert code == 0
        out = capsys.readouterr().out
        assert "median" in out

    def test_experiment_figure1(self, capsys):
        assert main(["experiment", "figure-1"]) == 0
        out = capsys.readouterr().out
        assert "figure-1" in out and "PASS" in out

    def test_report_writes_markdown(self, tmp_path, capsys, monkeypatch):
        # Restrict the report to the two analytical experiments to keep the
        # test fast; the full report is produced by the benchmark harness.
        from repro.experiments import registry

        quick_modules = (
            registry.EXPERIMENTS["figure-1"],
            registry.EXPERIMENTS["table-1"],
        )
        monkeypatch.setattr(registry, "_MODULES", quick_modules)
        output = tmp_path / "EXPERIMENTS.md"
        assert main(["report", "--output", str(output)]) == 0
        assert output.exists()
        assert "figure-1" in output.read_text()

    def test_invalid_run_parameters_return_error_code(self, capsys):
        code = main(["run", "BW_RD", "--size", "0"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_nicsim_fixed_size_with_cross_validation(self, capsys):
        code = main(
            [
                "nicsim", "--model", "dpdk", "--size", "512",
                "--packets", "600", "--compare-analytic",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "NIC datapath simulation" in out
        assert "Cross-validation vs analytic model" in out

    def test_nicsim_scenario_reports_latency_and_ring_occupancy(self, capsys):
        code = main(
            [
                "nicsim", "--model", "kernel", "--workload", "bursty",
                "--size", "512", "--load", "24", "--packets", "800",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ring max" in out
        assert "p99 (ns)" in out

    def test_nicsim_compare_analytic_requires_fixed_workload(self, capsys):
        code = main(
            [
                "nicsim", "--workload", "imix", "--packets", "300",
                "--compare-analytic",
            ]
        )
        assert code == 1
        assert "fixed-size" in capsys.readouterr().err

    def test_nicsim_profile_reports_engine_throughput(self, capsys):
        code = main(
            [
                "nicsim", "--model", "dpdk", "--size", "512",
                "--packets", "400", "--profile",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "[profile]" in captured.err
        assert "events/s" in captured.err
        assert "build" in captured.err and "stats" in captured.err

    def test_suite_rejects_zero_and_negative_jobs(self, capsys):
        # --jobs 0 used to slip past the flag layer and fail deep inside
        # the runner; the CLI now rejects it as a usage error up front.
        code = main(["suite", "--jobs", "0"])
        captured = capsys.readouterr()
        assert code == 1
        assert "--jobs must be at least 1, got 0" in captured.err
        code = main(["suite", "--jobs", "-3"])
        captured = capsys.readouterr()
        assert code == 1
        assert "--jobs must be at least 1, got -3" in captured.err

    def test_fleet_rejects_zero_jobs(self, capsys):
        code = main(["fleet", "--jobs", "0"])
        captured = capsys.readouterr()
        assert code == 1
        assert "--jobs must be at least 1, got 0" in captured.err


class TestContendCommand:
    def test_contend_with_explicit_devices(self, capsys):
        code = main(
            [
                "contend",
                "--device", "name=victim,model=dpdk,workload=fixed,size=512,"
                "load=5,packets=150,ring-depth=64,window=256K",
                "--device", "name=aggressor,model=kernel,workload=imix,"
                "packets=900,window=16M",
                "--iommu", "--arbiter", "rr",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "Contention run" in captured.out
        assert "victim" in captured.out and "aggressor" in captured.out
        assert "arbiter=rr" in captured.err

    def test_contend_solo_baseline_reports_slowdowns(self, capsys):
        code = main(
            [
                "contend",
                "--device", "name=victim,load=5,packets=120,ring-depth=64,"
                "window=256K",
                "--device", "name=aggressor,workload=imix,packets=700,"
                "window=16M",
                "--iommu", "--arbiter", "wrr", "--weights", "8:1",
                "--solo-baseline",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "Slowdown vs solo baseline" in captured.out
        assert "Jain fairness index" in captured.out
        assert "weights 8:1" in captured.out
        assert "solo baseline: victim" in captured.err

    def test_contend_profile_reports_engine_throughput(self, capsys):
        code = main(
            [
                "contend",
                "--device", "name=a,load=5,packets=80",
                "--device", "name=b,workload=imix,packets=200",
                "--profile",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "[profile] contend a+b" in captured.err
        assert "events/s" in captured.err

    def test_contend_detail_prints_per_device_tables(self, capsys):
        code = main(
            [
                "contend",
                "--device", "name=a,load=5,packets=100",
                "--device", "name=b,workload=imix,packets=300",
                "--detail",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "Device detail: a" in captured.out
        assert "Device detail: b" in captured.out

    def test_contend_rejects_bad_device_spec(self, capsys):
        code = main(["contend", "--device", "model=dpdk,bogus=1"])
        captured = capsys.readouterr()
        assert code == 1
        assert "unknown device spec key" in captured.err

    def test_contend_rejects_non_key_value_spec(self, capsys):
        code = main(["contend", "--device", "dpdk"])
        captured = capsys.readouterr()
        assert code == 1
        assert "not KEY=VALUE" in captured.err

    def test_contend_rejects_weight_count_mismatch_with_usage_error(
        self, capsys
    ):
        # Three devices, two weights: the CLI must explain the mismatch
        # in terms of the flags typed, not fail somewhere downstream.
        code = main(
            [
                "contend",
                "--device", "name=a,load=5,packets=50",
                "--device", "name=b,workload=imix,packets=100",
                "--device", "name=c,workload=imix,packets=100",
                "--arbiter", "wrr", "--weights", "8:1",
            ]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "--weights names 2 weights" in captured.err
        assert "3 devices" in captured.err
        assert "a, b, c" in captured.err

    def test_contend_weight_mismatch_applies_to_the_default_pair(
        self, capsys
    ):
        code = main(["contend", "--arbiter", "wrr", "--weights", "8:1:1"])
        captured = capsys.readouterr()
        assert code == 1
        assert "--weights names 3 weights" in captured.err
        assert "2 devices" in captured.err

    def test_contend_topology_quantum_and_partition_flags(self, capsys):
        code = main(
            [
                "contend",
                "--device", "name=victim,load=5,packets=100,ring-depth=64,"
                "window=256K",
                "--device", "name=aggressor,workload=imix,packets=400,"
                "window=16M",
                "--iommu",
                "--arbiter", "sliced", "--quantum", "16", "--weights", "8:1",
                "--topology", "victim=root,aggressor=sw0,sw0=root",
                "--ddio-partition",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "topology=depth2" in captured.err
        assert "quantum=16ns" in captured.err
        assert "ddio=1:1" in captured.err

    def test_contend_rejects_bad_topology_and_partition(self, capsys):
        code = main(
            ["contend", "--topology", "victim=nowhere,aggressor=root"]
        )
        assert code == 1
        assert "undeclared switch" in capsys.readouterr().err
        code = main(["contend", "--ddio-partition", "1:2:3"])
        assert code == 1
        err = capsys.readouterr().err
        assert "--ddio-partition names 3 shares" in err
        code = main(["contend", "--ddio-partition", "bogus"])
        assert code == 1
        assert "colon-separated" in capsys.readouterr().err

    def test_contend_controller_prints_the_action_log(self, capsys):
        code = main(
            [
                "contend",
                "--device", "name=victim,model=dpdk,workload=fixed,size=512,"
                "load=5,packets=200,ring-depth=64,window=256K",
                "--device", "name=aggressor,model=kernel,workload=imix,"
                "packets=1200,window=16M",
                "--iommu", "--arbiter", "wrr", "--weights", "1:16",
                "--controller", "threshold", "--control-window", "20000",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "Control plane: controller threshold" in captured.out
        assert "window 20 us" in captured.out
        assert "weights" in captured.out

    def test_contend_controller_defaults_to_static_with_no_summary(
        self, capsys
    ):
        code = main(
            [
                "contend",
                "--device", "name=a,load=5,packets=80",
                "--device", "name=b,workload=imix,packets=200",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "Control plane" not in captured.out

    def test_contend_rejects_window_without_controller(self, capsys):
        code = main(["contend", "--control-window", "50000"])
        captured = capsys.readouterr()
        assert code == 1
        assert "control_window_ns" in captured.err

    def test_contend_rejects_unknown_controller(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["contend", "--controller", "pid"])
