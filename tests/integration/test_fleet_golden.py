"""Golden-output and sharding-identity tests for the fleet subsystem.

``fleet_seeded.json`` pins a seeded 3-host packed rack: the serialised
parameters must reproduce the serialised result bit for bit (within float
tolerance), any change to the per-host seeding, the streaming sketches or
the host-order reduce is caught explicitly.  The sharding tests pin the
fleet determinism contract itself: ``jobs=1`` and ``jobs=2`` must produce
identical serialised records, sketches included.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench.fleet import FleetParams, FleetResult, run_fleet_benchmark
from repro.bench.results import load_results_json, save_results_json
from repro.cli import main
from repro.experiments.registry import run_experiment

from test_nicsim_golden import assert_deep_close

GOLDEN_PATH = Path(__file__).parent.parent / "golden" / "fleet_seeded.json"


class TestSeededFleetGolden:
    def test_seeded_fleet_matches_checked_in_record(self):
        # To regenerate after an intentional behaviour change:
        #   params = FleetParams.from_dict(golden["params"])
        #   json.dump({"params": params.as_dict(),
        #              "result": run_fleet_benchmark(params).as_dict()}, ...)
        golden = json.loads(GOLDEN_PATH.read_text())
        params = FleetParams.from_dict(golden["params"])
        assert params.as_dict() == golden["params"]
        result = run_fleet_benchmark(params)
        assert_deep_close(result.as_dict(), golden["result"])

    def test_golden_record_round_trips_through_dict(self):
        golden = json.loads(GOLDEN_PATH.read_text())
        restored = FleetResult.from_dict(golden["result"])
        assert_deep_close(restored.as_dict(), golden["result"])
        assert FleetResult.from_dict(restored.as_dict()) == restored

    def test_golden_hosts_stream_their_latencies(self):
        golden = json.loads(GOLDEN_PATH.read_text())
        for host in golden["result"]["hosts"]:
            assert "sketch" in host["victim_latency"]
        assert "sketch" in golden["result"]["fleet_latency"]


class TestShardingIdentity:
    def test_serial_and_sharded_fleet_records_are_bit_identical(self):
        golden = json.loads(GOLDEN_PATH.read_text())
        params = FleetParams.from_dict(golden["params"])
        serial = run_fleet_benchmark(params)
        sharded = run_fleet_benchmark(params, jobs=2)
        assert serial == sharded
        assert json.dumps(serial.as_dict()) == json.dumps(sharded.as_dict())


class TestFleetResultsFile:
    def test_fleet_records_survive_the_results_file(self, tmp_path):
        golden = json.loads(GOLDEN_PATH.read_text())
        result = FleetResult.from_dict(golden["result"])
        path = tmp_path / "fleet.json"
        save_results_json([result], path)
        loaded = load_results_json(path)
        assert len(loaded) == 1
        assert isinstance(loaded[0], FleetResult)
        assert loaded[0] == result


class TestFleetCli:
    def test_fleet_cli_prints_the_scorecard(self, capsys, tmp_path):
        output = tmp_path / "fleet.json"
        code = main(
            [
                "fleet", "--hosts", "2", "--tenants", "4",
                "--placement", "pack", "--victim-packets", "100",
                "--aggressor-packets", "200", "--rack-load", "40",
                "--seed", "7", "--threshold", "20000",
                "--output", str(output),
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "Fleet: 2 hosts" in captured.out
        assert "Rack-wide victim latency (merged sketches)" in captured.out
        assert "SLO scorecard" in captured.out
        assert "FLEET" in captured.err
        loaded = load_results_json(output)
        assert len(loaded) == 1 and isinstance(loaded[0], FleetResult)

    def test_fleet_cli_rejects_bad_placement(self, capsys):
        with pytest.raises(SystemExit):
            main(["fleet", "--hosts", "2", "--placement", "optimal"])
        captured = capsys.readouterr()
        assert "invalid choice" in captured.err


class TestFleetExperiment:
    def test_figure_12_fleet_structure_and_checks(self):
        result = run_experiment("figure-12-fleet", quick=True)
        assert result.experiment_id == "figure-12-fleet"
        assert sorted(result.series) == ["pack", "spread"]
        assert result.table_headers[0] == "policy, host"
        assert len(result.checks) == 5
        assert result.passed, [
            check.description for check in result.checks if not check.passed
        ]
        text = result.to_text()
        assert "figure-12-fleet" in text
        assert "tail-SLO" in text
