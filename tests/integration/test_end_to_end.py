"""Integration tests spanning model, simulator, benchmarks and experiments.

These tests exercise the library the way a user following the README would:
build hosts from profiles, run micro-benchmarks, and confirm the headline
findings of the paper reproduce qualitatively.  Sample counts are kept small
so the whole suite stays fast; the benchmark harness under ``benchmarks/``
runs the full-size versions.
"""

import numpy as np
import pytest

from repro import PCIeModel, SIMPLE_NIC
from repro.bench import (
    BenchmarkParams,
    BenchmarkRunner,
    bw_rd,
    lat_rd,
)
from repro.core.ethernet import ETHERNET_40G
from repro.sim import DmaEngine, HostSystem
from repro.units import KIB, MIB


class TestModelVersusSimulator:
    def test_simulated_write_bandwidth_tracks_model_at_large_sizes(self):
        model = PCIeModel.gen3_x8()
        host = HostSystem.from_profile("NetFPGA-HSW", seed=2)
        engine = DmaEngine(host)
        buffer = host.allocate_buffer(8 * KIB, 1024)
        host.prepare(buffer, "host_warm")
        measured = engine.measure_bandwidth(buffer, "write", 1500).gbps
        predicted = model.effective_bandwidth_gbps(1024, kind="write")
        assert measured == pytest.approx(predicted, rel=0.1)

    def test_simulated_read_bandwidth_below_model_at_small_sizes(self):
        model = PCIeModel.gen3_x8()
        measured = bw_rd(64, system="NetFPGA-HSW", transactions=1000).bandwidth_gbps
        predicted = model.effective_bandwidth_gbps(64, kind="read")
        assert measured < 0.8 * predicted

    def test_neither_device_sustains_40g_reads_at_64b(self):
        requirement = ETHERNET_40G.frame_throughput_gbps(64)
        for system in ("NFP6000-HSW", "NetFPGA-HSW"):
            measured = bw_rd(64, system=system, transactions=1000).bandwidth_gbps
            assert measured < requirement

    def test_simple_nic_model_far_below_raw_pcie(self):
        model = PCIeModel.gen3_x8()
        assert model.nic_throughput_gbps(SIMPLE_NIC, 64) < (
            0.6 * model.effective_bandwidth_gbps(64, kind="bidirectional")
        )


class TestHeadlineFindings:
    def test_cache_residency_speeds_up_small_reads(self):
        warm = lat_rd(64, cache_state="host_warm", seed=4, transactions=600)
        cold = lat_rd(64, cache_state="cold", seed=4, transactions=600)
        discount = cold.latency.median - warm.latency.median
        assert 40 <= discount <= 110

    def test_iotlb_cliff_at_large_windows(self):
        runner = BenchmarkRunner()
        base = BenchmarkParams(
            kind="BW_RD",
            transfer_size=64,
            cache_state="host_warm",
            system="NFP6000-BDW",
            transactions=1000,
        )
        small_on = runner.run(base.with_(window_size=128 * KIB, iommu_enabled=True))
        small_off = runner.run(base.with_(window_size=128 * KIB, iommu_enabled=False))
        large_on = runner.run(base.with_(window_size=16 * MIB, iommu_enabled=True))
        large_off = runner.run(base.with_(window_size=16 * MIB, iommu_enabled=False))
        small_change = small_on.bandwidth_gbps / small_off.bandwidth_gbps
        large_change = large_on.bandwidth_gbps / large_off.bandwidth_gbps
        assert small_change > 0.9
        assert large_change < 0.5

    def test_remote_numa_penalty_for_small_reads_only(self):
        runner = BenchmarkRunner()
        base = BenchmarkParams(
            kind="BW_RD",
            transfer_size=64,
            window_size=16 * KIB,
            cache_state="host_warm",
            system="NFP6000-BDW",
            transactions=1000,
        )
        local_small = runner.run(base.with_(placement="local")).bandwidth_gbps
        remote_small = runner.run(base.with_(placement="remote")).bandwidth_gbps
        local_large = runner.run(
            base.with_(transfer_size=512, placement="local")
        ).bandwidth_gbps
        remote_large = runner.run(
            base.with_(transfer_size=512, placement="remote")
        ).bandwidth_gbps
        assert remote_small < 0.95 * local_small
        assert remote_large > 0.95 * local_large

    def test_e3_latency_distribution_much_worse_than_e5(self):
        e5 = lat_rd(64, system="NFP6000-HSW", seed=8, transactions=4000)
        e3 = lat_rd(64, system="NFP6000-HSW-E3", seed=8, transactions=4000)
        assert e3.latency.median > 1.8 * e5.latency.median
        assert e3.latency.p99 > 3 * e3.latency.median
        assert e5.latency.p99 < 1.2 * e5.latency.median

    def test_inflight_dma_sizing_argument(self):
        # Measured read latency and the 40G packet budget imply tens of
        # concurrent DMAs, as the paper argues in §2 and §7.
        result = lat_rd(128, system="NFP6000-HSW", transactions=600)
        budget = ETHERNET_40G.inter_packet_time_ns(128)
        inflight = int(np.ceil(result.latency.median / budget))
        assert 15 <= inflight <= 40


class TestReproducibility:
    def test_same_seed_gives_identical_results(self):
        a = bw_rd(64, seed=42, transactions=500).bandwidth_gbps
        b = bw_rd(64, seed=42, transactions=500).bandwidth_gbps
        assert a == pytest.approx(b)

    def test_different_seeds_give_similar_but_not_identical_results(self):
        a = lat_rd(64, seed=1, transactions=1000).latency.median
        b = lat_rd(64, seed=2, transactions=1000).latency.median
        assert a == pytest.approx(b, rel=0.2)
