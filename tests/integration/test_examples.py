"""Smoke tests for the example scripts.

The examples double as documentation, so they must at least import cleanly
and expose a ``main`` entry point; the purely analytical one is executed in
full (it finishes in well under a second), while the simulation-heavy ones
are exercised end-to-end by the benchmark harness instead.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def load_example(path: Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamplesExist:
    def test_at_least_three_examples_plus_quickstart(self):
        names = {path.stem for path in EXAMPLE_FILES}
        assert "quickstart" in names
        assert len(names) >= 4

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
    def test_example_imports_and_has_main(self, path):
        module = load_example(path)
        assert hasattr(module, "main") and callable(module.main)

    @pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
    def test_example_has_module_docstring(self, path):
        module = load_example(path)
        assert module.__doc__ and len(module.__doc__.strip()) > 40


class TestAnalyticalExampleRuns:
    def test_nic_design_space_runs_to_completion(self, capsys):
        module = load_example(EXAMPLES_DIR / "nic_design_space.py")
        module.main()
        out = capsys.readouterr().out
        assert "Incremental NIC/driver optimisations" in out
        assert "100 Gb/s" in out or "100G" in out
