"""Tracing integration: zero perturbation when off, real spans when on."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.bench.contention import (
    ContentionParams,
    noisy_neighbour_pair,
    run_contention_benchmark,
)
from repro.bench.nicsim import NicSimParams, run_nicsim_benchmark
from repro.obs import (
    ARB_PREFIX,
    PACKET_STAGES,
    STAGE_COMPLETION,
    STAGE_RING,
    MetricsRegistry,
    Tracer,
)


def _nicsim_params() -> NicSimParams:
    return NicSimParams(
        model="dpdk",
        workload="bursty",
        packet_size=512,
        packets=200,
        dma_tags=16,
        system="NFP6000-HSW",
        iommu_enabled=True,
        seed=3,
    )


def _contend_params() -> ContentionParams:
    victim, aggressor = noisy_neighbour_pair(
        victim_packets=150, aggressor_packets=400
    )
    return ContentionParams(
        devices=(victim, aggressor),
        names=("victim", "aggressor"),
        iommu_enabled=True,
        seed=7,
    )


class TestTracingDoesNotPerturb:
    """The observability layer must be invisible to the simulation."""

    def test_nicsim_result_bit_identical_under_tracing(self) -> None:
        baseline = run_nicsim_benchmark(_nicsim_params()).as_dict()
        tracer = Tracer()
        metrics = MetricsRegistry()
        traced = run_nicsim_benchmark(
            _nicsim_params(), tracer=tracer, metrics=metrics
        ).as_dict()
        assert traced.pop("metrics") is not None
        assert json.dumps(baseline, sort_keys=True) == json.dumps(
            traced, sort_keys=True
        )
        assert len(tracer) > 0

    def test_contend_result_bit_identical_under_tracing(self) -> None:
        baseline = run_contention_benchmark(_contend_params()).as_dict()
        tracer = Tracer()
        metrics = MetricsRegistry()
        traced = run_contention_benchmark(
            _contend_params(), tracer=tracer, metrics=metrics
        ).as_dict()
        assert traced.pop("metrics") is not None
        assert json.dumps(baseline, sort_keys=True) == json.dumps(
            traced, sort_keys=True
        )
        assert len(tracer) > 0


class TestSpanSemantics:
    def test_every_delivered_packet_has_a_complete_telescoping_trace(
        self,
    ) -> None:
        tracer = Tracer()
        result = run_nicsim_benchmark(_nicsim_params(), tracer=tracer)
        record = result.as_dict()
        delivered = record["tx"]["delivered_packets"] + (
            record["rx"]["delivered_packets"] if result.rx is not None else 0
        )
        traces: dict[tuple[str, int], dict[str, tuple[float, float]]] = {}
        for span in tracer.spans:
            if span.stage in PACKET_STAGES:
                traces.setdefault((span.lane, span.packet), {})[span.stage] = (
                    span.start_ns,
                    span.duration_ns,
                )
        complete = {
            key: stages
            for key, stages in traces.items()
            if len(stages) == len(PACKET_STAGES)
        }
        assert len(complete) == delivered
        for stages in complete.values():
            total = sum(duration for _, duration in stages.values())
            end = stages[STAGE_COMPLETION][0] + stages[STAGE_COMPLETION][1]
            latency = end - stages[STAGE_RING][0]
            assert total == pytest.approx(latency, rel=1e-12)

    def test_contention_produces_per_hop_arbitration_spans(self) -> None:
        tracer = Tracer()
        run_contention_benchmark(_contend_params(), tracer=tracer)
        stages = {span.stage for span in tracer.spans}
        assert any(stage.startswith(ARB_PREFIX) for stage in stages)
        assert any(stage.endswith("@root") for stage in stages)
        assert "walker" in stages

    def test_flight_recorder_bounds_memory(self) -> None:
        tracer = Tracer(capacity=256)
        run_contention_benchmark(_contend_params(), tracer=tracer)
        assert len(tracer) == 256
        assert tracer.evicted == tracer.recorded - 256
        assert tracer.evicted > 0


class TestMetricsIntegration:
    def test_metrics_counters_match_result_totals(self) -> None:
        metrics = MetricsRegistry()
        result = run_nicsim_benchmark(_nicsim_params(), metrics=metrics)
        summary = result.as_dict()
        record = metrics.as_dict()
        for direction in ("tx", "rx"):
            assert (
                record["counters"][f"nicsim.nic.{direction}.delivered_packets"]
                == summary[direction]["delivered_packets"]
            )
        assert len(record["windows"]) > 0
        # Window deltas of each counter sum to at most its cumulative
        # total (the run's last partial window is only closed at finish).
        for name, total in record["counters"].items():
            deltas = sum(row["counters"][name] for row in record["windows"])
            assert deltas <= total
        latency = record["histograms"]["nicsim.nic.tx.latency_ns"]
        assert latency["count"] == summary["tx"]["delivered_packets"]
        assert latency["p99"] == pytest.approx(
            summary["tx"]["latency_ns"]["p99"], rel=0.05
        )

    def test_metrics_ride_the_serialised_result(self) -> None:
        metrics = MetricsRegistry()
        result = run_nicsim_benchmark(_nicsim_params(), metrics=metrics)
        record = result.as_dict()
        assert record["metrics"]["counters"] == metrics.as_dict()["counters"]
        rebuilt = type(result).from_dict(record)
        assert rebuilt.metrics == result.metrics

    def test_plain_run_serialises_without_metrics_key(self) -> None:
        record = run_nicsim_benchmark(_nicsim_params()).as_dict()
        assert "metrics" not in record
