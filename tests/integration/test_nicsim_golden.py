"""Golden-output tests for ``pcie-bench nicsim`` and the sim experiments.

The checked-in golden records pin seeded runs: the serialised parameters
must reproduce the serialised result, so any change to the datapath, the
host coupling, the RNG streams or the serialisation format is caught
explicitly (regenerate the files deliberately when the change is intended
— see the test bodies for the recipe).

``nicsim_seeded.json`` predates the multi-queue/bounded-tags knobs and is
deliberately left untouched: the single-queue, unbounded-tag datapath must
keep reproducing it bit for bit (the degenerate-case contract).
``nicsim_multiqueue_seeded.json`` pins the same host-coupled scenario run
through 4 RSS-steered queues and a 16-tag DMA pool, including the
per-queue counters and the tag-pool accounting.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench.nicsim import NicSimParams, run_nicsim_benchmark
from repro.cli import main
from repro.experiments.registry import run_experiment
from repro.sim.nicsim import NicSimResult

GOLDEN_PATH = Path(__file__).parent.parent / "golden" / "nicsim_seeded.json"
MULTIQUEUE_GOLDEN_PATH = (
    Path(__file__).parent.parent / "golden" / "nicsim_multiqueue_seeded.json"
)

#: Relative tolerance for float comparisons: the run is deterministic, but
#: float reductions may differ in the last bits across numpy versions.
REL_TOL = 1e-6


def assert_deep_close(actual, expected, path=""):
    assert type(actual) is type(expected) or (
        isinstance(actual, (int, float)) and isinstance(expected, (int, float))
    ), f"type mismatch at {path}: {type(actual)} vs {type(expected)}"
    if isinstance(expected, dict):
        assert set(actual) == set(expected), (
            f"key mismatch at {path}: {sorted(actual)} vs {sorted(expected)}"
        )
        for key in expected:
            assert_deep_close(actual[key], expected[key], f"{path}.{key}")
    elif isinstance(expected, list):
        assert len(actual) == len(expected), f"length mismatch at {path}"
        for index, (a, e) in enumerate(zip(actual, expected)):
            assert_deep_close(a, e, f"{path}[{index}]")
    elif isinstance(expected, float):
        assert actual == pytest.approx(expected, rel=REL_TOL), (
            f"value mismatch at {path}: {actual} vs {expected}"
        )
    else:
        assert actual == expected, (
            f"value mismatch at {path}: {actual!r} vs {expected!r}"
        )


class TestSeededGoldenRun:
    def test_seeded_run_matches_checked_in_summary(self):
        # To regenerate after an intentional behaviour change:
        #   params = NicSimParams.from_dict(golden["params"])
        #   json.dump({"params": params.as_dict(),
        #              "result": run_nicsim_benchmark(params).as_dict()}, ...)
        golden = json.loads(GOLDEN_PATH.read_text())
        params = NicSimParams.from_dict(golden["params"])
        assert params.as_dict() == golden["params"]
        result = run_nicsim_benchmark(params)
        assert_deep_close(result.as_dict(), golden["result"])

    def test_golden_record_round_trips_through_dict(self):
        golden = json.loads(GOLDEN_PATH.read_text())
        restored = NicSimResult.from_dict(golden["result"])
        assert_deep_close(restored.as_dict(), golden["result"])
        # Equality after a second round trip (exact: no floats re-derived).
        assert NicSimResult.from_dict(restored.as_dict()) == restored

    def test_live_result_round_trips_with_host_block(self):
        golden = json.loads(GOLDEN_PATH.read_text())
        result = run_nicsim_benchmark(NicSimParams.from_dict(golden["params"]))
        assert result.host is not None
        assert NicSimResult.from_dict(result.as_dict()) == result


class TestMultiQueueGoldenRun:
    def test_legacy_golden_params_have_no_queue_keys(self):
        # The PR 2 file predates the knobs; its params block must parse to
        # the degenerate defaults and re-serialise without the new keys.
        golden = json.loads(GOLDEN_PATH.read_text())
        params = NicSimParams.from_dict(golden["params"])
        assert params.num_queues == 1
        assert params.dma_tags is None
        for key in ("num_queues", "dma_tags", "rss"):
            assert key not in params.as_dict()

    def test_seeded_multiqueue_run_matches_checked_in_summary(self):
        # To regenerate after an intentional behaviour change:
        #   params = NicSimParams.from_dict(golden["params"])
        #   json.dump({"params": params.as_dict(),
        #              "result": run_nicsim_benchmark(params).as_dict()}, ...)
        golden = json.loads(MULTIQUEUE_GOLDEN_PATH.read_text())
        params = NicSimParams.from_dict(golden["params"])
        assert params.as_dict() == golden["params"]
        assert params.num_queues == 4
        assert params.dma_tags == 16
        assert params.rss == "zipf"
        result = run_nicsim_benchmark(params)
        assert_deep_close(result.as_dict(), golden["result"])

    def test_multiqueue_golden_pins_per_queue_counters_and_tags(self):
        golden = json.loads(MULTIQUEUE_GOLDEN_PATH.read_text())
        for direction in ("tx", "rx"):
            path = golden["result"][direction]
            queues = path["queues"]
            assert len(queues) == 4
            assert [queue["direction"] for queue in queues] == [
                f"{direction}[{index}]" for index in range(4)
            ]
            assert (
                sum(queue["delivered_packets"] for queue in queues)
                == path["delivered_packets"]
            )
        tags = golden["result"]["tags"]
        assert tags["capacity"] == 16
        assert tags["max_in_flight"] == 16

    def test_multiqueue_record_round_trips_through_dict(self):
        golden = json.loads(MULTIQUEUE_GOLDEN_PATH.read_text())
        restored = NicSimResult.from_dict(golden["result"])
        assert_deep_close(restored.as_dict(), golden["result"])
        assert NicSimResult.from_dict(restored.as_dict()) == restored


class TestCliGolden:
    def test_host_coupled_nicsim_cli(self, capsys):
        code = main(
            [
                "nicsim", "--model", "dpdk", "--workload", "imix",
                "--load", "20", "--packets", "600", "--ring-depth", "256",
                "--system", "NFP6000-BDW", "--iommu",
                "--host-window", "1M", "--host-cache", "device_warm",
                "--seed", "7",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        # The per-direction table and the host-side counter table are both
        # present, and the run matches the golden record's headline number.
        assert "NIC datapath simulation" in captured.out
        assert "Host-side counters" in captured.out
        assert "Modern NIC (DPDK driver)" in captured.out
        assert "IOTLB hit %" in captured.out
        golden = json.loads(GOLDEN_PATH.read_text())
        expected_gbps = golden["result"]["tx"]["throughput_gbps"]
        assert f"{expected_gbps:.1f}" in captured.out

    def test_multiqueue_cli_matches_golden_and_prints_queue_tables(self, capsys):
        golden = json.loads(MULTIQUEUE_GOLDEN_PATH.read_text())
        code = main(
            [
                "nicsim", "--model", "dpdk", "--workload", "imix",
                "--load", "20", "--packets", "600", "--ring-depth", "256",
                "--queues", "4", "--rss", "zipf", "--dma-tags", "16",
                "--system", "NFP6000-BDW", "--iommu",
                "--host-window", "1M", "--host-cache", "device_warm",
                "--seed", "7",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "Per-queue breakdown" in captured.out
        assert "DMA tag pool" in captured.out
        assert "tx[0]" in captured.out and "rx[3]" in captured.out
        assert "queues=4 rss=zipf tags=16" in captured.err
        expected_gbps = golden["result"]["tx"]["throughput_gbps"]
        assert f"{expected_gbps:.1f}" in captured.out

    def test_single_queue_cli_has_no_queue_or_tag_tables(self, capsys):
        code = main(
            [
                "nicsim", "--model", "dpdk", "--workload", "fixed",
                "--size", "512", "--load", "10", "--packets", "300",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "Per-queue breakdown" not in captured.out
        assert "DMA tag pool" not in captured.out

    def test_decoupled_cli_has_no_host_table(self, capsys):
        code = main(
            [
                "nicsim", "--model", "dpdk", "--workload", "fixed",
                "--size", "512", "--load", "10", "--packets", "300",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "Host-side counters" not in captured.out

    def test_iommu_without_system_is_an_error(self, capsys):
        code = main(["nicsim", "--model", "dpdk", "--iommu", "--packets", "100"])
        captured = capsys.readouterr()
        assert code == 1
        assert "requires a host system" in captured.err


class TestExperimentGolden:
    def test_figure_7_9_sim_structure_and_checks(self):
        result = run_experiment("figure-7-9-sim", quick=True)
        assert result.experiment_id == "figure-7-9-sim"
        assert sorted(result.series) == [
            "IOMMU off",
            "IOMMU on (2M pages)",
            "IOMMU on (4K pages)",
        ]
        assert result.table_headers[0] == "scenario"
        assert len(result.checks) == 9
        assert result.passed, [
            check.description for check in result.checks if not check.passed
        ]
        text = result.to_text()
        assert "figure-7-9-sim" in text
        assert "Host-coupled NIC datapath" in text

    def test_figure_8_sim_structure_and_checks(self):
        result = run_experiment("figure-8-sim", quick=True)
        assert result.experiment_id == "figure-8-sim"
        assert sorted(result.series) == ["local", "remote"]
        # One sweep point per finite tag-pool size, both placements.
        assert {len(points) for points in result.series.values()} == {4}
        assert result.table_headers[0] == "scenario"
        assert len(result.checks) == 5
        assert result.passed, [
            check.description for check in result.checks if not check.passed
        ]
        text = result.to_text()
        assert "figure-8-sim" in text
        assert "bandwidth dip" in text.lower()
