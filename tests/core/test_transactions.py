"""Tests for the symbolic device/driver transaction sequences."""

import pytest

from repro.core.config import PAPER_DEFAULT_CONFIG
from repro.core.transactions import (
    DESCRIPTOR_BYTES,
    OpKind,
    Transaction,
    TransactionSequence,
    rx_transactions,
    tx_transactions,
)
from repro.errors import ValidationError

CFG = PAPER_DEFAULT_CONFIG


class TestTransaction:
    def test_amortisation_divides_cost(self):
        full = Transaction(OpKind.DMA_WRITE, 64, 1.0)
        shared = Transaction(OpKind.DMA_WRITE, 64, 8.0)
        assert shared.wire_bytes_per_packet(CFG)[0] == pytest.approx(
            full.wire_bytes_per_packet(CFG)[0] / 8
        )

    def test_dma_read_costs_both_directions(self):
        up, down = Transaction(OpKind.DMA_READ, 64).wire_bytes_per_packet(CFG)
        assert up > 0 and down > 0

    def test_mmio_write_costs_downstream_only(self):
        up, down = Transaction(OpKind.MMIO_WRITE, 4).wire_bytes_per_packet(CFG)
        assert up == 0 and down > 0

    def test_invalid_per_packets(self):
        with pytest.raises(ValidationError):
            Transaction(OpKind.DMA_READ, 64, 0.0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValidationError):
            Transaction(OpKind.DMA_READ, -4)


class TestTxRxSequences:
    def test_simple_tx_includes_all_five_interactions(self):
        labels = [t.label for t in tx_transactions(1024)]
        assert any("doorbell" in label for label in labels)
        assert any("descriptor" in label for label in labels)
        assert any("packet" in label for label in labels)
        assert any("interrupt" in label for label in labels)
        assert any("pointer" in label for label in labels)

    def test_dpdk_style_tx_drops_interrupt_and_pointer_read(self):
        transactions = tx_transactions(
            1024, interrupts_enabled=False, pointer_reads_enabled=False
        )
        labels = [t.label for t in transactions]
        assert not any("interrupt" in label for label in labels)
        assert not any("pointer" in label for label in labels)

    def test_descriptor_batch_grows_fetch_size(self):
        batched = tx_transactions(1024, descriptor_batch=40.0)
        fetch = next(t for t in batched if "descriptor fetch" in t.label)
        assert fetch.size == DESCRIPTOR_BYTES * 40
        assert fetch.per_packets == 40.0

    def test_rx_includes_packet_write_and_descriptor_writeback(self):
        labels = [t.label for t in rx_transactions(512)]
        assert any("packet delivery" in label for label in labels)
        assert any("write-back" in label for label in labels)

    def test_invalid_packet_size(self):
        with pytest.raises(ValidationError):
            tx_transactions(0)
        with pytest.raises(ValidationError):
            rx_transactions(-1)


class TestTransactionSequence:
    def test_per_packet_cost_exceeds_raw_packet_cost(self):
        sequence = TransactionSequence("tx", tuple(tx_transactions(1024)))
        up, down = sequence.per_packet_wire_bytes(CFG)
        # The packet itself is read by the device (downstream completions >
        # 1024 B) and the extra transactions add more on top.
        assert down > 1024

    def test_describe_rows_cover_all_transactions(self):
        transactions = tuple(tx_transactions(256))
        sequence = TransactionSequence("tx", transactions)
        rows = sequence.describe(CFG)
        assert len(rows) == len(transactions)
        assert all("label" in row for row in rows)
