"""Tests for Ethernet line-rate arithmetic."""

import pytest

from repro.core.ethernet import (
    ETHERNET_10G,
    ETHERNET_40G,
    ETHERNET_100G,
    EthernetLink,
    WIRE_OVERHEAD_BYTES,
)
from repro.errors import ValidationError


class TestFrameThroughput:
    def test_wire_overhead_is_20_bytes(self):
        assert WIRE_OVERHEAD_BYTES == 20

    def test_64b_frame_throughput_on_40g(self):
        # 40 * 64/84 = 30.48 Gb/s of frame data at line rate.
        assert ETHERNET_40G.frame_throughput_gbps(64) == pytest.approx(30.48, abs=0.05)

    def test_1518b_frame_close_to_line_rate(self):
        assert ETHERNET_40G.frame_throughput_gbps(1518) == pytest.approx(39.5, abs=0.2)

    def test_throughput_monotonic_in_frame_size(self):
        values = [ETHERNET_40G.frame_throughput_gbps(s) for s in range(64, 1519, 64)]
        assert values == sorted(values)

    def test_throughput_scales_with_line_rate(self):
        assert ETHERNET_100G.frame_throughput_gbps(512) == pytest.approx(
            2.5 * ETHERNET_40G.frame_throughput_gbps(512)
        )

    def test_invalid_frame_rejected(self):
        with pytest.raises(ValidationError):
            ETHERNET_40G.frame_throughput_gbps(0)


class TestPacketRate:
    def test_64b_packet_rate_40g(self):
        # 40 Gb/s / (84 B * 8) = 59.5 Mpps.
        assert ETHERNET_40G.packet_rate_pps(64) == pytest.approx(59.5e6, rel=0.01)

    def test_inter_packet_time_128b_is_about_30ns(self):
        # The figure the paper uses for its in-flight DMA argument.
        assert ETHERNET_40G.inter_packet_time_ns(128) == pytest.approx(29.6, abs=0.3)

    def test_inter_packet_time_inverse_of_rate(self):
        rate = ETHERNET_40G.packet_rate_pps(256)
        assert ETHERNET_40G.inter_packet_time_ns(256) == pytest.approx(1e9 / rate)


class TestInflightDmas:
    def test_paper_worked_example(self):
        # ~900 ns of PCIe latency at 29.6 ns per packet -> at least 30 DMAs.
        assert ETHERNET_40G.required_inflight_dmas(128, 900.0) >= 30

    def test_descriptor_dmas_multiply(self):
        single = ETHERNET_40G.required_inflight_dmas(128, 600.0)
        double = ETHERNET_40G.required_inflight_dmas(128, 600.0, per_packet_dmas=2)
        assert double == 2 * single

    def test_zero_latency_needs_no_inflight(self):
        assert ETHERNET_40G.required_inflight_dmas(128, 0.0) == 0

    def test_invalid_arguments(self):
        with pytest.raises(ValidationError):
            ETHERNET_40G.required_inflight_dmas(128, -1.0)
        with pytest.raises(ValidationError):
            ETHERNET_40G.required_inflight_dmas(128, 100.0, per_packet_dmas=0)

    def test_slower_link_needs_fewer_inflight(self):
        assert ETHERNET_10G.required_inflight_dmas(128, 900.0) < (
            ETHERNET_40G.required_inflight_dmas(128, 900.0)
        )


class TestValidation:
    def test_negative_line_rate_rejected(self):
        with pytest.raises(ValidationError):
            EthernetLink(-1.0)
