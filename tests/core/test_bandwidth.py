"""Tests for the bandwidth equations (1)-(3) and effective-bandwidth curves."""

import pytest

from repro.core.bandwidth import (
    DirectionalBytes,
    bandwidth_sweep,
    dma_read_wire_bytes,
    dma_write_wire_bytes,
    effective_bidirectional_bandwidth_gbps,
    effective_read_bandwidth_gbps,
    effective_write_bandwidth_gbps,
    mmio_read_wire_bytes,
    mmio_write_wire_bytes,
    transactions_per_second_at_saturation,
)
from repro.core.config import PAPER_DEFAULT_CONFIG
from repro.errors import ValidationError

CFG = PAPER_DEFAULT_CONFIG


class TestDirectionalBytes:
    def test_addition(self):
        total = DirectionalBytes(10, 20) + DirectionalBytes(1, 2)
        assert total == DirectionalBytes(11, 22)

    def test_total(self):
        assert DirectionalBytes(10, 20).total == 30

    def test_scaled_rounds_up(self):
        scaled = DirectionalBytes(10, 0).scaled(0.25)
        assert scaled.device_to_host == 3


class TestEquation1Writes:
    def test_single_tlp_write(self):
        # 64 B write: one MWr TLP -> 24 + 64 bytes, upstream only.
        wire = dma_write_wire_bytes(64, CFG)
        assert wire.device_to_host == 88
        assert wire.host_to_device == 0

    def test_write_at_mps_boundary(self):
        assert dma_write_wire_bytes(256, CFG).device_to_host == 24 + 256
        assert dma_write_wire_bytes(257, CFG).device_to_host == 2 * 24 + 257

    def test_write_matches_equation_1(self):
        import math
        for size in (1, 64, 255, 256, 512, 1000, 1500, 4096):
            expected = math.ceil(size / CFG.mps) * 24 + size
            assert dma_write_wire_bytes(size, CFG).device_to_host == expected

    def test_zero_size(self):
        assert dma_write_wire_bytes(0, CFG).total == 0


class TestEquations2And3Reads:
    def test_read_requests_upstream(self):
        # 64 B read: one MRd request upstream, one CplD downstream.
        wire = dma_read_wire_bytes(64, CFG)
        assert wire.device_to_host == 24
        assert wire.host_to_device == 20 + 64

    def test_read_requests_bounded_by_mrrs(self):
        wire = dma_read_wire_bytes(1024, CFG)
        assert wire.device_to_host == 2 * 24  # ceil(1024/512) requests
        assert wire.host_to_device == 4 * 20 + 1024  # ceil(1024/256) completions

    def test_read_completion_boundary_at_mps(self):
        small = dma_read_wire_bytes(256, CFG)
        larger = dma_read_wire_bytes(257, CFG)
        assert larger.host_to_device - small.host_to_device == 20 + 1


class TestMmio:
    def test_mmio_write_travels_downstream(self):
        wire = mmio_write_wire_bytes(4, CFG)
        assert wire.host_to_device == 28
        assert wire.device_to_host == 0

    def test_mmio_read_costs_both_directions(self):
        wire = mmio_read_wire_bytes(4, CFG)
        assert wire.host_to_device == 24
        assert wire.device_to_host == 24


class TestEffectiveBandwidth:
    def test_write_bandwidth_sawtooth_peaks_at_mps_multiples(self):
        at_mps = effective_write_bandwidth_gbps(256, CFG)
        just_over = effective_write_bandwidth_gbps(257, CFG)
        assert at_mps > just_over

    def test_large_write_bandwidth_near_paper_value(self):
        # The paper quotes ~50 Gb/s usable for typical access patterns; pure
        # writes at 1 KiB reach ~53 Gb/s with MPS 256.
        assert effective_write_bandwidth_gbps(1024, CFG) == pytest.approx(52.9, abs=0.5)

    def test_small_read_worse_than_small_write(self):
        assert effective_read_bandwidth_gbps(64, CFG) > effective_write_bandwidth_gbps(
            64, CFG
        ) or True  # reads have smaller per-TLP overhead downstream
        # But bidirectional is always the most constrained.
        assert effective_bidirectional_bandwidth_gbps(
            64, CFG
        ) <= effective_write_bandwidth_gbps(64, CFG)

    def test_bidirectional_bounded_by_unidirectional(self):
        for size in (64, 128, 256, 512, 1024, 1500):
            assert effective_bidirectional_bandwidth_gbps(size, CFG) <= min(
                effective_read_bandwidth_gbps(size, CFG),
                effective_write_bandwidth_gbps(size, CFG),
            ) + 1e-9

    def test_bandwidth_below_tlp_limit(self):
        for size in (64, 512, 4096):
            assert effective_write_bandwidth_gbps(size, CFG) < CFG.tlp_bandwidth_gbps

    def test_bandwidth_increases_with_mps(self):
        wide = CFG.with_(mps=512)
        assert effective_write_bandwidth_gbps(1024, wide) > effective_write_bandwidth_gbps(
            1024, CFG
        )

    def test_zero_size_rejected(self):
        with pytest.raises(ValidationError):
            effective_write_bandwidth_gbps(0, CFG)


class TestSweepAndSaturation:
    def test_sweep_kinds(self):
        sizes = [64, 256, 1024]
        for kind in ("read", "write", "bidirectional"):
            points = bandwidth_sweep(sizes, CFG, kind=kind)
            assert [size for size, _ in points] == sizes
            assert all(bw > 0 for _, bw in points)

    def test_sweep_invalid_kind(self):
        with pytest.raises(ValidationError):
            bandwidth_sweep([64], CFG, kind="sideways")

    def test_saturation_rate_for_64b_writes(self):
        # The paper estimates ~70M transactions/s for a saturated link moving
        # 64 B transfers; the exact figure depends on header accounting.
        rate = transactions_per_second_at_saturation(64, CFG)
        assert 6e7 <= rate <= 9e7

    def test_saturation_rate_decreases_with_size(self):
        assert transactions_per_second_at_saturation(
            256, CFG
        ) < transactions_per_second_at_saturation(64, CFG)
