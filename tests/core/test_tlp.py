"""Tests for TLP accounting (header sizes, splitting, wire bytes)."""

import pytest

from repro.core.tlp import (
    CPLD_HEADER_BYTES,
    MRD_HEADER_BYTES,
    MWR_HEADER_BYTES,
    Tlp,
    TlpType,
    split_read_completions,
    split_read_requests,
    split_write,
    tlp_overhead_bytes,
    total_wire_bytes,
)
from repro.errors import ValidationError


class TestHeaderSizes:
    def test_mwr_header_is_24_bytes(self):
        # 2B framing + 6B DLL + 4B TLP header + 12B MWr header (paper, §3).
        assert MWR_HEADER_BYTES == 24

    def test_mrd_header_is_24_bytes(self):
        assert MRD_HEADER_BYTES == 24

    def test_cpld_header_is_20_bytes(self):
        assert CPLD_HEADER_BYTES == 20

    def test_32bit_addressing_saves_4_bytes(self):
        assert tlp_overhead_bytes(TlpType.MEMORY_WRITE, addr64=False) == 20

    def test_ecrc_adds_4_bytes(self):
        assert tlp_overhead_bytes(TlpType.MEMORY_WRITE, ecrc=True) == 28

    def test_completion_overhead_independent_of_addressing(self):
        assert tlp_overhead_bytes(
            TlpType.COMPLETION_WITH_DATA, addr64=False
        ) == tlp_overhead_bytes(TlpType.COMPLETION_WITH_DATA, addr64=True)


class TestTlpType:
    def test_writes_are_posted(self):
        assert TlpType.MEMORY_WRITE.is_posted

    def test_reads_are_not_posted(self):
        assert not TlpType.MEMORY_READ.is_posted

    def test_data_carrying_types(self):
        assert TlpType.MEMORY_WRITE.carries_data
        assert TlpType.COMPLETION_WITH_DATA.carries_data
        assert not TlpType.MEMORY_READ.carries_data


class TestTlp:
    def test_wire_bytes_includes_payload(self):
        tlp = Tlp(TlpType.MEMORY_WRITE, payload_bytes=256)
        assert tlp.wire_bytes == 256 + 24

    def test_read_request_has_no_payload(self):
        tlp = Tlp(TlpType.MEMORY_READ)
        assert tlp.wire_bytes == 24

    def test_payload_on_read_request_rejected(self):
        with pytest.raises(ValidationError):
            Tlp(TlpType.MEMORY_READ, payload_bytes=64)

    def test_negative_payload_rejected(self):
        with pytest.raises(ValidationError):
            Tlp(TlpType.MEMORY_WRITE, payload_bytes=-1)


class TestSplitWrite:
    def test_small_write_single_tlp(self):
        tlps = split_write(64, 256)
        assert len(tlps) == 1
        assert tlps[0].payload_bytes == 64

    def test_large_write_splits_at_mps(self):
        tlps = split_write(1024, 256)
        assert len(tlps) == 4
        assert all(t.payload_bytes == 256 for t in tlps)

    def test_uneven_split_has_remainder(self):
        tlps = split_write(300, 256)
        assert [t.payload_bytes for t in tlps] == [256, 44]

    def test_zero_size_yields_no_tlps(self):
        assert split_write(0, 256) == []

    def test_invalid_mps_rejected(self):
        with pytest.raises(ValidationError):
            split_write(64, 0)


class TestSplitReadRequests:
    def test_requests_bounded_by_mrrs(self):
        assert len(split_read_requests(1024, 512)) == 2
        assert len(split_read_requests(1025, 512)) == 3

    def test_requests_carry_no_payload(self):
        for tlp in split_read_requests(2048, 512):
            assert tlp.payload_bytes == 0


class TestSplitReadCompletions:
    def test_completions_bounded_by_mps(self):
        tlps = split_read_completions(1024, 256)
        assert len(tlps) == 4
        assert sum(t.payload_bytes for t in tlps) == 1024

    def test_aligned_read_minimal_tlps(self):
        assert len(split_read_completions(512, 256)) == 2

    def test_unaligned_read_generates_extra_tlp(self):
        aligned = split_read_completions(512, 256, offset=0)
        unaligned = split_read_completions(512, 256, offset=32)
        assert len(unaligned) == len(aligned) + 1
        # First completion only reaches the next RCB.
        assert unaligned[0].payload_bytes == 32

    def test_unaligned_payload_total_preserved(self):
        tlps = split_read_completions(777, 256, offset=17)
        assert sum(t.payload_bytes for t in tlps) == 777

    def test_invalid_rcb_rejected(self):
        with pytest.raises(ValidationError):
            split_read_completions(64, 256, rcb=0)


class TestTotalWireBytes:
    def test_sum_matches_equation_1(self):
        # ceil(sz/MPS) * 24 + sz for a DMA write.
        tlps = split_write(1000, 256)
        assert total_wire_bytes(tlps) == 4 * 24 + 1000

    def test_empty_list(self):
        assert total_wire_bytes([]) == 0
