"""Tests for the PCIeModel façade."""

import pytest

from repro.core.model import FIGURE1_SIZES, FIGURE4_SIZES, PCIeModel
from repro.core.nic import SIMPLE_NIC
from repro.errors import ValidationError


class TestConstruction:
    def test_gen3_x8_constructor(self, model):
        assert model.config.lanes == 8
        assert model.config.mps == 256

    def test_from_preset(self):
        gen4 = PCIeModel.from_preset("gen4x8")
        assert gen4.config.generation.value == 4

    def test_latency_model_shares_config(self, model):
        assert model.latency.config == model.config


class TestBandwidthApi:
    def test_effective_bandwidth_kinds(self, model):
        for kind in ("read", "write", "bidirectional"):
            assert model.effective_bandwidth_gbps(512, kind=kind) > 0

    def test_invalid_kind(self, model):
        with pytest.raises(ValidationError):
            model.effective_bandwidth_gbps(512, kind="diagonal")

    def test_wire_byte_accessors(self, model):
        assert model.dma_write_bytes(64).device_to_host == 88
        assert model.dma_read_bytes(64).host_to_device == 84

    def test_bandwidth_sweep_length(self, model):
        assert len(model.bandwidth_sweep([64, 128, 256])) == 3

    def test_saturation_rate(self, model):
        assert model.saturation_transaction_rate(64) > 5e7


class TestEthernetApi:
    def test_supports_line_rate_large_frames(self, model):
        assert model.supports_line_rate(1024)

    def test_small_frames_supported_by_raw_pcie(self, model):
        # Raw PCIe (without NIC overheads) covers 40G even at 64 B...
        assert model.supports_line_rate(64)

    def test_but_simple_nic_does_not(self, model):
        # ...while the simple NIC interaction model does not.
        assert model.nic_throughput_gbps(SIMPLE_NIC, 64) < (
            model.ethernet_throughput_gbps(64)
        )


class TestNicApi:
    def test_nic_lookup_by_name(self, model):
        assert model.nic_throughput_gbps("simple", 512) == pytest.approx(
            SIMPLE_NIC.throughput_gbps(512, model.config)
        )

    def test_nic_sweep(self, model):
        sweep = model.nic_throughput_sweep("dpdk", [64, 512])
        assert len(sweep) == 2

    def test_figure1_curves_have_all_series(self, model):
        curves = model.figure1_curves([64, 512, 1500])
        assert set(curves) == {
            "Effective PCIe BW",
            "40G Ethernet",
            "Simple NIC",
            "Modern NIC (kernel driver)",
            "Modern NIC (DPDK driver)",
        }
        for points in curves.values():
            assert len(points) == 3


class TestLatencyApi:
    def test_read_latency_positive(self, model):
        assert model.read_latency_ns(64) > 0

    def test_write_read_exceeds_read(self, model):
        assert model.write_read_latency_ns(64) > model.read_latency_ns(64)

    def test_required_inflight_reasonable(self, model):
        assert 5 <= model.required_inflight_dmas(128) <= 60


class TestDefaultSizeLists:
    def test_figure1_sizes_cover_frame_range(self):
        assert FIGURE1_SIZES[0] == 64
        assert FIGURE1_SIZES[-1] >= 1500

    def test_figure4_sizes_include_boundary_probes(self):
        assert 255 in FIGURE4_SIZES and 257 in FIGURE4_SIZES
        assert 2048 in FIGURE4_SIZES
