"""Tests for the analytical latency decomposition."""

import pytest

from repro.core.config import PAPER_DEFAULT_CONFIG
from repro.core.latency import LatencyComponents, LatencyModel
from repro.errors import ValidationError

MODEL = LatencyModel()


class TestLatencyComponents:
    def test_total_is_sum_of_parts(self):
        components = LatencyComponents(10, 20, 300, 40, 5)
        assert components.total_ns == 375

    def test_pcie_fraction_excludes_device_overheads(self):
        components = LatencyComponents(50, 10, 300, 40, 50)
        assert components.pcie_fraction == pytest.approx(350 / 450)

    def test_pcie_fraction_zero_for_empty(self):
        assert LatencyComponents().pcie_fraction == 0.0

    def test_as_dict_roundtrip_total(self):
        components = LatencyComponents(1, 2, 3, 4, 5)
        assert components.as_dict()["total_ns"] == components.total_ns


class TestReadLatency:
    def test_64b_read_in_expected_range(self):
        # The paper measures ~500-550 ns medians on Haswell E5 systems.
        assert 400 <= MODEL.read_latency_ns(64) <= 650

    def test_cache_hit_saves_the_discount(self):
        miss = MODEL.read_latency_ns(64)
        hit = MODEL.read_latency_ns(64, cache_hit=True)
        assert miss - hit == pytest.approx(MODEL.cache_hit_discount_ns)

    def test_latency_grows_with_size(self):
        values = [MODEL.read_latency_ns(size) for size in (64, 256, 1024, 2048)]
        assert values == sorted(values)

    def test_serialisation_component_grows_with_size(self):
        small = MODEL.read_components(64)
        large = MODEL.read_components(2048)
        assert large.completion_serialisation_ns > small.completion_serialisation_ns

    def test_host_dominates_small_read_latency(self):
        components = MODEL.read_components(64)
        assert components.host_processing_ns > 0.5 * components.total_ns

    def test_invalid_size_rejected(self):
        with pytest.raises(ValidationError):
            MODEL.read_latency_ns(0)


class TestWriteReadLatency:
    def test_wrrd_exceeds_rd(self):
        for size in (8, 64, 512, 2048):
            assert MODEL.write_read_latency_ns(size) > MODEL.read_latency_ns(size)

    def test_wrrd_includes_write_serialisation(self):
        small_gap = MODEL.write_read_latency_ns(64) - MODEL.read_latency_ns(64)
        large_gap = MODEL.write_read_latency_ns(2048) - MODEL.read_latency_ns(2048)
        assert large_gap > small_gap


class TestDerivedQuantities:
    def test_inflight_dmas_for_line_rate(self):
        # ~500 ns latency at ~30 ns per packet -> roughly 17-20 in flight.
        inflight = MODEL.inflight_dmas_for_line_rate(128, 29.6)
        assert 10 <= inflight <= 30

    def test_inflight_rejects_bad_budget(self):
        with pytest.raises(ValidationError):
            MODEL.inflight_dmas_for_line_rate(128, 0.0)

    def test_latency_sweep_kinds(self):
        sizes = [64, 256]
        reads = MODEL.latency_sweep(sizes, kind="read")
        wrrd = MODEL.latency_sweep(sizes, kind="write_read")
        assert len(reads) == len(wrrd) == 2
        with pytest.raises(ValidationError):
            MODEL.latency_sweep(sizes, kind="bogus")

    def test_with_replaces_parameters(self):
        slower = MODEL.with_(host_read_ns=800.0)
        assert slower.read_latency_ns(64) > MODEL.read_latency_ns(64)

    def test_negative_parameter_rejected(self):
        with pytest.raises(ValidationError):
            LatencyModel(host_read_ns=-1.0)

    def test_config_serialisation_uses_link(self):
        model = LatencyModel(config=PAPER_DEFAULT_CONFIG)
        components = model.read_components(1024)
        expected = PAPER_DEFAULT_CONFIG.link.serialisation_time_ns(
            PAPER_DEFAULT_CONFIG.mps and (4 * 20 + 1024)
        )
        assert components.completion_serialisation_ns == pytest.approx(expected)
