"""Tests for the PCIe link layer model (generations, lanes, bandwidth)."""

import pytest

from repro.core.link import (
    DEFAULT_DLL_OVERHEAD,
    GEN3_X8,
    GEN3_X16,
    GEN4_X8,
    Encoding,
    LinkConfig,
    PCIeGeneration,
)
from repro.errors import ValidationError


class TestEncoding:
    def test_8b10b_efficiency(self):
        assert Encoding.E8B10B.efficiency == pytest.approx(0.8)

    def test_128b130b_efficiency(self):
        assert Encoding.E128B130B.efficiency == pytest.approx(128 / 130)


class TestPCIeGeneration:
    def test_gen3_rate(self):
        assert PCIeGeneration.GEN3.transfer_rate_gtps == 8.0

    def test_gen1_gen2_use_8b10b(self):
        assert PCIeGeneration.GEN1.encoding is Encoding.E8B10B
        assert PCIeGeneration.GEN2.encoding is Encoding.E8B10B

    def test_gen3_onwards_use_128b130b(self):
        for gen in (PCIeGeneration.GEN3, PCIeGeneration.GEN4, PCIeGeneration.GEN5):
            assert gen.encoding is Encoding.E128B130B

    def test_gen3_lane_bandwidth_matches_paper(self):
        # The paper quotes 7.87 Gb/s per lane for Gen3.
        assert PCIeGeneration.GEN3.lane_bandwidth_gbps == pytest.approx(7.877, abs=0.01)

    def test_from_value_int(self):
        assert PCIeGeneration.from_value(3) is PCIeGeneration.GEN3

    def test_from_value_string(self):
        assert PCIeGeneration.from_value("gen4") is PCIeGeneration.GEN4
        assert PCIeGeneration.from_value("2") is PCIeGeneration.GEN2

    def test_from_value_passthrough(self):
        assert PCIeGeneration.from_value(PCIeGeneration.GEN5) is PCIeGeneration.GEN5

    def test_from_value_invalid(self):
        with pytest.raises(ValidationError):
            PCIeGeneration.from_value(7)
        with pytest.raises(ValidationError):
            PCIeGeneration.from_value("gen9")


class TestLinkConfig:
    def test_gen3_x8_physical_bandwidth_matches_paper(self):
        # 8 x 7.87 Gb/s = 62.96 Gb/s at the physical layer.
        assert GEN3_X8.physical_bandwidth_gbps == pytest.approx(63.0, abs=0.1)

    def test_gen3_x8_tlp_bandwidth_matches_paper(self):
        # ~57.88 Gb/s at the transaction layer after DLL overheads.
        assert GEN3_X8.tlp_bandwidth_gbps == pytest.approx(57.88, abs=0.1)

    def test_gen3_x16_doubles_bandwidth(self):
        assert GEN3_X16.physical_bandwidth_gbps == pytest.approx(
            2 * GEN3_X8.physical_bandwidth_gbps
        )

    def test_gen4_doubles_gen3(self):
        assert GEN4_X8.physical_bandwidth_gbps == pytest.approx(
            2 * GEN3_X8.physical_bandwidth_gbps, rel=0.01
        )

    def test_invalid_lane_count_rejected(self):
        with pytest.raises(ValidationError):
            LinkConfig(PCIeGeneration.GEN3, 3)

    def test_all_valid_lane_counts_accepted(self):
        for lanes in (1, 2, 4, 8, 16, 32):
            assert LinkConfig(PCIeGeneration.GEN3, lanes).lanes == lanes

    def test_invalid_dll_overhead_rejected(self):
        with pytest.raises(ValidationError):
            LinkConfig(dll_overhead=1.0)
        with pytest.raises(ValidationError):
            LinkConfig(dll_overhead=-0.1)

    def test_default_dll_overhead_is_8_to_10_percent(self):
        assert 0.05 <= DEFAULT_DLL_OVERHEAD <= 0.11

    def test_name(self):
        assert GEN3_X8.name == "Gen3 x8"
        assert GEN4_X8.name == "Gen4 x8"

    def test_serialisation_time_scales_linearly(self):
        t1 = GEN3_X8.serialisation_time_ns(1000)
        t2 = GEN3_X8.serialisation_time_ns(2000)
        assert t2 == pytest.approx(2 * t1)

    def test_serialisation_time_for_a_tlp(self):
        # A 280-byte TLP on ~7.2 GB/s takes roughly 39 ns.
        assert GEN3_X8.serialisation_time_ns(280) == pytest.approx(38.7, abs=1.0)

    def test_serialisation_rejects_negative(self):
        with pytest.raises(ValidationError):
            GEN3_X8.serialisation_time_ns(-1)

    def test_bytes_per_ns_consistent_with_gbps(self):
        assert GEN3_X8.bytes_per_ns == pytest.approx(GEN3_X8.tlp_bandwidth_gbps / 8)
