"""Tests for unit parsing, formatting and conversions."""

import pytest

from repro.errors import ValidationError
from repro.units import (
    CACHELINE_BYTES,
    GIB,
    KIB,
    MIB,
    align_down,
    align_up,
    bytes_over_time_to_gbps,
    bytes_per_ns_to_gbps,
    cachelines_spanned,
    format_ns,
    format_size,
    gbps_to_bytes_per_ns,
    ns_to_s,
    ns_to_us,
    parse_size,
    s_to_ns,
    transactions_per_second,
)


class TestParseSize:
    def test_plain_integer(self):
        assert parse_size("64") == 64
        assert parse_size(128) == 128

    def test_binary_suffixes(self):
        assert parse_size("8K") == 8 * KIB
        assert parse_size("64MiB") == 64 * MIB
        assert parse_size("1GiB") == GIB

    def test_decimal_suffixes(self):
        assert parse_size("1KB") == 1000
        assert parse_size("2MB") == 2_000_000

    def test_fractional(self):
        assert parse_size("1.5K") == 1536

    def test_whitespace_and_case(self):
        assert parse_size("  4 kib ") == 4 * KIB

    def test_invalid(self):
        with pytest.raises(ValidationError):
            parse_size("lots")
        with pytest.raises(ValidationError):
            parse_size("64Q")
        with pytest.raises(ValidationError):
            parse_size(-1)


class TestFormatSize:
    def test_round_trip_labels_match_paper_axes(self):
        assert format_size(4 * KIB) == "4K"
        assert format_size(64 * MIB) == "64M"
        assert format_size(1 * GIB) == "1G"

    def test_non_multiple_fall_back_to_bytes(self):
        assert format_size(100) == "100B"

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            format_size(-1)


class TestCachelines:
    def test_aligned_access(self):
        assert cachelines_spanned(0, 64) == 1
        assert cachelines_spanned(0, 128) == 2

    def test_offset_access_spans_extra_line(self):
        assert cachelines_spanned(32, 64) == 2

    def test_zero_size(self):
        assert cachelines_spanned(0, 0) == 0

    def test_default_line_is_64(self):
        assert CACHELINE_BYTES == 64

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            cachelines_spanned(-1, 64)


class TestAlignment:
    def test_align_up(self):
        assert align_up(65, 64) == 128
        assert align_up(64, 64) == 64

    def test_align_down(self):
        assert align_down(127, 64) == 64

    def test_bad_alignment(self):
        with pytest.raises(ValidationError):
            align_up(10, 0)
        with pytest.raises(ValidationError):
            align_down(10, -4)


class TestTimeAndBandwidth:
    def test_time_conversions(self):
        assert ns_to_us(1500) == 1.5
        assert ns_to_s(2e9) == 2.0
        assert s_to_ns(1.0) == 1e9

    def test_format_ns(self):
        assert format_ns(500) == "500ns"
        assert format_ns(1500) == "1.50us"
        assert format_ns(2_500_000) == "2.50ms"
        assert format_ns(3e9) == "3.000s"
        assert format_ns(-500) == "-500ns"

    def test_gbps_round_trip(self):
        assert bytes_per_ns_to_gbps(gbps_to_bytes_per_ns(40.0)) == pytest.approx(40.0)

    def test_bytes_over_time(self):
        # 1000 bytes in 100 ns -> 10 B/ns -> 80 Gb/s.
        assert bytes_over_time_to_gbps(1000, 100) == pytest.approx(80.0)

    def test_transactions_per_second(self):
        # 1000 transactions in 1 ms -> 1 million transactions per second.
        assert transactions_per_second(1000, 1e6) == pytest.approx(1e6)

    def test_invalid_durations(self):
        with pytest.raises(ValidationError):
            bytes_over_time_to_gbps(100, 0)
        with pytest.raises(ValidationError):
            transactions_per_second(100, -5)
