"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    AnalysisError,
    BenchmarkError,
    ConfigurationError,
    ReproError,
    SimulationError,
    UnknownProfileError,
    ValidationError,
)


class TestHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for error_type in (
            ConfigurationError,
            ValidationError,
            SimulationError,
            BenchmarkError,
            AnalysisError,
            UnknownProfileError,
        ):
            assert issubclass(error_type, ReproError)

    def test_validation_error_is_configuration_error(self):
        assert issubclass(ValidationError, ConfigurationError)

    def test_unknown_profile_error_is_configuration_error(self):
        assert issubclass(UnknownProfileError, ConfigurationError)

    def test_library_errors_catchable_with_one_clause(self):
        from repro.core.config import PCIeConfig

        with pytest.raises(ReproError):
            PCIeConfig(mps=42)


class TestUnknownProfileError:
    def test_message_lists_known_profiles(self):
        error = UnknownProfileError("BOGUS", ["A", "B"])
        assert "BOGUS" in str(error)
        assert "A" in str(error) and "B" in str(error)
        assert error.known == ["A", "B"]

    def test_without_known_list(self):
        error = UnknownProfileError("BOGUS")
        assert "BOGUS" in str(error)
        assert error.known == []
