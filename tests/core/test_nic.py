"""Tests for the NIC/driver interaction models (Figure 1 curves)."""

import pytest

from repro.core.config import PAPER_DEFAULT_CONFIG
from repro.core.ethernet import ETHERNET_40G
from repro.core.nic import (
    FIGURE1_MODELS,
    MODERN_NIC_DPDK,
    MODERN_NIC_KERNEL,
    SIMPLE_NIC,
    NicModel,
    model_by_name,
)
from repro.errors import ValidationError

CFG = PAPER_DEFAULT_CONFIG


class TestSimpleNic:
    def test_cannot_sustain_line_rate_at_small_frames(self):
        assert not SIMPLE_NIC.achieves_line_rate(64)
        assert not SIMPLE_NIC.achieves_line_rate(256)

    def test_sustains_line_rate_for_large_frames(self):
        assert SIMPLE_NIC.achieves_line_rate(1024)
        assert SIMPLE_NIC.achieves_line_rate(1500)

    def test_crossover_is_beyond_512_bytes(self):
        crossover = SIMPLE_NIC.line_rate_crossover()
        assert crossover is not None
        assert 512 <= crossover <= 832

    def test_throughput_far_below_raw_pcie_at_64b(self):
        from repro.core.bandwidth import effective_bidirectional_bandwidth_gbps

        raw = effective_bidirectional_bandwidth_gbps(64, CFG)
        assert SIMPLE_NIC.throughput_gbps(64) < raw * 0.6


class TestModernNics:
    def test_kernel_driver_beats_simple_nic(self):
        for size in (64, 256, 1024, 1500):
            assert MODERN_NIC_KERNEL.throughput_gbps(size) > SIMPLE_NIC.throughput_gbps(size)

    def test_dpdk_driver_beats_kernel_driver(self):
        for size in (64, 256, 1024):
            assert MODERN_NIC_DPDK.throughput_gbps(size) >= MODERN_NIC_KERNEL.throughput_gbps(size)

    def test_modern_crossovers_are_much_smaller(self):
        kernel = MODERN_NIC_KERNEL.line_rate_crossover()
        dpdk = MODERN_NIC_DPDK.line_rate_crossover()
        assert kernel is not None and kernel <= 256
        assert dpdk is not None and dpdk <= kernel

    def test_dpdk_differs_only_in_driver_behaviour(self):
        assert MODERN_NIC_DPDK.tx_descriptor_batch == MODERN_NIC_KERNEL.tx_descriptor_batch
        assert MODERN_NIC_DPDK.interrupts_enabled is False
        assert MODERN_NIC_DPDK.pointer_reads_enabled is False
        assert MODERN_NIC_KERNEL.interrupts_enabled is True


class TestNicModelMechanics:
    def test_with_creates_variant(self):
        variant = SIMPLE_NIC.with_(interrupt_moderation=8.0, name="moderated")
        assert variant.interrupt_moderation == 8.0
        assert SIMPLE_NIC.interrupt_moderation == 1.0
        assert variant.throughput_gbps(256) > SIMPLE_NIC.throughput_gbps(256)

    def test_invalid_batch_rejected(self):
        with pytest.raises(ValidationError):
            NicModel(name="bad", doorbell_batch=0.0)

    def test_throughput_sweep_matches_pointwise(self):
        sizes = [64, 256, 1024]
        sweep = dict(SIMPLE_NIC.throughput_sweep(sizes))
        for size in sizes:
            assert sweep[size] == pytest.approx(SIMPLE_NIC.throughput_gbps(size))

    def test_per_packet_wire_bytes_positive_both_directions(self):
        up, down = SIMPLE_NIC.per_packet_wire_bytes(512)
        assert up > 512 and down > 512

    def test_zero_packet_size_rejected(self):
        with pytest.raises(ValidationError):
            SIMPLE_NIC.throughput_gbps(0)

    def test_crossover_none_when_unreachable(self):
        crippled = SIMPLE_NIC.with_(name="crippled", doorbell_batch=1.0)
        assert crippled.line_rate_crossover(sizes=[64, 128]) is None


class TestModelLookup:
    def test_lookup_by_full_name(self):
        assert model_by_name("Simple NIC") is SIMPLE_NIC

    def test_lookup_by_alias(self):
        assert model_by_name("dpdk") is MODERN_NIC_DPDK
        assert model_by_name("kernel") is MODERN_NIC_KERNEL

    def test_unknown_name_rejected(self):
        with pytest.raises(ValidationError):
            model_by_name("quantum NIC")

    def test_figure1_models_ordered_simple_first(self):
        assert FIGURE1_MODELS[0] is SIMPLE_NIC


class TestAgainstEthernetReference:
    def test_achieves_line_rate_consistent_with_throughput(self):
        for size in (128, 512, 1500):
            expected = SIMPLE_NIC.throughput_gbps(size) >= (
                ETHERNET_40G.frame_throughput_gbps(size)
            )
            assert SIMPLE_NIC.achieves_line_rate(size) == expected
