"""Tests for PCIe endpoint configuration validation and presets."""

import pytest

from repro.core.config import (
    GEN3_X16_CONFIG,
    PAPER_DEFAULT_CONFIG,
    PCIeConfig,
    config_presets,
    get_config,
)
from repro.core.link import LinkConfig, PCIeGeneration
from repro.errors import ValidationError


class TestPaperDefaultConfig:
    def test_matches_paper_reference(self):
        assert PAPER_DEFAULT_CONFIG.generation is PCIeGeneration.GEN3
        assert PAPER_DEFAULT_CONFIG.lanes == 8
        assert PAPER_DEFAULT_CONFIG.mps == 256
        assert PAPER_DEFAULT_CONFIG.mrrs == 512
        assert PAPER_DEFAULT_CONFIG.addr64 is True
        assert PAPER_DEFAULT_CONFIG.ecrc is False

    def test_describe_mentions_key_parameters(self):
        text = PAPER_DEFAULT_CONFIG.describe()
        assert "Gen3 x8" in text
        assert "MPS=256B" in text
        assert "MRRS=512B" in text


class TestValidation:
    def test_invalid_mps_rejected(self):
        with pytest.raises(ValidationError):
            PCIeConfig(mps=200)

    def test_invalid_mrrs_rejected(self):
        with pytest.raises(ValidationError):
            PCIeConfig(mrrs=100)

    def test_invalid_rcb_rejected(self):
        with pytest.raises(ValidationError):
            PCIeConfig(rcb=32)

    def test_invalid_tag_limit_rejected(self):
        with pytest.raises(ValidationError):
            PCIeConfig(tag_limit=0)

    def test_all_valid_mps_values(self):
        for mps in (128, 256, 512, 1024, 2048, 4096):
            assert PCIeConfig(mps=mps).mps == mps


class TestWith:
    def test_with_replaces_field(self):
        changed = PAPER_DEFAULT_CONFIG.with_(mps=512)
        assert changed.mps == 512
        assert changed.mrrs == PAPER_DEFAULT_CONFIG.mrrs

    def test_with_does_not_mutate_original(self):
        PAPER_DEFAULT_CONFIG.with_(mps=512)
        assert PAPER_DEFAULT_CONFIG.mps == 256

    def test_with_validates(self):
        with pytest.raises(ValidationError):
            PAPER_DEFAULT_CONFIG.with_(mps=123)


class TestConvenienceAccessors:
    def test_tlp_bandwidth_delegates_to_link(self):
        assert PAPER_DEFAULT_CONFIG.tlp_bandwidth_gbps == pytest.approx(
            PAPER_DEFAULT_CONFIG.link.tlp_bandwidth_gbps
        )

    def test_x16_has_double_bandwidth(self):
        assert GEN3_X16_CONFIG.tlp_bandwidth_gbps == pytest.approx(
            2 * PAPER_DEFAULT_CONFIG.tlp_bandwidth_gbps
        )


class TestPresets:
    def test_gen3x8_preset_is_paper_default(self):
        assert get_config("gen3x8") == PAPER_DEFAULT_CONFIG

    def test_lookup_is_case_and_separator_insensitive(self):
        assert get_config("Gen3_x8") == PAPER_DEFAULT_CONFIG
        assert get_config("GEN4X8").generation is PCIeGeneration.GEN4

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValidationError):
            get_config("gen9x1")

    def test_all_presets_are_valid_configs(self):
        for name, config in config_presets().items():
            assert isinstance(config, PCIeConfig), name

    def test_gen2_preset_uses_8b10b_rates(self):
        gen2 = get_config("gen2x8")
        assert gen2.physical_bandwidth_gbps < PAPER_DEFAULT_CONFIG.physical_bandwidth_gbps
