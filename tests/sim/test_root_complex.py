"""Tests for the root complex model (cache, IOMMU, NUMA composition)."""

import pytest

from repro.errors import ValidationError
from repro.sim.cache import CacheState, SetAssociativeCache
from repro.sim.iommu import Iommu, IommuConfig
from repro.sim.noise import TightNoise
from repro.sim.numa import NumaTopology
from repro.sim.rng import SimRng
from repro.sim.root_complex import RootComplex, RootComplexConfig
from repro.units import KIB


def make_root_complex(**kwargs) -> RootComplex:
    """A root complex with zero noise so latencies are deterministic."""
    defaults = dict(
        config=RootComplexConfig(base_read_ns=400.0),
        cache=SetAssociativeCache(64 * KIB, ways=8, ddio_fraction=0.25),
        noise=TightNoise(sigma_ns=0.0, tail_probability=0.0),
        rng=SimRng(1),
    )
    defaults.update(kwargs)
    return RootComplex(**defaults)


class TestReads:
    def test_cold_read_pays_dram_penalty(self):
        rc = make_root_complex()
        rc.prepare_cache(CacheState.COLD, window_lines=64)
        access = rc.read(0, 64)
        assert not access.cache_hit
        assert access.latency_ns == pytest.approx(400.0 + 70.0)

    def test_warm_read_hits_llc(self):
        rc = make_root_complex()
        rc.prepare_cache(CacheState.HOST_WARM, window_lines=64)
        access = rc.read(0, 64)
        assert access.cache_hit
        assert access.latency_ns == pytest.approx(400.0)

    def test_warm_discount_is_the_dram_penalty(self):
        rc = make_root_complex()
        rc.prepare_cache(CacheState.COLD, window_lines=64)
        cold = rc.read(64, 64).latency_ns
        rc.prepare_cache(CacheState.HOST_WARM, window_lines=64)
        warm = rc.read(64, 64).latency_ns
        assert cold - warm == pytest.approx(70.0)

    def test_invalid_access_rejected(self):
        rc = make_root_complex()
        with pytest.raises(ValidationError):
            rc.read(-1, 64)
        with pytest.raises(ValidationError):
            rc.read(0, 0)


class TestWritesAndWriteRead:
    def test_posted_write_commit_time(self):
        rc = make_root_complex()
        rc.prepare_cache(CacheState.COLD, window_lines=64)
        access = rc.write(0, 64)
        assert access.latency_ns >= rc.config.write_commit_ns

    def test_write_read_faster_than_miss_read_plus_write(self):
        # The read after a write always finds the data in the cache.
        rc = make_root_complex()
        rc.prepare_cache(CacheState.COLD, window_lines=64)
        wrrd = rc.write_read(0, 64)
        assert wrrd.latency_ns < 400.0 + 70.0 + 400.0

    def test_write_read_ddio_overflow_costs_writeback(self):
        rc = make_root_complex()
        # Window much larger than the DDIO slice of the small test cache.
        rc.prepare_cache(CacheState.COLD, window_lines=2048)
        baseline = make_root_complex()
        baseline.prepare_cache(CacheState.COLD, window_lines=16)
        small = baseline.write_read(0, 64).latency_ns
        # Fill the DDIO ways of set 0 first so the next allocation evicts.
        step = rc.cache.sets * 64
        for index in range(4):
            rc.write(index * step, 64)
        large = rc.write_read(4 * step, 64).latency_ns
        assert large - small == pytest.approx(70.0)


class TestIommuIntegration:
    def test_iotlb_miss_adds_walk_latency(self):
        iommu = Iommu(IommuConfig(enabled=True, walk_latency_ns=330.0))
        rc = make_root_complex(iommu=iommu)
        rc.prepare_cache(CacheState.HOST_WARM, window_lines=64)
        miss = rc.read(0, 64)
        hit = rc.read(0, 64)
        assert miss.latency_ns - hit.latency_ns == pytest.approx(330.0)
        assert not miss.iotlb_hit and hit.iotlb_hit

    def test_walker_occupancy_reported_only_on_miss(self):
        iommu = Iommu(IommuConfig(enabled=True))
        rc = make_root_complex(iommu=iommu)
        rc.prepare_cache(CacheState.HOST_WARM, window_lines=64)
        assert rc.read(0, 64).walker_occupancy_ns > 0
        assert rc.read(0, 64).walker_occupancy_ns == 0.0


class TestNumaIntegration:
    def test_remote_buffer_adds_constant_latency(self):
        rc = make_root_complex(numa=NumaTopology.dual_socket(remote_penalty_ns=100.0))
        rc.prepare_cache(CacheState.HOST_WARM, window_lines=64)
        local = rc.read(0, 64, buffer_node=0)
        remote = rc.read(64, 64, buffer_node=1)
        assert remote.latency_ns - local.latency_ns == pytest.approx(100.0)
        assert remote.remote and not local.remote

    def test_unknown_node_rejected(self):
        rc = make_root_complex(numa=NumaTopology.dual_socket())
        with pytest.raises(ValidationError):
            rc.read(0, 64, buffer_node=7)


class TestIngressOccupancy:
    def test_ingress_occupancy_scales_with_tlp_count(self):
        rc = make_root_complex(
            config=RootComplexConfig(base_read_ns=400.0, per_tlp_ingress_ns=10.0)
        )
        rc.prepare_cache(CacheState.HOST_WARM, window_lines=64)
        small = rc.read(0, 64).ingress_occupancy_ns
        large = rc.read(0, 1024).ingress_occupancy_ns
        assert small == pytest.approx(10.0)
        assert large == pytest.approx(40.0)

    def test_multi_line_reads_touch_following_lines(self):
        cache = SetAssociativeCache(64 * KIB, ways=8)
        rc = make_root_complex(cache=cache)
        rc.prepare_cache(CacheState.COLD, window_lines=64)
        rc.write(0, 256)  # allocates four lines via DDIO
        assert cache.resident(0) and cache.resident(3)
