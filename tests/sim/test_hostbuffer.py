"""Tests for the Figure 3 host-buffer layout and access-pattern generation."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.sim.hostbuffer import AccessPattern, HostBuffer
from repro.sim.rng import SimRng
from repro.units import CACHELINE_BYTES, KIB, MIB


class TestUnitLayout:
    def test_aligned_unit_is_transfer_rounded_to_cacheline(self):
        buffer = HostBuffer(window_size=8 * KIB, transfer_size=64)
        assert buffer.unit_size == 64
        assert buffer.unit_count == 128

    def test_sub_cacheline_transfer_still_uses_whole_line(self):
        buffer = HostBuffer(window_size=4 * KIB, transfer_size=8)
        assert buffer.unit_size == CACHELINE_BYTES
        assert buffer.cachelines_per_unit == 1

    def test_offset_grows_unit(self):
        # Figure 3: unit = offset + transfer size rounded up to a cache line,
        # so every DMA touches the same number of lines.
        buffer = HostBuffer(window_size=8 * KIB, transfer_size=64, offset=32)
        assert buffer.unit_size == 128
        assert buffer.cachelines_per_unit == 2

    def test_window_cachelines(self):
        buffer = HostBuffer(window_size=8 * KIB, transfer_size=128)
        assert buffer.window_cachelines == buffer.unit_count * 2

    def test_unit_addresses_include_offset(self):
        buffer = HostBuffer(window_size=8 * KIB, transfer_size=64, offset=16)
        assert buffer.unit_address(0) == 16
        assert buffer.unit_address(1) == buffer.unit_size + 16

    def test_unit_address_out_of_range(self):
        buffer = HostBuffer(window_size=4 * KIB, transfer_size=64)
        with pytest.raises(ValidationError):
            buffer.unit_address(buffer.unit_count)

    def test_window_pages_4k(self):
        buffer = HostBuffer(window_size=1 * MIB, transfer_size=64)
        assert buffer.window_pages == 256

    def test_window_pages_superpage(self):
        buffer = HostBuffer(window_size=4 * MIB, transfer_size=64, page_size=2 * MIB)
        assert buffer.window_pages == 2

    def test_describe_contains_layout_fields(self):
        info = HostBuffer(window_size=8 * KIB, transfer_size=64).describe()
        for key in ("window_size", "unit_size", "unit_count", "window_pages"):
            assert key in info


class TestValidation:
    def test_window_must_hold_one_unit(self):
        with pytest.raises(ValidationError):
            HostBuffer(window_size=64, transfer_size=128)

    def test_offset_bounds(self):
        with pytest.raises(ValidationError):
            HostBuffer(window_size=4 * KIB, transfer_size=64, offset=64)

    def test_negative_sizes_rejected(self):
        with pytest.raises(ValidationError):
            HostBuffer(window_size=-1, transfer_size=64)
        with pytest.raises(ValidationError):
            HostBuffer(window_size=4 * KIB, transfer_size=0)

    def test_page_size_must_be_cacheline_multiple(self):
        with pytest.raises(ValidationError):
            HostBuffer(window_size=4 * KIB, transfer_size=64, page_size=1000)

    def test_total_size_must_cover_window(self):
        with pytest.raises(ValidationError):
            HostBuffer(window_size=8 * KIB, transfer_size=64, total_size=4 * KIB)


class TestAccessStreams:
    def test_random_addresses_within_window(self):
        buffer = HostBuffer(window_size=64 * KIB, transfer_size=64)
        addresses = buffer.access_addresses(5000, "random", SimRng(1))
        assert addresses.min() >= 0
        assert addresses.max() + 64 <= 64 * KIB

    def test_random_addresses_are_unit_aligned(self):
        buffer = HostBuffer(window_size=64 * KIB, transfer_size=192, offset=8)
        addresses = buffer.access_addresses(1000, "random", SimRng(1))
        assert ((addresses - 8) % buffer.unit_size == 0).all()

    def test_sequential_pattern_wraps(self):
        buffer = HostBuffer(window_size=4 * KIB, transfer_size=64)
        addresses = buffer.access_addresses(buffer.unit_count + 3, "sequential")
        assert addresses[0] == addresses[buffer.unit_count]

    def test_random_covers_most_units(self):
        buffer = HostBuffer(window_size=8 * KIB, transfer_size=64)
        addresses = buffer.access_addresses(5000, AccessPattern.RANDOM, SimRng(3))
        units_seen = len(set(addresses.tolist()))
        assert units_seen > 0.9 * buffer.unit_count

    def test_zero_count(self):
        buffer = HostBuffer(window_size=4 * KIB, transfer_size=64)
        assert buffer.access_addresses(0).size == 0

    def test_negative_count_rejected(self):
        buffer = HostBuffer(window_size=4 * KIB, transfer_size=64)
        with pytest.raises(ValidationError):
            buffer.access_addresses(-1)

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValidationError):
            AccessPattern.from_value("zigzag")

    def test_reproducible_with_same_seed(self):
        buffer = HostBuffer(window_size=64 * KIB, transfer_size=64)
        a = buffer.access_addresses(100, "random", SimRng(9))
        b = buffer.access_addresses(100, "random", SimRng(9))
        assert np.array_equal(a, b)
