"""Tests for the deterministic RNG wrapper."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.sim.rng import DEFAULT_SEED, SimRng


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = SimRng(42).uniform_indices("x", 100, 1000)
        b = SimRng(42).uniform_indices("x", 100, 1000)
        assert np.array_equal(a, b)

    def test_different_seed_different_stream(self):
        a = SimRng(1).uniform_indices("x", 100, 1000)
        b = SimRng(2).uniform_indices("x", 100, 1000)
        assert not np.array_equal(a, b)

    def test_named_streams_are_independent(self):
        rng = SimRng(7)
        a = rng.uniform_indices("a", 50, 100)
        rng2 = SimRng(7)
        # Drawing from another stream first must not shift stream "a".
        rng2.uniform_indices("b", 1000, 100)
        b = rng2.uniform_indices("a", 50, 100)
        assert np.array_equal(a, b)

    def test_stream_is_stateful_within_instance(self):
        rng = SimRng(3)
        first = rng.uniform_indices("s", 10, 100)
        second = rng.uniform_indices("s", 10, 100)
        assert not np.array_equal(first, second)

    def test_default_seed_exposed(self):
        assert SimRng().seed == DEFAULT_SEED


class TestDraws:
    def test_uniform_indices_bounds(self):
        draws = SimRng(5).uniform_indices("x", 10_000, 37)
        assert draws.min() >= 0
        assert draws.max() < 37

    def test_gaussian_non_negative(self):
        draws = SimRng(5).gaussian("g", 10.0, 50.0, 10_000)
        assert (draws >= 0).all()

    def test_exponential_mean(self):
        draws = SimRng(5).exponential("e", 100.0, 50_000)
        assert draws.mean() == pytest.approx(100.0, rel=0.05)

    def test_bernoulli_probability(self):
        draws = SimRng(5).bernoulli("b", 0.25, 50_000)
        assert draws.mean() == pytest.approx(0.25, abs=0.02)

    def test_invalid_arguments(self):
        rng = SimRng(5)
        with pytest.raises(ValidationError):
            rng.uniform_indices("x", 10, 0)
        with pytest.raises(ValidationError):
            rng.uniform_indices("x", -1, 10)
        with pytest.raises(ValidationError):
            rng.bernoulli("b", 1.5, 10)
        with pytest.raises(ValidationError):
            SimRng("not-a-seed")  # type: ignore[arg-type]


class TestCrossProcessDeterminism:
    def test_named_streams_identical_in_a_fresh_interpreter(self):
        # Sub-stream keys must not depend on Python's salted hash(): the
        # same seed has to yield the same stream in another process (CLI
        # re-invocations, process-pool workers).
        import subprocess
        import sys

        snippet = (
            "from repro.sim.rng import SimRng;"
            "print(int(SimRng(42).spawn('workload.imix.tx').integers(0, 2**31)))"
        )
        draws = {
            subprocess.run(
                [sys.executable, "-c", snippet],
                capture_output=True, text=True, check=True,
            ).stdout.strip()
            for _ in range(2)
        }
        here = int(SimRng(42).spawn("workload.imix.tx").integers(0, 2**31))
        assert draws == {str(here)}
