"""Tests for the IOMMU / IOTLB model."""

import pytest

from repro.errors import ValidationError
from repro.sim.iommu import Iommu, IommuConfig, Iotlb
from repro.units import KIB, MIB


class TestIotlb:
    def test_insert_then_lookup_hits(self):
        tlb = Iotlb(4)
        tlb.insert(10)
        assert tlb.lookup(10) is True

    def test_lookup_miss(self):
        assert Iotlb(4).lookup(1) is False

    def test_lru_eviction_order(self):
        tlb = Iotlb(2)
        tlb.insert(1)
        tlb.insert(2)
        tlb.lookup(1)  # make 2 the LRU entry
        evicted = tlb.insert(3)
        assert evicted == 2
        assert 1 in tlb and 3 in tlb and 2 not in tlb

    def test_reinsert_does_not_evict(self):
        tlb = Iotlb(2)
        tlb.insert(1)
        tlb.insert(2)
        assert tlb.insert(1) is None
        assert len(tlb) == 2

    def test_invalidate_all(self):
        tlb = Iotlb(4)
        tlb.insert(1)
        tlb.invalidate_all()
        assert len(tlb) == 0

    def test_zero_entries_rejected(self):
        with pytest.raises(ValidationError):
            Iotlb(0)


class TestIommuConfig:
    def test_reach_is_entries_times_page_size(self):
        config = IommuConfig(enabled=True, iotlb_entries=64, page_size=4 * KIB)
        assert config.reach_bytes == 256 * KIB

    def test_superpage_reach(self):
        config = IommuConfig(enabled=True, iotlb_entries=64, page_size=2 * MIB)
        assert config.reach_bytes == 128 * MIB

    def test_invalid_page_size(self):
        with pytest.raises(ValidationError):
            IommuConfig(page_size=8 * KIB)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValidationError):
            IommuConfig(walk_latency_ns=-1)


class TestIommuTranslate:
    def test_disabled_iommu_is_free(self):
        iommu = Iommu(IommuConfig(enabled=False))
        result = iommu.translate(123456)
        assert result.hit is True
        assert result.latency_ns == 0.0
        assert iommu.stats.translations == 0

    def test_first_access_misses_then_hits(self):
        iommu = Iommu(IommuConfig(enabled=True))
        first = iommu.translate(0)
        second = iommu.translate(8)  # same 4 KiB page
        assert first.hit is False
        assert first.latency_ns == pytest.approx(330.0)
        assert second.hit is True
        assert second.latency_ns == 0.0

    def test_miss_reports_walker_occupancy(self):
        iommu = Iommu(IommuConfig(enabled=True))
        assert iommu.translate(0).walker_occupancy_ns > 0
        assert iommu.translate(64).walker_occupancy_ns == 0.0

    def test_capacity_eviction_produces_misses(self):
        iommu = Iommu(IommuConfig(enabled=True, iotlb_entries=4))
        for page in range(8):
            iommu.translate(page * 4 * KIB)
        # Re-touching the first page misses again: it was evicted.
        assert iommu.translate(0).hit is False

    def test_stats_rates(self):
        iommu = Iommu(IommuConfig(enabled=True))
        iommu.translate(0)
        iommu.translate(0)
        assert iommu.stats.translations == 2
        assert iommu.stats.hit_rate == pytest.approx(0.5)
        assert iommu.stats.miss_rate == pytest.approx(0.5)

    def test_warm_preloads_translations(self):
        iommu = Iommu(IommuConfig(enabled=True))
        iommu.warm([0, 4 * KIB, 8 * KIB])
        assert iommu.translate(4 * KIB).hit is True

    def test_invalidate_clears_and_counts(self):
        iommu = Iommu(IommuConfig(enabled=True))
        iommu.translate(0)
        iommu.invalidate()
        assert iommu.translate(0).hit is False
        assert iommu.stats.invalidations == 1

    def test_negative_address_rejected(self):
        with pytest.raises(ValidationError):
            Iommu(IommuConfig(enabled=True)).translate(-1)


class TestExpectedMissRate:
    def test_window_within_reach_has_no_misses(self):
        iommu = Iommu(IommuConfig(enabled=True, iotlb_entries=64))
        assert iommu.expected_miss_rate(64) == 0.0
        assert iommu.expected_miss_rate(32) == 0.0

    def test_miss_rate_grows_with_window(self):
        iommu = Iommu(IommuConfig(enabled=True, iotlb_entries=64))
        assert iommu.expected_miss_rate(128) == pytest.approx(0.5)
        assert iommu.expected_miss_rate(640) == pytest.approx(0.9)

    def test_disabled_iommu_has_zero_miss_rate(self):
        iommu = Iommu(IommuConfig(enabled=False))
        assert iommu.expected_miss_rate(10_000) == 0.0

    def test_invalid_window(self):
        with pytest.raises(ValidationError):
            Iommu().expected_miss_rate(0)
