"""Tests for the shared-host fabric subsystem (repro.sim.fabric).

The two load-bearing contracts:

* **Solo equivalence** — a fabric with one device takes the exact
  single-device code path and reproduces ``tests/golden/nicsim_seeded.json``
  bit for bit (the acceptance criterion of the contention subsystem).
* **Contention is real and arbitrable** — with two devices the shared
  walker/ingress degrade a victim under fcfs, and per-device arbitration
  (rr/wrr) restores it, without breaking any conservation law.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench.nicsim import NicSimParams, run_nicsim_benchmark
from repro.errors import ValidationError
from repro.sim.fabric import (
    ContentionResult,
    FabricConfig,
    FabricDevice,
    FabricSimulator,
    SharedHost,
)
from repro.sim.nichost import DEVICE_ADDRESS_STRIDE, NicHostConfig
from repro.units import KIB, MIB
from repro.workloads import build_workload

GOLDEN_PATH = Path(__file__).parent.parent / "golden" / "nicsim_seeded.json"


def _golden_device_and_fabric() -> tuple[FabricDevice, FabricConfig, dict]:
    golden = json.loads(GOLDEN_PATH.read_text())
    params = NicSimParams.from_dict(golden["params"])
    workload = build_workload(
        params.workload,
        size=params.packet_size,
        load_gbps=params.offered_load_gbps,
        duplex=params.duplex,
    )
    device = FabricDevice(
        workload=workload,
        model=params.model,
        packets=params.packets,
        ring_depth=params.ring_depth,
        rx_backpressure=params.rx_backpressure,
        payload_window=params.payload_window,
        payload_cache_state=params.payload_cache_state,
        payload_placement=params.payload_placement,
    )
    fabric = FabricConfig(
        system=params.system,
        iommu_enabled=params.iommu_enabled,
        iommu_page_size=params.iommu_page_size,
    )
    return device, fabric, golden


def _two_device_run(arbiter: str, weights=None, *, seed: int = 11) -> ContentionResult:
    victim = FabricDevice(
        workload=build_workload("fixed", size=512, load_gbps=5.0, duplex=True),
        model="dpdk",
        packets=400,
        name="victim",
        ring_depth=64,
        payload_window=256 * KIB,
    )
    aggressor = FabricDevice(
        workload=build_workload("imix", load_gbps=None, duplex=True),
        model="kernel",
        packets=2500,
        name="aggressor",
        payload_window=64 * MIB,
    )
    fabric = FabricConfig(
        system="NFP6000-HSW",
        iommu_enabled=True,
        arbiter=arbiter,
        weights=weights,
    )
    return FabricSimulator([victim, aggressor], fabric).run(seed=seed)


class TestSoloEquivalence:
    def test_single_device_fabric_matches_golden_bit_for_bit(self):
        device, fabric, golden = _golden_device_and_fabric()
        result = FabricSimulator([device], fabric).run(
            seed=golden["params"]["seed"]
        )
        assert len(result.devices) == 1
        solo = result.devices[0]
        assert solo.name == "dev0"
        # No arbitration layer exists for one device.
        assert solo.ingress is None and solo.walker is None
        assert solo.result.as_dict() == golden["result"]

    def test_single_device_fabric_matches_live_nicsim_run(self):
        device, fabric, golden = _golden_device_and_fabric()
        params = NicSimParams.from_dict(golden["params"])
        plain = run_nicsim_benchmark(params)
        fabric_run = FabricSimulator([device], fabric).run(seed=params.seed)
        assert fabric_run.devices[0].result == plain


class TestContention:
    def test_two_devices_conserve_packets_and_bytes_per_device(self):
        result = _two_device_run("fcfs")
        assert {record.name for record in result.devices} == {
            "victim",
            "aggressor",
        }
        for record in result.devices:
            for path in (record.result.tx, record.result.rx):
                assert path is not None
                assert (
                    path.delivered_packets + path.drops + path.in_flight
                    == path.offered_packets
                )
                assert path.payload_bytes + path.dropped_bytes <= path.offered_bytes
                assert path.ring.max_occupancy <= path.ring.depth
            # Arbitration counters exist and are self-consistent.
            for port in (record.ingress, record.walker):
                assert port is not None
                assert port.waited <= port.requests
                assert port.wait_ns_total >= 0.0
        assert result.duration_ns > 0.0

    def test_same_seed_reproduces_identical_results(self):
        first = _two_device_run("wrr", (8.0, 1.0))
        second = _two_device_run("wrr", (8.0, 1.0))
        assert first == second

    def test_fcfs_degrades_victim_and_wrr_protects_it(self):
        fcfs = _two_device_run("fcfs")
        wrr = _two_device_run("wrr", (8.0, 1.0))
        fcfs_victim = fcfs.device("victim").result
        wrr_victim = wrr.device("victim").result
        assert fcfs_victim.tx.latency is not None
        assert wrr_victim.tx.latency is not None
        # The shared walker hurts the victim under fcfs; per-device queues
        # with victim-favouring weights restore it by a wide margin.
        assert fcfs_victim.tx.latency.p99 > 2.0 * wrr_victim.tx.latency.p99
        # The victim's sparse requests barely wait under wrr.
        assert (
            wrr.device("victim").walker.wait_ns_mean
            < fcfs.device("victim").walker.wait_ns_mean
        )

    def test_walker_contention_shows_in_arbiter_counters(self):
        result = _two_device_run("fcfs")
        aggressor = result.device("aggressor")
        # The aggressor's huge window forces walks: it must have queued.
        assert aggressor.walker.requests > 0
        assert aggressor.walker.busy_ns_total > 0.0

    def test_result_round_trips_through_dict(self):
        result = _two_device_run("rr")
        rebuilt = ContentionResult.from_dict(result.as_dict())
        assert rebuilt == result
        assert rebuilt.as_dict() == result.as_dict()

    def test_device_lookup_by_name(self):
        result = _two_device_run("rr")
        assert result.device("victim").name == "victim"
        with pytest.raises(ValidationError):
            result.device("nobody")


class TestValidation:
    def test_device_names_must_be_unique(self):
        workload = build_workload("fixed", size=512, load_gbps=5.0)
        devices = [
            FabricDevice(workload=workload, packets=10, name="twin"),
            FabricDevice(workload=workload, packets=10, name="twin"),
        ]
        with pytest.raises(ValidationError):
            FabricSimulator(devices)

    def test_weights_must_match_device_count(self):
        workload = build_workload("fixed", size=512, load_gbps=5.0)
        devices = [FabricDevice(workload=workload, packets=10)]
        with pytest.raises(ValidationError):
            FabricSimulator(
                devices, FabricConfig(arbiter="wrr", weights=(1.0, 2.0))
            )

    def test_weights_require_the_wrr_arbiter(self):
        with pytest.raises(ValidationError):
            FabricConfig(arbiter="rr", weights=(1.0, 2.0))

    def test_unknown_arbiter_rejected(self):
        with pytest.raises(ValidationError):
            FabricConfig(arbiter="lottery")

    def test_empty_fabric_rejected(self):
        with pytest.raises(ValidationError):
            FabricSimulator([])

    def test_shared_host_rejects_mixed_cache_states(self):
        fabric = FabricConfig()
        configs = [
            NicHostConfig(system=fabric.system, payload_cache_state="host_warm"),
            NicHostConfig(system=fabric.system, payload_cache_state="cold"),
        ]
        with pytest.raises(ValidationError):
            SharedHost(fabric, configs, [512, 512], seed=1)

    def test_shared_host_couplings_use_disjoint_regions(self):
        fabric = FabricConfig(iommu_enabled=True)
        configs = [
            NicHostConfig(
                system=fabric.system,
                iommu_enabled=True,
                payload_window=256 * KIB,
            )
            for _ in range(2)
        ]
        shared = SharedHost(fabric, configs, [256, 256], seed=3)
        first, second = shared.couplings
        assert (
            second.payload_buffer.base_address
            - first.payload_buffer.base_address
            == DEVICE_ADDRESS_STRIDE
        )
        # Both couplings share one host, one payload root complex and one
        # descriptor root complex — that is the whole point.
        assert first.host is second.host
        assert first.payload_rc is second.payload_rc
        assert first.descriptor_rc is second.descriptor_rc


class TestTopologyFabric:
    """Switch-tree topologies, DDIO partitioning and sliced arbitration."""

    def _run(self, *, seed: int = 11, **config):
        victim = FabricDevice(
            workload=build_workload("fixed", size=512, load_gbps=5.0, duplex=True),
            model="dpdk",
            packets=300,
            name="victim",
            ring_depth=64,
            payload_window=256 * KIB,
            dma_tags=12,
        )
        aggressor = FabricDevice(
            workload=build_workload("imix", load_gbps=None, duplex=True),
            model="kernel",
            packets=2000,
            name="aggressor",
            payload_window=64 * MIB,
        )
        fabric = FabricConfig(
            system="NFP6000-HSW", iommu_enabled=True, **config
        )
        return FabricSimulator([victim, aggressor], fabric).run(seed=seed)

    def test_explicit_flat_topology_is_bit_identical_to_implicit(self):
        implicit = self._run(arbiter="fcfs")
        explicit = self._run(
            arbiter="fcfs", topology="victim=root,aggressor=root"
        )
        assert explicit == implicit
        assert explicit.topology is None  # flat canonicalises to None
        assert explicit.topology_depth == 1

    def test_own_root_port_isolates_the_victim_even_under_fcfs(self):
        shared_switch = self._run(
            arbiter="fcfs", topology="victim=sw0,aggressor=sw0,sw0=root"
        )
        own_port = self._run(
            arbiter="fcfs", topology="victim=root,aggressor=sw0,sw0=root"
        )
        assert shared_switch.topology_depth == 2
        assert own_port.topology_depth == 2
        shared_p99 = shared_switch.device("victim").result.tx.latency.p99
        own_p99 = own_port.device("victim").result.tx.latency.p99
        # The credit-flow-controlled switch keeps the aggressor's backlog
        # away from the root: the victim's tail collapses back.
        assert own_p99 < shared_p99 / 2
        # Conservation still holds for every device behind any topology.
        for result in (shared_switch, own_port):
            for record in result.devices:
                for path in (record.result.tx, record.result.rx):
                    assert (
                        path.delivered_packets + path.drops + path.in_flight
                        == path.offered_packets
                    )

    def test_ddio_partition_restores_victim_ring_hit_rate(self):
        shared = self._run(arbiter="fcfs")
        partitioned = self._run(arbiter="fcfs", ddio_partition=(1.0, 1.0))
        shared_hit = shared.device("victim").result.host.descriptor_cache_hit_rate
        partitioned_hit = (
            partitioned.device("victim").result.host.descriptor_cache_hit_rate
        )
        # Shared regime: the aggressor's 64 MiB window squeezes the
        # victim's rings out of the LLC.  Partitioned: solo-like hits.
        assert shared_hit < 0.5
        assert partitioned_hit > 0.95
        assert partitioned.ddio_partition == (1.0, 1.0)

    def test_sliced_arbitration_tightens_the_victim_wait_tail(self):
        wrr = self._run(arbiter="wrr", weights=(8.0, 1.0))
        sliced = self._run(
            arbiter="sliced", weights=(8.0, 1.0), quantum_ns=16.0
        )
        assert sliced.quantum_ns == 16.0
        assert (
            sliced.device("victim").walker.wait_ns_max
            < wrr.device("victim").walker.wait_ns_max
        )

    def test_topology_result_round_trips_through_dict(self):
        result = self._run(
            arbiter="sliced",
            weights=(8.0, 1.0),
            quantum_ns=16.0,
            topology="victim=root,aggressor=sw0,sw0=root",
            ddio_partition=(3.0, 1.0),
        )
        rebuilt = ContentionResult.from_dict(result.as_dict())
        assert rebuilt == result
        assert rebuilt.topology == "victim=root,aggressor=sw0,sw0=root"
        assert rebuilt.quantum_ns == 16.0
        assert rebuilt.ddio_partition == (3.0, 1.0)

    def test_partition_allows_mixed_cache_states(self):
        fabric = FabricConfig(ddio_partition=(1.0, 1.0))
        configs = [
            NicHostConfig(system=fabric.system, payload_cache_state="host_warm"),
            NicHostConfig(system=fabric.system, payload_cache_state="cold"),
        ]
        shared = SharedHost(fabric, configs, [512, 512], seed=1)
        assert shared.partitioned is True

    def test_simulator_validates_topology_and_partition(self):
        workload = build_workload("fixed", size=512, load_gbps=5.0)
        devices = [
            FabricDevice(workload=workload, packets=10, name="a"),
            FabricDevice(workload=workload, packets=10, name="b"),
        ]
        with pytest.raises(ValidationError):
            FabricSimulator(
                devices, FabricConfig(topology="a=root")  # b unattached
            )
        with pytest.raises(ValidationError):
            FabricSimulator(
                devices, FabricConfig(ddio_partition=(1.0, 1.0, 1.0))
            )
        with pytest.raises(ValidationError):
            FabricConfig(quantum_ns=16.0)  # fcfs ignores quanta
        with pytest.raises(ValidationError):
            FabricConfig(arbiter="sliced", quantum_ns=-2.0)


class TestFaithfulCacheFabric:
    """The line-accurate cache substrate behind ``cache_model="faithful"``."""

    def _run(self, *, ddio_partition=None, seed: int = 11):
        victim = FabricDevice(
            workload=build_workload("fixed", size=512, load_gbps=5.0, duplex=True),
            model="dpdk",
            packets=150,
            name="victim",
            ring_depth=64,
            payload_window=256 * KIB,
        )
        aggressor = FabricDevice(
            workload=build_workload("imix", load_gbps=None, duplex=True),
            model="kernel",
            packets=600,
            name="aggressor",
            payload_window=1 * MIB,
            payload_cache_state="device_warm",
        )
        fabric = FabricConfig(
            cache_model="faithful",
            ddio_partition=ddio_partition,
        )
        return FabricSimulator([victim, aggressor], fabric).run(seed=seed)

    def test_faithful_fabric_runs_and_conserves(self):
        result = self._run()
        for record in result.devices:
            for path in (record.result.tx, record.result.rx):
                assert (
                    path.delivered_packets + path.drops + path.in_flight
                    == path.offered_packets
                )
        # Real-address warming: the victim's host-warm window and rings
        # are resident, so its reads overwhelmingly hit.
        victim = result.device("victim").result.host
        assert victim.descriptor_cache_hit_rate > 0.9
        assert victim.payload_cache_hit_rate > 0.9

    def test_faithful_partition_uses_per_owner_way_budgets(self):
        from repro.sim.cache import SetAssociativeCache
        from repro.sim.fabric import SharedHost

        fabric = FabricConfig(
            cache_model="faithful", ddio_partition=(1.0, 1.0)
        )
        configs = [
            NicHostConfig(system=fabric.system, payload_window=256 * KIB)
            for _ in range(2)
        ]
        shared = SharedHost(fabric, configs, [64, 64], seed=3)
        payload_cache = shared.host.root_complex.cache
        descriptor_cache = shared.descriptor_rc.cache
        assert isinstance(payload_cache, SetAssociativeCache)
        assert isinstance(descriptor_cache, SetAssociativeCache)
        # Both caches split their DDIO ways between the two owners.
        assert len(payload_cache.ddio_way_split) == 2
        assert len(descriptor_cache.ddio_way_split) == 2
        assert sum(payload_cache.ddio_way_split) <= payload_cache.ddio_ways
        # Warming is preparation, not measurement.
        assert payload_cache.stats.read_hits == 0
        assert payload_cache.stats.write_misses == 0

    def test_faithful_partitioned_run_protects_victim_rings(self):
        shared = self._run()
        partitioned = self._run(ddio_partition=(1.0, 1.0))
        # Device-warm aggressor writes allocate through the DDIO ways of
        # the shared descriptor/payload caches; with partitioning they
        # can only evict the aggressor's own lines, so the victim's ring
        # hit rate can only improve.
        assert (
            partitioned.device("victim").result.host.descriptor_cache_hit_rate
            >= shared.device("victim").result.host.descriptor_cache_hit_rate
        )

    def test_cache_model_validation(self):
        with pytest.raises(ValidationError):
            FabricConfig(cache_model="magic")
