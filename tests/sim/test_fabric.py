"""Tests for the shared-host fabric subsystem (repro.sim.fabric).

The two load-bearing contracts:

* **Solo equivalence** — a fabric with one device takes the exact
  single-device code path and reproduces ``tests/golden/nicsim_seeded.json``
  bit for bit (the acceptance criterion of the contention subsystem).
* **Contention is real and arbitrable** — with two devices the shared
  walker/ingress degrade a victim under fcfs, and per-device arbitration
  (rr/wrr) restores it, without breaking any conservation law.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench.nicsim import NicSimParams, run_nicsim_benchmark
from repro.errors import ValidationError
from repro.sim.fabric import (
    ContentionResult,
    FabricConfig,
    FabricDevice,
    FabricSimulator,
    SharedHost,
)
from repro.sim.nichost import DEVICE_ADDRESS_STRIDE, NicHostConfig
from repro.units import KIB, MIB
from repro.workloads import build_workload

GOLDEN_PATH = Path(__file__).parent.parent / "golden" / "nicsim_seeded.json"


def _golden_device_and_fabric() -> tuple[FabricDevice, FabricConfig, dict]:
    golden = json.loads(GOLDEN_PATH.read_text())
    params = NicSimParams.from_dict(golden["params"])
    workload = build_workload(
        params.workload,
        size=params.packet_size,
        load_gbps=params.offered_load_gbps,
        duplex=params.duplex,
    )
    device = FabricDevice(
        workload=workload,
        model=params.model,
        packets=params.packets,
        ring_depth=params.ring_depth,
        rx_backpressure=params.rx_backpressure,
        payload_window=params.payload_window,
        payload_cache_state=params.payload_cache_state,
        payload_placement=params.payload_placement,
    )
    fabric = FabricConfig(
        system=params.system,
        iommu_enabled=params.iommu_enabled,
        iommu_page_size=params.iommu_page_size,
    )
    return device, fabric, golden


def _two_device_run(arbiter: str, weights=None, *, seed: int = 11) -> ContentionResult:
    victim = FabricDevice(
        workload=build_workload("fixed", size=512, load_gbps=5.0, duplex=True),
        model="dpdk",
        packets=400,
        name="victim",
        ring_depth=64,
        payload_window=256 * KIB,
    )
    aggressor = FabricDevice(
        workload=build_workload("imix", load_gbps=None, duplex=True),
        model="kernel",
        packets=2500,
        name="aggressor",
        payload_window=64 * MIB,
    )
    fabric = FabricConfig(
        system="NFP6000-HSW",
        iommu_enabled=True,
        arbiter=arbiter,
        weights=weights,
    )
    return FabricSimulator([victim, aggressor], fabric).run(seed=seed)


class TestSoloEquivalence:
    def test_single_device_fabric_matches_golden_bit_for_bit(self):
        device, fabric, golden = _golden_device_and_fabric()
        result = FabricSimulator([device], fabric).run(
            seed=golden["params"]["seed"]
        )
        assert len(result.devices) == 1
        solo = result.devices[0]
        assert solo.name == "dev0"
        # No arbitration layer exists for one device.
        assert solo.ingress is None and solo.walker is None
        assert solo.result.as_dict() == golden["result"]

    def test_single_device_fabric_matches_live_nicsim_run(self):
        device, fabric, golden = _golden_device_and_fabric()
        params = NicSimParams.from_dict(golden["params"])
        plain = run_nicsim_benchmark(params)
        fabric_run = FabricSimulator([device], fabric).run(seed=params.seed)
        assert fabric_run.devices[0].result == plain


class TestContention:
    def test_two_devices_conserve_packets_and_bytes_per_device(self):
        result = _two_device_run("fcfs")
        assert {record.name for record in result.devices} == {
            "victim",
            "aggressor",
        }
        for record in result.devices:
            for path in (record.result.tx, record.result.rx):
                assert path is not None
                assert (
                    path.delivered_packets + path.drops + path.in_flight
                    == path.offered_packets
                )
                assert path.payload_bytes + path.dropped_bytes <= path.offered_bytes
                assert path.ring.max_occupancy <= path.ring.depth
            # Arbitration counters exist and are self-consistent.
            for port in (record.ingress, record.walker):
                assert port is not None
                assert port.waited <= port.requests
                assert port.wait_ns_total >= 0.0
        assert result.duration_ns > 0.0

    def test_same_seed_reproduces_identical_results(self):
        first = _two_device_run("wrr", (8.0, 1.0))
        second = _two_device_run("wrr", (8.0, 1.0))
        assert first == second

    def test_fcfs_degrades_victim_and_wrr_protects_it(self):
        fcfs = _two_device_run("fcfs")
        wrr = _two_device_run("wrr", (8.0, 1.0))
        fcfs_victim = fcfs.device("victim").result
        wrr_victim = wrr.device("victim").result
        assert fcfs_victim.tx.latency is not None
        assert wrr_victim.tx.latency is not None
        # The shared walker hurts the victim under fcfs; per-device queues
        # with victim-favouring weights restore it by a wide margin.
        assert fcfs_victim.tx.latency.p99 > 2.0 * wrr_victim.tx.latency.p99
        # The victim's sparse requests barely wait under wrr.
        assert (
            wrr.device("victim").walker.wait_ns_mean
            < fcfs.device("victim").walker.wait_ns_mean
        )

    def test_walker_contention_shows_in_arbiter_counters(self):
        result = _two_device_run("fcfs")
        aggressor = result.device("aggressor")
        # The aggressor's huge window forces walks: it must have queued.
        assert aggressor.walker.requests > 0
        assert aggressor.walker.busy_ns_total > 0.0

    def test_result_round_trips_through_dict(self):
        result = _two_device_run("rr")
        rebuilt = ContentionResult.from_dict(result.as_dict())
        assert rebuilt == result
        assert rebuilt.as_dict() == result.as_dict()

    def test_device_lookup_by_name(self):
        result = _two_device_run("rr")
        assert result.device("victim").name == "victim"
        with pytest.raises(ValidationError):
            result.device("nobody")


class TestValidation:
    def test_device_names_must_be_unique(self):
        workload = build_workload("fixed", size=512, load_gbps=5.0)
        devices = [
            FabricDevice(workload=workload, packets=10, name="twin"),
            FabricDevice(workload=workload, packets=10, name="twin"),
        ]
        with pytest.raises(ValidationError):
            FabricSimulator(devices)

    def test_weights_must_match_device_count(self):
        workload = build_workload("fixed", size=512, load_gbps=5.0)
        devices = [FabricDevice(workload=workload, packets=10)]
        with pytest.raises(ValidationError):
            FabricSimulator(
                devices, FabricConfig(arbiter="wrr", weights=(1.0, 2.0))
            )

    def test_weights_require_the_wrr_arbiter(self):
        with pytest.raises(ValidationError):
            FabricConfig(arbiter="rr", weights=(1.0, 2.0))

    def test_unknown_arbiter_rejected(self):
        with pytest.raises(ValidationError):
            FabricConfig(arbiter="lottery")

    def test_empty_fabric_rejected(self):
        with pytest.raises(ValidationError):
            FabricSimulator([])

    def test_shared_host_rejects_mixed_cache_states(self):
        fabric = FabricConfig()
        configs = [
            NicHostConfig(system=fabric.system, payload_cache_state="host_warm"),
            NicHostConfig(system=fabric.system, payload_cache_state="cold"),
        ]
        with pytest.raises(ValidationError):
            SharedHost(fabric, configs, [512, 512], seed=1)

    def test_shared_host_couplings_use_disjoint_regions(self):
        fabric = FabricConfig(iommu_enabled=True)
        configs = [
            NicHostConfig(
                system=fabric.system,
                iommu_enabled=True,
                payload_window=256 * KIB,
            )
            for _ in range(2)
        ]
        shared = SharedHost(fabric, configs, [256, 256], seed=3)
        first, second = shared.couplings
        assert (
            second.payload_buffer.base_address
            - first.payload_buffer.base_address
            == DEVICE_ADDRESS_STRIDE
        )
        # Both couplings share one host, one payload root complex and one
        # descriptor root complex — that is the whole point.
        assert first.host is second.host
        assert first.payload_rc is second.payload_rc
        assert first.descriptor_rc is second.descriptor_rc
