"""Focused tests for the simulation engine primitives.

The pipeline behaviour of :class:`SerialResource` and :class:`WorkerPool`
was previously exercised mostly through :class:`~repro.sim.dma.DmaEngine`;
these tests pin down the primitives' contracts directly — in particular the
acquire/commit ordering of the worker pool under interleaved release times,
which both the DMA engine and the NIC datapath simulator rely on.
"""

import pytest

from repro.errors import SimulationError, ValidationError
from repro.sim.engine import SerialResource, TagPool, WorkerPool


class TestWorkerPoolInterleaving:
    def test_acquire_tracks_earliest_release_as_commits_interleave(self):
        pool = WorkerPool(2)
        # Two slots committed out of release order.
        pool.commit(50.0)
        pool.commit(30.0)
        # Full pool: the next acquire waits for the *earliest* release.
        assert pool.acquire(0.0) == 30.0
        # Committing replaces that earliest slot; now 50 is the horizon.
        pool.commit(90.0)
        assert pool.acquire(0.0) == 50.0
        # A later "now" dominates an already-passed release time.
        assert pool.acquire(60.0) == 60.0

    def test_out_of_order_release_times_never_lose_slots(self):
        pool = WorkerPool(3)
        for release in (70.0, 10.0, 40.0):
            pool.commit(release)
        assert pool.in_flight == 3
        # Acquire/commit cycles walk the releases in sorted order.
        observed = []
        for release in (100.0, 110.0, 120.0):
            observed.append(pool.acquire(0.0))
            pool.commit(release)
        assert observed == [10.0, 40.0, 70.0]
        assert pool.in_flight == 3

    def test_free_slots_are_granted_at_now_regardless_of_busy_slots(self):
        pool = WorkerPool(4)
        pool.commit(1000.0)
        pool.commit(2000.0)
        # Two of four slots busy far in the future; a request still gets a
        # free slot immediately.
        assert pool.acquire(5.0) == 5.0

    def test_reset_restores_full_capacity(self):
        pool = WorkerPool(1)
        pool.commit(500.0)
        assert pool.acquire(0.0) == 500.0
        pool.reset()
        assert pool.in_flight == 0
        assert pool.acquire(0.0) == 0.0

    def test_two_acquires_before_any_commit_are_rejected(self):
        """Regression: a full pool quotes the *same* slot to back-to-back
        acquires; the second commit used to blind-``heapreplace`` whichever
        slot the first commit made earliest, silently corrupting the
        timeline.  The symptom — a release predating the slot it replaces —
        now raises instead."""
        pool = WorkerPool(1)
        pool.commit(100.0)
        # Both acquires are quoted the same (only) slot, freeing at 100.
        first = pool.acquire(0.0)
        second = pool.acquire(0.0)
        assert first == second == 100.0
        pool.commit(150.0)
        # The second caller commits a release computed from the *first*
        # quote (service starting at 100, not 150): out of order.
        with pytest.raises(SimulationError, match="out of order"):
            pool.commit(120.0)
        # The pool's timeline was not corrupted by the rejected commit.
        assert pool.in_flight == 1
        assert pool.acquire(0.0) == 150.0

    def test_commit_at_exactly_the_earliest_release_is_allowed(self):
        # A zero-duration occupancy releases exactly when its slot freed;
        # that is a legal alternation, not a broken interleaving.
        pool = WorkerPool(1)
        pool.commit(100.0)
        assert pool.acquire(0.0) == 100.0
        pool.commit(100.0)
        assert pool.in_flight == 1
        assert pool.acquire(0.0) == 100.0

    def test_rejected_commit_names_both_times(self):
        pool = WorkerPool(2)
        pool.commit(40.0)
        pool.commit(60.0)
        with pytest.raises(SimulationError, match=r"10.*predates.*40"):
            pool.commit(10.0)


class TestSerialResourceFifoTieBreak:
    """The release-ordering contract multi-queue reproducibility rests on.

    When two grants mature at the same timestamp, service order must be
    the *call* order — first ``occupy`` call wins the earlier slot — with
    no dependence on duration, caller identity or hash order.  The NIC
    datapath event loop breaks same-time event ties by insertion sequence,
    so pinning this here pins the end-to-end determinism of multi-queue
    runs across Python versions and platforms.
    """

    def test_equal_earliest_start_served_in_call_order(self):
        link = SerialResource("link")
        first = link.occupy(10.0, 5.0)
        second = link.occupy(10.0, 3.0)
        third = link.occupy(10.0, 2.0)
        assert (first, second, third) == (10.0, 15.0, 18.0)

    def test_shorter_later_request_cannot_jump_the_queue(self):
        # A zero-duration request issued second still waits behind the
        # first request's full service time.
        link = SerialResource("link")
        assert link.occupy(0.0, 100.0) == 0.0
        assert link.occupy(0.0, 0.0) == 100.0

    def test_grants_maturing_together_stack_fifo(self):
        # Three requests whose earliest starts all mature while the link
        # is busy until t=50: they stack strictly in call order at 50.
        link = SerialResource("link")
        link.occupy(0.0, 50.0)
        starts = [link.occupy(t, 10.0) for t in (20.0, 30.0, 10.0)]
        assert starts == [50.0, 60.0, 70.0]


class TestTagPool:
    """The event-driven bounded DMA tag pool gating nicsim DMAs."""

    def test_grants_are_immediate_while_capacity_remains(self):
        pool = TagPool("tags", 2)
        grants: list[float] = []
        pool.acquire(1.0, grants.append)
        pool.acquire(2.0, grants.append)
        assert grants == [1.0, 2.0]
        assert pool.in_flight == 2
        assert pool.max_in_flight == 2
        assert pool.waited == 0

    def test_exhausted_pool_queues_and_regrants_fifo(self):
        pool = TagPool("tags", 1)
        grants: list[str] = []
        pool.acquire(0.0, lambda now: grants.append(f"a@{now}"))
        pool.acquire(1.0, lambda now: grants.append(f"b@{now}"))
        pool.acquire(2.0, lambda now: grants.append(f"c@{now}"))
        assert grants == ["a@0.0"]
        assert pool.waiting == 2
        # Two releases at the *same* timestamp grant in acquire order.
        pool.release(10.0)
        pool.release(10.0)
        assert grants == ["a@0.0", "b@10.0", "c@10.0"]
        assert pool.waiting == 0
        assert pool.in_flight == 1  # c still holds the regranted tag
        assert pool.waited == 2
        assert pool.wait_ns_total == pytest.approx((10.0 - 1.0) + (10.0 - 2.0))

    def test_release_without_waiters_frees_the_tag(self):
        pool = TagPool("tags", 2)
        pool.acquire(0.0, lambda now: None)
        pool.release(5.0)
        assert pool.in_flight == 0
        # The freed tag is immediately grantable again.
        grants: list[float] = []
        pool.acquire(6.0, grants.append)
        assert grants == [6.0]

    def test_over_release_and_bad_arguments_rejected(self):
        with pytest.raises(ValidationError):
            TagPool("tags", 0)
        pool = TagPool("tags", 1)
        with pytest.raises(SimulationError):
            pool.release(0.0)
        with pytest.raises(ValidationError):
            pool.acquire(-1.0, lambda now: None)


class TestSerialResourceReset:
    def test_reset_clears_schedule_and_statistics(self):
        link = SerialResource("link", free_at=25.0)
        assert link.occupy(0.0, 10.0) == 25.0
        link.reset()
        assert link.free_at == 0.0
        assert link.busy_time == 0.0
        assert link.served == 0
        # After a reset the resource serves from time zero again.
        assert link.occupy(0.0, 10.0) == 0.0
        assert link.utilisation(10.0) == pytest.approx(1.0)

    def test_utilisation_is_capped_at_one(self):
        link = SerialResource("link")
        link.occupy(0.0, 100.0)
        assert link.utilisation(50.0) == 1.0


class TestValidationPaths:
    def test_serial_resource_rejects_negative_construction(self):
        with pytest.raises(ValidationError):
            SerialResource("link", free_at=-1.0)

    def test_serial_resource_rejects_bad_occupy_arguments(self):
        link = SerialResource("link")
        with pytest.raises(ValidationError):
            link.occupy(-0.5, 1.0)
        with pytest.raises(ValidationError):
            link.occupy(0.0, -1.0)
        with pytest.raises(ValidationError):
            link.utilisation(-10.0)

    def test_worker_pool_rejects_bad_arguments(self):
        with pytest.raises(ValidationError):
            WorkerPool(0)
        with pytest.raises(ValidationError):
            WorkerPool(-3)
        pool = WorkerPool(2)
        with pytest.raises(ValidationError):
            pool.acquire(-1.0)
        with pytest.raises(ValidationError):
            pool.commit(-0.1)
        # Failed calls must not corrupt the pool.
        assert pool.in_flight == 0
        assert pool.acquire(0.0) == 0.0


class _ManualLoop:
    """Minimal schedule() target: collects (time, fn) and runs in time order."""

    def __init__(self):
        self.events = []
        self._sequence = 0

    def at(self, time, fn):
        self.events.append((time, self._sequence, fn))
        self._sequence += 1

    def run(self):
        while self.events:
            self.events.sort()
            time, _, fn = self.events.pop(0)
            fn(time)


class TestArbitratedResource:
    def _arbiter(self, scheme, clients=2, weights=None, quantum_ns=None):
        from repro.sim.engine import ArbitratedResource

        loop = _ManualLoop()
        resource = ArbitratedResource(
            "test",
            clients,
            schedule=loop.at,
            scheme=scheme,
            weights=weights,
            quantum_ns=quantum_ns,
        )
        return loop, resource

    def test_idle_resource_grants_immediately(self):
        loop, resource = self._arbiter("fcfs")
        grants = []
        resource.request(0, 5.0, 10.0, grants.append)
        assert grants == [5.0]
        assert resource.busy_until == 15.0
        assert resource.stats[0].waited == 0

    def test_fcfs_serves_globally_oldest_request(self):
        loop, resource = self._arbiter("fcfs")
        grants = []
        resource.request(1, 0.0, 10.0, lambda t: grants.append(("b0", t)))
        # Queued while busy: client 1 asked at 1.0, client 0 at 2.0.
        resource.request(1, 1.0, 5.0, lambda t: grants.append(("b1", t)))
        resource.request(0, 2.0, 5.0, lambda t: grants.append(("a0", t)))
        loop.run()
        assert grants == [("b0", 0.0), ("b1", 10.0), ("a0", 15.0)]

    def test_rr_alternates_between_backlogged_clients(self):
        loop, resource = self._arbiter("rr")
        grants = []
        resource.request(0, 0.0, 10.0, lambda t: grants.append(("a0", t)))
        # Client 0 queues three more; client 1 queues one at the same time.
        for index in range(1, 4):
            resource.request(
                0, 1.0, 10.0, lambda t, i=index: grants.append((f"a{i}", t))
            )
        resource.request(1, 1.0, 10.0, lambda t: grants.append(("b0", t)))
        loop.run()
        # Round-robin: after a0 completes, client 1 gets its turn before
        # client 0's backlog drains.
        assert grants[0] == ("a0", 0.0)
        assert grants[1] == ("b0", 10.0)
        assert [label for label, _ in grants[2:]] == ["a1", "a2", "a3"]

    def test_wrr_shares_service_time_by_weight(self):
        loop, resource = self._arbiter("wrr", weights=(3.0, 1.0))
        served = []
        # Both clients keep a deep backlog of equal-duration requests.
        for client in (0, 1):
            for _ in range(12):
                resource.request(
                    client, 0.0, 10.0, lambda t, c=client: served.append(c)
                )
        loop.run()
        # Over the first 8 grants the 3:1 weighting shows: client 0 gets
        # about three quarters of them.
        head = served[:8]
        assert head.count(0) == 6 and head.count(1) == 2
        stats = resource.stats
        assert stats[0].busy_ns_total == 120.0
        assert stats[1].busy_ns_total == 120.0  # backlogs fully drain

    def test_wait_accounting_tracks_queueing_delay(self):
        loop, resource = self._arbiter("fcfs")
        resource.request(0, 0.0, 10.0, lambda t: None)
        resource.request(1, 2.0, 4.0, lambda t: None)
        loop.run()
        assert resource.stats[1].waited == 1
        assert resource.stats[1].wait_ns_total == pytest.approx(8.0)
        assert resource.stats[1].wait_ns_mean == pytest.approx(8.0)
        assert resource.stats[0].wait_ns_mean == 0.0

    def test_single_client_fcfs_matches_serial_resource_timing(self):
        loop, resource = self._arbiter("fcfs", clients=1)
        serial = SerialResource("reference")
        starts = []
        for now, duration in ((0.0, 7.0), (1.0, 3.0), (20.0, 5.0)):
            resource.request(0, now, duration, starts.append)
            serial.occupy(now, duration)
        loop.run()
        # Same grant start times as the plain serial resource's bookings.
        assert starts == [0.0, 7.0, 20.0]
        assert resource.busy_until == serial.free_at

    def test_validation_errors(self):
        from repro.sim.engine import ArbitratedResource

        loop = _ManualLoop()
        with pytest.raises(ValidationError):
            ArbitratedResource("x", 0, schedule=loop.at)
        with pytest.raises(ValidationError):
            ArbitratedResource("x", 2, schedule=loop.at, scheme="lottery")
        with pytest.raises(ValidationError):
            ArbitratedResource("x", 2, schedule=loop.at, weights=(1.0,))
        with pytest.raises(ValidationError):
            ArbitratedResource("x", 2, schedule=loop.at, weights=(1.0, -1.0))
        resource = ArbitratedResource("x", 2, schedule=loop.at)
        with pytest.raises(ValidationError):
            resource.request(5, 0.0, 1.0, lambda t: None)
        with pytest.raises(ValidationError):
            resource.request(0, -1.0, 1.0, lambda t: None)
        with pytest.raises(ValidationError):
            resource.request(0, 0.0, -1.0, lambda t: None)

    # -- edge cases pinned as behaviour ------------------------------------

    def test_zero_weight_wrr_entries_are_rejected(self):
        # A zero wrr weight would mean "never serve this client" — a
        # starvation hazard dressed up as configuration.  Pinned: weights
        # must be strictly positive, zero included in the rejection.
        from repro.sim.engine import ArbitratedResource

        loop = _ManualLoop()
        for scheme in ("wrr", "age", "sliced"):
            with pytest.raises(ValidationError):
                ArbitratedResource(
                    "x", 2, schedule=loop.at, scheme=scheme,
                    weights=(1.0, 0.0),
                )

    def test_single_queue_degeneracy_for_every_scheme(self):
        # With one client there is nothing to arbitrate: every scheme
        # must produce the same grant starts as a plain SerialResource,
        # and (sliced aside) the same virtual-start arithmetic.
        bookings = ((0.0, 7.0), (1.0, 3.0), (20.0, 5.0))
        serial = SerialResource("reference")
        expected = [serial.occupy(now, duration) for now, duration in bookings]
        for scheme in ("fcfs", "rr", "wrr", "age"):
            loop, resource = self._arbiter(scheme, clients=1)
            starts = []
            for now, duration in bookings:
                resource.request(0, now, duration, starts.append)
            loop.run()
            assert starts == expected, scheme
            assert resource.busy_until == serial.free_at, scheme

    def test_fcfs_tie_break_at_equal_grant_times_is_call_order(self):
        # Two requests maturing at the same instant: the one whose
        # request() call happened first is served first, mirroring the
        # SerialResource tie-break contract.
        loop, resource = self._arbiter("fcfs", clients=3)
        grants = []
        resource.request(2, 0.0, 10.0, lambda t: grants.append(("first", t)))
        # Same asked time, different call order, descending client index
        # to prove client ids do not override call order.
        resource.request(1, 5.0, 2.0, lambda t: grants.append(("second", t)))
        resource.request(0, 5.0, 2.0, lambda t: grants.append(("third", t)))
        loop.run()
        assert grants == [("first", 0.0), ("second", 10.0), ("third", 12.0)]

    def test_age_scheme_weights_shorten_the_queueing_deadline(self):
        # Client 0 weighted 8: once both requests have aged, its younger
        # request overtakes the older request of the weight-1 client.
        loop, resource = self._arbiter("age", weights=(8.0, 1.0))
        grants = []
        resource.request(1, 0.0, 10.0, lambda t: grants.append(("bulk0", t)))
        resource.request(1, 1.0, 10.0, lambda t: grants.append(("bulk1", t)))
        resource.request(0, 5.0, 10.0, lambda t: grants.append(("victim", t)))
        loop.run()
        # At t=10: victim age 5 * 8 = 40 beats bulk1 age 9 * 1 = 9.
        assert grants == [("bulk0", 0.0), ("victim", 10.0), ("bulk1", 20.0)]

    def test_age_equal_weights_serve_oldest_first(self):
        loop, resource = self._arbiter("age")
        grants = []
        resource.request(0, 0.0, 10.0, lambda t: grants.append("a0"))
        resource.request(1, 1.0, 5.0, lambda t: grants.append("b0"))
        resource.request(0, 2.0, 5.0, lambda t: grants.append("a1"))
        loop.run()
        assert grants == ["a0", "b0", "a1"]

    def test_sliced_grant_backdates_start_to_true_completion(self):
        # A 50 ns grant sliced into 16 ns quanta with no competition:
        # the callback fires with start + duration == completion, and the
        # resource is busy until exactly that completion.
        loop, resource = self._arbiter(
            "sliced", quantum_ns=16.0, weights=(1.0, 1.0)
        )
        grants = []
        resource.request(0, 0.0, 50.0, grants.append)
        loop.run()
        assert grants == [0.0]  # uncontended: virtual start == asked
        assert resource.busy_until == 50.0
        assert resource.stats[0].busy_ns_total == pytest.approx(50.0)
        assert resource.stats[0].waited == 0

    def test_sliced_bounds_a_victim_wait_to_the_quantum(self):
        # A bulk 100 ns grant is in flight when a short victim request
        # arrives: non-preemptive wrr makes the victim wait out the whole
        # grant; slicing caps the wait at the current quantum's end.
        for scheme, quantum, expected_wait in (
            ("wrr", None, 99.0),
            ("sliced", 16.0, 15.0),
        ):
            loop, resource = self._arbiter(
                scheme, weights=(8.0, 1.0), quantum_ns=quantum
            )
            resource.request(1, 0.0, 100.0, lambda t: None)
            resource.request(0, 1.0, 10.0, lambda t: None)
            loop.run()
            stats = resource.stats[0]
            assert stats.waited == 1, scheme
            assert stats.wait_ns_total == pytest.approx(expected_wait), scheme
            assert stats.wait_ns_max == pytest.approx(expected_wait), scheme
            # The preempted bulk grant still receives its full service.
            assert resource.stats[1].busy_ns_total == pytest.approx(100.0)

    def test_sliced_preemption_resumes_the_remnant(self):
        # The bulk grant's completion time reflects the victim's slice in
        # the middle: 100 ns of service plus 10 ns of preemption.
        loop, resource = self._arbiter(
            "sliced", weights=(8.0, 1.0), quantum_ns=16.0
        )
        completions = {}
        resource.request(
            1, 0.0, 100.0, lambda t: completions.setdefault("bulk", t + 100.0)
        )
        resource.request(
            0, 1.0, 10.0, lambda t: completions.setdefault("victim", t + 10.0)
        )
        loop.run()
        assert completions["victim"] == pytest.approx(26.0)  # 16 + 10
        assert completions["bulk"] == pytest.approx(110.0)

    def test_quantum_validation(self):
        from repro.sim.engine import ArbitratedResource

        loop = _ManualLoop()
        with pytest.raises(ValidationError):
            ArbitratedResource(
                "x", 2, schedule=loop.at, scheme="sliced", quantum_ns=0.0
            )
        with pytest.raises(ValidationError):
            ArbitratedResource(
                "x", 2, schedule=loop.at, scheme="wrr", quantum_ns=16.0
            )
        # sliced without an explicit quantum takes the engine default.
        from repro.sim.engine import DEFAULT_QUANTUM_NS

        sliced = ArbitratedResource("x", 2, schedule=loop.at, scheme="sliced")
        assert sliced.quantum_ns == DEFAULT_QUANTUM_NS

    def test_stats_snapshot_into_fabric_port_stats(self):
        from repro.sim.fabric import FabricPortStats

        loop, resource = self._arbiter("rr")
        resource.request(0, 0.0, 2.0, lambda t: None)
        loop.run()
        snapshot = FabricPortStats.from_client(resource.stats[0])
        assert snapshot.requests == 1
        assert snapshot.busy_ns_total == 2.0
        assert snapshot.wait_ns_mean == 0.0
        assert snapshot.as_dict()["wait_ns_mean"] == 0.0
