"""Tests for the host-coupled NIC datapath (nicsim -> root_complex)."""

import pytest

from repro.errors import ValidationError
from repro.core.nic import FIGURE1_MODELS
from repro.sim.nichost import (
    HostCoupling,
    HostSideStats,
    NicHostConfig,
    PAYLOAD_UNIT_BYTES,
)
from repro.sim.nicsim import NicSimResult, cross_validate, simulate_nic
from repro.units import KIB, MIB

#: The regression contract: a host coupling configured to stay out of the
#: way (IOMMU off, warm cache, local buffers, small window) must preserve
#: the PR 1 agreement with the analytic model.
NEUTRAL_HOST = NicHostConfig(
    system="NFP6000-HSW",
    iommu_enabled=False,
    payload_window=256 * KIB,
    payload_cache_state="host_warm",
    payload_placement="local",
)


class TestNeutralCouplingCrossValidation:
    """Host coupling must not break the analytic-model agreement."""

    @pytest.mark.parametrize(
        "model", FIGURE1_MODELS, ids=lambda model: model.name
    )
    def test_neutral_coupling_within_10pct_of_analytic(self, model):
        points = cross_validate(
            model, (64, 512, 1500), packets=1500, host=NEUTRAL_HOST
        )
        for point in points:
            assert point.within(0.10), (
                f"{point.model} at {point.packet_size} B with neutral host "
                f"coupling: simulated {point.simulated_gbps:.2f} vs analytic "
                f"{point.analytic_gbps:.2f} Gb/s "
                f"({point.relative_error * 100:.1f}% off)"
            )


class TestHostConfigValidation:
    def test_unknown_profile_rejected(self):
        with pytest.raises(Exception):
            NicHostConfig(system="PDP-11")

    def test_profile_name_normalised(self):
        assert NicHostConfig(system="nfp6000-hsw").system == "NFP6000-HSW"

    def test_bad_page_size_rejected(self):
        with pytest.raises(ValidationError):
            NicHostConfig(iommu_page_size=8192)

    def test_window_must_hold_a_unit(self):
        with pytest.raises(ValidationError):
            NicHostConfig(payload_window=PAYLOAD_UNIT_BYTES // 2)

    def test_remote_placement_needs_two_sockets(self):
        with pytest.raises(ValidationError):
            NicHostConfig(system="NFP6000-HSW", payload_placement="remote")
        # The two-socket Broadwell accepts it.
        config = NicHostConfig(
            system="NFP6000-BDW", payload_placement="remote"
        )
        assert config.payload_placement == "remote"

    def test_bad_placement_and_cache_state_rejected(self):
        with pytest.raises(ValidationError):
            NicHostConfig(payload_placement="sideways")
        with pytest.raises(ValidationError):
            NicHostConfig(payload_cache_state="lukewarm")


class TestHostEffects:
    """The new behaviour the coupling exists to produce."""

    def test_descriptor_ring_stays_hot_while_payload_thrashes(self):
        host = NicHostConfig(
            system="NFP6000-BDW",
            payload_window=16 * MIB,
            payload_cache_state="cold",
        )
        result = simulate_nic(
            "dpdk", "fixed", packets=800, packet_size=512,
            load_gbps=20.0, host=host,
        )
        assert result.host is not None
        assert result.host.descriptor_cache_hit_rate > 0.9
        assert result.host.payload_cache_hit_rate < 0.1

    def test_cold_cache_adds_dram_penalty_to_tx_latency(self):
        warm = simulate_nic(
            "dpdk", "fixed", packets=800, packet_size=512, load_gbps=20.0,
            host=NEUTRAL_HOST,
        )
        cold = simulate_nic(
            "dpdk", "fixed", packets=800, packet_size=512, load_gbps=20.0,
            host=NicHostConfig(
                system="NFP6000-HSW",
                payload_window=16 * MIB,
                payload_cache_state="cold",
            ),
        )
        assert cold.tx.latency.median > warm.tx.latency.median + 40.0

    def test_iommu_miss_storm_raises_latency_and_stalls_walker(self):
        base = dict(packets=800, packet_size=512, load_gbps=20.0)
        off = simulate_nic(
            "dpdk", "fixed",
            host=NicHostConfig(system="NFP6000-BDW", payload_window=16 * MIB),
            **base,
        )
        on = simulate_nic(
            "dpdk", "fixed",
            host=NicHostConfig(
                system="NFP6000-BDW", iommu_enabled=True,
                payload_window=16 * MIB,
            ),
            **base,
        )
        assert on.host.iotlb_hit_rate < 0.5
        assert on.host.iotlb_misses > 0
        assert on.host.walker_stall_ns_total >= 0.0
        assert on.tx.latency.median > off.tx.latency.median + 150.0

    def test_superpages_restore_iotlb_reach(self):
        on_4k = simulate_nic(
            "dpdk", "fixed", packets=600, packet_size=512, load_gbps=20.0,
            host=NicHostConfig(
                system="NFP6000-BDW", iommu_enabled=True,
                payload_window=16 * MIB,
            ),
        )
        on_2m = simulate_nic(
            "dpdk", "fixed", packets=600, packet_size=512, load_gbps=20.0,
            host=NicHostConfig(
                system="NFP6000-BDW", iommu_enabled=True,
                iommu_page_size=2 * MIB, payload_window=16 * MIB,
            ),
        )
        assert on_2m.host.iotlb_hit_rate > 0.99
        assert on_2m.tx.latency.median < on_4k.tx.latency.median - 100.0

    def test_remote_payload_pays_the_interconnect_penalty(self):
        base = dict(packets=800, packet_size=512, load_gbps=20.0)
        local = simulate_nic(
            "dpdk", "fixed",
            host=NicHostConfig(system="NFP6000-BDW", payload_window=1 * MIB),
            **base,
        )
        remote = simulate_nic(
            "dpdk", "fixed",
            host=NicHostConfig(
                system="NFP6000-BDW", payload_window=1 * MIB,
                payload_placement="remote",
            ),
            **base,
        )
        adder = remote.tx.latency.median - local.tx.latency.median
        assert 50.0 <= adder <= 200.0
        assert remote.host.remote_fraction > 0.5
        assert local.host.remote_fraction == 0.0

    def test_e3_ingress_throttles_small_packet_throughput(self):
        # The Xeon E3's slow uncore (52 ns per TLP) caps the transaction
        # rate; the E5 host sustains clearly more at 64 B (§6.2).
        e5 = simulate_nic(
            "dpdk", "fixed", packets=800, packet_size=64,
            host=NicHostConfig(system="NFP6000-HSW", payload_window=256 * KIB),
        )
        e3 = simulate_nic(
            "dpdk", "fixed", packets=800, packet_size=64,
            host=NicHostConfig(
                system="NFP6000-HSW-E3", payload_window=256 * KIB
            ),
        )
        assert e3.throughput_gbps < 0.8 * e5.throughput_gbps


class TestCouplingMechanics:
    def test_same_seed_gives_identical_results(self):
        host = NicHostConfig(
            system="NFP6000-BDW", iommu_enabled=True, payload_window=4 * MIB
        )
        a = simulate_nic("dpdk", "imix", packets=500, load_gbps=20.0,
                         host=host, seed=11)
        b = simulate_nic("dpdk", "imix", packets=500, load_gbps=20.0,
                         host=host, seed=11)
        assert a == b

    def test_profile_name_accepted_as_host(self):
        result = simulate_nic(
            "dpdk", "fixed", packets=400, packet_size=512,
            load_gbps=10.0, host="NFP6000-HSW",
        )
        assert result.host is not None
        assert result.host.accesses > 0

    def test_host_stats_round_trip(self):
        host = NicHostConfig(
            system="NFP6000-BDW", iommu_enabled=True, payload_window=4 * MIB
        )
        result = simulate_nic(
            "dpdk", "imix", packets=500, load_gbps=20.0, host=host
        )
        assert result.host is not None
        assert (
            HostSideStats.from_dict(result.host.as_dict()) == result.host
        )
        assert NicSimResult.from_dict(result.as_dict()) == result

    def test_decoupled_result_has_no_host_block(self):
        result = simulate_nic(
            "dpdk", "fixed", packets=300, packet_size=512, load_gbps=10.0
        )
        assert result.host is None
        assert "host" not in result.as_dict()

    def test_coupling_rejects_mmio(self):
        from repro.core.transactions import OpKind

        coupling = HostCoupling(NEUTRAL_HOST, ring_depth=64, seed=1)
        with pytest.raises(ValidationError):
            coupling.access(
                OpKind.MMIO_READ, direction="tx", payload=False, size=4
            )

    def test_access_counters_split_by_region(self):
        from repro.core.transactions import OpKind

        coupling = HostCoupling(NEUTRAL_HOST, ring_depth=64, seed=1)
        coupling.access(OpKind.DMA_READ, direction="tx", payload=True, size=512)
        coupling.access(OpKind.DMA_WRITE, direction="rx", payload=False, size=16)
        stats = coupling.stats()
        assert stats.accesses == 2
        assert stats.payload_accesses == 1
        assert stats.descriptor_accesses == 1
