"""Tests for the composable fabric topology layer (repro.sim.topology).

The two load-bearing contracts:

* **Flat passthrough** — the flat topology compiles to a single root
  arbiter and requests take the exact PR 4 code path (same grant times,
  same client statistics objects).
* **Credit flow control** — a switch holds one upstream credit until its
  in-flight request's root service completes, so a bulk backlog stays
  inside its own switch instead of flooding the root queue.
"""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.sim.topology import (
    ROOT,
    CompiledTopology,
    FabricTopology,
    compile_topology,
)


class _ManualLoop:
    def __init__(self):
        self.events = []
        self._sequence = 0

    def at(self, time, fn):
        self.events.append((time, self._sequence, fn))
        self._sequence += 1

    def run(self):
        while self.events:
            self.events.sort()
            time, _, fn = self.events.pop(0)
            fn(time)


class TestFabricTopology:
    def test_parse_and_spec_round_trip(self):
        spec = "victim=root,aggressor=sw0,sw0=root"
        topology = FabricTopology.parse(spec)
        assert topology.spec() == spec
        assert topology.switch_names == ("sw0",)
        assert topology.device_names == ("victim", "aggressor")
        assert not topology.is_flat
        assert topology.depth() == 2
        assert topology.path_to_root("aggressor") == ("sw0", ROOT)

    def test_flat_constructor(self):
        topology = FabricTopology.flat(("a", "b"))
        assert topology.is_flat
        assert topology.depth() == 1
        assert topology.device_names == ("a", "b")
        assert topology.switch_names == ()

    def test_cascaded_switches(self):
        topology = FabricTopology.parse("d=sw1,sw1=sw0,sw0=root")
        assert topology.depth() == 3
        assert topology.path_to_root("d") == ("sw1", "sw0", ROOT)

    def test_validation_rejects_malformed_trees(self):
        with pytest.raises(ValidationError):
            FabricTopology.parse("")  # empty
        with pytest.raises(ValidationError):
            FabricTopology.parse("a=root,a=root")  # duplicate child
        with pytest.raises(ValidationError):
            FabricTopology.parse("root=sw0,sw0=root")  # root has no parent
        with pytest.raises(ValidationError):
            FabricTopology.parse("a=sw0")  # undeclared switch
        with pytest.raises(ValidationError):
            FabricTopology.parse("a=a")  # self-parent
        with pytest.raises(ValidationError):
            FabricTopology.parse("a=sw0,sw0=sw1,sw1=sw0")  # cycle
        with pytest.raises(ValidationError):
            FabricTopology.parse("a = ")  # not CHILD=PARENT

    def test_leaves_must_match_devices(self):
        topology = FabricTopology.parse("a=root,b=sw0,sw0=root")
        topology.validate_devices(("a", "b"))
        with pytest.raises(ValidationError):
            topology.validate_devices(("a", "b", "c"))  # missing device
        with pytest.raises(ValidationError):
            topology.validate_devices(("a",))  # unknown leaf b


class TestCompiledTopology:
    def test_flat_topology_is_a_direct_root_arbiter(self):
        loop = _ManualLoop()
        tree = compile_topology(
            "resource", None, ("a", "b"), schedule=loop.at, scheme="fcfs"
        )
        grants = []
        tree.request(0, 0.0, 10.0, lambda t: grants.append(("a", t)))
        tree.request(1, 1.0, 10.0, lambda t: grants.append(("b", t)))
        loop.run()
        assert grants == [("a", 0.0), ("b", 10.0)]
        # Flat device statistics ARE the root arbiter's client counters.
        assert tree.client_stats(0) is tree.root.stats[0]
        assert tree.client_stats(1) is tree.root.stats[1]
        assert tree.root.name == "resource"

    def test_switch_hop_adds_store_and_forward_latency(self):
        loop = _ManualLoop()
        tree = compile_topology(
            "resource",
            FabricTopology.parse("a=sw0,sw0=root"),
            ("a",),
            schedule=loop.at,
        )
        grants = []
        tree.request(0, 0.0, 10.0, grants.append)
        loop.run()
        # One hop through sw0 (10 ns) before the root's own 10 ns grant.
        assert grants == [10.0]
        stats = tree.client_stats(0)
        assert stats.requests == 1
        assert stats.busy_ns_total == 10.0  # root service counted once
        assert stats.waited == 0  # pure store-and-forward is not queueing

    def test_upstream_credit_keeps_backlog_inside_the_switch(self):
        # A bulk device floods its switch; a direct device shares the
        # root.  With one upstream credit per switch, at most one bulk
        # request is pending at the root, so under fcfs the direct
        # device's wait is bounded by ~2 services, not the whole backlog.
        loop = _ManualLoop()
        tree = compile_topology(
            "resource",
            FabricTopology.parse("direct=root,bulk=sw0,sw0=root"),
            ("direct", "bulk"),
            schedule=loop.at,
        )
        for _ in range(50):
            tree.request(1, 0.0, 10.0, lambda t: None)
        tree.request(0, 205.0, 10.0, lambda t: None)
        loop.run()
        direct = tree.client_stats(0)
        assert direct.requests == 1
        assert direct.wait_ns_max <= 2 * 10.0
        # The bulk backlog drains completely all the same.
        assert tree.client_stats(1).busy_ns_total == 50 * 10.0

    def test_switch_weight_is_its_subtree_sum(self):
        loop = _ManualLoop()
        tree = compile_topology(
            "resource",
            FabricTopology.parse("a=root,b=sw0,c=sw0,sw0=root"),
            ("a", "b", "c"),
            schedule=loop.at,
            scheme="wrr",
            weights=(4.0, 1.0, 3.0),
        )
        assert tree.root.weights == (4.0, 4.0)  # a, sw0 = 1 + 3
        assert tree.arbiter("sw0").weights == (1.0, 3.0)
        with pytest.raises(ValidationError):
            tree.arbiter("nowhere")

    def test_weights_must_match_devices(self):
        loop = _ManualLoop()
        with pytest.raises(ValidationError):
            compile_topology(
                "resource",
                None,
                ("a", "b"),
                schedule=loop.at,
                scheme="wrr",
                weights=(1.0,),
            )

    def test_compile_rejects_mismatched_leaves(self):
        loop = _ManualLoop()
        with pytest.raises(ValidationError):
            CompiledTopology(
                "resource",
                FabricTopology.parse("a=root"),
                ("a", "b"),
                schedule=loop.at,
            )
