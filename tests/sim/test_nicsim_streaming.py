"""Streaming-statistics mode (``retain_samples=False``) regression tests.

The streaming mode must not change the *simulation* at all — only how the
delivered packets are summarised.  Event scheduling, RNG draws, drops and
completion times are identical, so the counters and the run duration must
match the retained mode bit for bit; latency percentiles go through the
quantile sketch and must agree within its documented bound plus the small
warmup-rule difference (a-priori cutoff vs sort-by-completion).
"""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.fabric import FabricDevice, FabricSimulator
from repro.sim.nicsim import (
    LatencySummary,
    NicSimConfig,
    _streaming_warmup_threshold,
    simulate_nic,
)
from repro.stats import QuantileSketch
from repro.workloads import build_workload

RUN_KW = dict(
    workload="imix", packets=1200, load_gbps=20.0, host="NFP6000-HSW", seed=7
)


@pytest.fixture(scope="module")
def paired_runs():
    retained = simulate_nic("dpdk", **RUN_KW)
    streaming = simulate_nic("dpdk", retain_samples=False, **RUN_KW)
    return retained, streaming


class TestStreamingEquivalence:
    def test_simulation_itself_is_bit_identical(self, paired_runs):
        retained, streaming = paired_runs
        assert streaming.duration_ns == retained.duration_ns
        for direction in ("tx", "rx"):
            kept = getattr(retained, direction)
            sketched = getattr(streaming, direction)
            assert sketched.offered_packets == kept.offered_packets
            assert sketched.delivered_packets == kept.delivered_packets
            assert sketched.drops == kept.drops
            assert sketched.payload_bytes == kept.payload_bytes
            assert sketched.offered_bytes == kept.offered_bytes
            assert sketched.ring.as_dict() == kept.ring.as_dict()

    def test_latency_summary_within_sketch_tolerance(self, paired_runs):
        retained, streaming = paired_runs
        for direction in ("tx", "rx"):
            kept = getattr(retained, direction).latency
            sketched = getattr(streaming, direction).latency
            assert sketched.count == kept.count
            assert sketched.sketch is not None
            assert kept.sketch is None
            # 0.5% sketch error + a small allowance for the differing
            # warmup rule and numpy's interpolated percentiles.
            for stat in ("mean", "median", "p90", "p99", "p999"):
                exact = getattr(kept, stat)
                estimate = getattr(sketched, stat)
                assert estimate == pytest.approx(exact, rel=0.02)

    def test_throughput_matches_retained_mode(self, paired_runs):
        retained, streaming = paired_runs
        for direction in ("tx", "rx"):
            kept = getattr(retained, direction)
            sketched = getattr(streaming, direction)
            assert sketched.throughput_gbps == pytest.approx(
                kept.throughput_gbps, rel=0.02
            )
            assert sketched.packet_rate_pps == pytest.approx(
                kept.packet_rate_pps, rel=0.02
            )

    def test_streaming_keeps_no_per_packet_state(self):
        from repro.sim.nicsim import NicDatapathSimulator

        simulator = NicDatapathSimulator(
            "dpdk",
            sim_config=NicSimConfig(retain_samples=False),
        )
        workload = build_workload("fixed", load_gbps=10.0)
        result = simulator.run(workload, 400, seed=3)
        assert result.tx.delivered_packets > 0
        # No trace arrays survive a streaming run — that is the point.
        assert simulator.last_traces == {}

    def test_streaming_multiqueue_direction_merges_queue_sketches(self):
        result = simulate_nic(
            "dpdk",
            workload="imix",
            packets=1200,
            load_gbps=20.0,
            num_queues=4,
            rss="zipf",
            retain_samples=False,
            seed=7,
        )
        assert result.tx.queues is not None and len(result.tx.queues) == 4
        merged = result.tx.latency
        assert merged is not None and merged.sketch is not None
        queue_counts = sum(
            queue.latency.count
            for queue in result.tx.queues
            if queue.latency is not None
        )
        assert merged.count == queue_counts
        assert result.tx.delivered_packets == sum(
            queue.delivered_packets for queue in result.tx.queues
        )

    def test_streaming_fabric_contention_run(self):
        devices = (
            FabricDevice(
                workload=build_workload("fixed", size=512, load_gbps=5.0),
                model="dpdk",
                packets=300,
                name="victim",
                ring_depth=64,
                retain_samples=False,
            ),
            FabricDevice(
                workload=build_workload("imix"),
                model="kernel",
                packets=900,
                name="aggressor",
                retain_samples=False,
            ),
        )
        result = FabricSimulator(devices).run(seed=11)
        for device in result.devices:
            latency = device.result.tx.latency
            assert latency is not None
            assert latency.sketch is not None
            assert latency.count > 0

    def test_warmup_threshold_matches_retained_rule_shape(self):
        # Small runs: floor is half the run (capped by ring depth).
        assert _streaming_warmup_threshold(
            100, warmup_fraction=0.25, ring_depth=512
        ) == 50
        # Large runs: the configured fraction dominates.
        assert _streaming_warmup_threshold(
            10_000, warmup_fraction=0.25, ring_depth=512
        ) == 2500


class TestEmptyLatencySummary:
    def test_from_samples_empty_returns_empty_summary(self):
        summary = LatencySummary.from_samples(np.array([]))
        assert summary == LatencySummary.empty()
        assert summary.count == 0
        assert summary.mean == 0.0

    def test_empty_summary_round_trips(self):
        empty = LatencySummary.empty()
        assert LatencySummary.from_dict(empty.as_dict()) == empty

    def test_from_sketch_empty_is_empty(self):
        assert LatencySummary.from_sketch(QuantileSketch()) == LatencySummary.empty()

    def test_from_sketch_statistics(self):
        sketch = QuantileSketch()
        # 2000 samples, the top 0.05% at 1000ns: nearest-rank p99.9 (the
        # order statistic at floor(0.999 * 1999) = 1997... i.e. 100.0 for
        # the bulk, 1000.0 only above rank 1998) matches numpy's "lower".
        samples = [100.0] * 1998 + [1000.0, 1000.0]
        sketch.add_many(samples)
        summary = LatencySummary.from_sketch(sketch)
        assert summary.count == 2000
        assert summary.minimum == 100.0
        assert summary.maximum == 1000.0
        assert summary.median == pytest.approx(100.0, rel=0.005)
        exact_p999 = float(np.percentile(samples, 99.9, method="lower"))
        assert summary.p999 == pytest.approx(exact_p999, rel=0.005)
        assert summary.sketch is sketch
        restored = LatencySummary.from_dict(summary.as_dict())
        assert restored == summary
        assert restored.sketch == sketch
