"""Regression tests for the bounded DMA tag pool (the Figure 8 dip).

Pins the tentpole behaviour of the multi-queue/bounded-tags PR: with a
small tag pool, remote-NUMA placement must cost *throughput* (the paper's
Figure 8 bandwidth dip); with the pool unbounded the dip must vanish and
the coupled datapath must stay inside the 10% analytic agreement band the
earlier PRs established.  The margins are guarded (0.9x / 2% / 10%) so a
regression that merely weakens the effect still fails loudly.
"""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.sim.nichost import NicHostConfig
from repro.sim.nicsim import NicSimConfig, cross_validate, simulate_nic
from repro.units import KIB

#: The experiment's setting: small packets (the remote adder is a large
#: fraction of the DMA round trip), warm window inside IOTLB/DDIO reach.
PACKET_SIZE = 256
PACKETS = 2200
SMALL_TAGS = 4


def _host(placement: str) -> NicHostConfig:
    return NicHostConfig(
        system="NFP6000-BDW",
        payload_window=256 * KIB,
        payload_cache_state="host_warm",
        payload_placement=placement,
    )


def _run(placement: str, tags: int | None):
    return simulate_nic(
        "dpdk",
        "fixed",
        packets=PACKETS,
        packet_size=PACKET_SIZE,
        host=_host(placement),
        dma_tags=tags,
    )


class TestFigure8Dip:
    """The acceptance criterion of the bounded-tags tentpole."""

    def test_small_tag_pool_reproduces_remote_numa_throughput_dip(self):
        local = _run("local", SMALL_TAGS)
        remote = _run("remote", SMALL_TAGS)
        # Guarded margin: the dip must be at least 10% of local throughput.
        assert remote.throughput_gbps <= 0.9 * local.throughput_gbps, (
            f"expected >=10% dip, got local {local.throughput_gbps:.2f} vs "
            f"remote {remote.throughput_gbps:.2f} Gb/s"
        )
        # The pool really is the binding resource in both runs.
        assert local.tags is not None and remote.tags is not None
        assert local.tags.max_in_flight == SMALL_TAGS
        assert remote.tags.max_in_flight == SMALL_TAGS
        assert remote.tags.waited > 0

    def test_dip_vanishes_with_unbounded_tags(self):
        local = _run("local", None)
        remote = _run("remote", None)
        gap = abs(local.throughput_gbps - remote.throughput_gbps)
        assert gap <= 0.02 * local.throughput_gbps, (
            f"unbounded tags must erase the dip: local "
            f"{local.throughput_gbps:.2f} vs remote "
            f"{remote.throughput_gbps:.2f} Gb/s"
        )
        # Unbounded runs carry no tag accounting at all.
        assert local.tags is None and remote.tags is None

    @pytest.mark.parametrize("placement", ["local", "remote"])
    def test_unbounded_tags_keep_the_analytic_band(self, placement):
        points = cross_validate(
            "dpdk", (PACKET_SIZE,), packets=2000, host=_host(placement)
        )
        for point in points:
            assert point.within(0.10), (
                f"{placement}: simulated {point.simulated_gbps:.2f} vs "
                f"analytic {point.analytic_gbps:.2f} Gb/s"
            )


class TestTagPoolMechanics:
    def test_tiny_pool_caps_link_only_throughput(self):
        # Even without a host model the flat read latency bounds what two
        # tags can keep in flight; the cap must be far below the link.
        capped = simulate_nic(
            "dpdk", "fixed", packets=1200, packet_size=1024, dma_tags=2
        )
        unbounded = simulate_nic(
            "dpdk", "fixed", packets=1200, packet_size=1024
        )
        assert capped.throughput_gbps < 0.6 * unbounded.throughput_gbps
        assert capped.tags is not None
        assert capped.tags.max_in_flight == 2
        assert capped.tags.waited > 0

    def test_deep_pool_is_equivalent_to_unbounded(self):
        # A pool deeper than the datapath's natural concurrency changes
        # nothing but the accounting block.
        deep = simulate_nic(
            "dpdk", "fixed", packets=1200, packet_size=1024, dma_tags=4096
        )
        unbounded = simulate_nic(
            "dpdk", "fixed", packets=1200, packet_size=1024
        )
        assert deep.tags is not None
        assert deep.tags.max_in_flight < 4096
        assert deep.tags.waited == 0
        stripped = deep.as_dict()
        stripped.pop("tags")
        assert stripped == unbounded.as_dict()

    def test_tag_stats_round_trip_and_serialise(self):
        result = simulate_nic(
            "dpdk", "fixed", packets=800, packet_size=512, dma_tags=8
        )
        record = result.as_dict()
        assert record["tags"]["capacity"] == 8
        from repro.sim.nicsim import NicSimResult

        assert NicSimResult.from_dict(record) == result

    def test_dma_tags_validation(self):
        with pytest.raises(ValidationError):
            NicSimConfig(dma_tags=0)
        with pytest.raises(ValidationError):
            NicSimConfig(dma_tags=-4)
        with pytest.raises(ValidationError):
            NicSimConfig(num_queues=0)
        with pytest.raises(ValidationError):
            NicSimConfig(num_queues=1000)
