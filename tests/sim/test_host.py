"""Tests for the HostSystem façade."""

import pytest

from repro.errors import ValidationError
from repro.sim.cache import SetAssociativeCache, StatisticalCache
from repro.sim.host import HostSystem
from repro.units import KIB, MIB


class TestConstruction:
    def test_from_profile_by_name(self):
        host = HostSystem.from_profile("NFP6000-HSW")
        assert host.profile.name == "NFP6000-HSW"
        assert host.device.name == "NFP6000"

    def test_netfpga_profile_selects_netfpga_device(self):
        host = HostSystem.from_profile("NetFPGA-HSW")
        assert host.device.name == "NetFPGA"

    def test_iommu_disabled_by_default(self):
        assert not HostSystem.from_profile("NFP6000-HSW").iommu.enabled

    def test_iommu_can_be_enabled_with_page_size(self):
        host = HostSystem.from_profile(
            "NFP6000-BDW", iommu_enabled=True, iommu_page_size=2 * MIB
        )
        assert host.iommu.enabled
        assert host.iommu.config.page_size == 2 * MIB

    def test_numa_topology_matches_profile(self):
        assert HostSystem.from_profile("NFP6000-BDW").numa.is_numa
        assert not HostSystem.from_profile("NFP6000-SNB").numa.is_numa

    def test_invalid_cache_model_rejected(self):
        with pytest.raises(ValidationError):
            HostSystem.from_profile("NFP6000-HSW", cache_model="magic")

    def test_describe_mentions_profile_and_device(self):
        info = HostSystem.from_profile("NFP6000-HSW", seed=7).describe()
        assert info["profile"] == "NFP6000-HSW"
        assert info["device"] == "NFP6000"
        assert info["seed"] == 7


class TestBufferAllocation:
    def test_local_buffer_on_device_node(self):
        host = HostSystem.from_profile("NFP6000-BDW")
        buffer = host.allocate_buffer(8 * KIB, 64, node="local")
        assert buffer.numa_node == host.numa.device_node

    def test_remote_buffer_on_other_node(self):
        host = HostSystem.from_profile("NFP6000-BDW")
        buffer = host.allocate_buffer(8 * KIB, 64, node="remote")
        assert buffer.numa_node != host.numa.device_node

    def test_remote_rejected_on_single_socket(self):
        host = HostSystem.from_profile("NFP6000-SNB")
        with pytest.raises(ValidationError):
            host.allocate_buffer(8 * KIB, 64, node="remote")

    def test_explicit_node_id(self):
        host = HostSystem.from_profile("NFP6000-BDW")
        assert host.allocate_buffer(8 * KIB, 64, node=1).numa_node == 1

    def test_invalid_node_string(self):
        host = HostSystem.from_profile("NFP6000-BDW")
        with pytest.raises(ValidationError):
            host.allocate_buffer(8 * KIB, 64, node="elsewhere")

    def test_buffer_page_size_follows_iommu(self):
        host = HostSystem.from_profile(
            "NFP6000-BDW", iommu_enabled=True, iommu_page_size=2 * MIB
        )
        buffer = host.allocate_buffer(8 * MIB, 64)
        assert buffer.page_size == 2 * MIB


class TestPrepare:
    def test_auto_mode_uses_faithful_cache_for_small_windows(self):
        host = HostSystem.from_profile("NFP6000-HSW")
        buffer = host.allocate_buffer(8 * KIB, 64)
        host.prepare(buffer, "host_warm")
        assert isinstance(host.root_complex.cache, SetAssociativeCache)

    def test_auto_mode_uses_statistical_cache_for_large_windows(self):
        host = HostSystem.from_profile("NFP6000-HSW")
        buffer = host.allocate_buffer(64 * MIB, 64)
        host.prepare(buffer, "host_warm")
        assert isinstance(host.root_complex.cache, StatisticalCache)

    def test_forced_statistical_model_sticks(self):
        host = HostSystem.from_profile("NFP6000-HSW", cache_model="statistical")
        buffer = host.allocate_buffer(8 * KIB, 64)
        host.prepare(buffer, "host_warm")
        assert isinstance(host.root_complex.cache, StatisticalCache)

    def test_warm_prepare_makes_reads_hit(self):
        host = HostSystem.from_profile("NFP6000-HSW")
        buffer = host.allocate_buffer(8 * KIB, 64)
        host.prepare(buffer, "host_warm")
        assert host.root_complex.read(buffer.unit_address(0), 64).cache_hit

    def test_cold_prepare_makes_reads_miss(self):
        host = HostSystem.from_profile("NFP6000-HSW")
        buffer = host.allocate_buffer(8 * KIB, 64)
        host.prepare(buffer, "cold")
        assert not host.root_complex.read(buffer.unit_address(0), 64).cache_hit

    def test_prepare_warms_iotlb_up_to_capacity(self):
        host = HostSystem.from_profile("NFP6000-BDW", iommu_enabled=True)
        buffer = host.allocate_buffer(128 * KIB, 64)  # 32 pages, fits the IOTLB
        host.prepare(buffer, "host_warm")
        assert len(host.iommu.iotlb) == buffer.window_pages

    def test_prepare_resets_iommu_stats(self):
        host = HostSystem.from_profile("NFP6000-BDW", iommu_enabled=True)
        buffer = host.allocate_buffer(8 * KIB, 64)
        host.root_complex.read(0, 64)
        host.prepare(buffer, "cold")
        assert host.iommu.stats.translations == 0

    def test_llc_and_ddio_shortcuts(self):
        host = HostSystem.from_profile("NFP6000-SNB")
        assert host.llc_bytes == 15 * MIB
        assert host.ddio_bytes == pytest.approx(1.5 * MIB, rel=0.01)
