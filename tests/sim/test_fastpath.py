"""Tests for the compiled-speed fast paths (``repro.sim.fastpath``).

Covers the mode knob end to end (validation, CLI-level numpy guard,
parameter/record round trips), the batch engine's eligibility and
dynamic fallbacks, its bit-identity contract on converged runs (results
*and* causal traces), the hybrid fluid machinery (steady-state monitor,
certification, re-entry triggers) and the per-mode engine profile.
"""

import pytest

from repro.bench.contention import ContentionParams, run_contention_benchmark
from repro.bench.nicsim import NicSimParams
from repro.errors import UsageError, ValidationError
from repro.obs import Tracer
from repro.obs.trace import BATCH_PREFIX
from repro.sim import fastpath
from repro.sim.engine import EngineProfile, EventLoop
from repro.sim.fastpath import (
    MODES,
    BatchFallback,
    SteadyStateMonitor,
    fluid_datapath_class,
    numpy_available,
    require_numpy,
    run_batch,
    validate_mode,
)
from repro.sim.nicsim import NicDatapathSimulator, simulate_nic
from repro.workloads import build_workload


class TestModeKnob:
    def test_modes_registry(self):
        assert MODES == ("exact", "batch", "hybrid")

    def test_validate_mode_normalises(self):
        assert validate_mode(" Batch ") == "batch"
        assert validate_mode("EXACT") == "exact"

    def test_validate_mode_rejects_unknown(self):
        with pytest.raises(ValidationError, match="mode must be one of"):
            validate_mode("fluid")

    def test_simulator_rejects_unknown_mode(self):
        simulator = NicDatapathSimulator("dpdk")
        workload = build_workload("fixed", size=512, load_gbps=5.0)
        with pytest.raises(ValidationError, match="mode must be one of"):
            simulator.run(workload, 10, mode="warp")

    def test_params_reject_unknown_mode(self):
        with pytest.raises(ValidationError, match="mode must be one of"):
            NicSimParams(mode="warp")
        with pytest.raises(ValidationError, match="mode must be one of"):
            ContentionParams(devices=(NicSimParams(),), mode="warp")

    def test_nicsim_params_round_trip_and_label(self):
        params = NicSimParams(mode="batch")
        assert "mode=batch" in params.label()
        assert params.as_dict()["mode"] == "batch"
        rebuilt = NicSimParams.from_dict(params.as_dict())
        assert rebuilt.mode == "batch"

    def test_exact_params_emit_no_mode_key(self):
        # Records written before the mode knob existed must round-trip
        # unchanged, so the default is suppressed.
        record = NicSimParams().as_dict()
        assert "mode" not in record
        assert NicSimParams.from_dict(record).mode == "exact"
        contention = ContentionParams(devices=(NicSimParams(),)).as_dict()
        assert "mode" not in contention
        assert ContentionParams.from_dict(contention).mode == "exact"

    def test_contention_params_round_trip_and_label(self):
        params = ContentionParams(devices=(NicSimParams(),), mode="hybrid")
        assert "mode=hybrid" in params.label()
        rebuilt = ContentionParams.from_dict(params.as_dict())
        assert rebuilt.mode == "hybrid"


class TestNumpyGuard:
    def test_numpy_is_available_in_the_test_env(self):
        assert numpy_available()

    def test_require_numpy_passes_when_present(self):
        require_numpy("--mode batch")  # must not raise

    def test_missing_numpy_names_the_fast_extra(self, monkeypatch):
        monkeypatch.setattr(fastpath, "np", None)
        assert not numpy_available()
        with pytest.raises(UsageError, match=r"\[fast\]"):
            require_numpy("--mode batch")

    def test_cli_guard_raises_flag_level_usage_error(self, monkeypatch):
        from repro.cli import _require_mode_deps

        monkeypatch.setattr(fastpath, "np", None)
        _require_mode_deps("exact")  # scalar path needs no numpy
        with pytest.raises(UsageError, match=r"--mode batch.*\[fast\]"):
            _require_mode_deps("batch")
        with pytest.raises(UsageError, match=r"--mode hybrid.*\[fast\]"):
            _require_mode_deps("hybrid")


def _run(mode, *, model="dpdk", workload="fixed", size=512, load=5.0,
         packets=400, seed=3, **kwargs):
    return simulate_nic(
        model, workload, packet_size=size, load_gbps=load,
        packets=packets, seed=seed, mode=mode, **kwargs,
    )


class TestBatchEligibilityFallbacks:
    """Interaction points refuse the batch engine before any work."""

    def _raw_batch(self, simulator, workload="fixed", packets=50, **wl):
        built = build_workload(workload, **wl)
        return run_batch(simulator, built, packets)

    def test_host_coupling_falls_back(self):
        from repro.sim.nichost import NicHostConfig
        from repro.sim.nicsim import NicSimConfig

        simulator = NicDatapathSimulator(
            "dpdk",
            sim_config=NicSimConfig(host=NicHostConfig(system="NFP6000-HSW")),
        )
        with pytest.raises(BatchFallback, match="host coupling"):
            self._raw_batch(simulator, size=512, load_gbps=5.0)

    def test_bounded_tags_fall_back(self):
        from repro.sim.nicsim import NicSimConfig

        simulator = NicDatapathSimulator(
            "dpdk", sim_config=NicSimConfig(dma_tags=8)
        )
        with pytest.raises(BatchFallback, match="DMA tag pool"):
            self._raw_batch(simulator, size=512, load_gbps=5.0)

    def test_multi_queue_falls_back(self):
        from repro.sim.nicsim import NicSimConfig

        simulator = NicDatapathSimulator(
            "dpdk", sim_config=NicSimConfig(num_queues=4)
        )
        with pytest.raises(BatchFallback, match="multi-queue"):
            self._raw_batch(simulator, size=512, load_gbps=5.0)

    def test_ring_pressure_falls_back(self):
        from repro.sim.nicsim import NicSimConfig

        # Saturating load against a tiny ring: the precomputed occupancy
        # exceeds the depth, which needs scalar backpressure semantics.
        simulator = NicDatapathSimulator(
            "dpdk", sim_config=NicSimConfig(ring_depth=8)
        )
        with pytest.raises(BatchFallback, match="ring would exceed depth"):
            self._raw_batch(simulator, size=1500, load_gbps=200.0,
                            packets=200)

    def test_fallback_reason_is_carried(self):
        from repro.sim.nicsim import NicSimConfig

        simulator = NicDatapathSimulator(
            "dpdk", sim_config=NicSimConfig(dma_tags=8)
        )
        with pytest.raises(BatchFallback) as excinfo:
            self._raw_batch(simulator, size=512, load_gbps=5.0)
        assert "interaction point" in excinfo.value.reason

    def test_simulate_nic_falls_back_silently_to_exact(self):
        # The public entry point absorbs the fallback: a coupled batch
        # run returns the scalar engine's exact result.
        exact = _run("exact", packets=200, host="NFP6000-HSW")
        batch = _run("batch", packets=200, host="NFP6000-HSW")
        assert batch.as_dict() == exact.as_dict()

    def test_fallen_back_profile_reports_exact(self):
        sink = []
        _run("batch", packets=200, host="NFP6000-HSW", profile_sink=sink)
        assert sink[0].mode == "exact"


class TestBatchBitIdentity:
    """Converged (non-saturated) runs replay the scalar engine bit for bit."""

    @pytest.mark.parametrize(
        "model,workload,size,load",
        [
            ("dpdk", "fixed", 512, 5.0),
            ("kernel", "fixed", 256, 4.0),
            ("dpdk", "imix", None, 8.0),
        ],
    )
    def test_results_bit_identical(self, model, workload, size, load):
        kwargs = {} if size is None else {"size": size}
        exact = _run("exact", model=model, workload=workload, load=load,
                     **kwargs)
        batch = _run("batch", model=model, workload=workload, load=load,
                     **kwargs)
        assert batch.as_dict() == exact.as_dict()

    def test_path_traces_bit_identical(self):
        workload = build_workload("fixed", size=512, load_gbps=5.0)
        simulator = NicDatapathSimulator("dpdk")
        simulator.run(workload, 300, seed=3, mode="exact")
        exact_traces = simulator.last_traces
        simulator.run(workload, 300, seed=3, mode="batch")
        batch_traces = simulator.last_traces
        assert set(batch_traces) == set(exact_traces)
        for direction, exact in exact_traces.items():
            batch = batch_traces[direction]
            assert (batch.arrivals_ns == exact.arrivals_ns).all()
            assert (batch.dones_ns == exact.dones_ns).all()
            assert (batch.notifies_ns == exact.notifies_ns).all()
            assert (batch.sizes == exact.sizes).all()

    def test_streaming_mode_also_identical(self):
        exact = _run("exact", retain_samples=False)
        batch = _run("batch", retain_samples=False)
        assert batch.as_dict() == exact.as_dict()

    def test_profile_reports_batch_mode_and_solve_time(self):
        sink = []
        _run("batch", profile_sink=sink)
        profile = sink[0]
        assert profile.mode == "batch"
        assert profile.solve_s >= 0.0
        assert profile.events > 0

    def test_batch_spans_are_aggregate(self):
        tracer = Tracer()
        _run("batch", tracer=tracer)
        stages = {span.stage for span in tracer.spans}
        assert stages, "batch tracing must emit spans"
        batch_stages = {s for s in stages if s.startswith(BATCH_PREFIX)}
        assert batch_stages, f"expected {BATCH_PREFIX}* spans, got {stages}"
        for span in tracer.spans:
            if span.stage.startswith(BATCH_PREFIX):
                assert span.packet == -1


class TestEngineProfileModes:
    def test_profile_round_trips_mode_fields(self):
        profile = EngineProfile(
            label="x", build_s=0.1, events_s=0.2, stats_s=0.3,
            events=42, mode="batch", solve_s=0.05,
        )
        rebuilt = EngineProfile.from_dict(profile.as_dict())
        assert rebuilt == profile
        assert rebuilt.mode == "batch"
        assert rebuilt.solve_s == 0.05

    def test_default_profile_is_exact(self):
        profile = EngineProfile(
            label="x", build_s=0.0, events_s=0.0, stats_s=0.0, events=0
        )
        assert profile.mode == "exact"
        assert profile.solve_s == 0.0


class TestSteadyStateMonitor:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValidationError):
            SteadyStateMonitor(window=1)
        with pytest.raises(ValidationError):
            SteadyStateMonitor(required=0)
        with pytest.raises(ValidationError):
            SteadyStateMonitor(band=0.0)

    def test_certifies_after_agreeing_windows(self):
        monitor = SteadyStateMonitor(window=16, required=2, band=0.2)
        for _ in range(16 * 4):
            monitor.observe(1000.0)
        assert monitor.certified

    def test_disagreeing_windows_never_certify(self):
        monitor = SteadyStateMonitor(window=16, required=2, band=0.1)
        for index in range(16 * 6):
            # Alternate regimes window by window: never two agreeing.
            monitor.observe(1000.0 if (index // 16) % 2 == 0 else 5000.0)
        assert not monitor.certified

    def test_reset_decertifies_and_rearms(self):
        monitor = SteadyStateMonitor(window=8, required=1, band=0.2)
        for _ in range(8 * 3):
            monitor.observe(1000.0)
        assert monitor.certified
        monitor.reset()
        assert not monitor.certified
        # The residual reservoir survives a reset (it is still the best
        # noise sample available), and steady traffic re-certifies.
        assert monitor.residuals().size > 0
        for _ in range(8 * 3):
            monitor.observe(1000.0)
        assert monitor.certified

    def test_residual_argument_feeds_the_reservoir(self):
        # Certification watches the latency; the reservoir stores the
        # residual (done - arrival) so fluid completions do not
        # double-count the completion-report wait.
        monitor = SteadyStateMonitor(window=8, required=1, band=0.2)
        for _ in range(8 * 3):
            monitor.observe(9000.0, 1000.0)
        assert monitor.certified
        residuals = monitor.residuals()
        assert residuals.size > 0
        assert float(residuals.max()) == 1000.0


class TestHybridMode:
    def test_steady_run_certifies_and_matches_exact_throughput(self):
        exact = _run("exact", packets=2000, seed=11)
        hybrid = _run("hybrid", packets=2000, seed=11)
        fluid = hybrid.fluid
        assert fluid is not None
        assert fluid["tx"]["certifications"] >= 1
        assert fluid["tx"]["fluid_packets"] > 0
        assert hybrid.tx.throughput_gbps == pytest.approx(
            exact.tx.throughput_gbps, rel=0.01
        )

    def test_exact_result_carries_no_fluid_summary(self):
        assert _run("exact", packets=100).fluid is None

    def test_traced_runs_stay_in_packet_mode(self):
        tracer = Tracer()
        hybrid = _run("hybrid", packets=1000, seed=11, tracer=tracer)
        assert hybrid.fluid["tx"]["fluid_packets"] == 0

    def test_hybrid_profile_reports_hybrid(self):
        sink = []
        _run("hybrid", packets=500, profile_sink=sink)
        assert sink[0].mode == "hybrid"

    def test_control_poke_on_packet_mode_rearms_the_monitor(self):
        cls = fluid_datapath_class()
        assert cls.__name__ == "_FluidDatapath"
        monitor = SteadyStateMonitor(window=8, required=1, band=0.2)
        for _ in range(8 * 3):
            monitor.observe(1000.0)
        assert monitor.certified
        # control_poke outside fluid mode resets the monitor directly
        # (no certificate should survive a knob move).
        poke = cls.control_poke

        class Stub:
            fluid = False

        stub = Stub()
        stub.monitor = monitor
        poke(stub)
        assert not monitor.certified

    def test_fluid_class_is_cached(self):
        assert fluid_datapath_class() is fluid_datapath_class()


class TestFabricModes:
    """The fabric mirrors the mode knob; batch is exact by construction."""

    def _params(self, **overrides):
        fields = dict(
            devices=(
                NicSimParams(model="dpdk", workload="fixed",
                             packet_size=512, offered_load_gbps=5.0,
                             packets=300),
                NicSimParams(model="kernel", workload="imix", packets=300),
            ),
            names=("a", "b"),
            seed=5,
        )
        fields.update(overrides)
        return ContentionParams(**fields)

    def test_fabric_rejects_unknown_mode(self):
        from repro.sim.fabric import FabricConfig, FabricDevice, FabricSimulator

        device = FabricDevice(
            workload=build_workload("fixed", size=512, load_gbps=5.0),
            model="dpdk",
            packets=50,
        )
        simulator = FabricSimulator([device], FabricConfig())
        with pytest.raises(ValidationError, match="mode must be one of"):
            simulator.run(mode="warp")

    def test_fabric_batch_is_bit_identical_to_exact(self):
        exact = run_contention_benchmark(self._params())
        batch = run_contention_benchmark(self._params(mode="batch"))
        assert batch.as_dict() == exact.as_dict()

    def test_fabric_hybrid_attaches_fluid_summaries(self):
        result = run_contention_benchmark(self._params(mode="hybrid"))
        for device in result.devices:
            assert device.result.fluid is not None
            assert set(device.result.fluid) == {"tx", "rx"}


class TestControlActionListener:
    def test_listener_fires_on_every_action(self):
        from repro.control import build_controller
        from repro.control.runtime import ControlRuntime

        runtime = ControlRuntime(
            build_controller("threshold"), 20_000.0, EventLoop()
        )
        runtime.bind_weights((1.0, 1.0), [lambda weights: None])
        seen = []
        runtime.add_action_listener(seen.append)
        assert runtime._apply_weights((2.0, 1.0), device="a", reason="test")
        assert len(seen) == 1
        assert seen[0] is runtime.actions[0]
        assert seen[0].actuator == "weights"

    def test_unchanged_weights_notify_nobody(self):
        from repro.control import build_controller
        from repro.control.runtime import ControlRuntime

        runtime = ControlRuntime(
            build_controller("threshold"), 20_000.0, EventLoop()
        )
        runtime.bind_weights((1.0, 1.0), [lambda weights: None])
        seen = []
        runtime.add_action_listener(seen.append)
        assert not runtime._apply_weights((1.0, 1.0), device="a", reason="t")
        assert seen == []
