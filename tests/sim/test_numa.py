"""Tests for the NUMA topology model."""

import pytest

from repro.errors import ValidationError
from repro.sim.numa import NumaNode, NumaTopology


class TestTopologies:
    def test_single_socket_is_not_numa(self):
        topo = NumaTopology.single_socket()
        assert topo.node_count == 1
        assert not topo.is_numa

    def test_dual_socket_is_numa(self):
        topo = NumaTopology.dual_socket()
        assert topo.node_count == 2
        assert topo.is_numa

    def test_device_node_must_exist(self):
        with pytest.raises(ValidationError):
            NumaTopology(nodes=(NumaNode(0),), device_node=3)

    def test_duplicate_node_ids_rejected(self):
        with pytest.raises(ValidationError):
            NumaTopology(nodes=(NumaNode(0), NumaNode(0)))

    def test_empty_topology_rejected(self):
        with pytest.raises(ValidationError):
            NumaTopology(nodes=())

    def test_invalid_remote_factor(self):
        with pytest.raises(ValidationError):
            NumaTopology.dual_socket().__class__(
                nodes=(NumaNode(0), NumaNode(1)), remote_bandwidth_factor=0.0
            )


class TestLocality:
    def test_local_access_has_no_penalty(self):
        topo = NumaTopology.dual_socket(remote_penalty_ns=100.0)
        assert topo.is_local(0)
        assert topo.access_penalty_ns(0) == 0.0

    def test_remote_access_pays_the_interconnect(self):
        topo = NumaTopology.dual_socket(remote_penalty_ns=100.0)
        assert not topo.is_local(1)
        assert topo.access_penalty_ns(1) == 100.0

    def test_remote_node_lookup(self):
        topo = NumaTopology.dual_socket()
        assert topo.remote_node() == 1

    def test_remote_node_unavailable_on_single_socket(self):
        with pytest.raises(ValidationError):
            NumaTopology.single_socket().remote_node()

    def test_unknown_node_rejected(self):
        topo = NumaTopology.dual_socket()
        with pytest.raises(ValidationError):
            topo.access_penalty_ns(5)

    def test_default_penalty_matches_paper(self):
        # §6.4: remote accesses add a constant ~100 ns.
        assert NumaTopology.dual_socket().remote_penalty_ns == pytest.approx(100.0)


class TestNumaNode:
    def test_negative_id_rejected(self):
        with pytest.raises(ValidationError):
            NumaNode(-1)

    def test_zero_memory_rejected(self):
        with pytest.raises(ValidationError):
            NumaNode(0, memory_bytes=0)
