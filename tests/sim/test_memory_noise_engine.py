"""Tests for the memory model, noise models and simulation primitives."""

import numpy as np
import pytest

from repro.errors import SimulationError, ValidationError
from repro.sim.engine import SerialResource, WorkerPool
from repro.sim.memory import MemoryConfig, MemorySystem
from repro.sim.noise import HeavyTailNoise, TightNoise
from repro.sim.rng import SimRng


class TestMemorySystem:
    def test_cache_hit_has_no_dram_penalty(self):
        memory = MemorySystem()
        assert memory.read_penalty_ns(cache_hit=True) == 0.0

    def test_cache_miss_costs_dram_access(self):
        memory = MemorySystem(MemoryConfig(dram_access_ns=70.0))
        assert memory.read_penalty_ns(cache_hit=False) == 70.0

    def test_writeback_penalty(self):
        memory = MemorySystem(MemoryConfig(writeback_ns=70.0))
        assert memory.write_allocation_penalty_ns(writeback_required=True) == 70.0
        assert memory.write_allocation_penalty_ns(writeback_required=False) == 0.0

    def test_bandwidth_cap_in_bytes_per_ns(self):
        memory = MemorySystem(MemoryConfig(channel_bandwidth_gbps=400.0))
        assert memory.bytes_per_ns() == pytest.approx(50.0)

    def test_negative_config_rejected(self):
        with pytest.raises(ValidationError):
            MemoryConfig(dram_access_ns=-1)


class TestNoiseModels:
    def test_tight_noise_is_narrow(self):
        rng = SimRng(1).spawn("test")
        samples = TightNoise(sigma_ns=8.0).sample(rng, 50_000)
        assert np.percentile(samples, 99) < 50.0
        assert (samples >= 0).all()

    def test_heavy_tail_noise_has_long_tail(self):
        rng = SimRng(1).spawn("test")
        samples = HeavyTailNoise().sample(rng, 100_000)
        assert np.median(samples) > 300.0
        assert np.percentile(samples, 99) > 3 * np.median(samples)
        assert samples.max() > 10_000.0

    def test_heavy_tail_stalls_are_rare(self):
        rng = SimRng(2).spawn("test")
        samples = HeavyTailNoise(stall_probability=1e-3).sample(rng, 100_000)
        assert (samples > 20_000.0).mean() < 5e-3

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValidationError):
            TightNoise(tail_probability=2.0)
        with pytest.raises(ValidationError):
            HeavyTailNoise(stall_probability=-0.1)

    def test_invalid_stall_bounds(self):
        with pytest.raises(ValidationError):
            HeavyTailNoise(stall_min_ns=100.0, stall_max_ns=10.0)


class TestSerialResource:
    def test_back_to_back_requests_queue(self):
        link = SerialResource("link")
        start1 = link.occupy(0.0, 10.0)
        start2 = link.occupy(0.0, 10.0)
        assert start1 == 0.0
        assert start2 == 10.0
        assert link.free_at == 20.0

    def test_idle_gap_is_not_compressed(self):
        link = SerialResource("link")
        link.occupy(0.0, 10.0)
        start = link.occupy(50.0, 5.0)
        assert start == 50.0

    def test_utilisation(self):
        link = SerialResource("link")
        link.occupy(0.0, 25.0)
        assert link.utilisation(100.0) == pytest.approx(0.25)

    def test_reset(self):
        link = SerialResource("link")
        link.occupy(0.0, 10.0)
        link.reset()
        assert link.free_at == 0.0
        assert link.served == 0

    def test_invalid_arguments(self):
        link = SerialResource("link")
        with pytest.raises(ValidationError):
            link.occupy(-1.0, 5.0)
        with pytest.raises(ValidationError):
            link.occupy(0.0, -5.0)
        with pytest.raises(ValidationError):
            link.utilisation(0.0)


class TestWorkerPool:
    def test_slots_available_immediately(self):
        pool = WorkerPool(2)
        assert pool.acquire(5.0) == 5.0

    def test_full_pool_waits_for_earliest_completion(self):
        pool = WorkerPool(2)
        pool.commit(10.0)
        pool.commit(20.0)
        assert pool.acquire(0.0) == 10.0

    def test_commit_replaces_earliest_slot_when_full(self):
        pool = WorkerPool(1)
        pool.commit(10.0)
        assert pool.acquire(0.0) == 10.0
        pool.commit(30.0)
        assert pool.acquire(0.0) == 30.0

    def test_in_flight_count(self):
        pool = WorkerPool(4)
        pool.commit(1.0)
        pool.commit(2.0)
        assert pool.in_flight == 2

    def test_reset(self):
        pool = WorkerPool(4)
        pool.commit(1.0)
        pool.reset()
        assert pool.in_flight == 0

    def test_invalid_arguments(self):
        with pytest.raises(ValidationError):
            WorkerPool(0)
        pool = WorkerPool(1)
        with pytest.raises(ValidationError):
            pool.acquire(-1.0)
        with pytest.raises(ValidationError):
            pool.commit(-1.0)
