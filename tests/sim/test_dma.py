"""Tests for the DMA engine simulation (latency and bandwidth measurement)."""

import numpy as np
import pytest

from repro.errors import BenchmarkError, ValidationError
from repro.sim.devices import NETFPGA, NFP6000
from repro.sim.dma import DmaEngine, DmaOperation
from repro.sim.host import HostSystem
from repro.units import KIB, MIB


@pytest.fixture
def host():
    return HostSystem.from_profile("NFP6000-HSW", seed=99)


@pytest.fixture
def engine(host):
    return DmaEngine(host)


def warm_buffer(host, window, size, **kwargs):
    buffer = host.allocate_buffer(window, size, **kwargs)
    host.prepare(buffer, "host_warm")
    return buffer


class TestDmaOperation:
    def test_aliases(self):
        assert DmaOperation.from_value("rd") is DmaOperation.READ
        assert DmaOperation.from_value("rdwr") is DmaOperation.READ_WRITE
        assert DmaOperation.from_value("WRRD") is DmaOperation.WRITE_READ

    def test_invalid(self):
        with pytest.raises(ValidationError):
            DmaOperation.from_value("copy")


class TestLatencyMeasurement:
    def test_read_latency_in_plausible_range(self, host, engine):
        buffer = warm_buffer(host, 8 * KIB, 64)
        result = engine.measure_latency(buffer, "read", 500)
        median = float(np.median(result.samples_ns))
        assert 400 <= median <= 800
        assert result.samples_ns.shape == (500,)

    def test_write_read_slower_than_read(self, host, engine):
        buffer = warm_buffer(host, 8 * KIB, 64)
        read = engine.measure_latency(buffer, "read", 300)
        wrrd = engine.measure_latency(buffer, "write_read", 300)
        assert np.median(wrrd.samples_ns) > np.median(read.samples_ns)

    def test_latency_grows_with_transfer_size(self, host, engine):
        small = engine.measure_latency(warm_buffer(host, 8 * KIB, 64), "read", 300)
        large = engine.measure_latency(warm_buffer(host, 8 * KIB, 2048), "read", 300)
        assert np.median(large.samples_ns) > np.median(small.samples_ns)

    def test_samples_quantised_to_device_resolution(self, host, engine):
        buffer = warm_buffer(host, 8 * KIB, 64)
        result = engine.measure_latency(buffer, "read", 200)
        resolution = host.device.engine.timestamp_resolution_ns
        remainders = np.mod(result.samples_ns / resolution, 1.0)
        assert np.allclose(np.minimum(remainders, 1 - remainders), 0.0, atol=1e-6)

    def test_command_interface_is_faster_for_small_transfers(self, host, engine):
        buffer = warm_buffer(host, 8 * KIB, 8)
        dma = engine.measure_latency(buffer, "read", 300, use_command_interface=False)
        cmd = engine.measure_latency(buffer, "read", 300, use_command_interface=True)
        assert np.median(cmd.samples_ns) < np.median(dma.samples_ns)

    def test_command_interface_rejected_for_large_transfers(self, host, engine):
        buffer = warm_buffer(host, 8 * KIB, 2048)
        with pytest.raises(BenchmarkError):
            engine.measure_latency(buffer, "read", 10, use_command_interface=True)

    def test_command_interface_rejected_on_netfpga(self):
        host = HostSystem.from_profile("NetFPGA-HSW", seed=1)
        engine = DmaEngine(host)
        buffer = warm_buffer(host, 8 * KIB, 8)
        with pytest.raises(BenchmarkError):
            engine.measure_latency(buffer, "read", 10, use_command_interface=True)

    def test_bandwidth_operation_rejected(self, host, engine):
        buffer = warm_buffer(host, 8 * KIB, 64)
        with pytest.raises(BenchmarkError):
            engine.measure_latency(buffer, "write", 10)

    def test_zero_count_rejected(self, host, engine):
        buffer = warm_buffer(host, 8 * KIB, 64)
        with pytest.raises(ValidationError):
            engine.measure_latency(buffer, "read", 0)

    def test_cache_hit_rate_reported(self, host, engine):
        buffer = warm_buffer(host, 8 * KIB, 64)
        result = engine.measure_latency(buffer, "read", 200)
        assert result.cache_hit_rate == pytest.approx(1.0)


class TestBandwidthMeasurement:
    def test_write_bandwidth_between_zero_and_link_limit(self, host, engine):
        buffer = warm_buffer(host, 8 * KIB, 256)
        result = engine.measure_bandwidth(buffer, "write", 1500)
        assert 0 < result.gbps <= engine.config.tlp_bandwidth_gbps

    def test_read_bandwidth_small_transfers_latency_limited(self, host, engine):
        small = engine.measure_bandwidth(warm_buffer(host, 8 * KIB, 64), "read", 1500)
        large = engine.measure_bandwidth(warm_buffer(host, 8 * KIB, 1024), "read", 1500)
        assert small.gbps < large.gbps

    def test_netfpga_reads_faster_than_nfp_at_64b(self):
        results = {}
        for profile in ("NFP6000-HSW", "NetFPGA-HSW"):
            host = HostSystem.from_profile(profile, seed=5)
            engine = DmaEngine(host)
            buffer = warm_buffer(host, 8 * KIB, 64)
            results[profile] = engine.measure_bandwidth(buffer, "read", 1500).gbps
        assert results["NetFPGA-HSW"] > results["NFP6000-HSW"]

    def test_rdwr_reports_per_direction_payload(self, host, engine):
        buffer = warm_buffer(host, 8 * KIB, 512)
        rdwr = engine.measure_bandwidth(buffer, "read_write", 1500)
        assert rdwr.gbps <= engine.config.tlp_bandwidth_gbps

    def test_link_utilisation_bounded(self, host, engine):
        buffer = warm_buffer(host, 8 * KIB, 1024)
        result = engine.measure_bandwidth(buffer, "read", 1000)
        assert 0.0 <= result.link_utilisation_up <= 1.0
        assert 0.0 <= result.link_utilisation_down <= 1.0
        # Large reads saturate the completion direction.
        assert result.link_utilisation_down > 0.8

    def test_iommu_misses_reduce_read_bandwidth(self):
        results = {}
        for enabled in (False, True):
            host = HostSystem.from_profile("NFP6000-BDW", iommu_enabled=enabled, seed=3)
            engine = DmaEngine(host)
            buffer = warm_buffer(host, 16 * MIB, 64)
            results[enabled] = engine.measure_bandwidth(buffer, "read", 1500).gbps
        assert results[True] < 0.6 * results[False]

    def test_remote_placement_reduces_small_read_bandwidth(self):
        host = HostSystem.from_profile("NFP6000-BDW", seed=3)
        engine = DmaEngine(host)
        local = engine.measure_bandwidth(
            warm_buffer(host, 16 * KIB, 64, node="local"), "read", 1500
        ).gbps
        remote = engine.measure_bandwidth(
            warm_buffer(host, 16 * KIB, 64, node="remote"), "read", 1500
        ).gbps
        assert remote < local

    def test_write_read_rejected_for_bandwidth(self, host, engine):
        buffer = warm_buffer(host, 8 * KIB, 64)
        with pytest.raises(BenchmarkError):
            engine.measure_bandwidth(buffer, "write_read", 100)

    def test_transactions_per_second_consistent(self, host, engine):
        buffer = warm_buffer(host, 8 * KIB, 64)
        result = engine.measure_bandwidth(buffer, "write", 1000)
        expected = result.transactions / (result.elapsed_ns * 1e-9)
        assert result.transactions_per_second == pytest.approx(expected)

    def test_explicit_device_override(self, host):
        engine = DmaEngine(host, device=NETFPGA)
        assert engine.device is NETFPGA
        default_engine = DmaEngine(host)
        assert default_engine.device is NFP6000
