"""Tests for the packet-level NIC datapath simulator."""

import pytest

from repro.core.nic import (
    FIGURE1_MODELS,
    MODERN_NIC_DPDK,
    MODERN_NIC_KERNEL,
    SIMPLE_NIC,
)
from repro.errors import ValidationError
from repro.sim.nicsim import (
    NicDatapathSimulator,
    NicSimConfig,
    cross_validate,
    simulate_nic,
)
from repro.workloads import build_workload


class TestCrossValidation:
    """The acceptance criterion: the simulator agrees with the closed form."""

    @pytest.mark.parametrize(
        "model", FIGURE1_MODELS, ids=lambda model: model.name
    )
    def test_fixed_size_duplex_throughput_within_10pct(self, model):
        points = cross_validate(model, (64, 512, 1500), packets=2000)
        assert len(points) == 3
        for point in points:
            assert point.within(0.10), (
                f"{point.model} at {point.packet_size} B: simulated "
                f"{point.simulated_gbps:.2f} vs analytic "
                f"{point.analytic_gbps:.2f} Gb/s "
                f"({point.relative_error * 100:.1f}% off)"
            )

    def test_model_ordering_preserved_by_simulation(self):
        # The Figure 1 ordering (Simple <= kernel <= DPDK) must survive the
        # move from averages to per-transaction simulation.
        throughputs = {}
        for model in FIGURE1_MODELS:
            point = cross_validate(model, (256,), packets=1500)[0]
            throughputs[model.name] = point.simulated_gbps
        assert (
            throughputs[SIMPLE_NIC.name]
            < throughputs[MODERN_NIC_KERNEL.name]
            <= throughputs[MODERN_NIC_DPDK.name] * 1.02
        )


class TestSaturationBehaviour:
    def test_saturating_load_fills_tx_ring_and_drops_rx(self):
        result = simulate_nic(
            SIMPLE_NIC, "fixed", packets=1500, packet_size=64
        )
        # TX backpressures (no drops, ring pegged); RX tail-drops.
        assert result.tx.drops == 0
        assert result.tx.ring.max_occupancy == result.tx.ring.depth
        assert result.rx is not None
        assert result.rx.drops > 0
        assert result.tx.delivered_packets == 1500

    def test_light_load_keeps_rings_shallow_and_lossless(self):
        result = simulate_nic(
            MODERN_NIC_DPDK, "fixed", packets=1500, packet_size=512,
            load_gbps=10.0,
        )
        assert result.total_drops == 0
        assert result.tx.ring.max_occupancy < result.tx.ring.depth / 4
        assert result.throughput_gbps == pytest.approx(10.0, rel=0.05)

    def test_link_utilisation_reported(self):
        result = simulate_nic(
            MODERN_NIC_DPDK, "fixed", packets=1500, packet_size=512
        )
        assert 0.5 < result.link_utilisation_up <= 1.0
        assert 0.5 < result.link_utilisation_down <= 1.0


class TestLatencyAndOccupancy:
    """The outputs the analytic model cannot produce."""

    def test_interrupt_moderation_penalises_kernel_rx_latency(self):
        kernel = simulate_nic(
            MODERN_NIC_KERNEL, "imix", packets=2000, load_gbps=24.0
        )
        dpdk = simulate_nic(
            MODERN_NIC_DPDK, "imix", packets=2000, load_gbps=24.0
        )
        assert kernel.rx is not None and dpdk.rx is not None
        assert kernel.rx.latency.p99 > dpdk.rx.latency.p99

    def test_bursty_traffic_raises_ring_occupancy(self):
        smooth = simulate_nic(
            MODERN_NIC_DPDK, "fixed", packets=2000, packet_size=512,
            load_gbps=24.0,
        )
        bursty = simulate_nic(
            MODERN_NIC_DPDK, "bursty", packets=2000, packet_size=512,
            load_gbps=24.0,
        )
        assert bursty.rx.ring.max_occupancy > 2 * smooth.rx.ring.max_occupancy

    def test_shallow_rx_ring_drops_under_bursts(self):
        deep = simulate_nic(
            MODERN_NIC_KERNEL, "bursty", packets=2000, packet_size=512,
            load_gbps=30.0, ring_depth=512,
        )
        shallow = simulate_nic(
            MODERN_NIC_KERNEL, "bursty", packets=2000, packet_size=512,
            load_gbps=30.0, ring_depth=16,
        )
        assert deep.rx.drops == 0
        assert shallow.rx.drops > 0


class TestMultiQueue:
    """N TX/RX ring pairs with RSS flow steering."""

    def test_single_queue_knobs_are_the_degenerate_case(self):
        plain = simulate_nic(
            MODERN_NIC_DPDK, "imix", packets=600, load_gbps=20.0, seed=3
        )
        explicit = simulate_nic(
            MODERN_NIC_DPDK, "imix", packets=600, load_gbps=20.0, seed=3,
            num_queues=1, dma_tags=None,
        )
        assert plain == explicit
        assert plain.tx.queues is None
        assert plain.tags is None

    def test_queues_partition_the_direction_totals(self):
        result = simulate_nic(
            MODERN_NIC_DPDK, "imix", packets=800, load_gbps=20.0,
            num_queues=4, rss="uniform", seed=11,
        )
        for path in (result.tx, result.rx):
            assert path.queues is not None
            assert len(path.queues) == 4
            assert [q.direction for q in path.queues] == [
                f"{path.direction}[{i}]" for i in range(4)
            ]
            assert sum(q.offered_packets for q in path.queues) == 800
            assert (
                sum(q.delivered_packets for q in path.queues)
                == path.delivered_packets
            )
            assert sum(q.payload_bytes for q in path.queues) == path.payload_bytes

    def test_single_hot_flow_saturates_one_queue(self):
        result = simulate_nic(
            MODERN_NIC_DPDK, "imix", packets=800, load_gbps=20.0,
            num_queues=4, rss="hot", seed=11,
        )
        offered = sorted(q.offered_packets for q in result.tx.queues)
        # The hot flow's queue carries the overwhelming majority alone.
        assert offered[-1] > 0.8 * result.tx.offered_packets
        assert offered[0] < 0.2 * result.tx.offered_packets

    def test_zipf_flows_imbalance_the_queues(self):
        result = simulate_nic(
            MODERN_NIC_DPDK, "imix", packets=800, load_gbps=20.0,
            num_queues=4, rss="zipf", seed=11,
        )
        offered = sorted(q.offered_packets for q in result.tx.queues)
        assert offered[-1] > 2 * offered[0]

    def test_multi_queue_needs_a_flow_model(self):
        simulator = NicDatapathSimulator(
            MODERN_NIC_DPDK, sim_config=NicSimConfig(num_queues=4)
        )
        with pytest.raises(ValidationError):
            simulator.run(build_workload("fixed"), 200)

    def test_multi_queue_result_round_trips_through_dict(self):
        from repro.sim.nicsim import NicSimResult

        result = simulate_nic(
            MODERN_NIC_DPDK, "imix", packets=600, load_gbps=20.0,
            num_queues=2, rss="zipf", dma_tags=16, seed=5,
        )
        record = result.as_dict()
        assert len(record["tx"]["queues"]) == 2
        assert NicSimResult.from_dict(record) == result


class TestSimulatorMechanics:
    def test_same_seed_gives_identical_results(self):
        a = simulate_nic(MODERN_NIC_DPDK, "imix", packets=800, seed=5)
        b = simulate_nic(MODERN_NIC_DPDK, "imix", packets=800, seed=5)
        assert a == b

    def test_unidirectional_run_has_no_rx(self):
        result = simulate_nic(
            MODERN_NIC_DPDK, "fixed", packets=800, packet_size=512,
            duplex=False,
        )
        assert result.rx is None
        assert result.tx.delivered_packets == 800
        assert result.throughput_gbps == result.tx.throughput_gbps

    def test_model_accepted_by_alias(self):
        result = simulate_nic("dpdk", "fixed", packets=500, packet_size=512)
        assert result.model == MODERN_NIC_DPDK.name

    def test_as_dict_round_structure(self):
        result = simulate_nic(
            MODERN_NIC_KERNEL, "imix", packets=800, load_gbps=20.0
        )
        record = result.as_dict()
        assert record["model"] == MODERN_NIC_KERNEL.name
        assert record["tx"]["ring"]["depth"] == 512
        assert "latency_ns" in record["rx"]
        assert record["rx"]["latency_ns"]["p99"] >= record["rx"]["latency_ns"]["median"]

    def test_every_admitted_packet_is_accounted(self):
        # The final, partial completion-report batch must still be flushed
        # into the delivered/latency accounting at the end of the run.
        result = simulate_nic(
            MODERN_NIC_KERNEL, "fixed", packets=100, packet_size=512,
            load_gbps=10.0,
        )
        assert result.tx.delivered_packets == 100
        assert result.rx.delivered_packets + result.rx.drops == 100

    def test_ring_shallower_than_report_batch_rejected(self):
        # Kernel-driver interrupts fire every 16 packets: a 8-deep ring
        # could never fill a batch and would deadlock; refuse it up front.
        with pytest.raises(ValidationError):
            simulate_nic(
                MODERN_NIC_KERNEL, "fixed", packets=500, packet_size=512,
                ring_depth=8,
            )

    def test_result_round_trips_through_dict(self):
        from repro.sim.nicsim import NicSimResult

        result = simulate_nic(
            MODERN_NIC_KERNEL, "imix", packets=600, load_gbps=20.0
        )
        assert NicSimResult.from_dict(result.as_dict()) == result

    def test_validation_errors(self):
        simulator = NicDatapathSimulator(MODERN_NIC_DPDK)
        with pytest.raises(ValidationError):
            simulator.run(build_workload("fixed"), 0)
        with pytest.raises(ValidationError):
            NicSimConfig(ring_depth=0)
        with pytest.raises(ValidationError):
            NicSimConfig(warmup_fraction=0.95)
        with pytest.raises(ValidationError):
            NicSimConfig(host_read_latency_ns=-1.0)
