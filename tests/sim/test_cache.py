"""Tests for the LLC / DDIO cache models (faithful and statistical)."""

import pytest

from repro.errors import ValidationError
from repro.sim.cache import (
    CacheState,
    SetAssociativeCache,
    StatisticalCache,
)
from repro.sim.rng import SimRng
from repro.units import KIB, MIB


class TestCacheState:
    def test_from_string(self):
        assert CacheState.from_value("cold") is CacheState.COLD
        assert CacheState.from_value("warm") is CacheState.HOST_WARM
        assert CacheState.from_value("device_warm") is CacheState.DEVICE_WARM

    def test_invalid(self):
        with pytest.raises(ValidationError):
            CacheState.from_value("lukewarm")


class TestSetAssociativeCache:
    def make(self, **kwargs):
        defaults = dict(llc_bytes=64 * KIB, ways=8, ddio_fraction=0.25)
        defaults.update(kwargs)
        return SetAssociativeCache(**defaults)

    def test_read_miss_then_no_allocation(self):
        cache = self.make()
        assert cache.read(0).hit is False
        # Device reads do not allocate.
        assert cache.read(0).hit is False

    def test_host_touch_makes_reads_hit(self):
        cache = self.make()
        cache.host_touch(7)
        assert cache.read(7).hit is True

    def test_write_allocates_via_ddio(self):
        cache = self.make()
        result = cache.write(11)
        assert result.hit is False and result.allocated is True
        assert cache.read(11).hit is True

    def test_ddio_slice_is_fraction_of_llc(self):
        cache = self.make()
        assert cache.ddio_bytes == pytest.approx(cache.llc_bytes * 0.25, rel=0.01)

    def test_write_beyond_ddio_ways_evicts_and_writes_back(self):
        cache = self.make(ways=4, ddio_fraction=0.25)  # 1 DDIO way per set
        first = 0
        second = cache.sets  # same set, different line
        cache.write(first)
        result = cache.write(second)
        assert result.writeback_required is True
        assert cache.read(first).hit is False
        assert cache.read(second).hit is True

    def test_lru_eviction_within_set(self):
        cache = self.make(ways=2)
        lines = [0, cache.sets, 2 * cache.sets]  # all map to set 0
        cache.host_touch(lines[0])
        cache.host_touch(lines[1])
        cache.host_touch(lines[2])  # evicts lines[0]
        assert cache.read(lines[0]).hit is False
        assert cache.read(lines[1]).hit is True
        assert cache.read(lines[2]).hit is True

    def test_thrash_empties_cache(self):
        cache = self.make()
        cache.host_touch(1)
        cache.thrash()
        assert cache.occupancy() == 0
        assert cache.read(1).hit is False

    def test_prepare_host_warm(self):
        cache = self.make()
        cache.prepare(CacheState.HOST_WARM, window_lines=100)
        hits = sum(cache.read(line).hit for line in range(100))
        assert hits == 100

    def test_prepare_cold(self):
        cache = self.make()
        cache.prepare(CacheState.COLD, window_lines=100)
        assert not cache.read(5).hit

    def test_prepare_device_warm_limited_to_ddio(self):
        cache = self.make(ways=8, ddio_fraction=0.25)
        window = cache.sets * 8  # as many lines as the whole cache
        cache.prepare(CacheState.DEVICE_WARM, window_lines=window)
        hits = sum(cache.read(line).hit for line in range(window))
        # Only roughly the DDIO share of the window can be resident.
        assert hits <= window * 0.3

    def test_stats_track_hits_and_misses(self):
        cache = self.make()
        cache.host_touch(0)
        cache.read(0)
        cache.read(1)
        assert cache.stats.read_hits == 1
        assert cache.stats.read_misses == 1
        assert cache.stats.read_hit_rate == pytest.approx(0.5)

    def test_invalid_construction(self):
        with pytest.raises(ValidationError):
            SetAssociativeCache(0)
        with pytest.raises(ValidationError):
            SetAssociativeCache(64 * KIB, ways=0)
        with pytest.raises(ValidationError):
            SetAssociativeCache(64 * KIB, ddio_fraction=0.0)


class TestStatisticalCache:
    def make(self, **kwargs):
        defaults = dict(llc_bytes=15 * MIB, ddio_fraction=0.1, rng=SimRng(1))
        defaults.update(kwargs)
        return StatisticalCache(**defaults)

    def test_host_warm_small_window_always_hits(self):
        cache = self.make()
        cache.prepare(CacheState.HOST_WARM, window_lines=128)
        assert all(cache.read(i).hit for i in range(200))

    def test_cold_never_hits_reads(self):
        cache = self.make()
        cache.prepare(CacheState.COLD, window_lines=128)
        assert not any(cache.read(i).hit for i in range(200))

    def test_host_warm_large_window_hits_proportionally(self):
        cache = self.make()
        llc_lines = cache.llc_lines
        cache.prepare(CacheState.HOST_WARM, window_lines=4 * llc_lines)
        hits = sum(cache.read(i).hit for i in range(4000))
        assert 0.15 <= hits / 4000 <= 0.35  # about 25% resident

    def test_device_warm_limited_to_ddio_slice(self):
        cache = self.make()
        window = cache.llc_lines  # fits LLC but far exceeds the DDIO slice
        cache.prepare(CacheState.DEVICE_WARM, window_lines=window)
        assert cache.resident_fraction == pytest.approx(
            cache.ddio_lines / window, rel=0.01
        )

    def test_writes_within_ddio_need_no_writeback(self):
        cache = self.make()
        cache.prepare(CacheState.COLD, window_lines=cache.ddio_lines // 2)
        results = [cache.write(i) for i in range(500)]
        assert not any(r.writeback_required for r in results)

    def test_writes_beyond_ddio_mostly_write_back(self):
        cache = self.make()
        cache.prepare(CacheState.COLD, window_lines=cache.ddio_lines * 50)
        results = [cache.write(i) for i in range(500)]
        writebacks = sum(r.writeback_required for r in results)
        assert writebacks > 400

    def test_prepare_requires_positive_window(self):
        with pytest.raises(ValidationError):
            self.make().prepare(CacheState.COLD, window_lines=0)

    def test_invalid_capacity_fraction(self):
        with pytest.raises(ValidationError):
            StatisticalCache(15 * MIB, effective_capacity_fraction=0.0)


class TestSetAssociativeDdioPartition:
    """Per-owner DDIO way budgets (the faithful half of way partitioning)."""

    def make(self, shares=(0.5, 0.5), region=1 << 10):
        cache = SetAssociativeCache(llc_bytes=64 * KIB, ways=8, ddio_fraction=0.5)
        cache.partition_ddio(shares, lambda line: min(len(shares) - 1, line // region))
        return cache, region

    def test_budgets_split_the_ddio_ways(self):
        cache, _ = self.make()
        assert sum(cache.ddio_way_split) <= cache.ddio_ways
        assert all(budget >= 1 for budget in cache.ddio_way_split)
        assert cache.ddio_way_split == (2, 2)

    def test_uneven_shares_trim_to_fit(self):
        cache, _ = self.make(shares=(0.7, 0.2, 0.1))
        assert sum(cache.ddio_way_split) <= cache.ddio_ways
        assert all(budget >= 1 for budget in cache.ddio_way_split)

    def test_one_owner_cannot_evict_anothers_ddio_lines(self):
        cache, region = self.make()
        # Owner 0 allocates its full budget in set 0.
        victims = [0, cache.sets]  # two same-set lines, owner 0
        for line in victims:
            cache.write(line)
        # Owner 1 blows through its own budget in the same set many
        # times over; every eviction must come from its own lines.
        base = region  # owner 1's region
        base -= base % cache.sets  # align to set 0
        for index in range(16):
            cache.write(base + index * cache.sets)
        for line in victims:
            assert cache.read(line).hit is True, "victim line was evicted"

    def test_unpartitioned_behaviour_is_unchanged(self):
        shared = SetAssociativeCache(llc_bytes=64 * KIB, ways=4, ddio_fraction=0.25)
        assert shared.ddio_way_split == (shared.ddio_ways,)
        shared.write(0)
        result = shared.write(shared.sets)  # same set, 1 DDIO way
        assert result.writeback_required is True

    def test_partition_validation(self):
        cache = SetAssociativeCache(llc_bytes=64 * KIB, ways=8, ddio_fraction=0.25)
        with pytest.raises(ValidationError):
            cache.partition_ddio((1.0,), lambda line: 0)  # one share
        with pytest.raises(ValidationError):
            cache.partition_ddio((1.0, 0.0), lambda line: 0)
        with pytest.raises(ValidationError):
            # ddio_ways == 2 here; three owners cannot each get a way.
            cache.partition_ddio((1.0, 1.0, 1.0), lambda line: 0)


class TestStatisticalCachePartition:
    """Per-owner capacity slices (the statistical half of partitioning)."""

    REGION = 1 << 20  # lines per owner region

    def make(self, shares=(0.5, 0.5)):
        cache = StatisticalCache(15 * MIB, ddio_fraction=0.1, rng=SimRng(1))
        cache.partition(
            shares, lambda line: min(len(shares) - 1, line // self.REGION)
        )
        return cache

    def test_partitions_have_independent_residency(self):
        cache = self.make()
        # Owner 0: small warm window -> every access hits.  Owner 1: a
        # window far beyond its slice -> most accesses miss.
        cache.prepare_partition(0, CacheState.HOST_WARM, 128)
        cache.prepare_partition(1, CacheState.HOST_WARM, 10 * cache.llc_lines)
        assert all(cache.read(i).hit for i in range(200))
        misses = sum(
            not cache.read(self.REGION + i).hit for i in range(1000)
        )
        assert misses > 900

    def test_partition_scales_writeback_pressure_to_the_slice(self):
        cache = self.make()
        cache.prepare_partition(0, CacheState.COLD, max(1, cache.ddio_lines // 4))
        cache.prepare_partition(1, CacheState.COLD, cache.ddio_lines)
        # Owner 0's window fits its half-slice: no write-backs.  Owner 1's
        # window is double its half-slice: about half its writes evict.
        assert not any(
            cache.write(i).writeback_required for i in range(300)
        )
        writebacks = sum(
            cache.write(self.REGION + i).writeback_required
            for i in range(1000)
        )
        assert 350 <= writebacks <= 650

    def test_plain_prepare_reverts_to_the_shared_window(self):
        cache = self.make()
        cache.prepare_partition(0, CacheState.HOST_WARM, 128)
        assert cache.partitions == 2
        cache.prepare(CacheState.COLD, window_lines=128)
        assert cache.partitions == 0
        assert not cache.read(0).hit  # shared cold window, owner ignored

    def test_partition_validation(self):
        cache = StatisticalCache(15 * MIB, rng=SimRng(1))
        with pytest.raises(ValidationError):
            cache.partition((1.0,), lambda line: 0)
        with pytest.raises(ValidationError):
            cache.partition((1.0, -1.0), lambda line: 0)
        with pytest.raises(ValidationError):
            cache.prepare_partition(0, CacheState.COLD, 128)  # unpartitioned
        cache.partition((1.0, 1.0), lambda line: 0)
        with pytest.raises(ValidationError):
            cache.prepare_partition(5, CacheState.COLD, 128)
        with pytest.raises(ValidationError):
            cache.prepare_partition(0, CacheState.COLD, 0)
