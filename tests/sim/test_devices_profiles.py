"""Tests for device models and the Table 1 system profiles."""

import pytest

from repro.errors import UnknownProfileError, ValidationError
from repro.sim.devices import (
    DEVICE_REGISTRY,
    EXANIC,
    NETFPGA,
    NFP6000,
    DmaEngineSpec,
    ExaNicModel,
    get_device,
)
from repro.sim.noise import HeavyTailNoise, TightNoise
from repro.sim.profiles import (
    NFP6000_BDW,
    NFP6000_HSW,
    NFP6000_HSW_E3,
    TABLE1_PROFILES,
    get_profile,
    profile_names,
)
from repro.units import MIB


class TestDeviceModels:
    def test_registry_contains_both_benchmark_devices(self):
        assert set(DEVICE_REGISTRY) == {"nfp6000", "netfpga"}

    def test_lookup_case_insensitive(self):
        assert get_device("NFP6000") is NFP6000
        assert get_device("netfpga") is NETFPGA

    def test_unknown_device(self):
        with pytest.raises(ValidationError):
            get_device("connectx")

    def test_nfp_pays_descriptor_enqueue_overhead(self):
        # §6.1: ~100 ns fixed offset attributed to DMA descriptor enqueue.
        assert NFP6000.engine.issue_overhead_ns > NETFPGA.engine.issue_overhead_ns + 50

    def test_nfp_staging_grows_with_size(self):
        assert NFP6000.staging_latency_ns(2048) > NFP6000.staging_latency_ns(64)
        assert NETFPGA.staging_latency_ns(2048) == 0.0

    def test_nfp_has_command_interface_netfpga_does_not(self):
        assert NFP6000.engine.has_command_interface
        assert not NETFPGA.engine.has_command_interface

    def test_timestamp_quantisation(self):
        # The NFP timestamp counter ticks every 19.2 ns.
        assert NFP6000.quantise(547.0) % 19.2 == pytest.approx(0.0, abs=1e-9)
        assert NETFPGA.quantise(547.0) % 4.0 == pytest.approx(0.0, abs=1e-9)

    def test_with_engine_creates_variant(self):
        variant = NFP6000.with_engine(max_inflight=64)
        assert variant.engine.max_inflight == 64
        assert NFP6000.engine.max_inflight != 64

    def test_invalid_engine_spec(self):
        with pytest.raises(ValidationError):
            DmaEngineSpec(max_inflight=0)
        with pytest.raises(ValidationError):
            DmaEngineSpec(issue_interval_ns=-1)

    def test_staging_negative_size_rejected(self):
        with pytest.raises(ValidationError):
            NFP6000.staging_latency_ns(-1)


class TestExaNic:
    def test_128b_round_trip_near_one_microsecond(self):
        assert EXANIC.total_latency_ns(128) == pytest.approx(1000.0, rel=0.15)

    def test_pcie_contribution_dominates(self):
        for size in (0, 128, 750, 1500):
            assert EXANIC.pcie_fraction(size) >= 0.7

    def test_pcie_share_falls_with_size(self):
        assert EXANIC.pcie_fraction(1500) < EXANIC.pcie_fraction(64)

    def test_invalid_parameters(self):
        with pytest.raises(ValidationError):
            ExaNicModel(pcie_base_ns=-1)
        with pytest.raises(ValidationError):
            EXANIC.total_latency_ns(-5)


class TestProfiles:
    def test_all_six_table1_systems_present(self):
        assert len(TABLE1_PROFILES) == 6
        assert profile_names() == [
            "NFP6000-BDW",
            "NetFPGA-HSW",
            "NFP6000-HSW",
            "NFP6000-HSW-E3",
            "NFP6000-IB",
            "NFP6000-SNB",
        ]

    def test_lookup_case_insensitive(self):
        assert get_profile("nfp6000-hsw") is NFP6000_HSW

    def test_unknown_profile_error_lists_known(self):
        with pytest.raises(UnknownProfileError) as excinfo:
            get_profile("NFP6000-ARM")
        assert "NFP6000-HSW" in str(excinfo.value)

    def test_only_broadwell_has_25mib_llc(self):
        assert NFP6000_BDW.llc_bytes == 25 * MIB
        others = [p for p in TABLE1_PROFILES if p.name != "NFP6000-BDW"]
        assert all(p.llc_bytes == 15 * MIB for p in others)

    def test_numa_systems_are_bdw_and_ib(self):
        numa_names = {p.name for p in TABLE1_PROFILES if p.is_numa}
        assert numa_names == {"NFP6000-BDW", "NFP6000-IB"}

    def test_e3_uses_heavy_tail_noise_e5_tight(self):
        assert isinstance(NFP6000_HSW_E3.noise, HeavyTailNoise)
        assert isinstance(NFP6000_HSW.noise, TightNoise)

    def test_e3_has_slower_ingress(self):
        assert NFP6000_HSW_E3.per_tlp_ingress_ns > 5 * NFP6000_HSW.per_tlp_ingress_ns

    def test_profiles_map_to_registered_devices(self):
        for profile in TABLE1_PROFILES:
            assert profile.device().name in ("NFP6000", "NetFPGA")

    def test_root_complex_config_copies_constants(self):
        config = NFP6000_HSW.root_complex_config()
        assert config.base_read_ns == NFP6000_HSW.base_read_ns
        assert config.per_tlp_ingress_ns == NFP6000_HSW.per_tlp_ingress_ns

    def test_table1_row_formatting(self):
        row = NFP6000_BDW.table1_row()
        assert row["NUMA"] == "2-way"
        assert row["LLC"] == "25MB"
        assert "Broadwell" in row["Architecture"]

    def test_with_creates_variant_without_mutation(self):
        variant = NFP6000_HSW.with_(base_read_ns=999.0)
        assert variant.base_read_ns == 999.0
        assert NFP6000_HSW.base_read_ns != 999.0

    def test_ddio_bytes_is_10_percent(self):
        assert NFP6000_HSW.ddio_bytes == pytest.approx(1.5 * MIB, rel=0.01)

    def test_invalid_profile_values(self):
        with pytest.raises(ValidationError):
            NFP6000_HSW.with_(sockets=0)
        with pytest.raises(ValidationError):
            NFP6000_HSW.with_(ddio_fraction=0.0)
