"""Metrics registry unit tests: naming, windows and serialisation."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.obs import MetricsRegistry, metric_segment


class TestNaming:
    def test_valid_dotted_names_accepted(self) -> None:
        registry = MetricsRegistry()
        registry.counter("nicsim.victim.tx.packets")
        registry.gauge("fabric.link.up_utilisation")
        registry.histogram("fabric.dev-0.latency_ns")

    @pytest.mark.parametrize(
        "name", ["", "UpperCase.metric", "spaces in.name", "trailing.", ".lead"]
    )
    def test_invalid_names_rejected(self, name: str) -> None:
        with pytest.raises(ValidationError):
            MetricsRegistry().counter(name)

    def test_cross_kind_collision_rejected(self) -> None:
        registry = MetricsRegistry()
        registry.counter("a.b")
        with pytest.raises(ValidationError):
            registry.gauge("a.b")
        with pytest.raises(ValidationError):
            registry.histogram("a.b")

    def test_get_or_create_returns_same_instrument(self) -> None:
        registry = MetricsRegistry()
        assert registry.counter("a.b") is registry.counter("a.b")

    def test_metric_segment_sanitises_labels(self) -> None:
        assert metric_segment("Victim NIC #2") == "victim_nic_2"
        assert metric_segment("dev-0") == "dev-0"
        assert metric_segment("///") == "unnamed"


class TestInstruments:
    def test_counter_is_monotonic(self) -> None:
        counter = MetricsRegistry().counter("c.total")
        counter.add(3.0)
        counter.add()
        assert counter.value == 4.0
        with pytest.raises(ValidationError):
            counter.add(-1.0)

    def test_counter_window_delta(self) -> None:
        counter = MetricsRegistry().counter("c.total")
        counter.add(5.0)
        assert counter.window_delta() == 5.0
        counter.add(2.0)
        assert counter.window_delta() == 2.0
        assert counter.window_delta() == 0.0

    def test_gauge_holds_last_level(self) -> None:
        gauge = MetricsRegistry().gauge("g.level")
        gauge.set(0.25)
        gauge.set(0.75)
        assert gauge.value == 0.75

    def test_histogram_summary(self) -> None:
        histogram = MetricsRegistry().histogram("h.latency_ns")
        histogram.observe_many([100.0, 200.0, 300.0, 400.0])
        summary = histogram.summary()
        assert summary["count"] == 4
        assert summary["min"] == 100.0
        assert summary["max"] == 400.0
        assert summary["mean"] == pytest.approx(250.0)
        assert 100.0 <= summary["p50"] <= 400.0

    def test_empty_histogram_summary(self) -> None:
        assert MetricsRegistry().histogram("h.empty").summary() == {"count": 0}


class TestWindows:
    def test_sample_snapshots_deltas_and_levels(self) -> None:
        registry = MetricsRegistry()
        counter = registry.counter("c.total")
        gauge = registry.gauge("g.level")
        histogram = registry.histogram("h.values")
        counter.add(10.0)
        gauge.set(0.5)
        histogram.observe(1.0)
        first = registry.sample(50_000.0)
        assert first["window"] == 0
        assert first["time_ns"] == 50_000.0
        assert first["counters"] == {"c.total": 10.0}
        assert first["gauges"] == {"g.level": 0.5}
        assert first["histograms"] == {"h.values": 1}

        counter.add(2.0)
        second = registry.sample(100_000.0)
        assert second["window"] == 1
        assert second["counters"] == {"c.total": 2.0}
        assert second["histograms"] == {"h.values": 0}

    def test_as_dict_holds_cumulative_and_windows(self) -> None:
        registry = MetricsRegistry()
        registry.counter("c.total").add(7.0)
        registry.sample(1.0)
        registry.counter("c.total").add(1.0)
        record = registry.as_dict()
        assert record["counters"] == {"c.total": 8.0}
        assert len(record["windows"]) == 1
        assert record["windows"][0]["counters"] == {"c.total": 7.0}
        # Serialisable: keys sorted, plain types only.
        import json

        json.dumps(record)
