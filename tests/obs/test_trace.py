"""Tracer unit tests: flight recorder semantics and export schemas."""

from __future__ import annotations

import io
import json

import pytest

from repro.errors import ValidationError
from repro.obs import Span, Tracer


def _filled_tracer() -> Tracer:
    tracer = Tracer(capacity=64)
    tracer.record("victim", "tx", 0, "ring", 0.0, 100.0)
    tracer.record("victim", "tx", 0, "issue", 100.0, 50.0)
    tracer.record("victim", "rx", 1, "ring", 10.0, 0.0)
    tracer.record("aggressor", "tx", 2, "payload", 2000.0, 1000.0)
    tracer.record("victim", "tx", -1, "walker", 120.0, 60.0)
    return tracer


class TestFlightRecorder:
    def test_capacity_must_be_positive(self) -> None:
        with pytest.raises(ValidationError):
            Tracer(capacity=0)

    def test_records_and_counts(self) -> None:
        tracer = _filled_tracer()
        assert len(tracer) == 5
        assert tracer.recorded == 5
        assert tracer.evicted == 0

    def test_packet_ids_are_monotonic(self) -> None:
        tracer = Tracer()
        assert [tracer.next_packet() for _ in range(3)] == [0, 1, 2]

    def test_eviction_keeps_newest_spans(self) -> None:
        tracer = Tracer(capacity=4)
        for index in range(7):
            tracer.record("dev", "tx", index, "ring", float(index), 1.0)
        assert len(tracer) == 4
        assert tracer.recorded == 7
        assert tracer.evicted == 3
        # The oldest three scrolled off; packets 3..6 remain, oldest first.
        assert [span.packet for span in tracer.spans] == [3, 4, 5, 6]

    def test_eviction_boundary_exact_fit(self) -> None:
        tracer = Tracer(capacity=4)
        for index in range(4):
            tracer.record("dev", "tx", index, "ring", float(index), 1.0)
        assert tracer.evicted == 0
        tracer.record("dev", "tx", 4, "ring", 4.0, 1.0)
        assert tracer.evicted == 1
        assert tracer.spans[0].packet == 1

    def test_span_view(self) -> None:
        tracer = _filled_tracer()
        span = tracer.spans[0]
        assert isinstance(span, Span)
        assert span.as_dict() == {
            "device": "victim",
            "lane": "tx",
            "packet": 0,
            "stage": "ring",
            "start_ns": 0.0,
            "duration_ns": 100.0,
        }


class TestChromeExport:
    def test_duration_events_carry_required_keys(self) -> None:
        document = _filled_tracer().chrome_trace()
        events = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert len(events) == 5
        for event in events:
            for key in ("name", "cat", "ph", "ts", "dur", "pid", "tid"):
                assert key in event

    def test_pid_maps_devices_and_tid_maps_lanes(self) -> None:
        document = _filled_tracer().chrome_trace()
        events = [e for e in document["traceEvents"] if e["ph"] == "X"]
        # Two devices -> two pids; (victim, tx) spans share one tid,
        # (victim, rx) gets another, (aggressor, tx) a third.
        pids = {e["pid"] for e in events}
        tids = {e["tid"] for e in events}
        assert len(pids) == 2
        assert len(tids) == 3
        victim_tx = [
            e for e in events if e["args"]["packet"] == 0
        ]
        assert len({e["pid"] for e in victim_tx}) == 1
        assert len({e["tid"] for e in victim_tx}) == 1

    def test_metadata_names_processes_and_threads(self) -> None:
        document = _filled_tracer().chrome_trace()
        metadata = [e for e in document["traceEvents"] if e["ph"] == "M"]
        process_names = {
            e["args"]["name"] for e in metadata if e["name"] == "process_name"
        }
        thread_names = {
            e["args"]["name"] for e in metadata if e["name"] == "thread_name"
        }
        assert process_names == {"victim", "aggressor"}
        assert thread_names == {"tx", "rx"}

    def test_timestamps_are_microseconds(self) -> None:
        document = _filled_tracer().chrome_trace()
        payload = next(
            e
            for e in document["traceEvents"]
            if e["ph"] == "X" and e["name"] == "payload"
        )
        assert payload["ts"] == pytest.approx(2.0)
        assert payload["dur"] == pytest.approx(1.0)
        assert payload["args"]["start_ns"] == 2000.0

    def test_other_data_counts_eviction(self) -> None:
        tracer = Tracer(capacity=2)
        for index in range(5):
            tracer.record("dev", "tx", index, "ring", float(index), 1.0)
        document = tracer.chrome_trace()
        assert document["otherData"]["recorded_spans"] == 5
        assert document["otherData"]["evicted_spans"] == 3

    def test_dump_chrome_is_valid_json(self) -> None:
        stream = io.StringIO()
        _filled_tracer().dump(stream, fmt="chrome")
        document = json.loads(stream.getvalue())
        assert document["displayTimeUnit"] == "ns"


class TestJsonlExport:
    def test_each_line_is_a_valid_span_object(self) -> None:
        tracer = _filled_tracer()
        lines = list(tracer.jsonl_lines())
        assert len(lines) == len(tracer)
        for line, span in zip(lines, tracer.spans):
            assert json.loads(line) == span.as_dict()

    def test_dump_jsonl_round_trips(self) -> None:
        stream = io.StringIO()
        tracer = _filled_tracer()
        tracer.dump(stream, fmt="jsonl")
        rows = [
            json.loads(line)
            for line in stream.getvalue().splitlines()
            if line
        ]
        assert [row["stage"] for row in rows] == [
            span.stage for span in tracer.spans
        ]

    def test_unknown_format_rejected(self) -> None:
        with pytest.raises(ValidationError):
            _filled_tracer().dump(io.StringIO(), fmt="csv")


class TestWriteByExtension:
    def test_json_extension_writes_chrome(self, tmp_path) -> None:
        path = tmp_path / "trace.json"
        fmt = _filled_tracer().write(str(path))
        assert fmt == "chrome"
        document = json.loads(path.read_text())
        assert "traceEvents" in document

    def test_jsonl_extension_writes_lines(self, tmp_path) -> None:
        path = tmp_path / "trace.jsonl"
        fmt = _filled_tracer().write(str(path))
        assert fmt == "jsonl"
        lines = path.read_text().splitlines()
        assert len(lines) == 5
        assert all(json.loads(line) for line in lines)
