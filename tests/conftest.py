"""Shared fixtures for the pcie-bench reproduction test suite."""

from __future__ import annotations

import pytest
from hypothesis import settings

# Fixed-seed profile for CI: derandomised example selection so a property
# failure on one run reproduces identically on the next (select it with
# ``--hypothesis-profile=ci``).
settings.register_profile("ci", derandomize=True, max_examples=25, deadline=None)

from repro.core.config import PAPER_DEFAULT_CONFIG, PCIeConfig
from repro.core.model import PCIeModel
from repro.sim.dma import DmaEngine
from repro.sim.host import HostSystem
from repro.units import KIB


@pytest.fixture(scope="session")
def paper_config() -> PCIeConfig:
    """The paper's reference PCIe configuration (Gen3 x8, MPS 256, MRRS 512)."""
    return PAPER_DEFAULT_CONFIG


@pytest.fixture(scope="session")
def model() -> PCIeModel:
    """A shared analytical model instance."""
    return PCIeModel.gen3_x8()


@pytest.fixture
def hsw_host() -> HostSystem:
    """A fresh NFP6000-HSW host (single socket Haswell E5, NFP device)."""
    return HostSystem.from_profile("NFP6000-HSW", seed=1234)


@pytest.fixture
def netfpga_host() -> HostSystem:
    """A fresh NetFPGA-HSW host."""
    return HostSystem.from_profile("NetFPGA-HSW", seed=1234)


@pytest.fixture
def bdw_host() -> HostSystem:
    """A fresh two-socket Broadwell host (NUMA experiments)."""
    return HostSystem.from_profile("NFP6000-BDW", seed=1234)


@pytest.fixture
def hsw_engine(hsw_host: HostSystem) -> DmaEngine:
    """DMA engine bound to the NFP6000-HSW host."""
    return DmaEngine(hsw_host)


@pytest.fixture
def warm_8k_buffer(hsw_host: HostSystem):
    """A warm 8 KiB / 64 B buffer on the HSW host (the Figure 4 setting)."""
    buffer = hsw_host.allocate_buffer(8 * KIB, 64)
    hsw_host.prepare(buffer, "host_warm")
    return buffer
