"""Tests for the figure-1-sim cross-validation experiment."""

from repro.experiments.registry import run_experiment


class TestFigure1Sim:
    def test_quick_run_passes_all_checks(self):
        result = run_experiment("figure-1-sim", quick=True)
        assert result.passed, result.to_text()

    def test_produces_model_and_sim_series_per_nic(self):
        result = run_experiment("figure-1-sim", quick=True)
        names = set(result.series)
        assert "Simple NIC (model)" in names
        assert "Simple NIC (sim)" in names
        assert "Modern NIC (DPDK driver) (sim)" in names
        # Scenario table carries the outputs the analytic model cannot
        # produce: latency percentiles and ring occupancy.
        assert result.table_rows
        assert "RX p99 (ns)" in result.table_headers
        assert "RX ring max" in result.table_headers
