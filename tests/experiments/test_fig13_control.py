"""Structure and shape-check tests for ``figure-13-control``.

The experiment pins this PR's acceptance criterion: on both the
noisy-neighbour (weights knob) and single-hot-flow (RSS knob)
pathologies, the reactive threshold policy recovers at least half of
the victim-p99 gap between the untuned-static and hand-tuned-static
configurations.
"""

from __future__ import annotations

import pytest

from repro.experiments.fig13_control import handtuned_hot_table, run
from repro.experiments.registry import run_experiment
from repro.sim.rng import DEFAULT_SEED


@pytest.fixture(scope="module")
def quick_result():
    return run_experiment("figure-13-control", quick=True)


class TestFigure13Control:
    def test_structure(self, quick_result):
        assert quick_result.experiment_id == "figure-13-control"
        # One row per (scenario, config): 2 scenarios x 4 configs.
        assert len(quick_result.table_rows) == 8
        assert quick_result.table_headers[0] == "scenario, config"
        assert len(quick_result.checks) == 7
        text = quick_result.to_text()
        assert "threshold" in text.lower()
        assert "recovery" in text.lower()

    def test_acceptance_criterion(self, quick_result):
        assert quick_result.passed, [
            check.description
            for check in quick_result.checks
            if not check.passed
        ]
        recovery_checks = [
            check
            for check in quick_result.checks
            if "recovers >= 50%" in check.description
        ]
        assert len(recovery_checks) == 2  # scenario A and scenario B
        assert all(check.passed for check in recovery_checks)

    def test_registry_runner_matches_direct_run(self, quick_result):
        direct = run(quick=True)
        assert direct.experiment_id == quick_result.experiment_id
        assert [c.passed for c in direct.checks] == [
            c.passed for c in quick_result.checks
        ]


class TestHandTunedTable:
    def test_isolates_the_elephant_bucket(self):
        table = handtuned_hot_table(2, seed=DEFAULT_SEED)
        assert len(table) == 64
        # Exactly one bucket maps to the elephant's queue; everything
        # else drains through the other queue.
        from collections import Counter

        counts = Counter(table)
        assert sorted(counts.values()) == [1, 63]

    def test_round_robins_mice_over_cool_queues(self):
        table = handtuned_hot_table(4, seed=DEFAULT_SEED)
        assert len(table) == 64
        from collections import Counter

        counts = Counter(table)
        hot_queue_load = min(counts.values())
        assert hot_queue_load == 1
        # Mice spread evenly over the three cool queues.
        assert max(counts.values()) - sorted(counts.values())[1] <= 1
