"""Tests for the experiment registry and the shared result/check helpers."""

import pytest

from repro.errors import ValidationError
from repro.experiments.base import (
    Check,
    ExperimentResult,
    crossover_x,
    monotonic_increasing,
    value_at,
)
from repro.experiments.registry import (
    EXPERIMENTS,
    experiment_ids,
    get_runner,
    run_experiment,
)


class TestRegistry:
    def test_all_paper_figures_and_tables_registered(self):
        assert experiment_ids() == [
            "figure-1",
            "figure-1-sim",
            "figure-2",
            "figure-4",
            "figure-5",
            "figure-6",
            "figure-7",
            "figure-8",
            "figure-9",
            "figure-7-9-sim",
            "figure-8-sim",
            "figure-8-knee",
            "figure-10-contention",
            "figure-11-topology",
            "figure-12-fleet",
            "figure-13-control",
            "figure-14-attribution",
            "table-1",
            "table-2",
        ]

    def test_every_module_has_metadata(self):
        for experiment_id, module in EXPERIMENTS.items():
            assert module.EXPERIMENT_ID == experiment_id
            assert isinstance(module.TITLE, str) and module.TITLE

    def test_get_runner_unknown_id(self):
        with pytest.raises(ValidationError):
            get_runner("figure-42")

    def test_run_experiment_analytical_figures(self):
        # Figures 1 and 2 are purely analytical, so they are cheap enough to
        # run inside the unit-test suite.
        for experiment_id in ("figure-1", "figure-2"):
            result = run_experiment(experiment_id, quick=True)
            assert result.passed, result.to_text()

    def test_run_experiment_table1(self):
        result = run_experiment("table-1", quick=True)
        assert result.passed
        assert len(result.table_rows) == 6


class TestCheckHelpers:
    def test_check_status(self):
        assert Check("x", True).status() == "PASS"
        assert Check("x", False).status() == "FAIL"

    def test_monotonic_increasing_with_tolerance(self):
        points = [(1, 10.0), (2, 9.9), (3, 11.0)]
        assert monotonic_increasing(points, tolerance=0.2)
        assert not monotonic_increasing(points, tolerance=0.0)

    def test_crossover_x(self):
        a = [(1, 1.0), (2, 5.0), (3, 10.0)]
        b = [(1, 4.0), (2, 4.0), (3, 4.0)]
        assert crossover_x(a, b) == 2

    def test_crossover_none_when_never_reached(self):
        a = [(1, 1.0), (2, 2.0)]
        b = [(1, 10.0), (2, 10.0)]
        assert crossover_x(a, b) is None

    def test_value_at(self):
        assert value_at([(64, 1.5), (128, 2.5)], 128) == 2.5
        from repro.errors import AnalysisError

        with pytest.raises(AnalysisError):
            value_at([(64, 1.5)], 65)

    def test_experiment_result_counts(self):
        result = ExperimentResult(
            experiment_id="x",
            title="t",
            checks=[Check("a", True), Check("b", False)],
        )
        assert result.passed_checks == 1
        assert not result.passed
        assert result.check_summary() == "1/2 checks passed"
