"""Structure and shape checks for the figure-11-topology experiment.

Pins the PR's acceptance criteria: (a) moving the victim behind its own
root port removes at least half of the shared-switch p99 degradation,
(b) DDIO way partitioning restores the victim's descriptor-ring hit rate
to within 5% of solo while the shared-cache run does not, and (c) grant
slicing bounds the victim's added latency to <= 2 quanta under a bulk
aggressor.
"""

from __future__ import annotations

from repro.experiments.fig11_topology import (
    QUANTUM_NS,
    _worst_victim_wait,
)
from repro.experiments.registry import experiment_ids, run_experiment


class TestFigure11Topology:
    def test_structure_and_checks(self):
        result = run_experiment("figure-11-topology", quick=True)
        assert result.experiment_id == "figure-11-topology"
        assert result.table_headers[0] == "scenario"
        # One row per (scenario, device): six scenarios, two devices.
        assert len(result.table_rows) == 12
        assert len(result.checks) == 6
        assert result.passed, [
            check.description for check in result.checks if not check.passed
        ]
        text = result.to_text()
        assert "own root port" in text
        assert "DDIO" in text
        assert "sliced" in text

    def test_registered_in_the_experiment_registry(self):
        assert "figure-11-topology" in experiment_ids()

    def test_slicing_microbench_bound_is_two_quanta(self):
        # The controlled single-resource microbench behind acceptance
        # criterion (c): non-preemptive wrr waits out the full 100 ns
        # bulk grant; slicing stays within two quanta.
        wrr_wait = _worst_victim_wait("wrr", None)
        sliced_wait = _worst_victim_wait("sliced", QUANTUM_NS)
        assert wrr_wait > 2 * QUANTUM_NS
        assert sliced_wait <= 2 * QUANTUM_NS
