"""Structure and shape-check tests for the two new experiments.

``figure-10-contention`` pins the PR's acceptance criterion: a >=10%
victim degradation under a bulk aggressor on the shared walker/ingress,
reduced by at least half under weighted arbitration, with the one-device
degenerate case identical to the plain host-coupled datapath.
"""

from __future__ import annotations

from repro.experiments.fig8_knee import knee_tags
from repro.experiments.registry import experiment_ids, run_experiment


class TestFigure10Contention:
    def test_structure_and_checks(self):
        result = run_experiment("figure-10-contention", quick=True)
        assert result.experiment_id == "figure-10-contention"
        assert result.table_headers[0] == "scenario"
        # One row per (scheme, device).
        assert len(result.table_rows) == 6
        assert len(result.checks) == 7
        assert result.passed, [
            check.description for check in result.checks if not check.passed
        ]
        text = result.to_text()
        assert "noisy neighbour" in text.lower()
        assert "wrr" in text

    def test_acceptance_criterion_margins(self):
        # The acceptance criterion wants >= 10% degradation halved by
        # weighted arbitration; assert the quick run holds it with margin
        # by re-reading the checks' measured details.
        result = run_experiment("figure-10-contention", quick=True)
        degradation_check = result.checks[0]
        protection_check = result.checks[2]
        assert degradation_check.passed and protection_check.passed
        degenerate_check = result.checks[-1]
        assert "identical" in degenerate_check.description
        assert degenerate_check.passed


class TestFigure8Knee:
    def test_structure_and_checks(self):
        result = run_experiment("figure-8-knee", quick=True)
        assert result.experiment_id == "figure-8-knee"
        assert sorted(result.series) == ["ring=128", "ring=512", "ring=64"]
        # One sweep point per tag-pool size, every ring depth.
        assert {len(points) for points in result.series.values()} == {6}
        assert len(result.checks) == 5
        assert result.passed, [
            check.description for check in result.checks if not check.passed
        ]
        text = result.to_text()
        assert "knee" in text.lower()

    def test_knee_helper_finds_smallest_saturating_pool(self):
        points = [(4.0, 10.0), (8.0, 20.0), (16.0, 39.0), (32.0, 40.0)]
        assert knee_tags(points, fraction=0.95) == 16.0
        assert knee_tags(points, fraction=1.0) == 32.0


class TestRegistry:
    def test_new_experiments_registered_in_order(self):
        ids = experiment_ids()
        assert "figure-8-knee" in ids
        assert "figure-10-contention" in ids
        assert ids.index("figure-8-sim") < ids.index("figure-8-knee")
        assert ids.index("figure-8-knee") < ids.index("figure-10-contention")
