"""Tests for EXPERIMENTS.md report generation."""

import pytest

from repro.analysis.report import (
    experiments_markdown,
    summary_line,
    write_experiments_markdown,
)
from repro.errors import AnalysisError
from repro.experiments.base import Check, ExperimentResult


def make_result(experiment_id="figure-x", passed=True):
    return ExperimentResult(
        experiment_id=experiment_id,
        title="A test experiment",
        series={"curve": [(1.0, 2.0), (2.0, 3.0)]},
        x_label="size",
        y_label="Gb/s",
        table_headers=["col"],
        table_rows=[["value"], [3.14]],
        checks=[
            Check("something holds", passed, "measured detail"),
            Check("something else", True, "other detail"),
        ],
        notes=["a calibration note"],
    )


class TestMarkdownReport:
    def test_contains_summary_and_sections(self):
        text = experiments_markdown([make_result("figure-1"), make_result("table-1")])
        assert "# EXPERIMENTS" in text
        assert "## figure-1" in text and "## table-1" in text
        assert "| PASS | something holds | measured detail |" in text
        assert "*Note: a calibration note*" in text

    def test_failed_checks_marked(self):
        text = experiments_markdown([make_result(passed=False)])
        assert "| FAIL |" in text

    def test_float_cells_formatted(self):
        text = experiments_markdown([make_result()])
        assert "3.1" in text

    def test_empty_results_rejected(self):
        with pytest.raises(AnalysisError):
            experiments_markdown([])

    def test_write_to_file(self, tmp_path):
        path = write_experiments_markdown([make_result()], tmp_path / "EXPERIMENTS.md")
        assert path.exists()
        assert path.read_text().startswith("# EXPERIMENTS")


class TestSummaryLine:
    def test_counts_checks(self):
        line = summary_line([make_result(), make_result(passed=False)])
        assert line == "2 experiments, 3/4 checks passed"


class TestExperimentResultHelpers:
    def test_passed_property(self):
        assert make_result(passed=True).passed
        assert not make_result(passed=False).passed

    def test_check_summary(self):
        assert make_result(passed=False).check_summary() == "1/2 checks passed"

    def test_to_text_renders_everything(self):
        text = make_result().to_text()
        assert "figure-x" in text
        assert "paper claim" in text
        assert "col" in text

    def test_table_rows_without_headers_rejected(self):
        result = make_result()
        result.table_headers = []
        with pytest.raises(AnalysisError):
            result.to_text()
