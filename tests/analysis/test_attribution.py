"""Latency-attribution analysis tests over synthetic span streams."""

from __future__ import annotations

import pytest

from repro.analysis import (
    attribute_spans,
    format_attribution_summary,
    stage_totals,
)
from repro.errors import AnalysisError
from repro.obs import PACKET_STAGES, Span


def _packet(
    device: str, packet: int, durations: tuple[float, float, float, float]
) -> list[Span]:
    spans = []
    clock = 0.0
    for stage, duration in zip(PACKET_STAGES, durations):
        spans.append(Span(device, "tx", packet, stage, clock, duration))
        clock += duration
    return spans


def test_attribute_spans_decomposes_the_mean() -> None:
    spans = (
        _packet("nic", 0, (0.0, 10.0, 50.0, 40.0))
        + _packet("nic", 1, (0.0, 30.0, 50.0, 20.0))
    )
    (record,) = attribute_spans(spans)
    assert record["device"] == "nic"
    assert record["packets"] == 2
    assert record["mean_ns"] == pytest.approx(100.0)
    assert record["stages"]["issue"]["mean_ns"] == pytest.approx(20.0)
    assert record["stages"]["payload"]["share"] == pytest.approx(0.5)
    # Telescoping: shares sum to 1.
    assert sum(
        entry["share"] for entry in record["stages"].values()
    ) == pytest.approx(1.0)


def test_incomplete_packets_are_excluded() -> None:
    complete = _packet("nic", 0, (1.0, 2.0, 3.0, 4.0))
    partial = _packet("nic", 1, (1.0, 2.0, 3.0, 4.0))[:2]
    (record,) = attribute_spans(complete + partial)
    assert record["packets"] == 1


def test_resource_spans_totalled_separately() -> None:
    spans = _packet("nic", 0, (0.0, 5.0, 5.0, 5.0)) + [
        Span("nic", "ingress", -1, "arb:ingress@root", 0.0, 40.0),
        Span("nic", "walker", -1, "arb:walker@root", 0.0, 10.0),
        Span("nic", "walker", -1, "walker", 0.0, 60.0),
    ]
    (record,) = attribute_spans(spans)
    assert record["arb_wait_ns"] == pytest.approx(50.0)
    assert record["walker_ns"] == pytest.approx(60.0)
    # Resource spans do not inflate the packet decomposition.
    assert record["mean_ns"] == pytest.approx(15.0)


def test_devices_sorted_and_tail_present() -> None:
    spans = (
        _packet("b", 0, (0.0, 1.0, 1.0, 1.0))
        + _packet("a", 1, (0.0, 2.0, 2.0, 2.0))
    )
    records = attribute_spans(spans)
    assert [record["device"] for record in records] == ["a", "b"]
    for record in records:
        assert set(record["tail_stages"]) == set(PACKET_STAGES)


def test_stage_totals_filters_by_device() -> None:
    spans = [
        Span("a", "tx", -1, "walker", 0.0, 10.0),
        Span("a", "tx", -1, "walker", 0.0, 5.0),
        Span("b", "tx", -1, "walker", 0.0, 100.0),
    ]
    assert stage_totals(spans)["walker"] == pytest.approx(115.0)
    assert stage_totals(spans, device="a")["walker"] == pytest.approx(15.0)


def test_format_attribution_summary_renders_tables() -> None:
    spans = _packet("nic", 0, (0.0, 10.0, 50.0, 40.0))
    text = format_attribution_summary(attribute_spans(spans))
    assert "Latency attribution" in text
    assert "Per-stage decomposition" in text
    assert "payload" in text


def test_format_requires_records() -> None:
    with pytest.raises(AnalysisError):
        format_attribution_summary([])
