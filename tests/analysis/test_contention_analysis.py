"""Tests for the contention analysis helpers and the summary-table edge
cases the per-device tables share code with (zero-packet queues, unbounded
tag pools, missing host stats)."""

from __future__ import annotations

import pytest

from repro.analysis.contention import (
    device_slowdowns,
    format_contention_summary,
    format_topology_comparison,
    jain_fairness_index,
)
from repro.analysis.table import format_nicsim_summary
from repro.errors import AnalysisError


class TestJainFairnessIndex:
    def test_equal_allocations_are_perfectly_fair(self):
        assert jain_fairness_index([3.0, 3.0, 3.0]) == pytest.approx(1.0)

    def test_single_taker_hits_the_floor(self):
        assert jain_fairness_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_empty_and_all_zero_default_to_fair(self):
        assert jain_fairness_index([]) == 1.0
        assert jain_fairness_index([0.0, 0.0]) == 1.0

    def test_negative_allocations_rejected(self):
        with pytest.raises(AnalysisError):
            jain_fairness_index([1.0, -0.5])

    def test_infinite_allocations_take_the_limit(self):
        assert jain_fairness_index([float("inf"), 1.0]) == pytest.approx(0.5)
        assert jain_fairness_index(
            [float("inf"), float("inf"), 1.0, 1.0]
        ) == pytest.approx(0.5)


def _device_record(
    name: str,
    *,
    tx_gbps: float = 5.0,
    rx_gbps: float | None = 5.0,
    p99: float | None = 1000.0,
    drops: int = 0,
    arbitration: bool = True,
) -> dict:
    def path(direction: str, gbps: float) -> dict:
        record = {
            "direction": direction,
            "offered_packets": 100,
            "delivered_packets": 100 - drops,
            "drops": drops,
            "in_flight": 0,
            "payload_bytes": 51200,
            "offered_bytes": 51200,
            "dropped_bytes": 0,
            "throughput_gbps": gbps,
            "packet_rate_pps": 1e6,
            "ring": {
                "depth": 64,
                "posts": 100,
                "drops": drops,
                "max_occupancy": 8,
                "mean_occupancy": 2.0,
            },
        }
        if p99 is not None:
            record["latency_ns"] = {
                "count": 100,
                "mean": p99 / 2,
                "median": p99 / 2,
                "p90": p99 * 0.9,
                "p99": p99,
                "p99.9": p99,
                "min": 10.0,
                "max": p99,
            }
        return record

    record: dict = {
        "name": name,
        "result": {
            "kind": "NICSIM",
            "model": "Modern NIC (DPDK driver)",
            "workload": "fixed",
            "packets": 100,
            "duration_ns": 1e6,
            "throughput_gbps": tx_gbps,
            "link_utilisation_up": 0.5,
            "link_utilisation_down": 0.5,
            "tx": path("tx", tx_gbps),
        },
    }
    if rx_gbps is not None:
        record["result"]["rx"] = path("rx", rx_gbps)
    if arbitration:
        record["ingress"] = {
            "requests": 200,
            "waited": 10,
            "wait_ns_total": 500.0,
            "wait_ns_mean": 2.5,
            "busy_ns_total": 800.0,
        }
        record["walker"] = {
            "requests": 50,
            "waited": 5,
            "wait_ns_total": 5000.0,
            "wait_ns_mean": 100.0,
            "busy_ns_total": 3000.0,
        }
    return record


def _contention_record(**kwargs) -> dict:
    return {
        "kind": "CONTENTION",
        "system": "NFP6000-HSW",
        "arbiter": kwargs.get("arbiter", "wrr"),
        "weights": kwargs.get("weights", [8.0, 1.0]),
        "seed": 1,
        "duration_ns": 1e6,
        "devices": kwargs.get(
            "devices",
            [
                _device_record("victim", rx_gbps=2.5, p99=4000.0),
                _device_record("aggressor", tx_gbps=30.0, rx_gbps=28.0),
            ],
        ),
    }


class TestDeviceSlowdowns:
    def test_ratios_against_solo_baselines(self):
        record = _contention_record()
        solo = {
            "victim": _device_record("victim", p99=1000.0)["result"],
            "aggressor": _device_record(
                "aggressor", tx_gbps=30.0, rx_gbps=28.0
            )["result"],
        }
        slowdowns = device_slowdowns(record, solo)
        assert slowdowns["victim"]["p99"] == pytest.approx(4.0)
        assert slowdowns["victim"]["throughput"] == pytest.approx(2.0)
        assert slowdowns["aggressor"]["p99"] == pytest.approx(1.0)
        assert slowdowns["aggressor"]["throughput"] == pytest.approx(1.0)

    def test_devices_without_baselines_are_skipped(self):
        record = _contention_record()
        slowdowns = device_slowdowns(
            record, {"victim": _device_record("victim")["result"]}
        )
        assert set(slowdowns) == {"victim"}

    def test_starved_device_reports_infinite_slowdown(self):
        record = _contention_record(
            devices=[
                _device_record("victim", tx_gbps=0.0, rx_gbps=0.0, p99=4000.0),
                _device_record("aggressor", tx_gbps=30.0, rx_gbps=28.0),
            ]
        )
        solo = {"victim": _device_record("victim")["result"]}
        slowdowns = device_slowdowns(record, solo)
        assert slowdowns["victim"]["throughput"] == float("inf")

    def test_zero_over_zero_is_neutral(self):
        record = _contention_record(
            devices=[_device_record("victim", tx_gbps=0.0, rx_gbps=0.0)]
        )
        solo = {
            "victim": _device_record("victim", tx_gbps=0.0, rx_gbps=0.0)[
                "result"
            ]
        }
        assert device_slowdowns(record, solo)["victim"]["throughput"] == 1.0


class TestFormatContentionSummary:
    def test_renders_devices_and_weights(self):
        text = format_contention_summary(_contention_record())
        assert "arbiter wrr (weights 8:1)" in text
        assert "victim" in text and "aggressor" in text
        assert "walker wait (ns)" in text

    def test_solo_baselines_add_slowdowns_and_fairness(self):
        solo = {
            "victim": _device_record("victim", p99=1000.0)["result"],
            "aggressor": _device_record(
                "aggressor", tx_gbps=30.0, rx_gbps=28.0
            )["result"],
        }
        text = format_contention_summary(_contention_record(), solo=solo)
        assert "Slowdown vs solo baseline" in text
        assert "Jain fairness index" in text

    def test_solo_run_without_arbitration_renders_dashes(self):
        record = _contention_record(
            devices=[_device_record("dev0", arbitration=False)],
            weights=[1.0],
            arbiter="fcfs",
        )
        text = format_contention_summary(record)
        assert "dev0" in text
        assert "-" in text  # missing arbitration counters render as dashes

    def test_empty_record_rejected(self):
        with pytest.raises(AnalysisError):
            format_contention_summary(_contention_record(devices=[]))


class TestNicsimSummaryEdgeCases:
    """The edge cases the new per-device tables share code with."""

    def test_zero_packet_path_renders_without_latency(self):
        record = _device_record("dev0", p99=None)["result"]
        record["tx"]["delivered_packets"] = 0
        text = format_nicsim_summary([record])
        # Latency percentiles of an empty path render as dashes.
        assert "p99 (ns)" in text
        lines = [line for line in text.splitlines() if "TX" in line]
        assert lines and "| -" in lines[0]

    def test_zero_packet_queue_renders_in_queue_table(self):
        record = _device_record("dev0")["result"]
        starving = dict(record["tx"])
        starving["direction"] = "tx[1]"
        starving["delivered_packets"] = 0
        starving["throughput_gbps"] = 0.0
        starving.pop("latency_ns", None)
        busy = dict(record["tx"])
        busy["direction"] = "tx[0]"
        record["tx"]["queues"] = [busy, starving]
        text = format_nicsim_summary([record])
        assert "Per-queue breakdown" in text
        assert "tx[1]" in text

    def test_unbounded_tag_pool_has_no_tag_table(self):
        record = _device_record("dev0")["result"]
        assert "tags" not in record
        text = format_nicsim_summary([record])
        assert "DMA tag pool" not in text

    def test_bounded_tag_pool_renders_tag_table(self):
        record = _device_record("dev0")["result"]
        record["tags"] = {
            "capacity": 8,
            "acquires": 100,
            "max_in_flight": 8,
            "waited": 20,
            "wait_ns_total": 4000.0,
            "wait_ns_mean": 200.0,
        }
        text = format_nicsim_summary([record])
        assert "DMA tag pool" in text
        assert "peak in flight" in text

    def test_missing_host_stats_omit_host_table(self):
        record = _device_record("dev0")["result"]
        assert "host" not in record
        text = format_nicsim_summary([record])
        assert "Host-side counters" not in text

    def test_tx_only_record_renders_single_row(self):
        record = _device_record("dev0", rx_gbps=None)["result"]
        text = format_nicsim_summary([record])
        assert " TX " in text or "| TX" in text
        assert "RX" not in text.replace("p99", "")

    def test_empty_records_rejected(self):
        with pytest.raises(AnalysisError):
            format_nicsim_summary([])


class TestFormatTopologyComparison:
    def _solo(self) -> dict:
        return {
            "victim": _device_record("victim", p99=1000.0)["result"],
            "aggressor": _device_record(
                "aggressor", tx_gbps=30.0, rx_gbps=30.0, p99=1000.0
            )["result"],
        }

    def test_renders_one_row_per_scenario_device_with_depth_and_jain(self):
        flat = _contention_record()
        tree = _contention_record(
            devices=[
                _device_record("victim", rx_gbps=5.0, p99=1100.0),
                _device_record("aggressor", tx_gbps=30.0, rx_gbps=28.0),
            ]
        )
        tree["topology"] = "victim=root,aggressor=sw0,sw0=root"
        tree["topology_depth"] = 2
        rendered = format_topology_comparison(
            [("flat", flat), ("own root port", tree)], self._solo()
        )
        assert "scenario" in rendered and "depth" in rendered
        assert "flat" in rendered and "own root port" in rendered
        assert "Jain" in rendered
        # Two scenarios x two devices = four data rows.
        assert rendered.count("victim") == 2
        assert rendered.count("aggressor") == 2

    def test_rejects_empty_and_baseline_free_inputs(self):
        with pytest.raises(AnalysisError):
            format_topology_comparison([], self._solo())
        with pytest.raises(AnalysisError):
            format_topology_comparison(
                [("flat", _contention_record())], {"nobody": {}}
            )
