"""Tests for the control-plane action-log renderer."""

import pytest

from repro.analysis import format_control_summary
from repro.control import ControlAction
from repro.errors import AnalysisError


def make_record(actions, *, controller="threshold", window=50_000.0):
    return {
        "kind": "CONTENTION",
        "controller": controller,
        "control_window_ns": window,
        "control_actions": [action.as_dict() for action in actions],
    }


class TestFormatControlSummary:
    def test_static_record_is_rejected(self):
        with pytest.raises(AnalysisError):
            format_control_summary({"kind": "CONTENTION"})
        with pytest.raises(AnalysisError):
            format_control_summary(make_record([], controller="static"))

    def test_actionless_run_renders_a_header_only(self):
        text = format_control_summary(make_record([]))
        assert "controller threshold" in text
        assert "window 50 us" in text
        assert "no knob was retuned" in text
        assert "|" not in text  # no table

    def test_actions_render_as_rows(self):
        actions = [
            ControlAction(
                time_ns=100_000.0, device="victim", actuator="weights",
                reason="wait-dominated for 2 window(s)",
                before=(1.0, 16.0), after=(2.0, 16.0),
            ),
            ControlAction(
                time_ns=150_000.0, device="victim", actuator="ddio",
                reason="descriptor hit rate 0.41 < 0.6",
                before=(1.0, 1.0), after=(2.0, 1.0),
            ),
        ]
        text = format_control_summary(make_record(actions))
        assert "2 action(s)" in text
        assert "100" in text and "150" in text  # times in us
        assert "1:16" in text and "2:16" in text
        assert "wait-dominated" in text
        assert "weights" in text and "ddio" in text

    def test_long_rss_tables_summarise_as_histograms(self):
        table_before = tuple([0] * 32 + [1] * 32)
        table_after = tuple([0] * 16 + [1] * 48)
        action = ControlAction(
            time_ns=40_000.0, device="dev0", actuator="rss",
            reason="queue 0 hot", before=table_before, after=table_after,
        )
        text = format_control_summary(make_record(actions=[action]))
        assert "{q0:32, q1:32}" in text
        assert "{q0:16, q1:48}" in text

    def test_title_override(self):
        action = ControlAction(
            time_ns=1.0, device="d", actuator="weights",
            reason="r", before=(1.0,), after=(2.0,),
        )
        text = format_control_summary(make_record([action]), title="My run")
        assert text.startswith("My run")
