"""Tests for text tables and ASCII plots."""

import pytest

from repro.analysis.ascii_plot import ascii_plot
from repro.analysis.table import format_series_table, format_table
from repro.errors import AnalysisError


class TestFormatTable:
    def test_headers_and_rows_rendered(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", True]])
        assert "a" in text and "b" in text
        assert "2.50" in text
        assert "yes" in text

    def test_title_rendered(self):
        text = format_table(["a"], [[1]], title="My table")
        assert text.startswith("My table")

    def test_column_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            format_table(["a", "b"], [[1]])

    def test_empty_headers_rejected(self):
        with pytest.raises(AnalysisError):
            format_table([], [])

    def test_columns_aligned(self):
        text = format_table(["name", "v"], [["long-name-here", 1], ["x", 22]])
        lines = text.splitlines()
        assert len(set(line.index("|") for line in lines if "|" in line)) == 1


class TestFormatSeriesTable:
    def test_series_aligned_on_x(self):
        series = {
            "a": [(64, 1.0), (128, 2.0)],
            "b": [(64, 3.0), (256, 4.0)],
        }
        text = format_series_table(series, x_label="size")
        assert "size" in text and "a" in text and "b" in text
        assert "-" in text  # missing point placeholder

    def test_empty_series_rejected(self):
        with pytest.raises(AnalysisError):
            format_series_table({})


class TestAsciiPlot:
    def test_plot_contains_markers_and_legend(self):
        series = {"curve": [(x, x * x) for x in range(10)]}
        text = ascii_plot(series, width=40, height=10)
        assert "legend: o curve" in text
        assert "o" in text

    def test_multiple_series_use_distinct_markers(self):
        series = {
            "one": [(0, 0.0), (1, 1.0)],
            "two": [(0, 1.0), (1, 0.0)],
        }
        text = ascii_plot(series, width=20, height=8)
        assert "o one" in text and "x two" in text

    def test_log_x_axis(self):
        series = {"w": [(4096, 1.0), (65536, 2.0), (67108864, 3.0)]}
        text = ascii_plot(series, width=30, height=8, logx=True)
        assert "legend" in text

    def test_log_axis_rejects_non_positive(self):
        with pytest.raises(AnalysisError):
            ascii_plot({"w": [(0, 1.0)]}, logx=True)

    def test_empty_plot_rejected(self):
        with pytest.raises(AnalysisError):
            ascii_plot({})

    def test_tiny_plot_area_rejected(self):
        with pytest.raises(AnalysisError):
            ascii_plot({"a": [(0, 1.0)]}, width=5, height=2)

    def test_flat_series_does_not_crash(self):
        text = ascii_plot({"flat": [(0, 5.0), (1, 5.0)]}, width=20, height=6)
        assert "flat" in text
