"""Tests for the fleet SLO analysis helpers (repro.analysis.fleet)."""

from __future__ import annotations

import pytest

from repro.analysis import (
    default_slo_thresholds,
    fleet_slo_fractions,
    format_fleet_summary,
)
from repro.errors import AnalysisError


def _latency(p99: float) -> dict:
    return {
        "count": 100,
        "mean": p99 / 2.0,
        "median": p99 / 3.0,
        "p90": p99 * 0.8,
        "p99": p99,
        "p99.9": p99 * 1.2,
        "min": 100.0,
        "max": p99 * 1.5,
    }


def _record() -> dict:
    return {
        "kind": "FLEET",
        "params": {
            "hosts": 3,
            "placement": "pack",
            "tenants": 6,
            "tenant_skew": 1.2,
            "load_profile": "flat",
            "system": "NFP6000-HSW",
            "arbiter": "fcfs",
        },
        "hosts": [
            {
                "name": "host0",
                "aggressor_load_gbps": 40.0,
                "victim_latency": _latency(30_000.0),
                "victim_throughput_gbps": 4.2,
                "victim_drops": 3,
            },
            {
                "name": "host1",
                "aggressor_load_gbps": 20.0,
                "victim_latency": _latency(20_000.0),
                "victim_throughput_gbps": 4.8,
                "victim_drops": 0,
            },
            {
                "name": "host2",
                "aggressor_load_gbps": None,
                "victim_latency": _latency(6_000.0),
                "victim_throughput_gbps": 5.0,
                "victim_drops": 0,
            },
        ],
        "fleet_latency": _latency(25_000.0),
    }


class TestSloFractions:
    def test_fractions_follow_the_thresholds(self):
        fractions = fleet_slo_fractions(
            _record(), (5_000.0, 10_000.0, 25_000.0, 50_000.0)
        )
        assert fractions == {
            5_000.0: 1.0,
            10_000.0: 2 / 3,
            25_000.0: 1 / 3,
            50_000.0: 0.0,
        }

    def test_alternate_metric(self):
        fractions = fleet_slo_fractions(
            _record(), (30_000.0,), metric="p99.9"
        )
        # p99.9 = 1.2 * p99: hosts at 36k and 24k straddle the threshold.
        assert fractions[30_000.0] == 1 / 3

    def test_rejects_bad_inputs(self):
        with pytest.raises(AnalysisError):
            fleet_slo_fractions({"hosts": []}, (1.0,))
        with pytest.raises(AnalysisError):
            fleet_slo_fractions(_record(), (0.0,))
        with pytest.raises(AnalysisError):
            fleet_slo_fractions(_record(), (1.0,), metric="p12")


class TestDefaultThresholds:
    def test_quarter_points_span_the_p99_spread(self):
        thresholds = default_slo_thresholds(_record())
        assert thresholds[0] == pytest.approx(6_000.0)
        assert thresholds[-1] == pytest.approx(30_000.0)
        assert len(thresholds) == 5
        assert list(thresholds) == sorted(thresholds)

    def test_degenerate_rack_gets_a_single_threshold(self):
        record = _record()
        for host in record["hosts"]:
            host["victim_latency"] = _latency(10_000.0)
        assert default_slo_thresholds(record) == (10_000.0,)

    def test_empty_record_is_an_error(self):
        with pytest.raises(AnalysisError):
            default_slo_thresholds({})


class TestFormatFleetSummary:
    def test_summary_contains_all_three_sections(self):
        text = format_fleet_summary(_record())
        assert "Fleet: 3 hosts" in text
        assert "placement=pack" in text
        assert "host0" in text and "host2" in text
        # The aggressor-free host renders a dash, not a load.
        assert "-" in text
        assert "Rack-wide victim latency (merged sketches)" in text
        assert "SLO scorecard" in text

    def test_explicit_thresholds_drive_the_scorecard(self):
        text = format_fleet_summary(_record(), thresholds_ns=(10_000.0,))
        assert "10000" in text
        assert "2/3" in text

    def test_missing_latency_metric_is_an_error(self):
        record = _record()
        del record["hosts"][0]["victim_latency"]["p99"]
        with pytest.raises(AnalysisError):
            format_fleet_summary(record)
