"""Invariant harness for shared-host contention runs (repro.sim.fabric).

Property-style tests over a grid of (device mix, arbiter, workloads,
seeds) asserting the laws any multi-device run must obey:

* per-device packet conservation: offered = delivered + dropped +
  in-flight, per direction and per device, against independently
  regenerated schedules;
* per-device byte conservation: offered bytes match the schedule, and
  delivered + dropped bytes never exceed them;
* arbitration sanity: every device's counters are self-consistent
  (waited <= requests, non-negative waits, busy time conserved across
  devices on each shared resource);
* solo equivalence: a one-device fabric run equals the checked-in
  single-device golden record bit for bit, whatever arbiter is named.

The ``CONTENTION_ARBITER`` environment variable pins the scheme choices
(e.g. ``CONTENTION_ARBITER=sliced``) and ``CONTENTION_TOPOLOGY`` the
fabric shape (``flat`` or ``tree``), so a CI matrix can run the same grid
once per (scheme, topology) combination.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.bench.nicsim import NicSimParams
from repro.errors import ValidationError
from repro.sim.engine import WEIGHTED_SCHEMES
from repro.sim.fabric import (
    ContentionResult,
    FabricConfig,
    FabricDevice,
    FabricSimulator,
)
from repro.sim.rng import SimRng
from repro.units import KIB, MIB
from repro.workloads import build_workload

GOLDEN_PATH = Path(__file__).parent.parent / "golden" / "nicsim_seeded.json"

_ARBITER_ENV = os.environ.get("CONTENTION_ARBITER")
#: Arbitration schemes the grid samples; a CI matrix pins one.
ARBITER_CHOICES = (
    (_ARBITER_ENV,) if _ARBITER_ENV else ("fcfs", "rr", "wrr", "age", "sliced")
)

_TOPOLOGY_ENV = os.environ.get("CONTENTION_TOPOLOGY")
#: Fabric shapes the grid samples; a CI matrix pins one.
TOPOLOGY_CHOICES = (_TOPOLOGY_ENV,) if _TOPOLOGY_ENV else ("flat", "tree")

WORKLOADS = ("fixed", "imix", "bursty")

#: Switch trees per device count: the victim on its own root port, the
#: bulk devices behind shared switches.
TREE_SPECS = {
    2: "victim=root,aggressor=sw0,sw0=root",
    4: (
        "victim=root,aggressor=sw0,bulk2=sw0,"
        "streamer=sw1,sw0=root,sw1=root"
    ),
}


def _build_devices(
    victim_workload: str,
    aggressor_workload: str,
    packets: int,
    device_count: int,
) -> list[FabricDevice]:
    victim = FabricDevice(
        workload=build_workload(
            victim_workload, size=512, load_gbps=6.0, duplex=True
        ),
        model="dpdk",
        packets=packets,
        name="victim",
        ring_depth=64,
        payload_window=256 * KIB,
        dma_tags=12,
    )
    aggressor = FabricDevice(
        workload=build_workload(aggressor_workload, load_gbps=None, duplex=True),
        model="kernel",
        packets=3 * packets,
        name="aggressor",
        payload_window=16 * MIB,
    )
    devices = [victim, aggressor]
    if device_count == 4:
        devices.append(
            FabricDevice(
                workload=build_workload("imix", load_gbps=None, duplex=True),
                model="kernel",
                packets=2 * packets,
                name="bulk2",
                payload_window=8 * MIB,
            )
        )
        devices.append(
            FabricDevice(
                workload=build_workload(
                    "fixed", size=1024, load_gbps=4.0, duplex=True
                ),
                model="dpdk",
                packets=packets,
                name="streamer",
                payload_window=1 * MIB,
            )
        )
    return devices


def _run(
    victim_workload: str,
    aggressor_workload: str,
    arbiter: str,
    topology: str,
    packets: int,
    seed: int,
    device_count: int = 2,
) -> tuple[list[FabricDevice], ContentionResult]:
    devices = _build_devices(
        victim_workload, aggressor_workload, packets, device_count
    )
    weights = None
    if arbiter in WEIGHTED_SCHEMES:
        weights = (4.0, 1.0) + (1.0,) * (device_count - 2)
    fabric = FabricConfig(
        system="NFP6000-HSW",
        iommu_enabled=True,
        arbiter=arbiter,
        weights=weights,
        topology=None if topology == "flat" else TREE_SPECS[device_count],
    )
    return devices, FabricSimulator(devices, fabric).run(seed=seed)


class TestContentionInvariants:
    @given(
        victim_workload=st.sampled_from(WORKLOADS),
        aggressor_workload=st.sampled_from(WORKLOADS),
        arbiter=st.sampled_from(ARBITER_CHOICES),
        topology=st.sampled_from(TOPOLOGY_CHOICES),
        device_count=st.sampled_from((2, 4)),
        packets=st.integers(min_value=80, max_value=200),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=10, deadline=None)
    def test_per_device_conservation_across_grid(
        self,
        victim_workload,
        aggressor_workload,
        arbiter,
        topology,
        device_count,
        packets,
        seed,
    ):
        devices, result = _run(
            victim_workload,
            aggressor_workload,
            arbiter,
            topology,
            packets,
            seed,
            device_count,
        )
        assert result.arbiter == arbiter
        assert result.topology_depth == (1 if topology == "flat" else 2)
        for device, record in zip(devices, result.devices):
            # Regenerate the offered schedule independently: workloads draw
            # from named RNG sub-streams, so the same seed reproduces the
            # same schedule regardless of the fabric's interleaving.
            rng = SimRng(seed)
            nic = record.result
            paths = [nic.tx] + ([nic.rx] if nic.rx is not None else [])
            for path in paths:
                schedule = device.workload.generate(
                    device.packets, rng, stream=path.direction
                )
                offered_bytes = int(np.asarray(schedule.sizes).sum())
                assert path.offered_packets == schedule.count
                assert (
                    path.delivered_packets + path.drops + path.in_flight
                    == path.offered_packets
                ), (record.name, path.direction)
                assert path.offered_bytes == offered_bytes
                assert (
                    path.payload_bytes + path.dropped_bytes
                    <= path.offered_bytes
                )
                assert path.ring.max_occupancy <= path.ring.depth
            # Arbitration counters are self-consistent per device.
            for port in (record.ingress, record.walker):
                assert port is not None
                assert 0 <= port.waited <= port.requests
                assert port.wait_ns_total >= 0.0
                assert port.wait_ns_max <= port.wait_ns_total + 1e-9
                assert port.busy_ns_total >= 0.0
        # Each shared resource's root-level busy time is bounded by the
        # run duration: it is a serial resource, it cannot overcommit.
        # (Per-device counters charge service once, at the root, so the
        # bound holds for switch trees too.)
        for attribute in ("ingress", "walker"):
            total_busy = sum(
                getattr(record, attribute).busy_ns_total
                for record in result.devices
            )
            assert total_busy <= result.duration_ns + 1e-6

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        topology=st.sampled_from(TOPOLOGY_CHOICES),
    )
    @settings(max_examples=4, deadline=None)
    def test_identical_seeds_reproduce_identical_runs(self, seed, topology):
        arbiter = ARBITER_CHOICES[-1]
        _, first = _run("fixed", "imix", arbiter, topology, 100, seed)
        _, second = _run("fixed", "imix", arbiter, topology, 100, seed)
        assert first == second

    def test_single_device_fabric_reproduces_golden(self):
        # The degenerate-case acceptance criterion, under every arbiter
        # name the matrix pins: one device means no arbitration layer, so
        # the scheme must not matter and the golden must reproduce.
        golden = json.loads(GOLDEN_PATH.read_text())
        params = NicSimParams.from_dict(golden["params"])
        workload = build_workload(
            params.workload,
            size=params.packet_size,
            load_gbps=params.offered_load_gbps,
            duplex=params.duplex,
        )
        for arbiter in ARBITER_CHOICES:
            device = FabricDevice(
                workload=workload,
                model=params.model,
                packets=params.packets,
                ring_depth=params.ring_depth,
                payload_window=params.payload_window,
                payload_cache_state=params.payload_cache_state,
                payload_placement=params.payload_placement,
            )
            fabric = FabricConfig(
                system=params.system,
                iommu_enabled=params.iommu_enabled,
                iommu_page_size=params.iommu_page_size,
                arbiter=arbiter,
                weights=None if arbiter not in WEIGHTED_SCHEMES else (1.0,),
            )
            result = FabricSimulator([device], fabric).run(seed=params.seed)
            assert result.devices[0].result.as_dict() == golden["result"]
