"""Property grid: the fast engines must agree with the exact event loop.

The batch engine's contract has two regimes, both asserted here with
their documented tolerances (see the ``repro.sim.fastpath`` module
docstring):

* **Converged** runs — the waveform relaxation reaches its fixed point,
  so the batch result must be **bit-identical** to the exact engine
  (``as_dict()`` equality, every float included).
* **Saturated** runs — the solver is cut off at its sweep cap and
  polishes only the tail, so aggregate metrics carry a bounded error:
  throughput within 1 %, median latency within 3 %, p99 within 8 %.

The hybrid engine trades per-packet times for certified analytic rates,
so it gets throughput-level tolerances only (and must actually certify
on steady scenarios — otherwise it silently degenerated to exact and
the fast path is dead code).

The fabric mirrors the knob across every arbiter scheme: host coupling
makes the fabric an interaction point by construction, so fabric batch
must be *exactly* the fabric exact result for all arbiters.
"""

import pytest

from repro.bench.contention import ContentionParams, run_contention_benchmark
from repro.bench.nicsim import NicSimParams
from repro.sim.engine import ARBITER_SCHEMES
from repro.sim.nicsim import simulate_nic

#: Saturated-regime tolerances (relative). Converged runs use none.
THROUGHPUT_RTOL = 0.01
P50_RTOL = 0.03
P99_RTOL = 0.08

#: (model, workload, packet_size, load_gbps, packets, seed) scenarios
#: whose relaxation converges: batch replays exact bit for bit.
CONVERGED_GRID = [
    ("dpdk", "fixed", 512, 5.0, 500, 3),
    ("dpdk", "fixed", 1500, 20.0, 1000, 1),
    ("dpdk", "imix", None, 8.0, 1000, 5),
    ("dpdk", "bursty-imix", None, 6.0, 1000, 2),
    ("kernel", "fixed", 256, 4.0, 800, 11),
    ("kernel", "imix", None, 10.0, 1000, 4),
]

#: Scenarios that saturate the datapath (sweep cap bites): tolerance
#: regime. This is the committed BENCH_eventcore.json scenario.
SATURATED_GRID = [
    ("dpdk", "bursty-imix", None, 24.0, 4000, 7),
]


def _simulate(mode, model, workload, size, load, packets, seed):
    kwargs = dict(load_gbps=load, packets=packets, seed=seed, mode=mode)
    if size is not None:
        kwargs["packet_size"] = size
    return simulate_nic(model, workload, **kwargs)


def _direction_metrics(result):
    for direction in ("tx", "rx"):
        path = getattr(result, direction)
        if path is None:
            continue
        yield direction, path


class TestConvergedBitIdentity:
    @pytest.mark.parametrize(
        "model,workload,size,load,packets,seed",
        CONVERGED_GRID,
        ids=[f"{m}-{w}@{l:g}" for m, w, _s, l, _p, _seed in CONVERGED_GRID],
    )
    def test_batch_replays_exact(self, model, workload, size, load,
                                 packets, seed):
        exact = _simulate("exact", model, workload, size, load, packets, seed)
        batch = _simulate("batch", model, workload, size, load, packets, seed)
        assert batch.as_dict() == exact.as_dict()


class TestSaturatedTolerances:
    @pytest.mark.parametrize(
        "model,workload,size,load,packets,seed",
        SATURATED_GRID,
        ids=[f"{m}-{w}@{l:g}" for m, w, _s, l, _p, _seed in SATURATED_GRID],
    )
    def test_batch_within_documented_bounds(self, model, workload, size,
                                            load, packets, seed):
        exact = _simulate("exact", model, workload, size, load, packets, seed)
        batch = _simulate("batch", model, workload, size, load, packets, seed)
        for direction, exact_path in _direction_metrics(exact):
            batch_path = getattr(batch, direction)
            assert batch_path.throughput_gbps == pytest.approx(
                exact_path.throughput_gbps, rel=THROUGHPUT_RTOL
            ), f"{direction} throughput outside {THROUGHPUT_RTOL:.0%}"
            assert batch_path.latency.median == pytest.approx(
                exact_path.latency.median, rel=P50_RTOL
            ), f"{direction} p50 outside {P50_RTOL:.0%}"
            assert batch_path.latency.p99 == pytest.approx(
                exact_path.latency.p99, rel=P99_RTOL
            ), f"{direction} p99 outside {P99_RTOL:.0%}"


class TestHybridThroughput:
    @pytest.mark.parametrize(
        "model,workload,size,load,packets,seed",
        CONVERGED_GRID,
        ids=[f"{m}-{w}@{l:g}" for m, w, _s, l, _p, _seed in CONVERGED_GRID],
    )
    def test_hybrid_tracks_exact_throughput(self, model, workload, size,
                                            load, packets, seed):
        exact = _simulate("exact", model, workload, size, load, packets, seed)
        hybrid = _simulate("hybrid", model, workload, size, load,
                           packets, seed)
        assert hybrid.fluid is not None
        for direction, exact_path in _direction_metrics(exact):
            hybrid_path = getattr(hybrid, direction)
            assert hybrid_path.throughput_gbps == pytest.approx(
                exact_path.throughput_gbps, rel=THROUGHPUT_RTOL
            ), f"{direction} throughput outside {THROUGHPUT_RTOL:.0%}"

    def test_hybrid_actually_certifies_on_a_steady_workload(self):
        # Guard against the fluid path silently never engaging (which
        # would make every other hybrid assertion vacuous).
        hybrid = _simulate("hybrid", "dpdk", "fixed", 512, 5.0, 2000, 11)
        total_fluid = sum(
            summary["fluid_packets"] for summary in hybrid.fluid.values()
        )
        total_certs = sum(
            summary["certifications"] for summary in hybrid.fluid.values()
        )
        assert total_certs >= 1
        assert total_fluid > 0


class TestFabricArbiterGrid:
    @pytest.mark.parametrize("arbiter", ARBITER_SCHEMES)
    def test_fabric_batch_is_exact_for_every_arbiter(self, arbiter):
        def params(mode):
            return ContentionParams(
                devices=(
                    NicSimParams(model="dpdk", workload="fixed",
                                 packet_size=512, offered_load_gbps=5.0,
                                 packets=200),
                    NicSimParams(model="kernel", workload="imix",
                                 packets=200),
                ),
                names=("a", "b"),
                arbiter=arbiter,
                seed=5,
                mode=mode,
            )

        exact = run_contention_benchmark(params("exact"))
        batch = run_contention_benchmark(params("batch"))
        assert batch.as_dict() == exact.as_dict()
