"""Property tests: the calendar-queue event wheel is a drop-in heap.

Every golden file in this repository rests on one determinism contract:
events dispatch in (time, schedule-order) order, with FIFO tie-break at
equal timestamps, and pre-fed workload arrivals dispatch *before* any
dynamically scheduled event at the same timestamp.  The heap scheduler
(:class:`HeapEventLoop`) defines that contract; the bucketed wheel
(:class:`EventLoop`) merely has to reproduce it faster.  These tests run
both loops over identical schedules — including adversarial ones that
cross bucket boundaries, wrap the wheel, land in the overflow horizon,
tie exactly, and interleave dynamic scheduling with the arrival stream —
and assert the observed dispatch order is identical event for event.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.engine import (
    DEFAULT_BUCKET_NS,
    DEFAULT_NUM_BUCKETS,
    EngineProfile,
    EventLoop,
    HeapEventLoop,
)

#: Schedules span [0, 3 wheel windows) so events land in the live window,
#: wrap the cursor, and overflow the horizon in the same run.
HORIZON = 3 * DEFAULT_BUCKET_NS * DEFAULT_NUM_BUCKETS

times = st.floats(min_value=0.0, max_value=HORIZON, allow_nan=False)
#: Coarse times quantised to half a bucket: forces many exact ties and
#: exact bucket-boundary hits, where FIFO tie-break bugs would live.
coarse_times = st.integers(min_value=0, max_value=200).map(
    lambda i: i * (DEFAULT_BUCKET_NS / 2.0)
)


def run_schedule(loop, schedule, stream=()):
    """Drive ``loop`` over ``schedule`` and return the dispatch order.

    ``schedule`` is a list of times scheduled up front with ``at``;
    ``stream`` is fed as pre-sorted workload arrivals via ``feed_many``.
    Each dispatched event records ``(kind, label, now)``.
    """
    order = []
    for label, time in enumerate(schedule):
        loop.at(time, lambda now, label=label: order.append(("at", label, now)))
    loop.feed_many(
        (time, lambda now, arg: order.append(("feed", arg, now)), label)
        for label, time in enumerate(stream)
    )
    loop.run()
    return order


class TestWheelMatchesHeap:
    @given(schedule=st.lists(times, min_size=0, max_size=150))
    @settings(max_examples=100, deadline=None)
    def test_identical_pop_order_for_arbitrary_times(self, schedule):
        assert run_schedule(EventLoop(), schedule) == run_schedule(
            HeapEventLoop(), schedule
        )

    @given(schedule=st.lists(coarse_times, min_size=2, max_size=150))
    @settings(max_examples=100, deadline=None)
    def test_equal_timestamps_dispatch_in_schedule_order(self, schedule):
        wheel = run_schedule(EventLoop(), schedule)
        heap = run_schedule(HeapEventLoop(), schedule)
        assert wheel == heap
        # The tie-break is FIFO: among events at the same time, labels
        # (schedule order) appear in increasing order.
        by_time: dict[float, list[int]] = {}
        for _, label, now in wheel:
            by_time.setdefault(now, []).append(label)
        for labels in by_time.values():
            assert labels == sorted(labels)

    @given(
        schedule=st.lists(times, min_size=0, max_size=80),
        stream=st.lists(coarse_times, min_size=0, max_size=80),
    )
    @settings(max_examples=100, deadline=None)
    def test_arrival_stream_interleaves_identically(self, schedule, stream):
        stream = sorted(stream)
        assert run_schedule(EventLoop(), schedule, stream) == run_schedule(
            HeapEventLoop(), schedule, stream
        )

    @given(
        first=st.lists(times, min_size=1, max_size=40),
        offsets=st.lists(
            st.floats(min_value=0.0, max_value=2_000.0, allow_nan=False),
            min_size=1,
            max_size=10,
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_dynamic_rescheduling_from_inside_events(self, first, offsets):
        """Events that schedule follow-ups mid-run (the simulator's actual
        shape: DMA completions chain host events) dispatch identically."""

        def run(loop):
            order = []

            def chain(now, depth=0):
                order.append((round(now, 6), depth))
                if depth < len(offsets):
                    loop.at(
                        now + offsets[depth],
                        lambda t, depth=depth: chain(t, depth + 1),
                    )

            for time in first:
                loop.at(time, chain)
            loop.run()
            return order

        assert run(EventLoop()) == run(HeapEventLoop())

    def test_same_time_feed_precedes_dynamic_event(self):
        # A fed arrival and an at() event at the same timestamp: the
        # arrival dispatches first on both loops (the `entry[0] <= head`
        # contract the nicsim packet stream depends on).
        for loop in (EventLoop(), HeapEventLoop()):
            order = run_schedule(loop, [100.0], [100.0])
            assert order == [("feed", 0, 100.0), ("at", 0, 100.0)]

    def test_overflow_horizon_events_migrate_in_order(self):
        # Events far beyond the wheel window (> num_buckets * bucket_ns)
        # take the overflow path and must still interleave correctly with
        # near events scheduled later.
        window = DEFAULT_BUCKET_NS * DEFAULT_NUM_BUCKETS
        schedule = [window * 2.5, 10.0, window * 2.5, window + 1.0, 10.0]
        assert run_schedule(EventLoop(), schedule) == run_schedule(
            HeapEventLoop(), schedule
        )

    def test_processed_counts_agree(self):
        schedule = [50.0, 50.0, 4096.0, 0.0]
        stream = [0.0, 25.0, 50.0]
        wheel, heap = EventLoop(), HeapEventLoop()
        assert run_schedule(wheel, schedule, stream) == run_schedule(
            heap, schedule, stream
        )
        assert wheel.processed == heap.processed == len(schedule) + len(stream)

    @given(schedule=st.lists(times, min_size=1, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_tiny_wheel_forced_to_wrap_still_matches(self, schedule):
        # An 8-bucket wheel wraps every 8 * bucket_ns: every schedule of
        # any length exercises cursor wrap-around and overflow migration.
        wheel = EventLoop(bucket_ns=DEFAULT_BUCKET_NS, num_buckets=8)
        assert run_schedule(wheel, schedule) == run_schedule(
            HeapEventLoop(), schedule
        )


class TestPeekAndFeed:
    @pytest.mark.parametrize("make_loop", [EventLoop, HeapEventLoop])
    def test_peek_time_sees_both_stream_and_scheduled_events(self, make_loop):
        loop = make_loop()
        assert loop.peek_time() == math.inf
        loop.at(200.0, lambda now: None)
        assert loop.peek_time() == 200.0
        loop.feed(50.0, lambda now, arg: None, None)
        assert loop.peek_time() == 50.0

    @pytest.mark.parametrize("make_loop", [EventLoop, HeapEventLoop])
    def test_single_feed_matches_feed_many(self, make_loop):
        order = []
        loop = make_loop()
        loop.feed(20.0, lambda now, arg: order.append(arg), "b")
        loop.feed(10.0, lambda now, arg: order.append(arg), "a")
        loop.run()
        assert order == ["a", "b"]
        assert loop.processed == 2


class TestEngineProfile:
    def test_derived_metrics_and_serialisation(self):
        profile = EngineProfile(
            label="test", build_s=0.5, events_s=2.0, stats_s=0.5, events=1000
        )
        assert profile.total_s == 3.0
        assert profile.events_per_sec == 500.0
        record = profile.as_dict()
        assert record["label"] == "test"
        assert record["total_s"] == 3.0
        assert record["events_per_sec"] == 500.0
        text = profile.format()
        assert "test" in text and "events/s" in text

    def test_zero_duration_run_reports_zero_throughput(self):
        profile = EngineProfile(
            label="empty", build_s=0.0, events_s=0.0, stats_s=0.0, events=0
        )
        assert profile.events_per_sec == 0.0
        assert "0" in profile.format()


class TestReservedSequences:
    """The reserve()/at_sequenced() pair batched grants rely on."""

    @pytest.mark.parametrize("make_loop", [EventLoop, HeapEventLoop])
    def test_reserved_sequence_keeps_pre_reservation_order(self, make_loop):
        # reserve() claims a tie-break slot *now*; an event scheduled with
        # it later still dispatches before same-time events scheduled in
        # between — exactly how a batched grant keeps its wake-up's place.
        loop = make_loop()
        order = []
        loop.at(10.0, lambda now: order.append("early"))
        seq = loop.reserve()
        loop.at(10.0, lambda now: order.append("later"))
        loop.at_sequenced(10.0, seq, lambda now: order.append("reserved"))
        loop.run()
        assert order == ["early", "reserved", "later"]

    @pytest.mark.parametrize("make_loop", [EventLoop, HeapEventLoop])
    def test_unused_reservation_is_invisible(self, make_loop):
        # A batched grant skips its wake-up: the claimed-but-unused
        # sequence must leave no hole in dispatch order.
        loop = make_loop()
        order = []
        loop.at(5.0, lambda now: order.append("a"))
        loop.reserve()
        loop.at(5.0, lambda now: order.append("b"))
        loop.run()
        assert order == ["a", "b"]
