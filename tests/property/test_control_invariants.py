"""Invariant harness for controlled (closed-loop) contention runs.

Property-style tests over a grid of (policy, workloads, windows, seeds)
asserting the laws a run with a live control plane must obey:

* **conservation survives actuation** — per-device packet and byte
  conservation hold exactly as in the static fabric, no matter how many
  knobs the controller retunes mid-run;
* **the action log is faithful** — actions are time-ordered within the
  run, every action names a known actuator and device, every ``before``
  differs from its ``after``, and consecutive actions on the same knob
  chain (one action's ``after`` is the next one's ``before``);
* **static equivalence** — ``controller="static"`` (the default) builds
  no runtime at all, so its results carry no controller keys and equal a
  run that never mentioned the control plane;
* **determinism** — identical seeds reproduce identical controlled runs,
  action log included.

The ``CONTROL_POLICY`` environment variable pins the policy choice
(e.g. ``CONTROL_POLICY=aimd``), so a CI matrix can run the same grid
once per policy.
"""

from __future__ import annotations

import os

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.control import ACTUATOR_KINDS, CONTROL_POLICIES
from repro.sim.fabric import (
    ContentionResult,
    FabricConfig,
    FabricDevice,
    FabricSimulator,
)
from repro.sim.rng import SimRng
from repro.units import KIB, MIB
from repro.workloads import SingleHotFlow, build_workload

_POLICY_ENV = os.environ.get("CONTROL_POLICY")
#: Policies the grid samples; a CI matrix pins one via CONTROL_POLICY.
POLICY_CHOICES = (_POLICY_ENV,) if _POLICY_ENV else CONTROL_POLICIES

WORKLOADS = ("fixed", "imix", "bursty")


def _build_devices(
    victim_workload: str, aggressor_workload: str, packets: int
) -> list[FabricDevice]:
    victim = FabricDevice(
        workload=build_workload(
            victim_workload, size=512, load_gbps=6.0, duplex=True
        ).with_(flows=SingleHotFlow(flows=16, hot_fraction=0.5)),
        model="dpdk",
        packets=packets,
        name="victim",
        ring_depth=64,
        num_queues=2,
        payload_window=256 * KIB,
        dma_tags=12,
    )
    aggressor = FabricDevice(
        workload=build_workload(aggressor_workload, load_gbps=None, duplex=True),
        model="kernel",
        packets=3 * packets,
        name="aggressor",
        payload_window=16 * MIB,
    )
    return [victim, aggressor]


def _run(
    victim_workload: str,
    aggressor_workload: str,
    policy: str,
    window_ns: float,
    packets: int,
    seed: int,
) -> tuple[list[FabricDevice], ContentionResult]:
    devices = _build_devices(victim_workload, aggressor_workload, packets)
    fabric = FabricConfig(
        system="NFP6000-HSW",
        iommu_enabled=True,
        arbiter="wrr",
        weights=(1.0, 8.0),
        controller=policy,
        control_window_ns=None if policy == "static" else window_ns,
    )
    return devices, FabricSimulator(devices, fabric).run(seed=seed)


class TestControlInvariants:
    @given(
        victim_workload=st.sampled_from(WORKLOADS),
        aggressor_workload=st.sampled_from(WORKLOADS),
        policy=st.sampled_from(POLICY_CHOICES),
        window_ns=st.sampled_from((10_000.0, 20_000.0, 50_000.0)),
        packets=st.integers(min_value=80, max_value=200),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=10, deadline=None)
    def test_conservation_survives_actuation(
        self,
        victim_workload,
        aggressor_workload,
        policy,
        window_ns,
        packets,
        seed,
    ):
        devices, result = _run(
            victim_workload, aggressor_workload, policy, window_ns,
            packets, seed,
        )
        assert result.controller == policy
        for device, record in zip(devices, result.devices):
            rng = SimRng(seed)
            nic = record.result
            paths = [nic.tx] + ([nic.rx] if nic.rx is not None else [])
            for path in paths:
                schedule = device.workload.generate(
                    device.packets, rng, stream=path.direction
                )
                offered_bytes = int(np.asarray(schedule.sizes).sum())
                assert path.offered_packets == schedule.count
                assert (
                    path.delivered_packets + path.drops + path.in_flight
                    == path.offered_packets
                ), (record.name, path.direction, policy)
                assert path.offered_bytes == offered_bytes
                assert (
                    path.payload_bytes + path.dropped_bytes
                    <= path.offered_bytes
                )
                assert path.ring.max_occupancy <= path.ring.depth
        for attribute in ("ingress", "walker"):
            total_busy = sum(
                getattr(record, attribute).busy_ns_total
                for record in result.devices
            )
            assert total_busy <= result.duration_ns + 1e-6

    @given(
        policy=st.sampled_from(POLICY_CHOICES),
        window_ns=st.sampled_from((10_000.0, 20_000.0)),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=6, deadline=None)
    def test_action_log_is_faithful(self, policy, window_ns, seed):
        _, result = _run("fixed", "imix", policy, window_ns, 150, seed)
        if policy == "static":
            assert result.control_actions == ()
            return
        times = [action.time_ns for action in result.control_actions]
        assert times == sorted(times)
        known_devices = {record.name for record in result.devices} | {"*"}
        last_value: dict[tuple[str, str], tuple] = {}
        for action in result.control_actions:
            assert action.actuator in ACTUATOR_KINDS
            assert action.device in known_devices
            assert action.before != action.after
            assert action.reason
            assert 0.0 < action.time_ns <= result.duration_ns
            # Weights/ddio are fabric-wide vectors: each action chains
            # off the previous one's outcome.
            key = (action.actuator, "" if action.actuator != "rss"
                   else action.device)
            if key in last_value:
                assert action.before == last_value[key]
            last_value[key] = action.after

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=4, deadline=None)
    def test_identical_seeds_reproduce_identical_controlled_runs(self, seed):
        policy = POLICY_CHOICES[-1]
        _, first = _run("fixed", "imix", policy, 20_000.0, 120, seed)
        _, second = _run("fixed", "imix", policy, 20_000.0, 120, seed)
        assert first == second
        assert first.control_actions == second.control_actions

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=3, deadline=None)
    def test_static_default_carries_no_controller_keys(self, seed):
        devices = _build_devices("fixed", "imix", 100)
        fabric_plain = FabricConfig(
            system="NFP6000-HSW", iommu_enabled=True,
            arbiter="wrr", weights=(1.0, 8.0),
        )
        fabric_static = FabricConfig(
            system="NFP6000-HSW", iommu_enabled=True,
            arbiter="wrr", weights=(1.0, 8.0), controller="static",
        )
        plain = FabricSimulator(devices, fabric_plain).run(seed=seed)
        static = FabricSimulator(devices, fabric_static).run(seed=seed)
        assert static == plain
        record = static.as_dict()
        assert "controller" not in record
        assert "control_window_ns" not in record
        assert "control_actions" not in record

    def test_hot_flow_steering_conserves_under_every_policy(self):
        # The RSS actuator rewrites the live dispatch table mid-run;
        # every packet must still land exactly once.
        workload = build_workload(
            "fixed", size=512, load_gbps=42.0
        ).with_(flows=SingleHotFlow(flows=64, hot_fraction=0.75))
        for policy in POLICY_CHOICES:
            device = FabricDevice(
                workload=workload,
                model="dpdk",
                packets=1200,
                ring_depth=32,
                num_queues=2,
            )
            fabric = FabricConfig(
                controller=policy,
                control_window_ns=None if policy == "static" else 20_000.0,
            )
            result = FabricSimulator([device], fabric).run()
            tx = result.devices[0].result.tx
            assert (
                tx.delivered_packets + tx.drops + tx.in_flight
                == tx.offered_packets
            ), policy
