"""Property-based tests (hypothesis) for the analytical core."""

import math

from hypothesis import given, settings, strategies as st

from repro.core.bandwidth import (
    dma_read_wire_bytes,
    dma_write_wire_bytes,
    effective_bidirectional_bandwidth_gbps,
    effective_read_bandwidth_gbps,
    effective_write_bandwidth_gbps,
)
from repro.core.config import PCIeConfig, VALID_MPS_VALUES, VALID_MRRS_VALUES
from repro.core.ethernet import EthernetLink
from repro.core.link import LinkConfig, PCIeGeneration, VALID_LANE_COUNTS
from repro.core.nic import MODERN_NIC_DPDK, MODERN_NIC_KERNEL, SIMPLE_NIC
from repro.core.tlp import split_read_completions, split_write

sizes = st.integers(min_value=1, max_value=8192)
configs = st.builds(
    PCIeConfig,
    mps=st.sampled_from(VALID_MPS_VALUES),
    mrrs=st.sampled_from(VALID_MRRS_VALUES),
    addr64=st.booleans(),
    ecrc=st.booleans(),
)


class TestWireByteProperties:
    @given(size=sizes, config=configs)
    @settings(max_examples=200)
    def test_write_wire_bytes_match_equation_1(self, size, config):
        header = 24 if config.addr64 else 20
        header += 4 if config.ecrc else 0
        expected = math.ceil(size / config.mps) * header + size
        assert dma_write_wire_bytes(size, config).device_to_host == expected

    @given(size=sizes, config=configs)
    @settings(max_examples=200)
    def test_read_wire_bytes_cover_payload_plus_headers(self, size, config):
        wire = dma_read_wire_bytes(size, config)
        assert wire.host_to_device >= size
        assert wire.device_to_host >= 20
        # Larger MRRS never increases the number of request TLPs.
        assert wire.device_to_host <= math.ceil(size / 128) * 28

    @given(size=sizes, config=configs)
    @settings(max_examples=200)
    def test_wire_bytes_monotone_in_size(self, size, config):
        smaller = dma_write_wire_bytes(size, config).device_to_host
        larger = dma_write_wire_bytes(size + 1, config).device_to_host
        assert larger >= smaller + 1

    @given(size=sizes, config=configs)
    @settings(max_examples=200)
    def test_tlp_split_preserves_payload(self, size, config):
        write_tlps = split_write(size, config.mps)
        completions = split_read_completions(size, config.mps)
        assert sum(t.payload_bytes for t in write_tlps) == size
        assert sum(t.payload_bytes for t in completions) == size

    @given(size=sizes, offset=st.integers(min_value=0, max_value=63), config=configs)
    @settings(max_examples=200)
    def test_unaligned_completions_never_fewer_tlps(self, size, offset, config):
        aligned = split_read_completions(size, config.mps, offset=0)
        unaligned = split_read_completions(size, config.mps, offset=offset)
        assert len(unaligned) >= len(aligned)
        assert sum(t.payload_bytes for t in unaligned) == size


class TestBandwidthProperties:
    @given(size=sizes, config=configs)
    @settings(max_examples=200)
    def test_effective_bandwidth_positive_and_below_link(self, size, config):
        for func in (
            effective_read_bandwidth_gbps,
            effective_write_bandwidth_gbps,
            effective_bidirectional_bandwidth_gbps,
        ):
            bandwidth = func(size, config)
            assert 0 < bandwidth < config.tlp_bandwidth_gbps

    @given(size=sizes, config=configs)
    @settings(max_examples=200)
    def test_bidirectional_never_exceeds_unidirectional(self, size, config):
        assert effective_bidirectional_bandwidth_gbps(size, config) <= (
            min(
                effective_read_bandwidth_gbps(size, config),
                effective_write_bandwidth_gbps(size, config),
            )
            + 1e-9
        )

    @given(
        size=sizes,
        generation=st.sampled_from(list(PCIeGeneration)),
        lanes=st.sampled_from(VALID_LANE_COUNTS),
    )
    @settings(max_examples=100)
    def test_bandwidth_scales_with_link_width(self, size, generation, lanes):
        narrow = PCIeConfig(link=LinkConfig(generation, lanes))
        if lanes * 2 in VALID_LANE_COUNTS:
            wide = PCIeConfig(link=LinkConfig(generation, lanes * 2))
            assert effective_write_bandwidth_gbps(size, wide) > (
                effective_write_bandwidth_gbps(size, narrow)
            )


class TestNicModelProperties:
    @given(size=st.integers(min_value=64, max_value=1518))
    @settings(max_examples=100)
    def test_optimisation_ordering_holds_everywhere(self, size):
        simple = SIMPLE_NIC.throughput_gbps(size)
        kernel = MODERN_NIC_KERNEL.throughput_gbps(size)
        dpdk = MODERN_NIC_DPDK.throughput_gbps(size)
        assert simple <= kernel + 1e-9
        assert kernel <= dpdk + 1e-9

    @given(size=st.integers(min_value=64, max_value=1518))
    @settings(max_examples=100)
    def test_nic_throughput_below_raw_pcie(self, size):
        raw = effective_bidirectional_bandwidth_gbps(size, PCIeConfig())
        assert SIMPLE_NIC.throughput_gbps(size) <= raw + 1e-9


class TestEthernetProperties:
    @given(
        size=st.integers(min_value=64, max_value=9000),
        rate=st.floats(min_value=1.0, max_value=400.0),
    )
    @settings(max_examples=200)
    def test_frame_throughput_below_line_rate(self, size, rate):
        link = EthernetLink(rate)
        assert 0 < link.frame_throughput_gbps(size) < rate

    @given(size=st.integers(min_value=64, max_value=9000))
    @settings(max_examples=100)
    def test_packet_rate_times_budget_is_one_second(self, size):
        link = EthernetLink(40.0)
        product = link.packet_rate_pps(size) * link.inter_packet_time_ns(size)
        assert math.isclose(product, 1e9, rel_tol=1e-9)
