"""Property: the windowed decomposition of the streaming stats is exact.

The control plane consumes per-window :class:`WindowSnapshot` deltas
while the run's result reports the cumulative estimators.  These are
only two views of one stream if merging the snapshot sequence *in
window order* reproduces the cumulative sketch and moments bit for bit
— float accumulators, bucket maps, extremes, everything ``as_dict``
serialises.  Empty windows (a controller tick with no traffic) must be
legal members of the sequence.
"""

from hypothesis import given, settings, strategies as st

from repro.stats import QuantileSketch, StreamingMoments, WindowedStats

values = st.floats(
    min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False
)
#: Windows of values; empty lists model controller ticks with no traffic.
windows = st.lists(st.lists(values, max_size=40), min_size=1, max_size=12)


class TestWindowedDecomposition:
    @given(stream=windows)
    @settings(max_examples=100, deadline=None)
    def test_in_order_merge_reproduces_cumulative_bit_for_bit(self, stream):
        stats = WindowedStats()
        snapshots = []
        for window in stream:
            for value in window:
                stats.record(value)
            snapshots.append(stats.snapshot())

        merged_sketch = QuantileSketch(stats.relative_accuracy)
        merged_moments = StreamingMoments()
        for snapshot in snapshots:
            merged_sketch.merge(snapshot.sketch)
            merged_moments.merge(snapshot.moments)

        cumulative_sketch, cumulative_moments = stats.cumulative()
        # Equality covers counts, sums, bucket maps and extremes; the
        # as_dict comparison additionally pins the float accumulators'
        # exact bit patterns (no tolerance anywhere).
        assert merged_sketch == cumulative_sketch
        assert merged_moments == cumulative_moments
        assert merged_sketch.as_dict() == cumulative_sketch.as_dict()
        assert merged_moments.as_dict() == cumulative_moments.as_dict()

    @given(stream=windows)
    @settings(max_examples=50, deadline=None)
    def test_window_indices_are_sequential_and_counts_add_up(self, stream):
        stats = WindowedStats()
        total = 0
        for position, window in enumerate(stream):
            for value in window:
                stats.record(value)
            snapshot = stats.snapshot()
            assert snapshot.index == position
            assert snapshot.count == len(window)
            total += len(window)
        assert stats.count == total
        assert stats.window_count == 0

    @given(tail=st.lists(values, min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_empty_windows_are_identity_elements(self, tail):
        # A run of empty windows before and after the data must not
        # perturb the cumulative view at all.
        noisy = WindowedStats()
        clean = WindowedStats()
        noisy.snapshot()
        noisy.snapshot()
        for value in tail:
            noisy.record(value)
            clean.record(value)
        noisy.snapshot()
        empty = noisy.snapshot()
        assert empty.count == 0
        noisy_sketch, noisy_moments = noisy.cumulative()
        clean_sketch, clean_moments = clean.cumulative()
        assert noisy_sketch.as_dict() == clean_sketch.as_dict()
        assert noisy_moments.as_dict() == clean_moments.as_dict()
