"""Invariant harness for the NIC datapath simulator (host-coupled or not).

Property-style tests running a grid of (model, workload, ring depth, load,
duplex, host-coupling) combinations and asserting the laws any run must
obey, whatever the configuration:

* packet conservation: offered = delivered + dropped + in-flight, per
  direction, cross-checked against an independently regenerated schedule;
* byte conservation: offered bytes equal the schedule's bytes, delivered
  bytes equal the sum of delivered sizes, dropped + delivered never exceed
  offered;
* monotone event times: arrival <= payload completion <= completion
  report for every packet, and the run duration covers every report;
* ring sanity: occupancy never exceeds the configured depth, every
  posted packet is eventually delivered.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.sim.nichost import NicHostConfig
from repro.sim.nicsim import NicDatapathSimulator, NicSimConfig, NicSimResult
from repro.sim.rng import DEFAULT_SEED, SimRng
from repro.units import KIB
from repro.workloads import build_workload

MODELS = ("simple", "kernel", "dpdk")
WORKLOADS = ("fixed", "uniform", "imix", "poisson", "bursty")

#: Neutral host coupling used for the coupled half of the grid.
NEUTRAL_HOST = NicHostConfig(system="NFP6000-HSW", payload_window=256 * KIB)
#: Host coupling under maximum pressure (IOMMU miss storm, thrashed cache).
STRESSED_HOST = NicHostConfig(
    system="NFP6000-BDW",
    iommu_enabled=True,
    payload_window=4096 * KIB,
    payload_cache_state="cold",
    payload_placement="remote",
)


def run_simulation(
    model: str,
    workload_name: str,
    *,
    packets: int,
    ring_depth: int,
    load: float | None,
    duplex: bool,
    host: NicHostConfig | None,
    rx_backpressure: bool,
    seed: int,
) -> tuple[NicDatapathSimulator, NicSimResult]:
    workload = build_workload(
        workload_name, size=512, load_gbps=load, duplex=duplex
    )
    simulator = NicDatapathSimulator(
        model,
        sim_config=NicSimConfig(
            ring_depth=ring_depth, rx_backpressure=rx_backpressure, host=host
        ),
    )
    return simulator, simulator.run(workload, packets, seed=seed)


def assert_invariants(
    simulator: NicDatapathSimulator,
    result: NicSimResult,
    *,
    workload_name: str,
    load: float | None,
    packets: int,
    seed: int,
) -> None:
    # Regenerate the offered schedule independently of the simulator: the
    # workload draws from named RNG sub-streams, so the same seed yields
    # the same schedule regardless of what else consumed randomness.
    workload = build_workload(
        workload_name, size=512, load_gbps=load, duplex=result.rx is not None
    )
    rng = SimRng(seed)
    paths = [result.tx] + ([result.rx] if result.rx is not None else [])
    for path in paths:
        schedule = workload.generate(packets, rng, stream=path.direction)
        offered_bytes = int(np.asarray(schedule.sizes).sum())

        # Packet conservation, against the independent schedule.
        assert path.offered_packets == schedule.count
        assert (
            path.delivered_packets + path.drops + path.in_flight
            == path.offered_packets
        ), path.direction
        assert path.in_flight >= 0
        assert path.ring.drops == path.drops

        # Byte conservation per direction.
        assert path.offered_bytes == offered_bytes
        assert path.payload_bytes + path.dropped_bytes <= path.offered_bytes
        trace = simulator.last_traces[path.direction]
        assert path.payload_bytes == int(trace.sizes.sum())
        delivered_sizes = np.sort(trace.sizes)
        schedule_sizes = np.sort(np.asarray(schedule.sizes, dtype=np.int64))
        # Every delivered packet is one the workload offered (multiset
        # containment via counts per distinct size).
        for size in np.unique(delivered_sizes):
            assert (delivered_sizes == size).sum() <= (
                schedule_sizes == size
            ).sum()

        # Monotone event times per packet.
        assert trace.arrivals_ns.shape == trace.dones_ns.shape
        assert (trace.arrivals_ns >= 0.0).all()
        assert (trace.dones_ns >= trace.arrivals_ns).all()
        assert (trace.notifies_ns >= trace.dones_ns).all()
        if trace.notifies_ns.size:
            assert result.duration_ns >= trace.notifies_ns.max()

        # Ring sanity.
        assert path.ring.max_occupancy <= path.ring.depth
        assert 0.0 <= path.ring.mean_occupancy <= path.ring.depth
        assert path.ring.posts == path.delivered_packets

    assert 0.0 <= result.link_utilisation_up <= 1.0
    assert 0.0 <= result.link_utilisation_down <= 1.0


class TestDatapathInvariants:
    @given(
        model=st.sampled_from(MODELS),
        workload_name=st.sampled_from(WORKLOADS),
        ring_depth=st.sampled_from((32, 64, 512)),
        packets=st.integers(min_value=120, max_value=300),
        load=st.sampled_from((None, 8.0, 30.0)),
        duplex=st.booleans(),
        coupled=st.booleans(),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_conservation_across_workload_grid(
        self, model, workload_name, ring_depth, packets, load, duplex, coupled, seed
    ):
        simulator, result = run_simulation(
            model,
            workload_name,
            packets=packets,
            ring_depth=ring_depth,
            load=load,
            duplex=duplex,
            host=NEUTRAL_HOST if coupled else None,
            rx_backpressure=False,
            seed=seed,
        )
        assert_invariants(
            simulator,
            result,
            workload_name=workload_name,
            load=load,
            packets=packets,
            seed=seed,
        )

    @given(
        workload_name=st.sampled_from(("fixed", "bursty")),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=6, deadline=None)
    def test_conservation_under_host_pressure(self, workload_name, seed):
        # IOMMU miss storm + cold remote buffers must bend latency, never
        # break conservation.
        simulator, result = run_simulation(
            "kernel",
            workload_name,
            packets=200,
            ring_depth=64,
            load=30.0,
            duplex=True,
            host=STRESSED_HOST,
            rx_backpressure=False,
            seed=seed,
        )
        assert_invariants(
            simulator,
            result,
            workload_name=workload_name,
            load=30.0,
            packets=200,
            seed=seed,
        )
        assert result.host is not None
        assert result.host.iotlb_hit_rate < 1.0
        assert result.host.remote_fraction > 0.0

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=6, deadline=None)
    def test_backpressure_mode_is_lossless(self, seed):
        # With RX backpressure on, nothing may ever be dropped; packets
        # either complete or are still queued when the run ends.
        simulator, result = run_simulation(
            "dpdk",
            "bursty",
            packets=250,
            ring_depth=32,
            load=None,
            duplex=True,
            host=None,
            rx_backpressure=True,
            seed=seed,
        )
        assert_invariants(
            simulator,
            result,
            workload_name="bursty",
            load=None,
            packets=250,
            seed=seed,
        )
        assert result.total_drops == 0

    def test_default_seed_matches_explicit_default(self):
        simulator, implicit = run_simulation(
            "dpdk",
            "imix",
            packets=150,
            ring_depth=64,
            load=20.0,
            duplex=True,
            host=None,
            rx_backpressure=False,
            seed=DEFAULT_SEED,
        )
        assert_invariants(
            simulator,
            implicit,
            workload_name="imix",
            load=20.0,
            packets=150,
            seed=DEFAULT_SEED,
        )
