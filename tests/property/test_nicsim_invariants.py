"""Invariant harness for the NIC datapath simulator (host-coupled or not).

Property-style tests running a grid of (model, workload, ring depth, load,
duplex, host-coupling, queue count, RSS scenario, tag bound) combinations
and asserting the laws any run must obey, whatever the configuration:

* packet conservation: offered = delivered + dropped + in-flight, per
  direction *and per queue*, cross-checked against an independently
  regenerated schedule and RSS mapping;
* byte conservation: offered bytes equal the schedule's bytes, delivered
  bytes equal the sum of delivered sizes, dropped + delivered never exceed
  offered;
* monotone event times: arrival <= payload completion <= completion
  report for every packet, and the run duration covers every report;
* ring sanity: occupancy never exceeds the configured depth, every
  posted packet is eventually delivered — checked per queue;
* RSS sanity: the flow→queue mapping is a pure function of (flow, queue
  count, seed), and every offered packet lands on exactly one queue.

The ``NICSIM_QUEUES`` environment variable pins the queue-count choices
(e.g. ``NICSIM_QUEUES=4``) so a CI matrix can run the same grid once per
queue layout.
"""

from __future__ import annotations

import os

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.sim.nichost import NicHostConfig
from repro.sim.nicsim import NicDatapathSimulator, NicSimConfig, NicSimResult
from repro.sim.rng import DEFAULT_SEED, SimRng
from repro.units import KIB
from repro.workloads import build_flow_model, build_workload, rss_queues

MODELS = ("simple", "kernel", "dpdk")
WORKLOADS = ("fixed", "uniform", "imix", "poisson", "bursty")
RSS_SCENARIOS = ("uniform", "zipf", "hot")

_QUEUE_ENV = os.environ.get("NICSIM_QUEUES")
#: Queue layouts the grid samples; a CI matrix pins one via NICSIM_QUEUES.
QUEUE_CHOICES = (int(_QUEUE_ENV),) if _QUEUE_ENV else (1, 4)

#: Neutral host coupling used for the coupled half of the grid.
NEUTRAL_HOST = NicHostConfig(system="NFP6000-HSW", payload_window=256 * KIB)
#: Host coupling under maximum pressure (IOMMU miss storm, thrashed cache).
STRESSED_HOST = NicHostConfig(
    system="NFP6000-BDW",
    iommu_enabled=True,
    payload_window=4096 * KIB,
    payload_cache_state="cold",
    payload_placement="remote",
)


def make_workload(
    workload_name: str,
    *,
    load: float | None,
    duplex: bool,
    num_queues: int,
    rss: str,
):
    workload = build_workload(
        workload_name, size=512, load_gbps=load, duplex=duplex
    )
    if num_queues > 1:
        workload = workload.with_(flows=build_flow_model(rss))
    return workload


def run_simulation(
    model: str,
    workload_name: str,
    *,
    packets: int,
    ring_depth: int,
    load: float | None,
    duplex: bool,
    host: NicHostConfig | None,
    rx_backpressure: bool,
    seed: int,
    num_queues: int = 1,
    rss: str = "uniform",
    dma_tags: int | None = None,
) -> tuple[NicDatapathSimulator, NicSimResult]:
    workload = make_workload(
        workload_name,
        load=load,
        duplex=duplex,
        num_queues=num_queues,
        rss=rss,
    )
    simulator = NicDatapathSimulator(
        model,
        sim_config=NicSimConfig(
            ring_depth=ring_depth,
            rx_backpressure=rx_backpressure,
            host=host,
            num_queues=num_queues,
            dma_tags=dma_tags,
        ),
    )
    return simulator, simulator.run(workload, packets, seed=seed)


def assert_invariants(
    simulator: NicDatapathSimulator,
    result: NicSimResult,
    *,
    workload_name: str,
    load: float | None,
    packets: int,
    seed: int,
    num_queues: int = 1,
    rss: str = "uniform",
) -> None:
    # Regenerate the offered schedule independently of the simulator: the
    # workload draws from named RNG sub-streams, so the same seed yields
    # the same schedule regardless of what else consumed randomness.
    workload = make_workload(
        workload_name,
        load=load,
        duplex=result.rx is not None,
        num_queues=num_queues,
        rss=rss,
    )
    rng = SimRng(seed)
    paths = [result.tx] + ([result.rx] if result.rx is not None else [])
    for path in paths:
        schedule = workload.generate(packets, rng, stream=path.direction)
        offered_bytes = int(np.asarray(schedule.sizes).sum())

        # Packet conservation, against the independent schedule.
        assert path.offered_packets == schedule.count
        assert (
            path.delivered_packets + path.drops + path.in_flight
            == path.offered_packets
        ), path.direction
        assert path.in_flight >= 0
        assert path.ring.drops == path.drops

        # Byte conservation per direction.
        assert path.offered_bytes == offered_bytes
        assert path.payload_bytes + path.dropped_bytes <= path.offered_bytes
        trace = simulator.last_traces[path.direction]
        assert path.payload_bytes == int(trace.sizes.sum())
        delivered_sizes = np.sort(trace.sizes)
        schedule_sizes = np.sort(np.asarray(schedule.sizes, dtype=np.int64))
        # Every delivered packet is one the workload offered (multiset
        # containment via counts per distinct size).
        for size in np.unique(delivered_sizes):
            assert (delivered_sizes == size).sum() <= (
                schedule_sizes == size
            ).sum()

        # Monotone event times per packet.
        assert trace.arrivals_ns.shape == trace.dones_ns.shape
        assert (trace.arrivals_ns >= 0.0).all()
        assert (trace.dones_ns >= trace.arrivals_ns).all()
        assert (trace.notifies_ns >= trace.dones_ns).all()
        if trace.notifies_ns.size:
            assert result.duration_ns >= trace.notifies_ns.max()

        # Ring sanity (direction level: aggregated for multi-queue runs).
        assert path.ring.max_occupancy <= path.ring.depth
        assert 0.0 <= path.ring.mean_occupancy <= path.ring.depth
        assert path.ring.posts == path.delivered_packets

        # Per-queue invariants (the RSS layer).
        if num_queues == 1:
            assert path.queues is None
        else:
            assert path.queues is not None
            assert len(path.queues) == num_queues
            assert schedule.flows is not None
            # The flow→queue mapping is deterministic per seed and a pure
            # function of the labels: recompute it from the regenerated
            # schedule and compare the per-queue offered counts.
            mapping = rss_queues(schedule.flows, num_queues, seed=seed)
            again = rss_queues(schedule.flows, num_queues, seed=seed)
            assert (mapping == again).all()
            assert ((mapping >= 0) & (mapping < num_queues)).all()
            expected_offered = np.bincount(mapping, minlength=num_queues)
            for index, queue in enumerate(path.queues):
                assert queue.direction == f"{path.direction}[{index}]"
                assert queue.offered_packets == int(expected_offered[index])
                # Conservation and ring bounds hold per queue too.
                assert (
                    queue.delivered_packets + queue.drops + queue.in_flight
                    == queue.offered_packets
                ), queue.direction
                assert queue.ring.drops == queue.drops
                assert queue.ring.max_occupancy <= queue.ring.depth
                assert 0.0 <= queue.ring.mean_occupancy <= queue.ring.depth
                assert queue.ring.posts == queue.delivered_packets
                assert (
                    queue.payload_bytes + queue.dropped_bytes
                    <= queue.offered_bytes
                )
                # The trace slice of this queue matches its counters.
                assert trace.queue_ids is not None
                mask = trace.queue_ids == index
                assert int(mask.sum()) == queue.delivered_packets
                assert int(trace.sizes[mask].sum()) == queue.payload_bytes
            # Every packet lands on exactly one queue: the per-queue
            # tallies partition the direction totals.
            for field in (
                "offered_packets",
                "delivered_packets",
                "drops",
                "in_flight",
                "payload_bytes",
                "offered_bytes",
                "dropped_bytes",
            ):
                assert sum(
                    getattr(queue, field) for queue in path.queues
                ) == getattr(path, field), field

    assert 0.0 <= result.link_utilisation_up <= 1.0
    assert 0.0 <= result.link_utilisation_down <= 1.0


class TestDatapathInvariants:
    @given(
        model=st.sampled_from(MODELS),
        workload_name=st.sampled_from(WORKLOADS),
        ring_depth=st.sampled_from((32, 64, 512)),
        packets=st.integers(min_value=120, max_value=300),
        load=st.sampled_from((None, 8.0, 30.0)),
        duplex=st.booleans(),
        coupled=st.booleans(),
        num_queues=st.sampled_from(QUEUE_CHOICES),
        rss=st.sampled_from(RSS_SCENARIOS),
        dma_tags=st.sampled_from((None, 8, 64)),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_conservation_across_workload_grid(
        self,
        model,
        workload_name,
        ring_depth,
        packets,
        load,
        duplex,
        coupled,
        num_queues,
        rss,
        dma_tags,
        seed,
    ):
        simulator, result = run_simulation(
            model,
            workload_name,
            packets=packets,
            ring_depth=ring_depth,
            load=load,
            duplex=duplex,
            host=NEUTRAL_HOST if coupled else None,
            rx_backpressure=False,
            seed=seed,
            num_queues=num_queues,
            rss=rss,
            dma_tags=dma_tags,
        )
        assert_invariants(
            simulator,
            result,
            workload_name=workload_name,
            load=load,
            packets=packets,
            seed=seed,
            num_queues=num_queues,
            rss=rss,
        )
        if dma_tags is not None:
            assert result.tags is not None
            assert result.tags.capacity == dma_tags
            assert 0 <= result.tags.max_in_flight <= dma_tags
            assert result.tags.waited <= result.tags.acquires
        else:
            assert result.tags is None

    @given(
        workload_name=st.sampled_from(("fixed", "bursty")),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=6, deadline=None)
    def test_conservation_under_host_pressure(self, workload_name, seed):
        # IOMMU miss storm + cold remote buffers must bend latency, never
        # break conservation — with the RSS layer and a tight tag pool on
        # top, the worst case the datapath supports.
        simulator, result = run_simulation(
            "kernel",
            workload_name,
            packets=200,
            ring_depth=64,
            load=30.0,
            duplex=True,
            host=STRESSED_HOST,
            rx_backpressure=False,
            seed=seed,
            num_queues=QUEUE_CHOICES[-1],
            rss="hot",
            dma_tags=8,
        )
        assert_invariants(
            simulator,
            result,
            workload_name=workload_name,
            load=30.0,
            packets=200,
            seed=seed,
            num_queues=QUEUE_CHOICES[-1],
            rss="hot",
        )
        assert result.host is not None
        assert result.host.iotlb_hit_rate < 1.0
        assert result.host.remote_fraction > 0.0

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=6, deadline=None)
    def test_backpressure_mode_is_lossless(self, seed):
        # With RX backpressure on, nothing may ever be dropped; packets
        # either complete or are still queued when the run ends.
        simulator, result = run_simulation(
            "dpdk",
            "bursty",
            packets=250,
            ring_depth=32,
            load=None,
            duplex=True,
            host=None,
            rx_backpressure=True,
            seed=seed,
        )
        assert_invariants(
            simulator,
            result,
            workload_name="bursty",
            load=None,
            packets=250,
            seed=seed,
        )
        assert result.total_drops == 0

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=6, deadline=None)
    def test_rss_steering_is_seed_stable(self, seed):
        # Two identically seeded multi-queue runs must agree exactly,
        # and reseeding re-keys the hash without losing any packet.
        _, first = run_simulation(
            "dpdk",
            "imix",
            packets=150,
            ring_depth=64,
            load=20.0,
            duplex=True,
            host=None,
            rx_backpressure=False,
            seed=seed,
            num_queues=4,
            rss="zipf",
        )
        _, second = run_simulation(
            "dpdk",
            "imix",
            packets=150,
            ring_depth=64,
            load=20.0,
            duplex=True,
            host=None,
            rx_backpressure=False,
            seed=seed,
            num_queues=4,
            rss="zipf",
        )
        assert first == second
        assert first.tx.queues is not None
        assert (
            sum(queue.offered_packets for queue in first.tx.queues)
            == first.tx.offered_packets
        )

    def test_default_seed_matches_explicit_default(self):
        simulator, implicit = run_simulation(
            "dpdk",
            "imix",
            packets=150,
            ring_depth=64,
            load=20.0,
            duplex=True,
            host=None,
            rx_backpressure=False,
            seed=DEFAULT_SEED,
        )
        assert_invariants(
            simulator,
            implicit,
            workload_name="imix",
            load=20.0,
            packets=150,
            seed=DEFAULT_SEED,
        )
