"""Property-based tests (hypothesis) for the simulated substrate."""

from hypothesis import given, settings, strategies as st

from repro.bench.stats import LatencyStats
from repro.sim.cache import CacheState, SetAssociativeCache, StatisticalCache
from repro.sim.engine import SerialResource, WorkerPool
from repro.sim.hostbuffer import HostBuffer
from repro.sim.iommu import Iommu, IommuConfig
from repro.sim.rng import SimRng
from repro.units import CACHELINE_BYTES, KIB


class TestHostBufferProperties:
    @given(
        window_kib=st.integers(min_value=4, max_value=1024),
        transfer=st.integers(min_value=1, max_value=2048),
        offset=st.integers(min_value=0, max_value=63),
    )
    @settings(max_examples=200)
    def test_units_never_overlap_and_fit_window(self, window_kib, transfer, offset):
        window = window_kib * KIB
        if offset + transfer > window:
            return
        buffer = HostBuffer(window_size=window, transfer_size=transfer, offset=offset)
        # Unit size is a cache-line multiple covering offset + transfer.
        assert buffer.unit_size % CACHELINE_BYTES == 0
        assert buffer.unit_size >= offset + transfer
        # Every access stays inside the window.
        last_start = buffer.unit_address(buffer.unit_count - 1)
        assert last_start + transfer <= window
        # Every DMA touches the same number of cache lines (Figure 3).
        spans = {
            (buffer.unit_address(i) + transfer - 1) // CACHELINE_BYTES
            - buffer.unit_address(i) // CACHELINE_BYTES
            for i in range(min(buffer.unit_count, 16))
        }
        assert len(spans) == 1

    @given(
        window_kib=st.integers(min_value=4, max_value=256),
        transfer=st.sampled_from([8, 64, 128, 256, 512]),
        count=st.integers(min_value=1, max_value=500),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=100)
    def test_access_addresses_always_valid_units(self, window_kib, transfer, count, seed):
        buffer = HostBuffer(window_size=window_kib * KIB, transfer_size=transfer)
        addresses = buffer.access_addresses(count, "random", SimRng(seed))
        assert ((addresses % buffer.unit_size) == 0).all()
        assert (addresses >= 0).all()
        assert (addresses + transfer <= window_kib * KIB).all()


class TestCacheProperties:
    @given(
        lines=st.lists(st.integers(min_value=0, max_value=5000), min_size=1, max_size=300)
    )
    @settings(max_examples=100)
    def test_occupancy_never_exceeds_capacity(self, lines):
        cache = SetAssociativeCache(64 * KIB, ways=4)
        capacity = cache.sets * cache.ways
        for line in lines:
            cache.write(line)
            cache.host_touch(line + 1)
        assert cache.occupancy() <= capacity

    @given(
        lines=st.lists(st.integers(min_value=0, max_value=5000), min_size=1, max_size=300)
    )
    @settings(max_examples=100)
    def test_read_after_write_always_hits(self, lines):
        cache = SetAssociativeCache(256 * KIB, ways=8)
        for line in lines:
            cache.write(line)
            assert cache.read(line).hit

    @given(
        window_lines=st.integers(min_value=1, max_value=10_000_000),
        state=st.sampled_from(list(CacheState)),
    )
    @settings(max_examples=200)
    def test_statistical_resident_fraction_is_a_probability(self, window_lines, state):
        cache = StatisticalCache(rng=SimRng(1))
        cache.prepare(state, window_lines)
        assert 0.0 <= cache.resident_fraction <= 1.0


class TestIommuProperties:
    @given(
        pages=st.lists(st.integers(min_value=0, max_value=200), min_size=1, max_size=500),
        entries=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=100)
    def test_iotlb_never_exceeds_capacity_and_recent_pages_hit(self, pages, entries):
        iommu = Iommu(IommuConfig(enabled=True, iotlb_entries=entries))
        for page in pages:
            iommu.translate(page * 4096)
            assert len(iommu.iotlb) <= entries
        # The most recently touched page is always resident.
        assert iommu.translate(pages[-1] * 4096).hit

    @given(window_pages=st.integers(min_value=1, max_value=100_000))
    @settings(max_examples=200)
    def test_expected_miss_rate_is_a_probability(self, window_pages):
        iommu = Iommu(IommuConfig(enabled=True))
        assert 0.0 <= iommu.expected_miss_rate(window_pages) <= 1.0


class TestEngineProperties:
    @given(
        durations=st.lists(
            st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=100
        )
    )
    @settings(max_examples=100)
    def test_serial_resource_busy_time_equals_sum_of_durations(self, durations):
        resource = SerialResource("r")
        for duration in durations:
            resource.occupy(0.0, duration)
        assert resource.busy_time == sum(durations)
        assert resource.served == len(durations)

    @given(
        durations=st.lists(
            st.floats(min_value=0.0, max_value=1000.0), min_size=1, max_size=100
        ),
        slots=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=100)
    def test_worker_pool_in_flight_bounded_by_slots(self, durations, slots):
        # Alternating acquire/commit pairs, with each release derived from
        # the quoted start (the contract real callers follow: a slot's
        # release is its acquired start plus a non-negative service time).
        pool = WorkerPool(slots)
        for duration in durations:
            start = pool.acquire(0.0)
            pool.commit(start + duration)
            assert pool.in_flight <= slots


class TestStatsProperties:
    @given(
        samples=st.lists(
            st.floats(min_value=0.1, max_value=1e7, allow_nan=False),
            min_size=1,
            max_size=500,
        )
    )
    @settings(max_examples=200)
    def test_latency_stats_are_internally_consistent(self, samples):
        stats = LatencyStats.from_samples(samples)
        tolerance = 1e-6 * max(abs(stats.maximum), 1.0)
        assert stats.minimum <= stats.median <= stats.maximum
        assert stats.minimum - tolerance <= stats.mean <= stats.maximum + tolerance
        assert stats.median <= stats.p90 + tolerance
        assert stats.p90 <= stats.p95 + tolerance
        assert stats.p95 <= stats.p99 + tolerance
        assert stats.p99 <= stats.p999 + tolerance
        assert stats.count == len(samples)
