"""Property tests for the streaming estimators (repro.stats).

Three contracts the fleet layer depends on:

* sketch quantiles stay within the documented relative-error bound of the
  exact order statistic (``np.percentile(..., method="lower")``, the
  nearest-rank definition the sketch targets) — checked across the named
  workload grid and across arbitrary hypothesis-generated samples;
* ``merge`` is associative and commutative: quantiles depend only on
  integer bucket counts, so any grouping of the same shards answers the
  same quantiles *exactly*;
* reservoir sampling is a pure function of (seed, stream): the same seed
  and stream keep the same sample, and shard merges are order-invariant.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.rng import SimRng
from repro.stats import QuantileSketch, ReservoirSample, StreamingMoments
from repro.stats.sketch import MIN_TRACKED_VALUE
from repro.workloads import build_workload, workload_names

QUANTILES = (0.5, 0.9, 0.99, 0.999)

positive_samples = st.lists(
    st.floats(min_value=1e-3, max_value=1e12, allow_nan=False, allow_infinity=False),
    min_size=2,
    max_size=400,
)


def assert_within_bound(sketch: QuantileSketch, samples: np.ndarray) -> None:
    """Every tracked quantile within ``relative_accuracy`` of nearest rank."""
    for q in QUANTILES:
        exact = float(np.percentile(samples, q * 100.0, method="lower"))
        estimate = sketch.quantile(q)
        if exact <= MIN_TRACKED_VALUE:
            assert estimate <= MIN_TRACKED_VALUE
        else:
            assert abs(estimate - exact) <= sketch.relative_accuracy * exact + 1e-12


class TestSketchAccuracy:
    @pytest.mark.parametrize("workload_name", workload_names())
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_quantiles_within_bound_across_workload_grid(self, workload_name, seed):
        """Sketching a workload's realised gap/size stream stays in bound."""
        workload = build_workload(workload_name, load_gbps=20.0)
        schedule = workload.generate(1500, SimRng(seed))
        gaps = np.diff(schedule.arrival_times_ns)
        for samples in (gaps, schedule.sizes.astype(np.float64)):
            sketch = QuantileSketch()
            sketch.add_many(samples)
            assert_within_bound(sketch, samples)
            assert sketch.count == samples.size
            assert sketch.minimum == float(samples.min())
            assert sketch.maximum == float(samples.max())

    @given(values=positive_samples)
    @settings(max_examples=50, deadline=None)
    def test_quantiles_within_bound_for_arbitrary_samples(self, values):
        samples = np.asarray(values)
        sketch = QuantileSketch()
        sketch.add_many(samples)
        assert_within_bound(sketch, samples)


class TestZeroBucketClamp:
    """Regression: zero-bucket quantiles clamp into [min, max].

    The zero bucket holds every value in ``[0, MIN_TRACKED_VALUE]``, not
    just exact zeros.  A sketch fed only ``MIN_TRACKED_VALUE`` used to
    answer a flat ``0.0`` for every interior quantile — a 100% relative
    error against an exact order statistic of ``MIN_TRACKED_VALUE``.
    """

    def test_sub_threshold_samples_report_their_own_value(self):
        sketch = QuantileSketch()
        sketch.add_many([MIN_TRACKED_VALUE] * 50)
        for q in QUANTILES:
            # Fails on the unclamped sketch, which returned 0.0 here.
            assert sketch.quantile(q) == MIN_TRACKED_VALUE

    def test_genuine_zeros_still_report_zero(self):
        sketch = QuantileSketch()
        sketch.add_many([0.0] * 50 + [1000.0] * 10)
        assert sketch.quantile(0.5) == 0.0
        assert sketch.minimum == 0.0

    @given(
        sub=st.floats(min_value=1e-9, max_value=MIN_TRACKED_VALUE),
        count=st.integers(min_value=2, max_value=100),
    )
    @settings(max_examples=50, deadline=None)
    def test_zero_bucket_estimates_stay_within_min_max(self, sub, count):
        sketch = QuantileSketch()
        sketch.add_many([sub] * count)
        for q in QUANTILES:
            estimate = sketch.quantile(q)
            assert sketch.minimum <= estimate <= sketch.maximum

    def test_mixed_sub_threshold_and_tracked_values(self):
        sketch = QuantileSketch()
        sketch.add_many([5e-7] * 90 + [100.0] * 10)
        # Rank 49 of 99 lands in the zero bucket: the answer must be the
        # sub-threshold sample itself, never a fabricated 0.0 below min.
        assert sketch.quantile(0.5) == 5e-7
        assert sketch.quantile(0.999) == pytest.approx(100.0, rel=0.005)


class TestMergeAlgebra:
    @given(
        values=positive_samples,
        split=st.tuples(st.integers(0, 400), st.integers(0, 400)),
    )
    @settings(max_examples=50, deadline=None)
    def test_merge_associative_and_commutative_on_quantiles(self, values, split):
        samples = np.asarray(values)
        lo, hi = sorted((split[0] % samples.size, split[1] % samples.size))
        parts = [samples[:lo], samples[lo:hi], samples[hi:]]
        sketches = []
        for part in parts:
            sketch = QuantileSketch()
            sketch.add_many(part)
            sketches.append(sketch)
        a, b, c = sketches
        left = a.copy().merge(b.copy()).merge(c.copy())
        right = a.copy().merge(b.copy().merge(c.copy()))
        swapped = c.copy().merge(b.copy()).merge(a.copy())
        whole = QuantileSketch()
        whole.add_many(samples)
        assert left.count == right.count == swapped.count == whole.count
        for q in QUANTILES:
            # Integer bucket counts: any grouping or order answers the same
            # quantiles exactly, and exactly what a single pass answers.
            assert left.quantile(q) == right.quantile(q)
            assert left.quantile(q) == swapped.quantile(q)
            assert left.quantile(q) == whole.quantile(q)
        # Pairwise merge is fully commutative, floats included.
        assert a.copy().merge(b.copy()) == b.copy().merge(a.copy())

    @given(values=positive_samples, cut=st.integers(0, 400))
    @settings(max_examples=25, deadline=None)
    def test_moments_merge_matches_single_pass(self, values, cut):
        samples = np.asarray(values)
        cut %= samples.size
        whole = StreamingMoments()
        whole.push_many(samples)
        left, right = StreamingMoments(), StreamingMoments()
        left.push_many(samples[:cut])
        right.push_many(samples[cut:])
        merged = left.merge(right)
        assert merged.count == whole.count
        assert merged.minimum == whole.minimum
        assert merged.maximum == whole.maximum
        assert merged.mean == pytest.approx(whole.mean, rel=1e-9, abs=1e-9)


class TestReservoirDeterminism:
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        count=st.integers(min_value=1, max_value=300),
    )
    @settings(max_examples=25, deadline=None)
    def test_same_seed_same_stream_same_sample(self, seed, count):
        stream = [float(i) * 3.25 for i in range(count)]
        first = ReservoirSample(16, seed=seed)
        second = ReservoirSample(16, seed=seed)
        first.add_many(stream)
        second.add_many(stream)
        assert first.values() == second.values()
        assert len(first) == min(16, count)
        assert set(first.values()) <= set(stream)

    @given(seeds=st.lists(st.integers(0, 2**32 - 1), min_size=2, max_size=4, unique=True))
    @settings(max_examples=25, deadline=None)
    def test_shard_merge_is_order_invariant(self, seeds):
        shards = []
        for index, seed in enumerate(seeds):
            shard = ReservoirSample(8, seed=seed)
            shard.add_many([float(index * 100 + i) for i in range(40)])
            shards.append(shard)
        forward = shards[0].copy()
        for shard in shards[1:]:
            forward.merge(shard.copy())
        backward = shards[-1].copy()
        for shard in reversed(shards[:-1]):
            backward.merge(shard.copy())
        assert forward.values() == backward.values()
        assert forward.count == backward.count == 40 * len(seeds)
