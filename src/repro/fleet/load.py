"""Fleet-level load curves: diurnal cycles and flash crowds.

The per-host aggressor demand of a rack is the product of three factors:
the host's tenant demand share (:mod:`repro.fleet.tenants`), the rack's
nominal per-host load, and a *load profile* factor modelling when in the
demand cycle the measurement window falls:

* ``"flat"`` — every host at its nominal demand (the steady state);
* ``"diurnal"`` — a cosine day/night cycle across the rack: hosts serve
  time-zone-sheared populations, so host ``h`` of ``n`` sits at phase
  ``2*pi*h/n`` of the cycle, between :data:`DIURNAL_TROUGH` and 1.0 of
  nominal;
* ``"flash"`` — steady state plus a flash crowd: the host carrying the
  most popular tenant sees :data:`FLASH_FACTOR` times its nominal demand
  while the rest of the rack stays flat.

All profiles are deterministic functions of (profile, host count, flash
host), so the same fleet description always yields the same factors.
"""

from __future__ import annotations

import math

from ..errors import ValidationError

#: Load profiles understood by :func:`load_profile_factors`.
LOAD_PROFILES = ("flat", "diurnal", "flash")

#: Night-time floor of the diurnal cycle (fraction of nominal demand).
DIURNAL_TROUGH = 0.35

#: Demand multiplier a flash crowd puts on its target host.
FLASH_FACTOR = 3.0


def canonical_load_profile(profile: str) -> str:
    """Normalise and validate a load-profile name."""
    key = str(profile).strip().lower()
    if key not in LOAD_PROFILES:
        raise ValidationError(
            f"unknown load profile {profile!r}; known: "
            + ", ".join(LOAD_PROFILES)
        )
    return key


def load_profile_factors(
    profile: str, hosts: int, *, flash_host: int = 0
) -> tuple[float, ...]:
    """Per-host demand multipliers for a load profile.

    Args:
        profile: one of :data:`LOAD_PROFILES`.
        hosts: rack size.
        flash_host: index of the host the flash crowd lands on (only
            meaningful for the ``"flash"`` profile; callers pass the host
            that carries the most popular tenant).
    """
    if hosts < 1:
        raise ValidationError(f"hosts must be positive, got {hosts}")
    key = canonical_load_profile(profile)
    if key == "flat":
        return (1.0,) * hosts
    if key == "diurnal":
        swing = 1.0 - DIURNAL_TROUGH
        return tuple(
            DIURNAL_TROUGH
            + swing * 0.5 * (1.0 + math.cos(2.0 * math.pi * host / hosts))
            for host in range(hosts)
        )
    if not 0 <= flash_host < hosts:
        raise ValidationError(
            f"flash_host must be within [0, {hosts}), got {flash_host}"
        )
    return tuple(
        FLASH_FACTOR if host == flash_host else 1.0 for host in range(hosts)
    )
