"""Tenant populations and their placement onto rack hosts.

A rack serves a population of tenants whose traffic demand follows the
heavy-tailed popularity the measurement literature keeps finding: a few
tenants dominate the offered load.  :func:`zipf_tenant_weights` builds that
population as a normalised Zipf weight vector, and :func:`place_tenants`
maps it onto hosts under one of two placement policies:

* ``"spread"`` deals tenants round-robin across every host (weight rank
  order), the balanced default of a bin-packing scheduler;
* ``"pack"`` fills the first half of the rack block by block and leaves
  the remaining hosts tenant-free — consolidation for power or locality,
  at the price of concentrating the aggressor load.

Both policies are pure functions of their arguments (no RNG), so a fleet
description alone pins which host carries which tenants.
"""

from __future__ import annotations

from ..errors import ValidationError

#: Placement policies understood by :func:`place_tenants`.
PLACEMENT_POLICIES = ("spread", "pack")


def canonical_placement(policy: str) -> str:
    """Normalise and validate a placement policy name."""
    key = str(policy).strip().lower()
    if key not in PLACEMENT_POLICIES:
        raise ValidationError(
            f"unknown placement policy {policy!r}; known: "
            + ", ".join(PLACEMENT_POLICIES)
        )
    return key


def zipf_tenant_weights(tenants: int, skew: float = 1.2) -> tuple[float, ...]:
    """Normalised Zipf demand weights for a tenant population.

    Tenant ``i`` (zero-based popularity rank) gets weight proportional to
    ``1 / (i + 1) ** skew``; the vector sums to 1.  ``skew=0`` degenerates
    to a uniform population.
    """
    if tenants < 1:
        raise ValidationError(f"tenants must be positive, got {tenants}")
    if skew < 0.0:
        raise ValidationError(f"tenant skew must be non-negative, got {skew}")
    raw = [1.0 / float(rank + 1) ** skew for rank in range(tenants)]
    total = sum(raw)
    return tuple(weight / total for weight in raw)


def place_tenants(
    tenants: int, hosts: int, policy: str
) -> tuple[tuple[int, ...], ...]:
    """Assign tenant indices (popularity rank order) to hosts.

    Returns one tuple of tenant indices per host.  ``"spread"`` deals
    tenant ``i`` to host ``i % hosts``; ``"pack"`` fills the first
    ``max(1, hosts // 2)`` hosts in contiguous blocks, leaving the tail
    of the rack tenant-free.
    """
    if hosts < 1:
        raise ValidationError(f"hosts must be positive, got {hosts}")
    if tenants < 1:
        raise ValidationError(f"tenants must be positive, got {tenants}")
    key = canonical_placement(policy)
    assignment: list[list[int]] = [[] for _ in range(hosts)]
    if key == "spread":
        for tenant in range(tenants):
            assignment[tenant % hosts].append(tenant)
    else:
        packed_hosts = max(1, hosts // 2)
        block = -(-tenants // packed_hosts)  # ceil division
        for tenant in range(tenants):
            assignment[min(tenant // block, packed_hosts - 1)].append(tenant)
    return tuple(tuple(host) for host in assignment)


def host_demand_shares(
    weights: tuple[float, ...] | list[float],
    placement: tuple[tuple[int, ...], ...],
) -> tuple[float, ...]:
    """Per-host share of the population's demand under a placement.

    Sums the Zipf weight of every tenant placed on each host; the shares
    sum to 1 across the rack (hosts without tenants get 0).
    """
    shares = []
    for tenant_indices in placement:
        for tenant in tenant_indices:
            if not 0 <= tenant < len(weights):
                raise ValidationError(
                    f"placement names tenant {tenant} but the population "
                    f"has {len(weights)} tenants"
                )
        shares.append(sum(weights[tenant] for tenant in tenant_indices))
    return tuple(shares)
