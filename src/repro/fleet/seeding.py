"""Deterministic per-host RNG substream seeds.

A fleet run shards its hosts across worker processes, so each host must
derive its randomness from the fleet seed *by host index alone* — never
from execution order — for ``jobs=1`` and ``jobs=N`` to be bit-identical.
:func:`fleet_host_seed` does for hosts what :meth:`repro.sim.rng.SimRng.spawn`
does for simulator components: a ``numpy`` :class:`~numpy.random.SeedSequence`
spawn keyed on the host index, so host streams are decorrelated from each
other and from every in-host substream regardless of how many draws any
host makes.
"""

from __future__ import annotations

import numpy as np

from ..errors import ValidationError


def fleet_host_seed(seed: int, host_index: int) -> int:
    """The workload/host seed of one rack host, derived from the fleet seed.

    Pure function of ``(seed, host_index)``: the same fleet seed always
    gives every host the same substream seed, whatever order (or worker
    process) the hosts run in.
    """
    if not isinstance(seed, (int, np.integer)):
        raise ValidationError(f"seed must be an integer, got {seed!r}")
    if not isinstance(host_index, (int, np.integer)) or host_index < 0:
        raise ValidationError(
            f"host_index must be a non-negative integer, got {host_index!r}"
        )
    sequence = np.random.SeedSequence(
        entropy=int(seed), spawn_key=(int(host_index),)
    )
    return int(sequence.generate_state(1, dtype=np.uint64)[0])
