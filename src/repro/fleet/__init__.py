"""Rack-scale fleet modelling: tenants, load curves and host seeding.

This package holds the *model* half of the fleet simulation — who demands
how much traffic, where the scheduler placed them, and what point of the
demand cycle the rack is at.  The *execution* half (building one
:class:`~repro.bench.contention.ContentionParams` shared-host run per rack
host, sharding them across workers and merging the streamed statistics)
lives in :mod:`repro.bench.fleet`.
"""

from .load import (
    DIURNAL_TROUGH,
    FLASH_FACTOR,
    LOAD_PROFILES,
    canonical_load_profile,
    load_profile_factors,
)
from .seeding import fleet_host_seed
from .tenants import (
    PLACEMENT_POLICIES,
    canonical_placement,
    host_demand_shares,
    place_tenants,
    zipf_tenant_weights,
)

__all__ = [
    "DIURNAL_TROUGH",
    "FLASH_FACTOR",
    "LOAD_PROFILES",
    "canonical_load_profile",
    "load_profile_factors",
    "fleet_host_seed",
    "PLACEMENT_POLICIES",
    "canonical_placement",
    "host_demand_shares",
    "place_tenants",
    "zipf_tenant_weights",
]
