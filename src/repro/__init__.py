"""pcie-bench reproduction: model, simulate and benchmark PCIe for end host networking.

This package reproduces "Understanding PCIe performance for end host
networking" (SIGCOMM 2018).  It is organised as:

* :mod:`repro.core` — the analytical PCIe model (bandwidth equations, latency
  decomposition, NIC/driver interaction models).
* :mod:`repro.sim` — a simulated substrate standing in for the programmable
  NICs (Netronome NFP, NetFPGA) and the Intel Xeon hosts of the paper:
  LLC + DDIO cache, IOMMU with IOTLB, NUMA topology, root complex and DMA
  engines.
* :mod:`repro.bench` — the pcie-bench methodology: LAT_RD, LAT_WRRD, BW_RD,
  BW_WR and BW_RDWR micro-benchmarks over controlled host-buffer windows.
* :mod:`repro.experiments` — one driver per figure/table in the paper's
  evaluation.
* :mod:`repro.analysis` — text tables, ASCII plots and report generation.
"""

from .core import (
    PAPER_DEFAULT_CONFIG,
    PCIeConfig,
    PCIeModel,
    LinkConfig,
    PCIeGeneration,
    EthernetLink,
    NicModel,
    SIMPLE_NIC,
    MODERN_NIC_KERNEL,
    MODERN_NIC_DPDK,
)
from .errors import (
    BenchmarkError,
    ConfigurationError,
    ReproError,
    SimulationError,
    ValidationError,
)

__version__ = "1.0.0"

__all__ = [
    "PAPER_DEFAULT_CONFIG",
    "PCIeConfig",
    "PCIeModel",
    "LinkConfig",
    "PCIeGeneration",
    "EthernetLink",
    "NicModel",
    "SIMPLE_NIC",
    "MODERN_NIC_KERNEL",
    "MODERN_NIC_DPDK",
    "ReproError",
    "ConfigurationError",
    "ValidationError",
    "SimulationError",
    "BenchmarkError",
    "__version__",
]
