"""Analytical PCIe latency decomposition.

Latency cannot be read off the PCIe specification the way bandwidth can: it
is dominated by the host's root complex and memory system (the paper finds
PCIe contributes 77-90% of a NIC's loopback latency, Figure 2) plus device
overheads such as DMA-descriptor enqueueing.  This module provides a simple
component model that decomposes a DMA's round-trip time into:

* device issue overhead (building and enqueueing the DMA descriptor),
* serialisation of the request TLP(s) onto the link,
* root-complex / memory access time on the host,
* serialisation of the completion TLP(s) back to the device,
* device completion handling (signalling the waiting thread).

The defaults are calibrated against the paper's measurements (~520-550 ns
median for a 64 B read on a Haswell Xeon E5, §6.2) and are intentionally kept
in one place so the simulator and the analytical model agree.  The detailed,
state-dependent behaviour (caches, IOMMU, NUMA) lives in :mod:`repro.sim`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from ..errors import ValidationError
from .bandwidth import dma_read_wire_bytes, dma_write_wire_bytes
from .config import PAPER_DEFAULT_CONFIG, PCIeConfig


@dataclass(frozen=True)
class LatencyComponents:
    """Breakdown of one DMA transaction's latency, all in nanoseconds."""

    device_issue_ns: float = 0.0
    request_serialisation_ns: float = 0.0
    host_processing_ns: float = 0.0
    completion_serialisation_ns: float = 0.0
    device_completion_ns: float = 0.0

    @property
    def total_ns(self) -> float:
        """Total transaction latency."""
        return (
            self.device_issue_ns
            + self.request_serialisation_ns
            + self.host_processing_ns
            + self.completion_serialisation_ns
            + self.device_completion_ns
        )

    @property
    def pcie_fraction(self) -> float:
        """Fraction of total latency attributable to PCIe + host (not the device).

        Mirrors the "PCIe contribution" series in Figure 2: everything except
        the device-internal issue/completion overheads.
        """
        total = self.total_ns
        if total == 0:
            return 0.0
        pcie = (
            self.request_serialisation_ns
            + self.host_processing_ns
            + self.completion_serialisation_ns
        )
        return pcie / total

    def as_dict(self) -> dict[str, float]:
        """Component values keyed by name (for reports)."""
        return {
            "device_issue_ns": self.device_issue_ns,
            "request_serialisation_ns": self.request_serialisation_ns,
            "host_processing_ns": self.host_processing_ns,
            "completion_serialisation_ns": self.completion_serialisation_ns,
            "device_completion_ns": self.device_completion_ns,
            "total_ns": self.total_ns,
        }


@dataclass(frozen=True)
class LatencyModel:
    """Parametrised analytical latency model for DMA reads and write+read pairs.

    Attributes:
        config: the PCIe configuration, used for serialisation times.
        host_read_ns: root-complex plus memory time to service a read that
            misses the LLC.
        cache_hit_discount_ns: reduction when the target is LLC-resident
            (≈70 ns in the paper's measurements, §6.3).
        device_issue_ns: device-side cost to build/enqueue a DMA descriptor.
        device_completion_ns: device-side cost to observe the completion.
        write_to_read_turnaround_ns: additional ordering delay before a read
            that follows a write to the same address can complete (LAT_WRRD).
    """

    config: PCIeConfig = field(default_factory=lambda: PAPER_DEFAULT_CONFIG)
    host_read_ns: float = 380.0
    cache_hit_discount_ns: float = 70.0
    device_issue_ns: float = 60.0
    device_completion_ns: float = 40.0
    write_to_read_turnaround_ns: float = 60.0

    def __post_init__(self) -> None:
        for attr in (
            "host_read_ns",
            "cache_hit_discount_ns",
            "device_issue_ns",
            "device_completion_ns",
            "write_to_read_turnaround_ns",
        ):
            if getattr(self, attr) < 0:
                raise ValidationError(f"{attr} must be non-negative")

    def with_(self, **changes: object) -> "LatencyModel":
        """Return a copy with selected parameters replaced."""
        return replace(self, **changes)  # type: ignore[arg-type]

    # -- read latency ----------------------------------------------------------

    def read_components(
        self, size: int, *, cache_hit: bool = False
    ) -> LatencyComponents:
        """Latency breakdown for a DMA read of ``size`` bytes (LAT_RD)."""
        if size <= 0:
            raise ValidationError(f"transfer size must be positive, got {size}")
        wire = dma_read_wire_bytes(size, self.config)
        host = self.host_read_ns - (self.cache_hit_discount_ns if cache_hit else 0.0)
        return LatencyComponents(
            device_issue_ns=self.device_issue_ns,
            request_serialisation_ns=self.config.link.serialisation_time_ns(
                wire.device_to_host
            ),
            host_processing_ns=max(host, 0.0),
            completion_serialisation_ns=self.config.link.serialisation_time_ns(
                wire.host_to_device
            ),
            device_completion_ns=self.device_completion_ns,
        )

    def read_latency_ns(self, size: int, *, cache_hit: bool = False) -> float:
        """Total latency of a DMA read of ``size`` bytes."""
        return self.read_components(size, cache_hit=cache_hit).total_ns

    # -- write followed by read (LAT_WRRD) --------------------------------------

    def write_read_components(
        self, size: int, *, cache_hit: bool = False
    ) -> LatencyComponents:
        """Latency breakdown for a posted write followed by a read (LAT_WRRD).

        PCIe ordering forces the root complex to process the read after the
        write, so the measured value is write serialisation + turnaround +
        read latency.
        """
        read = self.read_components(size, cache_hit=cache_hit)
        write_wire = dma_write_wire_bytes(size, self.config)
        write_serialisation = self.config.link.serialisation_time_ns(
            write_wire.device_to_host
        )
        return LatencyComponents(
            device_issue_ns=read.device_issue_ns + self.device_issue_ns,
            request_serialisation_ns=read.request_serialisation_ns
            + write_serialisation,
            host_processing_ns=read.host_processing_ns
            + self.write_to_read_turnaround_ns,
            completion_serialisation_ns=read.completion_serialisation_ns,
            device_completion_ns=read.device_completion_ns,
        )

    def write_read_latency_ns(self, size: int, *, cache_hit: bool = False) -> float:
        """Total latency of a write followed by a read of ``size`` bytes."""
        return self.write_read_components(size, cache_hit=cache_hit).total_ns

    # -- derived quantities -----------------------------------------------------

    def inflight_dmas_for_line_rate(
        self, size: int, inter_packet_time_ns: float
    ) -> int:
        """In-flight DMAs needed to hide read latency at a given packet cadence."""
        if inter_packet_time_ns <= 0:
            raise ValidationError(
                f"inter_packet_time_ns must be positive, got {inter_packet_time_ns}"
            )
        return math.ceil(self.read_latency_ns(size) / inter_packet_time_ns)

    def latency_sweep(
        self, sizes: list[int], *, cache_hit: bool = False, kind: str = "read"
    ) -> list[tuple[int, float]]:
        """Latency curve over transfer sizes for ``"read"`` or ``"write_read"``."""
        if kind == "read":
            func = self.read_latency_ns
        elif kind == "write_read":
            func = self.write_read_latency_ns
        else:
            raise ValidationError(
                f"kind must be 'read' or 'write_read', got {kind!r}"
            )
        return [(size, func(size, cache_hit=cache_hit)) for size in sizes]
