"""Analytical PCIe bandwidth model (equations (1)-(3) of the paper).

The model answers: for a DMA of ``sz`` bytes, how many bytes actually cross
the link in each direction, and therefore what effective data throughput can
a device sustain?

Direction conventions
---------------------

All bandwidth figures are expressed from the *device's* point of view:

* ``device -> host`` ("upstream"): carries MWr TLPs for DMA writes and MRd
  request TLPs for DMA reads.
* ``host -> device`` ("downstream"): carries CplD TLPs with the data for DMA
  reads (and completions/flow control for other traffic).

A DMA **write** therefore consumes upstream bandwidth only, whereas a DMA
**read** consumes a little upstream bandwidth (the requests) and most of its
cost downstream (the completions).  This is why the bidirectional curves in
Figure 1 and Figure 4(c) sit below the unidirectional write curve: MRd
requests compete with MWr TLPs for the upstream direction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ValidationError
from .config import PCIeConfig
from .tlp import (
    CPLD_HEADER_BYTES,
    MRD_HEADER_BYTES,
    MWR_HEADER_BYTES,
    tlp_overhead_bytes,
    TlpType,
)


@dataclass(frozen=True)
class DirectionalBytes:
    """Bytes crossing the link in each direction for one operation."""

    device_to_host: int
    host_to_device: int

    def __add__(self, other: "DirectionalBytes") -> "DirectionalBytes":
        return DirectionalBytes(
            self.device_to_host + other.device_to_host,
            self.host_to_device + other.host_to_device,
        )

    def scaled(self, factor: float) -> "DirectionalBytes":
        """Scale both directions (used for per-packet amortised overheads)."""
        return DirectionalBytes(
            int(math.ceil(self.device_to_host * factor)),
            int(math.ceil(self.host_to_device * factor)),
        )

    @property
    def total(self) -> int:
        """Total bytes across both directions."""
        return self.device_to_host + self.host_to_device


def _header_bytes(config: PCIeConfig, tlp_type: TlpType) -> int:
    return tlp_overhead_bytes(tlp_type, addr64=config.addr64, ecrc=config.ecrc)


def dma_write_wire_bytes(size: int, config: PCIeConfig) -> DirectionalBytes:
    """Bytes on the wire for a DMA write of ``size`` bytes (equation (1)).

    ``B_tx = ceil(sz / MPS) * MWr_Hdr + sz`` — all in the device-to-host
    direction since memory writes are posted.
    """
    _check_size(size)
    if size == 0:
        return DirectionalBytes(0, 0)
    header = _header_bytes(config, TlpType.MEMORY_WRITE)
    tlp_count = math.ceil(size / config.mps)
    return DirectionalBytes(tlp_count * header + size, 0)


def dma_read_wire_bytes(size: int, config: PCIeConfig) -> DirectionalBytes:
    """Bytes on the wire for a DMA read of ``size`` bytes (equations (2)-(3)).

    ``B_tx = ceil(sz / MRRS) * MRd_Hdr``       (requests, device to host)
    ``B_rx = ceil(sz / MPS) * CplD_Hdr + sz``  (completions, host to device)

    Note the request TLPs carry no payload; the paper's equation (2) includes
    ``+ sz`` because it accounts the requested data against the transmit
    direction budget of the *requester*; for link-occupancy purposes the data
    travels in the completion direction, which is what this function returns.
    """
    _check_size(size)
    if size == 0:
        return DirectionalBytes(0, 0)
    mrd_header = _header_bytes(config, TlpType.MEMORY_READ)
    cpld_header = tlp_overhead_bytes(TlpType.COMPLETION_WITH_DATA, ecrc=config.ecrc)
    request_tlps = math.ceil(size / config.mrrs)
    completion_tlps = math.ceil(size / config.mps)
    return DirectionalBytes(
        device_to_host=request_tlps * mrd_header,
        host_to_device=completion_tlps * cpld_header + size,
    )


def mmio_write_wire_bytes(size: int, config: PCIeConfig) -> DirectionalBytes:
    """Bytes for a host-initiated MMIO write (e.g. a doorbell/pointer update).

    MMIO writes travel host-to-device as posted MWr TLPs.
    """
    _check_size(size)
    if size == 0:
        return DirectionalBytes(0, 0)
    header = _header_bytes(config, TlpType.MEMORY_WRITE)
    tlp_count = math.ceil(size / config.mps)
    return DirectionalBytes(0, tlp_count * header + size)


def mmio_read_wire_bytes(size: int, config: PCIeConfig) -> DirectionalBytes:
    """Bytes for a host-initiated MMIO read of a device register.

    The read request travels host-to-device; the completion with data travels
    device-to-host.
    """
    _check_size(size)
    if size == 0:
        return DirectionalBytes(0, 0)
    mrd_header = _header_bytes(config, TlpType.MEMORY_READ)
    cpld_header = tlp_overhead_bytes(TlpType.COMPLETION_WITH_DATA, ecrc=config.ecrc)
    request_tlps = math.ceil(size / config.mrrs)
    completion_tlps = math.ceil(size / config.mps)
    return DirectionalBytes(
        device_to_host=completion_tlps * cpld_header + size,
        host_to_device=request_tlps * mrd_header,
    )


# ---------------------------------------------------------------------------
# Effective bandwidth
# ---------------------------------------------------------------------------


def effective_write_bandwidth_gbps(size: int, config: PCIeConfig) -> float:
    """Effective DMA-write data bandwidth for ``size``-byte transfers in Gb/s.

    This is the rate of useful payload delivered, i.e. link bandwidth scaled
    by payload/wire-bytes efficiency.  It produces the saw-tooth curve of
    Figure 1 and the model line of Figure 4(b).
    """
    _check_positive_size(size)
    wire = dma_write_wire_bytes(size, config)
    return config.tlp_bandwidth_gbps * size / wire.device_to_host


def effective_read_bandwidth_gbps(size: int, config: PCIeConfig) -> float:
    """Effective DMA-read data bandwidth for ``size``-byte transfers in Gb/s.

    Reads are limited by the completion (host-to-device) direction; the
    request TLPs consume upstream bandwidth but do not bound the read rate
    unless the upstream direction is saturated by other traffic.
    """
    _check_positive_size(size)
    wire = dma_read_wire_bytes(size, config)
    return config.tlp_bandwidth_gbps * size / wire.host_to_device


def effective_bidirectional_bandwidth_gbps(size: int, config: PCIeConfig) -> float:
    """Effective bandwidth with alternating DMA reads and writes of ``size`` bytes.

    Models the ``BW_RDWR`` benchmark and the *Effective PCIe BW* curve of
    Figure 1: each direction of the link must carry the write TLPs (or read
    completions) plus the read request TLPs.  The achievable per-direction
    data rate is limited by the busier direction.

    Returns the *per-direction* payload throughput in Gb/s (the paper plots
    bidirectional bandwidth per direction, capped at the link's ~50 Gb/s
    effective limit, so 40G Ethernet full duplex is feasible above the
    crossover size).
    """
    _check_positive_size(size)
    write = dma_write_wire_bytes(size, config)
    read = dma_read_wire_bytes(size, config)
    # Per ``size`` bytes written AND ``size`` bytes read:
    up = write.device_to_host + read.device_to_host  # MWr + MRd requests
    down = write.host_to_device + read.host_to_device  # CplD with data
    bottleneck = max(up, down)
    return config.tlp_bandwidth_gbps * size / bottleneck


def bandwidth_sweep(
    sizes: list[int],
    config: PCIeConfig,
    *,
    kind: str = "bidirectional",
) -> list[tuple[int, float]]:
    """Compute an effective-bandwidth curve over a list of transfer sizes.

    Args:
        sizes: transfer sizes in bytes.
        config: PCIe configuration.
        kind: one of ``"read"``, ``"write"`` or ``"bidirectional"``.

    Returns:
        ``(size, bandwidth_gbps)`` tuples in the order given.
    """
    functions = {
        "read": effective_read_bandwidth_gbps,
        "write": effective_write_bandwidth_gbps,
        "bidirectional": effective_bidirectional_bandwidth_gbps,
    }
    if kind not in functions:
        raise ValidationError(
            f"kind must be one of {sorted(functions)}, got {kind!r}"
        )
    func = functions[kind]
    return [(size, func(size, config)) for size in sizes]


def transactions_per_second_at_saturation(size: int, config: PCIeConfig) -> float:
    """Transactions per second when the link is saturated with ``size``-byte writes.

    The paper notes a saturated Gen3 x8 link moving 64-byte transfers implies
    roughly 69.5 million transactions per second in each direction (§4.2).
    """
    _check_positive_size(size)
    wire = dma_write_wire_bytes(size, config)
    bytes_per_second = config.tlp_bandwidth_gbps / 8.0 * 1e9
    return bytes_per_second / wire.device_to_host


def _check_size(size: int) -> None:
    if size < 0:
        raise ValidationError(f"transfer size must be non-negative, got {size}")


def _check_positive_size(size: int) -> None:
    if size <= 0:
        raise ValidationError(f"transfer size must be positive, got {size}")
