"""PCIe link layer: generations, lanes, encodings and raw bandwidth.

The paper's running example is a PCIe Gen 3 x8 link: 8 lanes of 8 GT/s using
128b/130b encoding, i.e. 8 x 7.87 Gb/s = 62.96 Gb/s at the physical layer, of
which roughly 57.88 Gb/s remain at the transaction layer once data link layer
(DLL) flow control and acknowledgment overheads are removed (Section 3).

This module encodes those facts for all common PCIe generations so the
analytical model (and the simulator) can be configured for other links too.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ValidationError


class Encoding(enum.Enum):
    """Line encodings used by the PCIe physical layer."""

    #: 8b/10b encoding used by Gen 1 and Gen 2 (20% encoding overhead).
    E8B10B = "8b/10b"
    #: 128b/130b encoding used by Gen 3 onwards (~1.5% encoding overhead).
    E128B130B = "128b/130b"

    @property
    def efficiency(self) -> float:
        """Fraction of raw transfer rate available after encoding."""
        if self is Encoding.E8B10B:
            return 8.0 / 10.0
        return 128.0 / 130.0


class PCIeGeneration(enum.Enum):
    """PCIe generations with their per-lane transfer rates in GT/s."""

    GEN1 = 1
    GEN2 = 2
    GEN3 = 3
    GEN4 = 4
    GEN5 = 5

    @property
    def transfer_rate_gtps(self) -> float:
        """Raw per-lane transfer rate in giga-transfers per second."""
        return {
            PCIeGeneration.GEN1: 2.5,
            PCIeGeneration.GEN2: 5.0,
            PCIeGeneration.GEN3: 8.0,
            PCIeGeneration.GEN4: 16.0,
            PCIeGeneration.GEN5: 32.0,
        }[self]

    @property
    def encoding(self) -> Encoding:
        """Line encoding used by this generation."""
        if self in (PCIeGeneration.GEN1, PCIeGeneration.GEN2):
            return Encoding.E8B10B
        return Encoding.E128B130B

    @property
    def lane_bandwidth_gbps(self) -> float:
        """Usable per-lane bandwidth at the physical layer in Gb/s.

        For Gen 3 this is 8 GT/s * 128/130 = 7.876... Gb/s, which the paper
        rounds to 7.87 Gb/s.
        """
        return self.transfer_rate_gtps * self.encoding.efficiency

    @classmethod
    def from_value(cls, value: "PCIeGeneration | int | str") -> "PCIeGeneration":
        """Coerce an int (3), string ("gen3" / "3") or enum into a generation."""
        if isinstance(value, cls):
            return value
        if isinstance(value, int):
            try:
                return cls(value)
            except ValueError as exc:
                raise ValidationError(f"unknown PCIe generation {value!r}") from exc
        text = str(value).strip().lower().removeprefix("gen")
        try:
            return cls(int(text))
        except (ValueError, KeyError) as exc:
            raise ValidationError(f"unknown PCIe generation {value!r}") from exc


#: Lane counts permitted by the PCIe specification.
VALID_LANE_COUNTS = (1, 2, 4, 8, 16, 32)

#: Default fraction of transaction-layer bandwidth consumed by DLL traffic
#: (flow control updates and acknowledgments).  The paper derives ~8-10%
#: from the specification's recommended values and uses 57.88 Gb/s for a
#: Gen3 x8 link whose physical layer runs at 62.96 Gb/s; that ratio is
#: 0.0807, which we adopt as the default.
DEFAULT_DLL_OVERHEAD = 1.0 - 57.88 / 62.96


@dataclass(frozen=True)
class LinkConfig:
    """A PCIe link: generation plus lane count.

    Attributes:
        generation: PCIe generation (Gen 1 through Gen 5).
        lanes: number of lanes (x1 .. x32).
        dll_overhead: fraction of physical bandwidth consumed by data link
            layer flow control and acknowledgments.  The paper estimates
            8-10% and derives 57.88 Gb/s usable from 62.96 Gb/s raw for
            Gen3 x8 (Section 3, footnote 5).
    """

    generation: PCIeGeneration = PCIeGeneration.GEN3
    lanes: int = 8
    dll_overhead: float = DEFAULT_DLL_OVERHEAD

    def __post_init__(self) -> None:
        if self.lanes not in VALID_LANE_COUNTS:
            raise ValidationError(
                f"invalid lane count x{self.lanes}; valid counts are "
                f"{', '.join(f'x{n}' for n in VALID_LANE_COUNTS)}"
            )
        if not 0.0 <= self.dll_overhead < 1.0:
            raise ValidationError(
                f"dll_overhead must be within [0, 1), got {self.dll_overhead}"
            )

    @property
    def name(self) -> str:
        """Short human-readable name, e.g. ``"Gen3 x8"``."""
        return f"Gen{self.generation.value} x{self.lanes}"

    @property
    def physical_bandwidth_gbps(self) -> float:
        """Total physical-layer bandwidth (per direction) in Gb/s.

        For Gen3 x8 this evaluates to 62.96 Gb/s as quoted in the paper.
        """
        return self.generation.lane_bandwidth_gbps * self.lanes

    @property
    def tlp_bandwidth_gbps(self) -> float:
        """Bandwidth available to the transaction layer (per direction) in Gb/s.

        For Gen3 x8 with the default DLL overhead this is 57.88 Gb/s.
        """
        return self.physical_bandwidth_gbps * (1.0 - self.dll_overhead)

    @property
    def bytes_per_ns(self) -> float:
        """Transaction-layer bandwidth expressed in bytes per nanosecond."""
        return self.tlp_bandwidth_gbps * 0.125

    def serialisation_time_ns(self, wire_bytes: int) -> float:
        """Time to serialise ``wire_bytes`` onto the link, in nanoseconds."""
        if wire_bytes < 0:
            raise ValidationError(f"wire_bytes must be non-negative, got {wire_bytes}")
        if self.bytes_per_ns == 0:
            raise ValidationError("link has zero usable bandwidth")
        return wire_bytes / self.bytes_per_ns

    def __str__(self) -> str:  # pragma: no cover - trivial
        return (
            f"{self.name} ({self.physical_bandwidth_gbps:.2f} Gb/s raw, "
            f"{self.tlp_bandwidth_gbps:.2f} Gb/s TLP)"
        )


#: The link used for almost every experiment in the paper.
GEN3_X8 = LinkConfig(PCIeGeneration.GEN3, 8)
#: Link typically used by 100G NICs.
GEN3_X16 = LinkConfig(PCIeGeneration.GEN3, 16)
#: Next-generation link mentioned as future work in the paper.
GEN4_X8 = LinkConfig(PCIeGeneration.GEN4, 8)
GEN4_X16 = LinkConfig(PCIeGeneration.GEN4, 16)
