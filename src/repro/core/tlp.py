"""Transaction Layer Packet (TLP) accounting.

Section 3 of the paper breaks a PCIe transaction into the bytes that actually
cross the wire:

* physical layer framing: 2 bytes per TLP;
* data link layer header (sequence number + LCRC): 6 bytes per TLP;
* TLP common header: 4 bytes;
* type-specific header: 12 bytes for MRd/MWr (with 64-bit addressing),
  8 bytes for CplD;
* optional 4-byte ECRC digest.

This gives the 24-byte MWr/MRd overhead and the 20-byte CplD overhead used by
equations (1)-(3).  The module exposes those constants, a small ``Tlp`` value
type, and helpers that split DMA requests into TLP sequences while honouring
MPS, MRRS and the Read Completion Boundary (RCB).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ValidationError

#: Physical layer framing bytes added to every TLP (STP + END symbols).
PHYSICAL_FRAMING_BYTES = 2
#: Data link layer header bytes (2B sequence number + 4B LCRC).
DLL_HEADER_BYTES = 6
#: Common TLP header bytes.
TLP_COMMON_HEADER_BYTES = 4
#: Optional end-to-end CRC digest.
ECRC_BYTES = 4

#: Type-specific header size for memory requests using 64-bit addressing.
MEM_REQUEST_HEADER_64_BYTES = 12
#: Type-specific header size for memory requests using 32-bit addressing.
MEM_REQUEST_HEADER_32_BYTES = 8
#: Type-specific header size for completions with data.
COMPLETION_HEADER_BYTES = 8

#: Read Completion Boundary: completions for unaligned reads are split so
#: that all but the first align to this boundary (typically 64 bytes).
DEFAULT_RCB_BYTES = 64


class TlpType(enum.Enum):
    """TLP types relevant to DMA traffic (plus a few for completeness)."""

    MEMORY_READ = "MRd"
    MEMORY_WRITE = "MWr"
    COMPLETION_WITH_DATA = "CplD"
    COMPLETION_NO_DATA = "Cpl"
    CONFIG_READ = "CfgRd"
    CONFIG_WRITE = "CfgWr"
    MESSAGE = "Msg"

    @property
    def is_posted(self) -> bool:
        """Posted transactions complete without an explicit completion TLP."""
        return self in (TlpType.MEMORY_WRITE, TlpType.MESSAGE)

    @property
    def carries_data(self) -> bool:
        """Whether this TLP type has a data payload."""
        return self in (
            TlpType.MEMORY_WRITE,
            TlpType.COMPLETION_WITH_DATA,
            TlpType.CONFIG_WRITE,
        )


def type_specific_header_bytes(tlp_type: TlpType, *, addr64: bool = True) -> int:
    """Header size (beyond the 4B common header) for a TLP type."""
    if tlp_type in (TlpType.MEMORY_READ, TlpType.MEMORY_WRITE):
        return MEM_REQUEST_HEADER_64_BYTES if addr64 else MEM_REQUEST_HEADER_32_BYTES
    if tlp_type in (TlpType.COMPLETION_WITH_DATA, TlpType.COMPLETION_NO_DATA):
        return COMPLETION_HEADER_BYTES
    if tlp_type in (TlpType.CONFIG_READ, TlpType.CONFIG_WRITE):
        return MEM_REQUEST_HEADER_32_BYTES
    return MEM_REQUEST_HEADER_32_BYTES


def tlp_overhead_bytes(
    tlp_type: TlpType, *, addr64: bool = True, ecrc: bool = False
) -> int:
    """Total per-TLP overhead (everything except payload) on the wire.

    For a 64-bit addressed memory write this is 2 + 6 + 4 + 12 = 24 bytes
    (``MWr_Hdr`` in the paper); for a completion with data it is
    2 + 6 + 4 + 8 = 20 bytes (``CplD_Hdr``).
    """
    overhead = (
        PHYSICAL_FRAMING_BYTES
        + DLL_HEADER_BYTES
        + TLP_COMMON_HEADER_BYTES
        + type_specific_header_bytes(tlp_type, addr64=addr64)
    )
    if ecrc:
        overhead += ECRC_BYTES
    return overhead


#: Convenience constants matching the symbols used in the paper's equations.
MWR_HEADER_BYTES = tlp_overhead_bytes(TlpType.MEMORY_WRITE)
MRD_HEADER_BYTES = tlp_overhead_bytes(TlpType.MEMORY_READ)
CPLD_HEADER_BYTES = tlp_overhead_bytes(TlpType.COMPLETION_WITH_DATA)


@dataclass(frozen=True)
class Tlp:
    """A single transaction layer packet, described by type and payload size.

    The library never constructs byte-accurate TLPs; for modelling purposes a
    TLP is fully characterised by its type, payload length, addressing mode
    and whether an ECRC digest is attached.
    """

    tlp_type: TlpType
    payload_bytes: int = 0
    addr64: bool = True
    ecrc: bool = False

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ValidationError(
                f"payload_bytes must be non-negative, got {self.payload_bytes}"
            )
        if self.payload_bytes and not self.tlp_type.carries_data:
            raise ValidationError(
                f"{self.tlp_type.value} TLPs cannot carry a data payload"
            )

    @property
    def overhead_bytes(self) -> int:
        """Header/framing bytes for this TLP."""
        return tlp_overhead_bytes(self.tlp_type, addr64=self.addr64, ecrc=self.ecrc)

    @property
    def wire_bytes(self) -> int:
        """Total bytes this TLP occupies on the wire."""
        return self.overhead_bytes + self.payload_bytes


def split_write(
    size: int, mps: int, *, addr64: bool = True, ecrc: bool = False
) -> list[Tlp]:
    """Split a DMA write of ``size`` bytes into MWr TLPs bounded by MPS."""
    _validate_split_args(size, mps, "MPS")
    tlps = []
    remaining = size
    while remaining > 0:
        chunk = min(remaining, mps)
        tlps.append(
            Tlp(TlpType.MEMORY_WRITE, payload_bytes=chunk, addr64=addr64, ecrc=ecrc)
        )
        remaining -= chunk
    return tlps


def split_read_requests(
    size: int, mrrs: int, *, addr64: bool = True, ecrc: bool = False
) -> list[Tlp]:
    """Split a DMA read of ``size`` bytes into MRd request TLPs bounded by MRRS."""
    _validate_split_args(size, mrrs, "MRRS")
    tlps = []
    remaining = size
    while remaining > 0:
        chunk = min(remaining, mrrs)
        tlps.append(Tlp(TlpType.MEMORY_READ, addr64=addr64, ecrc=ecrc))
        remaining -= chunk
    return tlps


def split_read_completions(
    size: int,
    mps: int,
    *,
    offset: int = 0,
    rcb: int = DEFAULT_RCB_BYTES,
    ecrc: bool = False,
) -> list[Tlp]:
    """Split the completion data for a DMA read into CplD TLPs.

    Completions are bounded by MPS.  When the read does not start on a Read
    Completion Boundary, the specification requires the first completion to
    only carry enough data to reach the next RCB so that subsequent
    completions are RCB-aligned; unaligned reads therefore generate extra
    TLPs, which is the effect the paper notes its model ignores.  This
    function implements the aligned accounting by default (``offset = 0``)
    and the RCB-aware accounting when an offset is given.
    """
    _validate_split_args(size, mps, "MPS")
    if offset < 0:
        raise ValidationError(f"offset must be non-negative, got {offset}")
    if rcb <= 0:
        raise ValidationError(f"RCB must be positive, got {rcb}")

    tlps: list[Tlp] = []
    remaining = size
    misalignment = offset % rcb
    if misalignment and remaining > 0:
        first = min(remaining, rcb - misalignment, mps)
        tlps.append(Tlp(TlpType.COMPLETION_WITH_DATA, payload_bytes=first, ecrc=ecrc))
        remaining -= first
    while remaining > 0:
        chunk = min(remaining, mps)
        tlps.append(Tlp(TlpType.COMPLETION_WITH_DATA, payload_bytes=chunk, ecrc=ecrc))
        remaining -= chunk
    return tlps


def total_wire_bytes(tlps: list[Tlp]) -> int:
    """Sum of wire bytes over a list of TLPs."""
    return sum(tlp.wire_bytes for tlp in tlps)


def _validate_split_args(size: int, bound: int, bound_name: str) -> None:
    if size < 0:
        raise ValidationError(f"transfer size must be non-negative, got {size}")
    if bound <= 0:
        raise ValidationError(f"{bound_name} must be positive, got {bound}")
