"""High-level façade over the analytical PCIe model.

:class:`PCIeModel` bundles a :class:`~repro.core.config.PCIeConfig`, the
bandwidth equations, the latency decomposition and the NIC interaction models
behind one object, which is the API most examples and experiments use:

>>> from repro.core.model import PCIeModel
>>> model = PCIeModel.gen3_x8()
>>> round(model.effective_bandwidth_gbps(1024, kind="write"), 1)
52.9
>>> model.nic_throughput_gbps("Simple NIC", 256) < model.ethernet.line_rate_gbps
True
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..errors import ValidationError
from .bandwidth import (
    DirectionalBytes,
    bandwidth_sweep,
    dma_read_wire_bytes,
    dma_write_wire_bytes,
    effective_bidirectional_bandwidth_gbps,
    effective_read_bandwidth_gbps,
    effective_write_bandwidth_gbps,
    transactions_per_second_at_saturation,
)
from .config import PAPER_DEFAULT_CONFIG, PCIeConfig, get_config
from .ethernet import ETHERNET_40G, EthernetLink
from .latency import LatencyModel
from .nic import FIGURE1_MODELS, NicModel, model_by_name


#: Transfer sizes the paper uses for Figure 1 (64 B to 1518 B frames).
FIGURE1_SIZES = tuple(range(64, 1519, 16))

#: Transfer sizes the paper uses for Figure 4 (64 B to 2048 B, with -1/+1
#: probes around cache-line and TLP boundaries).
FIGURE4_SIZES = tuple(
    sorted(
        set(
            list(range(64, 2049, 64))
            + [63, 65, 127, 129, 255, 257, 511, 513, 1023, 1025, 2047]
        )
    )
)


@dataclass
class PCIeModel:
    """Analytical PCIe performance model (the paper's Section 3 contribution).

    Attributes:
        config: PCIe link and transaction-parameter configuration.
        ethernet: the Ethernet link used for line-rate comparisons.
        latency: analytical latency model sharing the same PCIe config.
    """

    config: PCIeConfig = field(default_factory=lambda: PAPER_DEFAULT_CONFIG)
    ethernet: EthernetLink = ETHERNET_40G
    latency: LatencyModel = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.latency is None:
            self.latency = LatencyModel(config=self.config)
        elif self.latency.config != self.config:
            self.latency = self.latency.with_(config=self.config)

    # -- constructors -----------------------------------------------------------

    @classmethod
    def gen3_x8(cls) -> "PCIeModel":
        """The paper's reference configuration: Gen3 x8, MPS 256, MRRS 512."""
        return cls(config=PAPER_DEFAULT_CONFIG)

    @classmethod
    def from_preset(cls, name: str) -> "PCIeModel":
        """Build a model from a named preset (see :func:`repro.core.config.get_config`)."""
        return cls(config=get_config(name))

    # -- wire-byte accounting ----------------------------------------------------

    def dma_read_bytes(self, size: int) -> DirectionalBytes:
        """Bytes on the wire for a DMA read of ``size`` bytes."""
        return dma_read_wire_bytes(size, self.config)

    def dma_write_bytes(self, size: int) -> DirectionalBytes:
        """Bytes on the wire for a DMA write of ``size`` bytes."""
        return dma_write_wire_bytes(size, self.config)

    # -- bandwidth ----------------------------------------------------------------

    def effective_bandwidth_gbps(self, size: int, *, kind: str = "write") -> float:
        """Effective DMA bandwidth for ``size``-byte transfers.

        Args:
            size: transfer size in bytes.
            kind: ``"read"``, ``"write"`` or ``"bidirectional"``.
        """
        if kind == "read":
            return effective_read_bandwidth_gbps(size, self.config)
        if kind == "write":
            return effective_write_bandwidth_gbps(size, self.config)
        if kind == "bidirectional":
            return effective_bidirectional_bandwidth_gbps(size, self.config)
        raise ValidationError(
            f"kind must be 'read', 'write' or 'bidirectional', got {kind!r}"
        )

    def bandwidth_sweep(
        self, sizes: Iterable[int], *, kind: str = "bidirectional"
    ) -> list[tuple[int, float]]:
        """Effective-bandwidth curve over transfer sizes."""
        return bandwidth_sweep(list(sizes), self.config, kind=kind)

    def saturation_transaction_rate(self, size: int) -> float:
        """Transactions/second needed to saturate the link at ``size``-byte writes."""
        return transactions_per_second_at_saturation(size, self.config)

    # -- Ethernet comparisons ------------------------------------------------------

    def ethernet_throughput_gbps(self, frame_size: int) -> float:
        """Line-rate payload throughput of the reference Ethernet link."""
        return self.ethernet.frame_throughput_gbps(frame_size)

    def supports_line_rate(self, frame_size: int, *, kind: str = "bidirectional") -> bool:
        """Whether raw PCIe bandwidth covers Ethernet line rate at ``frame_size``."""
        return self.effective_bandwidth_gbps(frame_size, kind=kind) >= (
            self.ethernet_throughput_gbps(frame_size)
        )

    # -- NIC interaction models ------------------------------------------------------

    def nic_models(self) -> tuple[NicModel, ...]:
        """The built-in Figure 1 NIC models."""
        return FIGURE1_MODELS

    def nic_throughput_gbps(self, model: str | NicModel, packet_size: int) -> float:
        """Achievable throughput of a NIC interaction model at ``packet_size``."""
        nic = model if isinstance(model, NicModel) else model_by_name(model)
        return nic.throughput_gbps(packet_size, self.config)

    def nic_throughput_sweep(
        self, model: str | NicModel, sizes: Sequence[int]
    ) -> list[tuple[int, float]]:
        """Throughput curve of a NIC model over packet sizes."""
        nic = model if isinstance(model, NicModel) else model_by_name(model)
        return nic.throughput_sweep(sizes, self.config)

    def figure1_curves(
        self, sizes: Sequence[int] = FIGURE1_SIZES
    ) -> dict[str, list[tuple[int, float]]]:
        """All series of Figure 1 keyed by their legend label."""
        curves: dict[str, list[tuple[int, float]]] = {
            "Effective PCIe BW": self.bandwidth_sweep(sizes, kind="bidirectional"),
            "40G Ethernet": [
                (size, self.ethernet_throughput_gbps(size)) for size in sizes
            ],
        }
        for nic in FIGURE1_MODELS:
            curves[nic.name] = self.nic_throughput_sweep(nic, sizes)
        return curves

    # -- latency -----------------------------------------------------------------------

    def read_latency_ns(self, size: int, *, cache_hit: bool = False) -> float:
        """Analytical DMA read latency for ``size`` bytes."""
        return self.latency.read_latency_ns(size, cache_hit=cache_hit)

    def write_read_latency_ns(self, size: int, *, cache_hit: bool = False) -> float:
        """Analytical write-then-read latency for ``size`` bytes."""
        return self.latency.write_read_latency_ns(size, cache_hit=cache_hit)

    def required_inflight_dmas(self, frame_size: int) -> int:
        """In-flight DMAs required to sustain Ethernet line rate at ``frame_size``."""
        return self.latency.inflight_dmas_for_line_rate(
            frame_size, self.ethernet.inter_packet_time_ns(frame_size)
        )
