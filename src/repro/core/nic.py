"""NIC / device-driver interaction models (the Figure 1 curves).

The paper models three designs on top of the raw PCIe bandwidth model:

* **Simple NIC** — every packet costs a doorbell write, a descriptor fetch,
  the packet DMA, an interrupt and a pointer read on both the TX and RX
  paths.  Such a device only reaches 40 Gb/s line rate for frames larger
  than roughly 512 B.
* **Modern NIC (kernel driver)** — descriptor fetches and write-backs are
  batched (the Intel Niantic fetches up to 40 TX descriptors and writes back
  up to 8 at a time), interrupts are moderated and doorbells amortised.
* **Modern NIC (DPDK driver)** — driver-only changes on the same hardware:
  interrupts are disabled and the driver polls write-back descriptors in
  host memory instead of reading device registers, removing the remaining
  MMIO reads.

Each model turns a packet size into average PCIe bytes per packet in both
link directions, from which the achievable (bidirectional) throughput
follows.  Models are declarative data, so researchers can derive their own
variants with :meth:`NicModel.with_` and compare design alternatives, which
is exactly the use the paper advertises for its model.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

from ..errors import ValidationError
from .config import PAPER_DEFAULT_CONFIG, PCIeConfig
from .ethernet import ETHERNET_40G, EthernetLink
from .transactions import TransactionSequence, rx_transactions, tx_transactions


@dataclass(frozen=True)
class NicModel:
    """A parametrised NIC + driver interaction model.

    The parameters express how aggressively the device and driver amortise
    the non-payload PCIe transactions.  A value of 1 means "once per packet".

    Attributes:
        name: display name used in reports and figures.
        tx_descriptor_batch: packets per TX descriptor-fetch DMA.
        tx_writeback_batch: packets per TX descriptor write-back DMA.
        rx_freelist_batch: packets per RX freelist descriptor-fetch DMA.
        rx_writeback_batch: packets per RX descriptor write-back DMA.
        doorbell_batch: packets per TX doorbell / RX tail-pointer MMIO write.
        interrupt_moderation: packets per interrupt (when interrupts are on).
        interrupts_enabled: whether the device raises interrupts at all.
        pointer_reads_enabled: whether the driver reads device queue pointers
            over MMIO (a DPDK-style driver polls host memory instead).
        tx_descriptor_writeback: whether TX completions are reported through
            descriptor write-backs (modern NICs) rather than head-pointer
            reads only (simple NIC).
    """

    name: str
    tx_descriptor_batch: float = 1.0
    tx_writeback_batch: float = 1.0
    rx_freelist_batch: float = 1.0
    rx_writeback_batch: float = 1.0
    doorbell_batch: float = 1.0
    interrupt_moderation: float = 1.0
    interrupts_enabled: bool = True
    pointer_reads_enabled: bool = True
    tx_descriptor_writeback: bool = False

    def __post_init__(self) -> None:
        for attr in (
            "tx_descriptor_batch",
            "tx_writeback_batch",
            "rx_freelist_batch",
            "rx_writeback_batch",
            "doorbell_batch",
            "interrupt_moderation",
        ):
            if getattr(self, attr) <= 0:
                raise ValidationError(f"{attr} must be positive")

    def with_(self, **changes: object) -> "NicModel":
        """Return a variant of this model with selected parameters changed."""
        return replace(self, **changes)  # type: ignore[arg-type]

    # -- transaction accounting ------------------------------------------------

    def tx_sequence(self, packet_size: int) -> TransactionSequence:
        """Per-packet transmit-path transaction sequence."""
        return TransactionSequence(
            name=f"{self.name} TX",
            transactions=tuple(
                tx_transactions(
                    packet_size,
                    descriptor_batch=self.tx_descriptor_batch,
                    writeback_batch=self.tx_writeback_batch,
                    doorbell_batch=self.doorbell_batch,
                    interrupt_moderation=self.interrupt_moderation,
                    interrupts_enabled=self.interrupts_enabled,
                    pointer_reads_enabled=self.pointer_reads_enabled,
                    descriptor_writeback=self.tx_descriptor_writeback,
                )
            ),
        )

    def rx_sequence(self, packet_size: int) -> TransactionSequence:
        """Per-packet receive-path transaction sequence."""
        return TransactionSequence(
            name=f"{self.name} RX",
            transactions=tuple(
                rx_transactions(
                    packet_size,
                    freelist_batch=self.rx_freelist_batch,
                    writeback_batch=self.rx_writeback_batch,
                    tail_update_batch=self.doorbell_batch,
                    interrupt_moderation=self.interrupt_moderation,
                    interrupts_enabled=self.interrupts_enabled,
                    pointer_reads_enabled=self.pointer_reads_enabled,
                )
            ),
        )

    def per_packet_wire_bytes(
        self, packet_size: int, config: PCIeConfig = PAPER_DEFAULT_CONFIG
    ) -> tuple[float, float]:
        """Average wire bytes per packet in each direction for full-duplex traffic.

        Full-duplex means one packet transmitted *and* one received per
        "packet time", matching the bidirectional setting of Figure 1.
        Returns ``(device_to_host, host_to_device)`` bytes.
        """
        tx_up, tx_down = self.tx_sequence(packet_size).per_packet_wire_bytes(config)
        rx_up, rx_down = self.rx_sequence(packet_size).per_packet_wire_bytes(config)
        return tx_up + rx_up, tx_down + rx_down

    def throughput_gbps(
        self,
        packet_size: int,
        config: PCIeConfig = PAPER_DEFAULT_CONFIG,
    ) -> float:
        """Achievable bidirectional packet throughput (per direction) in Gb/s.

        The busier link direction bounds the packet rate; the result is the
        packet-payload throughput that rate corresponds to.
        """
        if packet_size <= 0:
            raise ValidationError(f"packet size must be positive, got {packet_size}")
        up, down = self.per_packet_wire_bytes(packet_size, config)
        bottleneck = max(up, down)
        return config.tlp_bandwidth_gbps * packet_size / bottleneck

    def achieves_line_rate(
        self,
        packet_size: int,
        ethernet: EthernetLink = ETHERNET_40G,
        config: PCIeConfig = PAPER_DEFAULT_CONFIG,
    ) -> bool:
        """Whether the model sustains Ethernet line rate at ``packet_size``."""
        return self.throughput_gbps(packet_size, config) >= (
            ethernet.frame_throughput_gbps(packet_size)
        )

    def line_rate_crossover(
        self,
        ethernet: EthernetLink = ETHERNET_40G,
        config: PCIeConfig = PAPER_DEFAULT_CONFIG,
        *,
        sizes: Sequence[int] | None = None,
    ) -> int | None:
        """Smallest frame size at which line rate is sustained, or ``None``.

        The paper observes the Simple NIC only achieves 40 Gb/s for frames
        larger than 512 B; this helper finds that crossover.
        """
        candidates = sizes if sizes is not None else range(64, 1519)
        for size in candidates:
            if self.achieves_line_rate(size, ethernet, config):
                return size
        return None

    def throughput_sweep(
        self,
        sizes: Sequence[int],
        config: PCIeConfig = PAPER_DEFAULT_CONFIG,
    ) -> list[tuple[int, float]]:
        """Throughput curve over a list of packet sizes."""
        return [(size, self.throughput_gbps(size, config)) for size in sizes]


# ---------------------------------------------------------------------------
# The three models plotted in Figure 1
# ---------------------------------------------------------------------------

#: The naive per-packet design walked through in Section 3.
SIMPLE_NIC = NicModel(name="Simple NIC")

#: A moderately optimised NIC with a typical Linux kernel driver.  Batch
#: sizes follow the Intel Niantic (82599) behaviour cited by the paper:
#: descriptor fetches in batches of up to 40, write-backs up to 8, plus
#: interrupt moderation and per-batch doorbells.
MODERN_NIC_KERNEL = NicModel(
    name="Modern NIC (kernel driver)",
    tx_descriptor_batch=40.0,
    tx_writeback_batch=8.0,
    rx_freelist_batch=8.0,
    rx_writeback_batch=8.0,
    doorbell_batch=8.0,
    interrupt_moderation=16.0,
    interrupts_enabled=True,
    pointer_reads_enabled=True,
    tx_descriptor_writeback=True,
)

#: The same hardware driven by a DPDK-style poll-mode driver: no interrupts
#: and no device register reads (the driver polls descriptor write-backs in
#: host memory instead).
MODERN_NIC_DPDK = MODERN_NIC_KERNEL.with_(
    name="Modern NIC (DPDK driver)",
    interrupts_enabled=False,
    pointer_reads_enabled=False,
    doorbell_batch=32.0,
)

#: All models of Figure 1, in plot order.
FIGURE1_MODELS = (SIMPLE_NIC, MODERN_NIC_KERNEL, MODERN_NIC_DPDK)


def model_by_name(name: str) -> NicModel:
    """Look up one of the built-in NIC models by (case-insensitive) name."""
    lookup = {model.name.lower(): model for model in FIGURE1_MODELS}
    key = name.strip().lower()
    if key in lookup:
        return lookup[key]
    aliases = {
        "simple": SIMPLE_NIC,
        "kernel": MODERN_NIC_KERNEL,
        "modern": MODERN_NIC_KERNEL,
        "dpdk": MODERN_NIC_DPDK,
    }
    if key in aliases:
        return aliases[key]
    raise ValidationError(
        f"unknown NIC model {name!r}; known models: "
        + ", ".join(model.name for model in FIGURE1_MODELS)
    )
