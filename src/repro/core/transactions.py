"""Symbolic PCIe transaction sequences for device/driver interactions.

Section 3 of the paper derives the *Simple NIC* and *Modern NIC* curves of
Figure 1 by enumerating every PCIe transaction a NIC and its driver perform
per packet: doorbell writes, descriptor fetches, packet DMAs, write-backs,
interrupts and pointer reads.  This module provides a small vocabulary for
writing those interaction models down declaratively so the bandwidth model
can account for them, and so alternative designs can be explored
programmatically (one of the paper's stated use cases).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ValidationError
from .bandwidth import (
    DirectionalBytes,
    dma_read_wire_bytes,
    dma_write_wire_bytes,
    mmio_read_wire_bytes,
    mmio_write_wire_bytes,
)
from .config import PCIeConfig


class OpKind(enum.Enum):
    """The four transaction kinds that make up device/driver interactions."""

    #: Device reads host memory (descriptor fetch, packet fetch for TX).
    DMA_READ = "dma_read"
    #: Device writes host memory (packet delivery, descriptor write-back, interrupt).
    DMA_WRITE = "dma_write"
    #: Host (driver) reads a device register over MMIO.
    MMIO_READ = "mmio_read"
    #: Host (driver) writes a device register over MMIO (doorbells, pointers).
    MMIO_WRITE = "mmio_write"


_WIRE_FUNCTIONS = {
    OpKind.DMA_READ: dma_read_wire_bytes,
    OpKind.DMA_WRITE: dma_write_wire_bytes,
    OpKind.MMIO_READ: mmio_read_wire_bytes,
    OpKind.MMIO_WRITE: mmio_write_wire_bytes,
}


@dataclass(frozen=True)
class Transaction:
    """One PCIe interaction, possibly amortised over several packets.

    Attributes:
        kind: the transaction kind.
        size: bytes moved by the operation (0 allowed, e.g. a suppressed op).
        per_packets: how many packets share one instance of this operation.
            A doorbell written once per 40-packet descriptor batch has
            ``per_packets = 40``; a per-packet DMA has ``per_packets = 1``.
        label: free-form description used in reports.
    """

    kind: OpKind
    size: int
    per_packets: float = 1.0
    label: str = ""

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValidationError(f"transaction size must be >= 0, got {self.size}")
        if self.per_packets <= 0:
            raise ValidationError(
                f"per_packets must be positive, got {self.per_packets}"
            )

    def wire_bytes(self, config: PCIeConfig) -> DirectionalBytes:
        """Bytes on the wire for one instance of this transaction."""
        return _WIRE_FUNCTIONS[self.kind](self.size, config)

    def wire_bytes_per_packet(self, config: PCIeConfig) -> tuple[float, float]:
        """Average bytes per packet in each direction, after amortisation.

        Returns a ``(device_to_host, host_to_device)`` tuple of floats: a
        transaction shared by N packets contributes 1/N of its wire bytes to
        every packet.
        """
        wire = self.wire_bytes(config)
        return (
            wire.device_to_host / self.per_packets,
            wire.host_to_device / self.per_packets,
        )


@dataclass(frozen=True)
class TransactionSequence:
    """A named collection of transactions performed per packet (amortised)."""

    name: str
    transactions: tuple[Transaction, ...]

    def per_packet_wire_bytes(self, config: PCIeConfig) -> tuple[float, float]:
        """Total average wire bytes per packet in each direction."""
        up = 0.0
        down = 0.0
        for transaction in self.transactions:
            d2h, h2d = transaction.wire_bytes_per_packet(config)
            up += d2h
            down += h2d
        return up, down

    def describe(self, config: PCIeConfig) -> list[dict[str, object]]:
        """Tabular description of every transaction's per-packet cost."""
        rows = []
        for transaction in self.transactions:
            d2h, h2d = transaction.wire_bytes_per_packet(config)
            rows.append(
                {
                    "label": transaction.label or transaction.kind.value,
                    "kind": transaction.kind.value,
                    "size": transaction.size,
                    "per_packets": transaction.per_packets,
                    "device_to_host_bytes_per_packet": round(d2h, 2),
                    "host_to_device_bytes_per_packet": round(h2d, 2),
                }
            )
        return rows


# Sizes used by the paper's NIC interaction walk-through (Section 3).
DESCRIPTOR_BYTES = 16
POINTER_BYTES = 4
INTERRUPT_BYTES = 4


def tx_transactions(
    packet_size: int,
    *,
    descriptor_batch: float = 1.0,
    writeback_batch: float = 1.0,
    doorbell_batch: float = 1.0,
    interrupt_moderation: float = 1.0,
    interrupts_enabled: bool = True,
    pointer_reads_enabled: bool = True,
    descriptor_writeback: bool = False,
) -> list[Transaction]:
    """Transactions for transmitting one packet (amortised by batching factors).

    The defaults (all batch factors of 1, interrupts on, pointer reads on)
    describe the paper's *Simple NIC*.

    Args:
        packet_size: Ethernet frame size DMAed from the host.
        descriptor_batch: packets sharing one descriptor-fetch DMA.
        writeback_batch: packets sharing one descriptor write-back DMA (only
            used when ``descriptor_writeback`` is true).
        doorbell_batch: packets sharing one TX tail-pointer doorbell write.
        interrupt_moderation: packets sharing one completion interrupt.
        interrupts_enabled: whether completion interrupts are generated.
        pointer_reads_enabled: whether the driver reads the TX head pointer.
        descriptor_writeback: whether the device writes TX descriptors back
            to host memory (modern NICs write back; the simple NIC relies on
            the head pointer read instead).
    """
    _check_packet(packet_size)
    transactions = [
        Transaction(
            OpKind.MMIO_WRITE, POINTER_BYTES, doorbell_batch, "TX doorbell write"
        ),
        Transaction(
            OpKind.DMA_READ,
            int(DESCRIPTOR_BYTES * descriptor_batch),
            descriptor_batch,
            "TX descriptor fetch",
        ),
        Transaction(OpKind.DMA_READ, packet_size, 1.0, "TX packet fetch"),
    ]
    if descriptor_writeback:
        transactions.append(
            Transaction(
                OpKind.DMA_WRITE,
                int(DESCRIPTOR_BYTES * writeback_batch),
                writeback_batch,
                "TX descriptor write-back",
            )
        )
    if interrupts_enabled:
        transactions.append(
            Transaction(
                OpKind.DMA_WRITE, INTERRUPT_BYTES, interrupt_moderation, "TX interrupt"
            )
        )
    if pointer_reads_enabled:
        transactions.append(
            Transaction(
                OpKind.MMIO_READ,
                POINTER_BYTES,
                interrupt_moderation,
                "TX head pointer read",
            )
        )
    return transactions


def rx_transactions(
    packet_size: int,
    *,
    freelist_batch: float = 1.0,
    writeback_batch: float = 1.0,
    tail_update_batch: float = 1.0,
    interrupt_moderation: float = 1.0,
    interrupts_enabled: bool = True,
    pointer_reads_enabled: bool = True,
) -> list[Transaction]:
    """Transactions for receiving one packet (amortised by batching factors).

    Follows the paper's receive walk-through: freelist tail update, freelist
    descriptor fetch, packet DMA write, RX descriptor write-back, interrupt,
    RX head pointer read.
    """
    _check_packet(packet_size)
    transactions = [
        Transaction(
            OpKind.MMIO_WRITE,
            POINTER_BYTES,
            tail_update_batch,
            "RX freelist tail update",
        ),
        Transaction(
            OpKind.DMA_READ,
            int(DESCRIPTOR_BYTES * freelist_batch),
            freelist_batch,
            "RX freelist descriptor fetch",
        ),
        Transaction(OpKind.DMA_WRITE, packet_size, 1.0, "RX packet delivery"),
        Transaction(
            OpKind.DMA_WRITE,
            int(DESCRIPTOR_BYTES * writeback_batch),
            writeback_batch,
            "RX descriptor write-back",
        ),
    ]
    if interrupts_enabled:
        transactions.append(
            Transaction(
                OpKind.DMA_WRITE, INTERRUPT_BYTES, interrupt_moderation, "RX interrupt"
            )
        )
    if pointer_reads_enabled:
        transactions.append(
            Transaction(
                OpKind.MMIO_READ,
                POINTER_BYTES,
                interrupt_moderation,
                "RX head pointer read",
            )
        )
    return transactions


def _check_packet(packet_size: int) -> None:
    if packet_size <= 0:
        raise ValidationError(f"packet size must be positive, got {packet_size}")
