"""PCIe endpoint configuration: link plus negotiated transaction parameters.

A device's effective bandwidth depends not only on the link (generation and
lane count) but on parameters negotiated between the endpoint and the root
complex: the Maximum Payload Size (MPS), the Maximum Read Request Size (MRRS),
the Read Completion Boundary (RCB), and whether 64-bit addressing and ECRC
digests are in use.  The paper's reference configuration is Gen 3 x8 with
MPS = 256 B and MRRS = 512 B and 64-bit addressing (Section 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..errors import ValidationError
from .link import GEN3_X8, LinkConfig, PCIeGeneration
from .tlp import DEFAULT_RCB_BYTES

#: Payload sizes allowed by the PCIe specification.
VALID_MPS_VALUES = (128, 256, 512, 1024, 2048, 4096)
#: Read request sizes allowed by the PCIe specification.
VALID_MRRS_VALUES = (128, 256, 512, 1024, 2048, 4096)
#: Read completion boundaries allowed by the PCIe specification.
VALID_RCB_VALUES = (64, 128)


@dataclass(frozen=True)
class PCIeConfig:
    """Complete description of a PCIe endpoint's transaction-level behaviour.

    Attributes:
        link: the physical link configuration (generation, lanes).
        mps: Maximum Payload Size in bytes; bounds MWr and CplD payloads.
        mrrs: Maximum Read Request Size in bytes; bounds the amount of data a
            single MRd may request.
        rcb: Read Completion Boundary in bytes.
        addr64: whether memory request TLPs carry 64-bit addresses (12-byte
            type-specific header) or 32-bit addresses (8-byte header).
        ecrc: whether the optional 4-byte end-to-end CRC digest is appended.
        tag_limit: maximum number of outstanding (tagged) read requests the
            endpoint may have in flight; 32 or 64 for classic tags, 256 with
            extended tags enabled.
    """

    link: LinkConfig = field(default_factory=lambda: GEN3_X8)
    mps: int = 256
    mrrs: int = 512
    rcb: int = DEFAULT_RCB_BYTES
    addr64: bool = True
    ecrc: bool = False
    tag_limit: int = 256

    def __post_init__(self) -> None:
        if self.mps not in VALID_MPS_VALUES:
            raise ValidationError(
                f"MPS must be one of {VALID_MPS_VALUES}, got {self.mps}"
            )
        if self.mrrs not in VALID_MRRS_VALUES:
            raise ValidationError(
                f"MRRS must be one of {VALID_MRRS_VALUES}, got {self.mrrs}"
            )
        if self.rcb not in VALID_RCB_VALUES:
            raise ValidationError(
                f"RCB must be one of {VALID_RCB_VALUES}, got {self.rcb}"
            )
        if self.tag_limit <= 0:
            raise ValidationError(f"tag_limit must be positive, got {self.tag_limit}")

    # -- convenience accessors -------------------------------------------------

    @property
    def generation(self) -> PCIeGeneration:
        """The link's PCIe generation."""
        return self.link.generation

    @property
    def lanes(self) -> int:
        """The link's lane count."""
        return self.link.lanes

    @property
    def tlp_bandwidth_gbps(self) -> float:
        """Per-direction transaction layer bandwidth in Gb/s."""
        return self.link.tlp_bandwidth_gbps

    @property
    def physical_bandwidth_gbps(self) -> float:
        """Per-direction physical layer bandwidth in Gb/s."""
        return self.link.physical_bandwidth_gbps

    def with_(self, **changes: object) -> "PCIeConfig":
        """Return a copy of this configuration with selected fields replaced."""
        return replace(self, **changes)  # type: ignore[arg-type]

    def describe(self) -> str:
        """One-line human readable description."""
        return (
            f"{self.link.name}, MPS={self.mps}B, MRRS={self.mrrs}B, "
            f"RCB={self.rcb}B, {'64' if self.addr64 else '32'}-bit addressing"
            f"{', ECRC' if self.ecrc else ''}"
        )


#: Configuration used throughout the paper's evaluation: Gen3 x8, MPS 256,
#: MRRS 512, 64-bit addressing (Section 3, Figure 1 and Section 6).
PAPER_DEFAULT_CONFIG = PCIeConfig()

#: A typical 100G NIC configuration for comparison experiments.
GEN3_X16_CONFIG = PCIeConfig(link=LinkConfig(PCIeGeneration.GEN3, 16))

#: Forward-looking Gen4 configuration mentioned in the paper's future work.
GEN4_X8_CONFIG = PCIeConfig(link=LinkConfig(PCIeGeneration.GEN4, 8))


def config_presets() -> dict[str, PCIeConfig]:
    """Named configuration presets usable from the CLI and examples."""
    return {
        "gen3x8": PAPER_DEFAULT_CONFIG,
        "gen3x16": GEN3_X16_CONFIG,
        "gen4x8": GEN4_X8_CONFIG,
        "gen4x16": PCIeConfig(link=LinkConfig(PCIeGeneration.GEN4, 16)),
        "gen2x8": PCIeConfig(link=LinkConfig(PCIeGeneration.GEN2, 8), mps=256),
        "gen1x4": PCIeConfig(link=LinkConfig(PCIeGeneration.GEN1, 4), mps=128),
    }


def get_config(name: str) -> PCIeConfig:
    """Look up a configuration preset by name (case-insensitive)."""
    presets = config_presets()
    key = name.strip().lower().replace(" ", "").replace("_", "")
    if key not in presets:
        raise ValidationError(
            f"unknown PCIe config preset {name!r}; "
            f"known presets: {', '.join(sorted(presets))}"
        )
    return presets[key]
