"""Analytical PCIe model — the paper's primary modelling contribution (§3).

Public surface:

* :class:`~repro.core.config.PCIeConfig` and :class:`~repro.core.link.LinkConfig`
  describe a PCIe endpoint.
* :mod:`repro.core.bandwidth` implements equations (1)-(3) and the effective
  bandwidth curves.
* :mod:`repro.core.nic` implements the Figure 1 device/driver interaction
  models.
* :class:`~repro.core.model.PCIeModel` is the convenience façade.
"""

from .bandwidth import (
    DirectionalBytes,
    dma_read_wire_bytes,
    dma_write_wire_bytes,
    effective_bidirectional_bandwidth_gbps,
    effective_read_bandwidth_gbps,
    effective_write_bandwidth_gbps,
)
from .config import PAPER_DEFAULT_CONFIG, PCIeConfig, get_config
from .ethernet import ETHERNET_40G, ETHERNET_100G, EthernetLink
from .latency import LatencyComponents, LatencyModel
from .link import GEN3_X8, GEN3_X16, GEN4_X8, Encoding, LinkConfig, PCIeGeneration
from .model import FIGURE1_SIZES, FIGURE4_SIZES, PCIeModel
from .nic import (
    FIGURE1_MODELS,
    MODERN_NIC_DPDK,
    MODERN_NIC_KERNEL,
    SIMPLE_NIC,
    NicModel,
    model_by_name,
)
from .tlp import Tlp, TlpType, tlp_overhead_bytes
from .transactions import OpKind, Transaction, TransactionSequence

__all__ = [
    "DirectionalBytes",
    "dma_read_wire_bytes",
    "dma_write_wire_bytes",
    "effective_bidirectional_bandwidth_gbps",
    "effective_read_bandwidth_gbps",
    "effective_write_bandwidth_gbps",
    "PAPER_DEFAULT_CONFIG",
    "PCIeConfig",
    "get_config",
    "ETHERNET_40G",
    "ETHERNET_100G",
    "EthernetLink",
    "LatencyComponents",
    "LatencyModel",
    "GEN3_X8",
    "GEN3_X16",
    "GEN4_X8",
    "Encoding",
    "LinkConfig",
    "PCIeGeneration",
    "FIGURE1_SIZES",
    "FIGURE4_SIZES",
    "PCIeModel",
    "FIGURE1_MODELS",
    "MODERN_NIC_DPDK",
    "MODERN_NIC_KERNEL",
    "SIMPLE_NIC",
    "NicModel",
    "model_by_name",
    "Tlp",
    "TlpType",
    "tlp_overhead_bytes",
    "OpKind",
    "Transaction",
    "TransactionSequence",
]
