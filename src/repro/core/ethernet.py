"""Ethernet line-rate arithmetic.

The paper repeatedly compares PCIe throughput against what "40Gb/s Ethernet"
requires: the *40G Ethernet* curve in Figures 1 and 4 is the payload
throughput a 40 Gb/s link delivers for a given frame size once preamble,
start-of-frame delimiter and inter-frame gap are accounted for, and the
inter-packet arrival time (~30 ns for 128 B frames at 40 Gb/s) drives the
in-flight DMA sizing argument of Sections 2 and 7.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ValidationError

#: Preamble plus start-of-frame delimiter, bytes on the wire per frame.
PREAMBLE_SFD_BYTES = 8
#: Minimum inter-frame gap, bytes on the wire per frame.
INTER_FRAME_GAP_BYTES = 12
#: Per-frame wire overhead that never reaches the host.
WIRE_OVERHEAD_BYTES = PREAMBLE_SFD_BYTES + INTER_FRAME_GAP_BYTES
#: Frame check sequence carried at the end of every frame.
FCS_BYTES = 4
#: Smallest legal Ethernet frame (including FCS).
MIN_FRAME_BYTES = 64
#: Largest standard (non-jumbo) Ethernet frame (including FCS).
MAX_FRAME_BYTES = 1518


@dataclass(frozen=True)
class EthernetLink:
    """An Ethernet link characterised by its nominal line rate.

    Attributes:
        line_rate_gbps: nominal line rate in Gb/s (e.g. 10, 40, 100).
    """

    line_rate_gbps: float = 40.0

    def __post_init__(self) -> None:
        if self.line_rate_gbps <= 0:
            raise ValidationError(
                f"line rate must be positive, got {self.line_rate_gbps}"
            )

    def frame_throughput_gbps(self, frame_size: int) -> float:
        """Frame-data throughput (Gb/s) at line rate for a given frame size.

        ``frame_size`` counts the bytes a NIC must DMA (the frame including
        FCS); the wire additionally carries preamble and inter-frame gap.
        This is the *40G Ethernet* reference curve of Figures 1 and 4.
        """
        _check_frame(frame_size)
        wire_bytes = frame_size + WIRE_OVERHEAD_BYTES
        return self.line_rate_gbps * frame_size / wire_bytes

    def packet_rate_pps(self, frame_size: int) -> float:
        """Packets per second at line rate for a given frame size."""
        _check_frame(frame_size)
        wire_bits = (frame_size + WIRE_OVERHEAD_BYTES) * 8
        return self.line_rate_gbps * 1e9 / wire_bits

    def inter_packet_time_ns(self, frame_size: int) -> float:
        """Time budget per packet at line rate, in nanoseconds.

        For 128 B frames at 40 Gb/s this is about 29.6 ns, the figure the
        paper uses to argue a NIC must keep at least 30 DMAs in flight.
        """
        return 1e9 / self.packet_rate_pps(frame_size)

    def required_inflight_dmas(
        self, frame_size: int, dma_latency_ns: float, *, per_packet_dmas: int = 1
    ) -> int:
        """Minimum concurrent DMAs needed to hide ``dma_latency_ns`` at line rate.

        Section 7 works this out for the NFP6000-HSW system: 560-666 ns to
        move 128 B to the device against a 29.6 ns packet budget requires at
        least 30 in-flight transactions, more once descriptor DMAs are
        counted (``per_packet_dmas``).
        """
        if dma_latency_ns < 0:
            raise ValidationError(
                f"dma_latency_ns must be non-negative, got {dma_latency_ns}"
            )
        if per_packet_dmas <= 0:
            raise ValidationError(
                f"per_packet_dmas must be positive, got {per_packet_dmas}"
            )
        budget = self.inter_packet_time_ns(frame_size)
        import math

        return math.ceil(dma_latency_ns / budget) * per_packet_dmas


#: Convenience instances for the link speeds discussed in the paper.
ETHERNET_10G = EthernetLink(10.0)
ETHERNET_25G = EthernetLink(25.0)
ETHERNET_40G = EthernetLink(40.0)
ETHERNET_100G = EthernetLink(100.0)


def _check_frame(frame_size: int) -> None:
    if frame_size <= 0:
        raise ValidationError(f"frame size must be positive, got {frame_size}")
