"""Analysis helpers: text tables, ASCII plots and report generation."""

from .ascii_plot import ascii_plot
from .attribution import (
    attribute_spans,
    format_attribution_summary,
    stage_totals,
)
from .contention import (
    device_slowdowns,
    format_contention_summary,
    jain_fairness_index,
)
from .control import format_control_summary
from .fleet import (
    default_slo_thresholds,
    fleet_slo_fractions,
    format_fleet_summary,
)
from .report import experiments_markdown, summary_line, write_experiments_markdown
from .table import format_nicsim_summary, format_series_table, format_table

__all__ = [
    "ascii_plot",
    "attribute_spans",
    "format_attribution_summary",
    "stage_totals",
    "device_slowdowns",
    "format_contention_summary",
    "format_control_summary",
    "jain_fairness_index",
    "default_slo_thresholds",
    "fleet_slo_fractions",
    "format_fleet_summary",
    "experiments_markdown",
    "summary_line",
    "write_experiments_markdown",
    "format_nicsim_summary",
    "format_series_table",
    "format_table",
]
