"""Analysis helpers: text tables, ASCII plots and report generation."""

from .ascii_plot import ascii_plot
from .report import experiments_markdown, summary_line, write_experiments_markdown
from .table import format_nicsim_summary, format_series_table, format_table

__all__ = [
    "ascii_plot",
    "experiments_markdown",
    "summary_line",
    "write_experiments_markdown",
    "format_nicsim_summary",
    "format_series_table",
    "format_table",
]
