"""SLO analysis for rack-scale fleet runs.

Renders :meth:`repro.bench.fleet.FleetResult.as_dict` records (plain
dictionaries, so this module stays independent of the simulator) as a
per-host table plus the fleet's SLO scorecard: for each latency threshold,
the fraction of hosts whose victim tail latency breaks it — the language a
capacity planner speaks when comparing placement policies.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import AnalysisError
from .table import format_table


def _host_tail(host: dict, metric: str) -> float:
    latency = host.get("victim_latency") or {}
    if metric not in latency:
        raise AnalysisError(
            f"host {host.get('name')!r} has no {metric!r} latency statistic"
        )
    return float(latency[metric])


def fleet_slo_fractions(
    record: dict,
    thresholds_ns: Sequence[float],
    *,
    metric: str = "p99",
) -> dict[float, float]:
    """Fraction of hosts violating each SLO threshold.

    Args:
        record: a ``FleetResult.as_dict()`` output.
        thresholds_ns: latency thresholds to score.
        metric: which tail statistic to compare (``"p90"``/``"p99"``/
            ``"p99.9"`` keys of the serialised latency summary).

    Returns:
        ``{threshold: violating_fraction}`` in the given threshold order.
    """
    hosts = record.get("hosts") or []
    if not hosts:
        raise AnalysisError("fleet record has no hosts")
    fractions = {}
    for threshold in thresholds_ns:
        if threshold <= 0.0:
            raise AnalysisError(
                f"thresholds must be positive, got {threshold}"
            )
        violations = sum(
            1 for host in hosts if _host_tail(host, metric) > threshold
        )
        fractions[float(threshold)] = violations / len(hosts)
    return fractions


def default_slo_thresholds(record: dict) -> tuple[float, ...]:
    """Data-driven default thresholds spanning the rack's p99 spread.

    Quarter points between the best and worst host p99 (plus the ends),
    so the scorecard always shows where the violating fraction moves —
    whatever the latency scale of the scenario.
    """
    hosts = record.get("hosts") or []
    if not hosts:
        raise AnalysisError("fleet record has no hosts")
    tails = sorted(_host_tail(host, "p99") for host in hosts)
    low, high = tails[0], tails[-1]
    if high <= low:
        return (low,)
    return tuple(
        low + (high - low) * fraction for fraction in (0.0, 0.25, 0.5, 0.75, 1.0)
    )


def format_fleet_summary(
    record: dict,
    *,
    thresholds_ns: Sequence[float] | None = None,
    metric: str = "p99",
) -> str:
    """Text report of one fleet run: per-host table plus the SLO scorecard."""
    params = record.get("params") or {}
    hosts = record.get("hosts") or []
    if not hosts:
        raise AnalysisError("fleet record has no hosts")
    fleet_latency = record.get("fleet_latency") or {}

    title = (
        f"Fleet: {params.get('hosts')} hosts, "
        f"placement={params.get('placement')}, "
        f"tenants={params.get('tenants')} (zipf {params.get('tenant_skew')}), "
        f"profile={params.get('load_profile')}, "
        f"arbiter={params.get('arbiter')} on {params.get('system')}"
    )
    host_rows = []
    for host in hosts:
        latency = host.get("victim_latency") or {}
        load = host.get("aggressor_load_gbps")
        host_rows.append(
            [
                host.get("name"),
                "-" if load is None else f"{load:.1f}",
                f"{float(latency.get('median', 0.0)):.0f}",
                f"{_host_tail(host, 'p99'):.0f}",
                f"{_host_tail(host, 'p99.9'):.0f}",
                f"{float(host.get('victim_throughput_gbps', 0.0)):.2f}",
                host.get("victim_drops"),
            ]
        )
    sections = [
        format_table(
            [
                "host",
                "aggressor (Gb/s)",
                "victim median (ns)",
                "p99 (ns)",
                "p99.9 (ns)",
                "delivered (Gb/s)",
                "drops",
            ],
            host_rows,
            title=title,
        )
    ]

    if fleet_latency:
        sections.append(
            format_table(
                ["fleet metric", "ns"],
                [
                    [key, f"{float(value):.1f}"]
                    for key, value in fleet_latency.items()
                    if key not in ("count", "sketch")
                ]
                + [["count", fleet_latency.get("count")]],
                title="Rack-wide victim latency (merged sketches)",
            )
        )

    if thresholds_ns is None:
        thresholds_ns = default_slo_thresholds(record)
    fractions = fleet_slo_fractions(record, thresholds_ns, metric=metric)
    slo_rows = [
        [
            f"{threshold:.0f}",
            f"{fraction * 100.0:.0f}%",
            f"{round(fraction * len(hosts))}/{len(hosts)}",
        ]
        for threshold, fraction in fractions.items()
    ]
    sections.append(
        format_table(
            [f"SLO: {metric} < (ns)", "violating", "hosts"],
            slo_rows,
            title="SLO scorecard",
        )
    )
    return "\n\n".join(sections)
