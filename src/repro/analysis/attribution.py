"""Latency attribution from transaction-level span traces.

Decomposes the end-to-end latency distribution recorded by a
:class:`repro.obs.Tracer` into its per-stage components: for every traced
device, how much of the p50 and of the p99 tail each lifecycle stage
(ring admission, descriptor issue, payload DMA, completion delivery)
contributed, plus the arbitration-wait and IOMMU-walker service totals
recorded against the host resources.  This is the analysis behind
``pcie-bench nicsim --trace`` / ``contend --trace`` and the
``figure-14-attribution`` experiment.

The four packet stages are *contiguous* — they telescope, so summing a
packet's stage durations reproduces its end-to-end latency exactly.  The
resource spans (``arb:*``, ``walker``, ``op:*``) overlap the packet
stages and are reported as totals, not added to them.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from ..errors import AnalysisError
from ..obs.trace import ARB_PREFIX, PACKET_STAGES, STAGE_WALKER, Span
from .table import format_table


def attribute_spans(spans: Iterable[Span]) -> list[dict]:
    """Per-device latency attribution records from a span stream.

    Groups the packet-stage spans (``ring`` / ``issue`` / ``payload`` /
    ``completion``) by ``(device, lane, packet)``; only packets whose
    trace is *complete* — all four stages present, so flight-recorder
    eviction cannot skew the distribution — contribute.

    Returns one record per device (sorted by name)::

        {
            "device": str,
            "packets": int,          # complete traced packets
            "p50_ns": float,         # end-to-end latency percentiles
            "p99_ns": float,
            "mean_ns": float,
            "stages": {stage: {"mean_ns": float, "share": float}},
            "tail_stages": {...},    # same, over packets >= p99 only
            "arb_wait_ns": float,    # total arbitration wait (arb:*)
            "walker_ns": float,      # total IOMMU walker service time
        }

    ``share`` is the stage's fraction of the mean end-to-end latency in
    that population (shares sum to 1 by the telescoping property).
    """
    packet_stage_set = frozenset(PACKET_STAGES)
    per_packet: dict[tuple[str, str, int], dict[str, float]] = {}
    arb_wait: dict[str, float] = {}
    walker: dict[str, float] = {}
    for span in spans:
        if span.stage in packet_stage_set and span.packet >= 0:
            key = (span.device, span.lane, span.packet)
            per_packet.setdefault(key, {})[span.stage] = span.duration_ns
        elif span.stage.startswith(ARB_PREFIX):
            arb_wait[span.device] = (
                arb_wait.get(span.device, 0.0) + span.duration_ns
            )
        elif span.stage == STAGE_WALKER:
            walker[span.device] = (
                walker.get(span.device, 0.0) + span.duration_ns
            )

    by_device: dict[str, list[dict[str, float]]] = {}
    for (device, _lane, _packet), stages in per_packet.items():
        if len(stages) == len(PACKET_STAGES):
            by_device.setdefault(device, []).append(stages)

    devices = sorted(set(by_device) | set(arb_wait) | set(walker))
    records = []
    for device in devices:
        complete = by_device.get(device, [])
        record: dict = {
            "device": device,
            "packets": len(complete),
            "arb_wait_ns": arb_wait.get(device, 0.0),
            "walker_ns": walker.get(device, 0.0),
        }
        if complete:
            matrix = np.array(
                [
                    [stages[stage] for stage in PACKET_STAGES]
                    for stages in complete
                ]
            )
            totals = matrix.sum(axis=1)
            p99 = float(np.percentile(totals, 99.0))
            record["p50_ns"] = float(np.percentile(totals, 50.0))
            record["p99_ns"] = p99
            record["mean_ns"] = float(totals.mean())
            record["stages"] = _stage_breakdown(matrix, totals)
            tail = matrix[totals >= p99]
            record["tail_stages"] = _stage_breakdown(
                tail, totals[totals >= p99]
            )
        records.append(record)
    return records


def _stage_breakdown(
    matrix: np.ndarray, totals: np.ndarray
) -> dict[str, dict[str, float]]:
    """Mean duration and latency share of each packet stage."""
    means = matrix.mean(axis=0)
    total_mean = float(totals.mean())
    return {
        stage: {
            "mean_ns": float(means[index]),
            "share": (
                float(means[index]) / total_mean if total_mean > 0.0 else 0.0
            ),
        }
        for index, stage in enumerate(PACKET_STAGES)
    }


def stage_totals(
    spans: Iterable[Span], *, device: str | None = None
) -> dict[str, float]:
    """Total recorded duration per stage label, optionally for one device.

    Resource stages keep their full labels (``arb:walker@root``,
    ``walker``, ``op:TX doorbell write`` ...), so callers can separate
    per-hop arbitration waits from walker service time.
    """
    totals: dict[str, float] = {}
    for span in spans:
        if device is not None and span.device != device:
            continue
        totals[span.stage] = totals.get(span.stage, 0.0) + span.duration_ns
    return totals


def format_attribution_summary(
    records: Sequence[Mapping], *, title: str = "Latency attribution"
) -> str:
    """Render :func:`attribute_spans` records as text tables.

    One distribution table (per-device p50/p99/mean plus resource
    totals), then a per-stage breakdown table decomposing the mean and
    the >= p99 tail of every device into stage shares.
    """
    if not records:
        raise AnalysisError("no attribution records to format")
    summary_rows = []
    stage_rows = []
    for record in records:
        device = record["device"]
        summary_rows.append(
            [
                device,
                record["packets"],
                record.get("p50_ns", float("nan")),
                record.get("p99_ns", float("nan")),
                record.get("mean_ns", float("nan")),
                record["arb_wait_ns"],
                record["walker_ns"],
            ]
        )
        for stage in PACKET_STAGES:
            stages = record.get("stages", {})
            tail = record.get("tail_stages", {})
            if stage not in stages:
                continue
            stage_rows.append(
                [
                    device,
                    stage,
                    stages[stage]["mean_ns"],
                    100.0 * stages[stage]["share"],
                    tail[stage]["mean_ns"],
                    100.0 * tail[stage]["share"],
                ]
            )
    out = format_table(
        [
            "device",
            "packets",
            "p50 (ns)",
            "p99 (ns)",
            "mean (ns)",
            "arb wait (ns)",
            "walker (ns)",
        ],
        summary_rows,
        title=title,
        float_format="{:.1f}",
    )
    if stage_rows:
        out += "\n\n" + format_table(
            [
                "device",
                "stage",
                "mean (ns)",
                "mean %",
                "tail mean (ns)",
                "tail %",
            ],
            stage_rows,
            title="Per-stage decomposition (mean and >= p99 tail)",
            float_format="{:.1f}",
        )
    return out
