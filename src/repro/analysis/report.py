"""Report generation: paper-vs-measured summaries (EXPERIMENTS.md).

Turns a list of :class:`~repro.experiments.base.ExperimentResult` objects
into a Markdown report recording, for every figure and table, which of the
paper's qualitative claims reproduce and what was measured.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Sequence

from ..errors import AnalysisError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a circular import
    from ..experiments.base import ExperimentResult


def experiments_markdown(results: Sequence["ExperimentResult"]) -> str:
    """Render results as the EXPERIMENTS.md document."""
    if not results:
        raise AnalysisError("no experiment results to report")
    lines = [
        "# EXPERIMENTS — paper vs. reproduction",
        "",
        "Reproduction of every table and figure in the evaluation of",
        '"Understanding PCIe performance for end host networking" (SIGCOMM 2018).',
        "All substrates are simulated (see DESIGN.md), so comparisons are about",
        "shape — who wins, where cliffs and crossovers fall, rough factors —",
        "never absolute numbers.",
        "",
        "## Summary",
        "",
        "| Experiment | Title | Checks passed |",
        "|---|---|---|",
    ]
    for result in results:
        lines.append(
            f"| {result.experiment_id} | {result.title} | {result.check_summary()} |"
        )
    lines.append("")

    for result in results:
        lines.append(f"## {result.experiment_id}: {result.title}")
        lines.append("")
        if result.checks:
            lines.append("| Status | Paper claim | Measured |")
            lines.append("|---|---|---|")
            for check in result.checks:
                lines.append(
                    f"| {check.status()} | {check.description} | {check.detail} |"
                )
            lines.append("")
        if result.table_rows and result.table_headers:
            lines.append("| " + " | ".join(result.table_headers) + " |")
            lines.append("|" + "---|" * len(result.table_headers))
            for row in result.table_rows:
                cells = [
                    f"{cell:.1f}" if isinstance(cell, float) else str(cell)
                    for cell in row
                ]
                lines.append("| " + " | ".join(cells) + " |")
            lines.append("")
        if result.series:
            lines.append(
                f"Series: {', '.join(result.series)} over {result.x_label} "
                f"({result.y_label})."
            )
            lines.append("")
        for note in result.notes:
            lines.append(f"*Note: {note}*")
            lines.append("")
    return "\n".join(lines)


def write_experiments_markdown(
    results: Sequence["ExperimentResult"], path: str | Path
) -> Path:
    """Write :func:`experiments_markdown` output to a file."""
    path = Path(path)
    path.write_text(experiments_markdown(results))
    return path


def summary_line(results: Sequence["ExperimentResult"]) -> str:
    """One-line overall summary, e.g. ``"10 experiments, 52/55 checks passed"``."""
    total_checks = sum(len(result.checks) for result in results)
    passed = sum(result.passed_checks for result in results)
    return f"{len(results)} experiments, {passed}/{total_checks} checks passed"
