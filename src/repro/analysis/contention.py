"""Victim/aggressor analysis for shared-host contention runs.

Renders :meth:`repro.sim.fabric.ContentionResult.as_dict` records (plain
dictionaries, so this module stays independent of the simulator) as
per-device tables, computes *slowdowns* against solo baselines and the
Jain fairness index over them — the quantitative language of the §7
noisy-neighbour question: who got how much of the shared host, and how
unfairly.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import AnalysisError
from .table import format_table


def jain_fairness_index(values: Sequence[float]) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``.

    1.0 means perfectly equal allocations; ``1/n`` means one party took
    everything.  Negative allocations are invalid; an empty or all-zero
    allocation (nothing was distributed) is perfectly fair by convention.
    Infinite allocations (a fully starved device's slowdown) take the
    limit: with k of n values infinite the index tends to ``k/n``.
    """
    allocations = [float(value) for value in values]
    if any(value < 0 for value in allocations):
        raise AnalysisError(
            f"allocations must be non-negative, got {allocations}"
        )
    infinite = sum(1 for value in allocations if value == float("inf"))
    if infinite:
        return infinite / len(allocations)
    square_sum = sum(value * value for value in allocations)
    if not allocations or square_sum == 0.0:
        return 1.0
    total = sum(allocations)
    return (total * total) / (len(allocations) * square_sum)


def device_slowdowns(
    record: dict, solo: dict[str, dict]
) -> dict[str, dict[str, float]]:
    """Per-device slowdown factors of a contended run against solo runs.

    Args:
        record: a ``ContentionResult.as_dict()`` output.
        solo: per-device-name ``NicSimResult.as_dict()`` baselines
            (each device running the identical workload on an identical
            but private host).

    Returns:
        Per device name: ``p99`` (contended p99 / solo p99, from the TX
        latency distribution) and ``throughput`` (solo Gb/s / contended
        Gb/s, from the RX path when present — RX tail-drops are how a
        contended host turns into packet loss — else TX).  Both are >= 1
        when sharing hurt and ~1 when it did not.
    """
    slowdowns: dict[str, dict[str, float]] = {}
    for device in record["devices"]:
        name = device["name"]
        baseline = solo.get(name)
        if baseline is None:
            continue
        contended = device["result"]
        slowdowns[name] = {
            "p99": _ratio(
                _tx_p99(contended), _tx_p99(baseline)
            ),
            "throughput": _ratio(
                _delivery_gbps(baseline), _delivery_gbps(contended)
            ),
        }
    return slowdowns


def _tx_p99(result: dict) -> float:
    latency = result["tx"].get("latency_ns") or {}
    return float(latency.get("p99", 0.0))


def _delivery_gbps(result: dict) -> float:
    path = result.get("rx") or result["tx"]
    return float(path["throughput_gbps"])


def _ratio(numerator: float, denominator: float) -> float:
    if denominator <= 0.0:
        # A starved metric (contended throughput of 0, say) is the worst
        # case, not a no-op: report an infinite slowdown.  Only a 0/0
        # (both runs delivered nothing) is genuinely neutral.
        return 1.0 if numerator <= 0.0 else float("inf")
    return numerator / denominator


def format_topology_comparison(
    records: Sequence[tuple[str, dict]],
    solo: dict[str, dict],
    *,
    title: str | None = None,
) -> str:
    """Slowdown-vs-topology table over several contention records.

    Args:
        records: ``(scenario label, ContentionResult.as_dict())`` pairs —
            typically the same device mix run under different fabric
            shapes (flat, shared switch, own root port, partitioned,
            sliced ...).
        solo: per-device-name solo baselines
            (``NicSimResult.as_dict()``), as for :func:`device_slowdowns`.

    Returns:
        One row per (scenario, device) with the fabric depth, the
        device's slowdown factors, and the scenario's Jain fairness index
        over p99 slowdowns — how much isolation each topology buys, in
        one table.
    """
    if not records:
        raise AnalysisError("no contention records to compare")
    rows = []
    for label, record in records:
        slowdowns = device_slowdowns(record, solo)
        if not slowdowns:
            raise AnalysisError(
                f"scenario {label!r} shares no device names with the solo "
                "baselines"
            )
        fairness = jain_fairness_index(
            [factors["p99"] for factors in slowdowns.values()]
        )
        depth = int(record.get("topology_depth", 1))
        for index, (name, factors) in enumerate(slowdowns.items()):
            rows.append(
                [
                    label if index == 0 else "",
                    depth if index == 0 else "",
                    name,
                    factors["throughput"],
                    factors["p99"],
                    f"{fairness:.3f}" if index == 0 else "",
                ]
            )
    return format_table(
        [
            "scenario",
            "depth",
            "device",
            "throughput slowdown",
            "p99 slowdown",
            "Jain (p99)",
        ],
        rows,
        title=title or "Slowdown vs solo across fabric topologies",
        float_format="{:.2f}",
    )


def format_contention_summary(
    record: dict,
    *,
    solo: dict[str, dict] | None = None,
    title: str | None = None,
) -> str:
    """Render one contention record as per-device text tables.

    The main table gives each device's delivered throughput, drops, TX
    latency percentiles and its arbitration counters (ingress/walker
    queueing); when ``solo`` baselines are supplied a second table adds
    the slowdown factors and the Jain fairness index over them (fair
    sharing means every device slows down *equally*).
    """
    devices = record.get("devices")
    if not devices:
        raise AnalysisError("no devices in the contention record")
    header = (
        f"shared host {record['system']}, arbiter {record['arbiter']}"
        + (
            " (weights "
            + ":".join(f"{weight:g}" for weight in record["weights"])
            + ")"
            if record.get("weights") and len(set(record["weights"])) > 1
            else ""
        )
    )
    rows = []
    for device in devices:
        result = device["result"]
        latency = result["tx"].get("latency_ns") or {}
        ingress = device.get("ingress") or {}
        walker = device.get("walker") or {}
        rows.append(
            [
                device["name"],
                result["model"],
                result["workload"],
                _delivery_gbps(result),
                result["tx"]["drops"] + (result.get("rx") or {}).get("drops", 0),
                latency.get("median", "-"),
                latency.get("p99", "-"),
                ingress.get("wait_ns_mean", "-"),
                walker.get("wait_ns_mean", "-"),
            ]
        )
    rendered = format_table(
        [
            "device",
            "model",
            "workload",
            "Gb/s",
            "drops",
            "p50 (ns)",
            "p99 (ns)",
            "ingress wait (ns)",
            "walker wait (ns)",
        ],
        rows,
        title=title or f"Contention run: {header}",
        float_format="{:.1f}",
    )
    if solo:
        slowdowns = device_slowdowns(record, solo)
        if slowdowns:
            slowdown_rows = [
                [
                    name,
                    factors["throughput"],
                    factors["p99"],
                ]
                for name, factors in slowdowns.items()
            ]
            fairness = jain_fairness_index(
                [factors["p99"] for factors in slowdowns.values()]
            )
            slowdown_table = format_table(
                ["device", "throughput slowdown", "p99 slowdown"],
                slowdown_rows,
                title="Slowdown vs solo baseline (1.0 = unaffected)",
                float_format="{:.2f}",
            )
            rendered = (
                f"{rendered}\n\n{slowdown_table}\n"
                f"Jain fairness index over p99 slowdowns: {fairness:.3f} "
                "(1.0 = every device slows equally)"
            )
    return rendered
