"""Plain-text table rendering for experiment output.

The experiment drivers and the CLI print their results as fixed-width text
tables (no third-party dependencies), in the spirit of the paper's control
programs writing raw results for further processing.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..errors import AnalysisError


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
    float_format: str = "{:.2f}",
) -> str:
    """Render rows as a fixed-width text table.

    Args:
        headers: column headers.
        rows: sequences of cell values; floats are formatted with
            ``float_format``, everything else with ``str``.
        title: optional title printed above the table.
        float_format: format spec applied to float cells.

    Returns:
        The rendered table as a single string (no trailing newline).
    """
    materialised = [list(row) for row in rows]
    if not headers:
        raise AnalysisError("a table needs at least one column")
    for row in materialised:
        if len(row) != len(headers):
            raise AnalysisError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )

    def render(cell: object) -> str:
        if isinstance(cell, bool):
            return "yes" if cell else "no"
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    text_rows = [[render(cell) for cell in row] for row in materialised]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in text_rows))
        if text_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    separator = "-+-".join("-" * width for width in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(" | ".join(header.ljust(widths[i]) for i, header in enumerate(headers)))
    lines.append(separator)
    for row in text_rows:
        lines.append(" | ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def format_nicsim_summary(
    records: Sequence[dict],
    *,
    title: str | None = None,
) -> str:
    """Render NIC datapath simulation results as a per-direction table.

    ``records`` are :meth:`repro.sim.nicsim.NicSimResult.as_dict` outputs
    (plain dictionaries, so this module stays independent of the simulator).
    Each active direction becomes one row with throughput, drop, ring
    occupancy and latency-percentile columns.  Records from host-coupled
    runs (carrying a ``"host"`` block) additionally get a host-side
    counter table: cache hit rates split by region, IOTLB hit rate,
    page-walker stalls and the remote-NUMA fraction.  Multi-queue records
    (paths carrying a ``"queues"`` list) get a per-queue breakdown table,
    and records from bounded-tag runs (a ``"tags"`` block) a DMA tag-pool
    table showing how hard the pool was contended.
    """
    if not records:
        raise AnalysisError("no simulation results to format")
    headers = [
        "model",
        "workload",
        "dir",
        "Gb/s",
        "pkts/s",
        "delivered",
        "drops",
        "ring mean",
        "ring max",
        "p50 (ns)",
        "p99 (ns)",
        "p99.9 (ns)",
    ]
    rows = []
    for record in records:
        for direction in ("tx", "rx"):
            path = record.get(direction)
            if path is None:
                continue
            ring = path["ring"]
            latency = path.get("latency_ns") or {}
            rows.append(
                [
                    record["model"],
                    record["workload"],
                    direction.upper(),
                    path["throughput_gbps"],
                    path["packet_rate_pps"],
                    path["delivered_packets"],
                    path["drops"],
                    ring["mean_occupancy"],
                    ring["max_occupancy"],
                    latency.get("median", "-"),
                    latency.get("p99", "-"),
                    latency.get("p99.9", "-"),
                ]
            )
    rendered = format_table(headers, rows, title=title, float_format="{:.1f}")
    queue_rows = []
    for record in records:
        for direction in ("tx", "rx"):
            path = record.get(direction)
            if path is None:
                continue
            for queue in path.get("queues") or ():
                ring = queue["ring"]
                latency = queue.get("latency_ns") or {}
                queue_rows.append(
                    [
                        record["model"],
                        record["workload"],
                        queue["direction"],
                        queue["throughput_gbps"],
                        queue["offered_packets"],
                        queue["delivered_packets"],
                        queue["drops"],
                        ring["mean_occupancy"],
                        ring["max_occupancy"],
                        latency.get("median", "-"),
                        latency.get("p99", "-"),
                    ]
                )
    if queue_rows:
        queue_table = format_table(
            [
                "model",
                "workload",
                "queue",
                "Gb/s",
                "offered",
                "delivered",
                "drops",
                "ring mean",
                "ring max",
                "p50 (ns)",
                "p99 (ns)",
            ],
            queue_rows,
            title="Per-queue breakdown",
            float_format="{:.1f}",
        )
        rendered = f"{rendered}\n\n{queue_table}"
    tag_rows = [
        [
            record["model"],
            record["workload"],
            tags["capacity"],
            tags["acquires"],
            tags["max_in_flight"],
            tags["waited"],
            tags["wait_ns_mean"],
        ]
        for record in records
        if (tags := record.get("tags")) is not None
    ]
    if tag_rows:
        tag_table = format_table(
            [
                "model",
                "workload",
                "tags",
                "DMAs",
                "peak in flight",
                "waited",
                "mean wait (ns)",
            ],
            tag_rows,
            title="DMA tag pool",
            float_format="{:.1f}",
        )
        rendered = f"{rendered}\n\n{tag_table}"
    host_rows = [
        [
            record["model"],
            record["workload"],
            100.0 * host["payload_cache_hit_rate"],
            100.0 * host["descriptor_cache_hit_rate"],
            100.0 * host["iotlb_hit_rate"],
            host["walker_stall_ns_mean"],
            100.0 * host["remote_fraction"],
            host["writebacks"],
        ]
        for record in records
        if (host := record.get("host")) is not None
    ]
    if host_rows:
        host_table = format_table(
            [
                "model",
                "workload",
                "payload hit %",
                "desc hit %",
                "IOTLB hit %",
                "walker stall (ns)",
                "remote %",
                "writebacks",
            ],
            host_rows,
            title="Host-side counters",
            float_format="{:.1f}",
        )
        rendered = f"{rendered}\n\n{host_table}"
    return rendered


def format_series_table(
    series: dict[str, list[tuple[float, float]]],
    *,
    x_label: str = "x",
    title: str | None = None,
    float_format: str = "{:.2f}",
) -> str:
    """Render multiple ``(x, y)`` series sharing an x-axis as one table.

    Series are aligned on their x values; missing points render as ``-``.
    This matches how the paper's figures present several curves over the
    same transfer-size or window-size axis.
    """
    if not series:
        raise AnalysisError("no series to format")
    xs: list[float] = sorted({x for points in series.values() for x, _ in points})
    lookup = {
        name: {x: y for x, y in points} for name, points in series.items()
    }
    headers = [x_label, *series.keys()]
    rows = []
    for x in xs:
        row: list[object] = [int(x) if float(x).is_integer() else x]
        for name in series:
            value = lookup[name].get(x)
            row.append("-" if value is None else value)
        rows.append(row)
    return format_table(headers, rows, title=title, float_format=float_format)
