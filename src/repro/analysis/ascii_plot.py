"""Minimal ASCII line plots.

matplotlib is not available in this environment, so the examples and the CLI
render curves as character plots: good enough to see the saw-tooth of the
bandwidth model, the IOTLB cliff or the E3 latency tail directly in a
terminal.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..errors import AnalysisError

_MARKERS = "ox+*#@%&"


def ascii_plot(
    series: dict[str, list[tuple[float, float]]],
    *,
    width: int = 72,
    height: int = 20,
    title: str | None = None,
    x_label: str = "",
    y_label: str = "",
    logx: bool = False,
) -> str:
    """Render one or more ``(x, y)`` series as an ASCII plot.

    Args:
        series: mapping of legend label to points.
        width/height: plot area size in characters.
        title: optional title line.
        x_label / y_label: axis captions.
        logx: plot the x axis on a log scale (useful for window sweeps).

    Returns:
        The rendered plot as a multi-line string.
    """
    if not series:
        raise AnalysisError("nothing to plot")
    if width < 10 or height < 5:
        raise AnalysisError("plot area too small (need width >= 10, height >= 5)")

    def transform(x: float) -> float:
        if not logx:
            return x
        if x <= 0:
            raise AnalysisError("logx plots require positive x values")
        return math.log10(x)

    points = [
        (transform(x), y)
        for curve in series.values()
        for x, y in curve
    ]
    if not points:
        raise AnalysisError("all series are empty")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    if math.isclose(x_min, x_max):
        x_max = x_min + 1.0
    if math.isclose(y_min, y_max):
        y_max = y_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (label, curve) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in curve:
            tx = transform(x)
            column = round((tx - x_min) / (x_max - x_min) * (width - 1))
            row = round((y - y_min) / (y_max - y_min) * (height - 1))
            grid[height - 1 - row][column] = marker

    lines = []
    if title:
        lines.append(title)
    if y_label:
        lines.append(f"[y: {y_label}]")
    top_label = f"{y_max:.6g}"
    bottom_label = f"{y_min:.6g}"
    label_width = max(len(top_label), len(bottom_label))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(label_width)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix} |{''.join(row)}")
    x_axis = " " * label_width + " +" + "-" * width
    lines.append(x_axis)
    left = f"{(10 ** x_min if logx else x_min):.6g}"
    right = f"{(10 ** x_max if logx else x_max):.6g}"
    middle = x_label.center(width - len(left) - len(right))
    lines.append(" " * (label_width + 2) + left + middle + right)
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {label}" for i, label in enumerate(series)
    )
    lines.append("legend: " + legend)
    return "\n".join(lines)
