"""Rendering the control plane's audit trail.

A controlled contention run carries its policy name, window and the full
:class:`~repro.control.actions.ControlAction` log on its serialised
record; this module renders that log as a human-readable table — which
knob moved, when, from what to what, and the trigger that moved it.
Like the rest of :mod:`repro.analysis` it consumes plain dictionaries,
staying independent of the simulator.
"""

from __future__ import annotations

from ..errors import AnalysisError
from .table import format_table


def _format_vector(values: object) -> str:
    """Compact rendering of a knob value (weights, shares, or a table)."""
    if not isinstance(values, (list, tuple)):
        return str(values)
    if len(values) > 8:
        # RSS indirection tables are long; summarise as a histogram of
        # buckets per queue instead of printing 64 entries.
        counts: dict[int, int] = {}
        for entry in values:
            counts[int(entry)] = counts.get(int(entry), 0) + 1
        return (
            "{"
            + ", ".join(
                f"q{queue}:{count}" for queue, count in sorted(counts.items())
            )
            + "}"
        )
    return ":".join(f"{float(value):g}" for value in values)


def format_control_summary(record: dict, *, title: str | None = None) -> str:
    """Render one controlled run's action log as a text table.

    ``record`` is :meth:`~repro.sim.fabric.ContentionResult.as_dict`
    output.  Static runs (no controller) have nothing to summarise and
    are rejected; a controlled run that never actuated renders a header
    saying so.
    """
    controller = record.get("controller", "static")
    if controller == "static":
        raise AnalysisError(
            "no control plane in this record (controller='static'); "
            "nothing to summarise"
        )
    window = record.get("control_window_ns")
    actions = record.get("control_actions") or []
    header = (
        f"controller {controller}, window "
        f"{float(window) / 1000.0:g} us, {len(actions)} action(s)"
    )
    if not actions:
        return f"Control plane: {header} — no knob was retuned"
    rows = []
    for action in actions:
        rows.append(
            [
                f"{float(action['time_ns']) / 1000.0:.0f}",
                action["device"],
                action["actuator"],
                _format_vector(action["before"]),
                _format_vector(action["after"]),
                action["reason"],
            ]
        )
    return format_table(
        ["t (us)", "device", "actuator", "before", "after", "reason"],
        rows,
        title=title or f"Control plane: {header}",
    )
