"""Traffic workloads for the packet-level NIC datapath simulator.

Where :mod:`repro.core.nic` evaluates NIC/driver designs under an idealised
steady stream of equal packets, this package describes *traffic*: frame-size
distributions (fixed, uniform, trimodal, IMIX), arrival processes (smooth,
Poisson, bursty on/off) and offered load, combined into declarative
:class:`Workload` objects that :mod:`repro.sim.nicsim` replays packet by
packet.
"""

from .arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    PoissonArrivals,
    UniformArrivals,
)
from .sizes import IMIX, FixedSize, SizeDistribution, TrimodalSize, UniformSize
from .traffic import (
    SATURATING_LOAD_GBPS,
    WORKLOAD_FACTORIES,
    PacketSchedule,
    Workload,
    build_workload,
    bursty_imix_workload,
    bursty_workload,
    fixed_workload,
    imix_workload,
    poisson_workload,
    uniform_workload,
    workload_names,
)

__all__ = [
    "ArrivalProcess",
    "BurstyArrivals",
    "PoissonArrivals",
    "UniformArrivals",
    "IMIX",
    "FixedSize",
    "SizeDistribution",
    "TrimodalSize",
    "UniformSize",
    "SATURATING_LOAD_GBPS",
    "WORKLOAD_FACTORIES",
    "PacketSchedule",
    "Workload",
    "build_workload",
    "bursty_imix_workload",
    "bursty_workload",
    "fixed_workload",
    "imix_workload",
    "poisson_workload",
    "uniform_workload",
    "workload_names",
]
