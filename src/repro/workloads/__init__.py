"""Traffic workloads for the packet-level NIC datapath simulator.

Where :mod:`repro.core.nic` evaluates NIC/driver designs under an idealised
steady stream of equal packets, this package describes *traffic*: frame-size
distributions (fixed, uniform, trimodal, IMIX), arrival processes (smooth,
Poisson, bursty on/off), flow models labelling packets for RSS steering
(uniform, Zipf-skewed, single-hot-flow) and offered load, combined into
declarative :class:`Workload` objects that :mod:`repro.sim.nicsim` replays
packet by packet.  :mod:`repro.workloads.rss` supplies the deterministic
flow-to-queue hash multi-queue datapaths steer with.
"""

from .arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    PoissonArrivals,
    UniformArrivals,
)
from .flows import (
    FLOW_MODEL_FACTORIES,
    FlowModel,
    SingleHotFlow,
    UniformFlows,
    ZipfFlows,
    build_flow_model,
    canonical_flow_name,
    flow_model_names,
)
from .rss import rss_buckets, rss_queue, rss_queues
from .sizes import IMIX, FixedSize, SizeDistribution, TrimodalSize, UniformSize
from .traffic import (
    SATURATING_LOAD_GBPS,
    WORKLOAD_FACTORIES,
    Packet,
    PacketSchedule,
    Workload,
    build_workload,
    bursty_imix_workload,
    bursty_workload,
    fixed_workload,
    imix_workload,
    poisson_workload,
    uniform_workload,
    workload_names,
)

__all__ = [
    "ArrivalProcess",
    "BurstyArrivals",
    "PoissonArrivals",
    "UniformArrivals",
    "FLOW_MODEL_FACTORIES",
    "FlowModel",
    "SingleHotFlow",
    "UniformFlows",
    "ZipfFlows",
    "build_flow_model",
    "canonical_flow_name",
    "flow_model_names",
    "rss_buckets",
    "rss_queue",
    "rss_queues",
    "IMIX",
    "FixedSize",
    "SizeDistribution",
    "TrimodalSize",
    "UniformSize",
    "SATURATING_LOAD_GBPS",
    "WORKLOAD_FACTORIES",
    "Packet",
    "PacketSchedule",
    "Workload",
    "build_workload",
    "bursty_imix_workload",
    "bursty_workload",
    "fixed_workload",
    "imix_workload",
    "poisson_workload",
    "uniform_workload",
    "workload_names",
]
