"""RSS-style flow-to-queue steering.

Real NICs hash a flow key (Toeplitz over the 5-tuple, seeded by a random
key the driver programs at probe time) into an indirection table that picks
the RX/TX queue pair.  The simulator keeps the two properties that matter
for studying queue imbalance and drops everything else:

* **determinism per seed** — the same (flow, queue count, seed) triple
  always maps to the same queue, across runs, platforms and Python
  versions (the hash is pure 64-bit integer arithmetic, no ``hash()``);
* **avalanche** — nearby flow labels land on unrelated queues, so a flow
  model's popularity skew, not label locality, decides the imbalance.

The mix function is the splitmix64 finaliser, applied to the flow label
XOR a seed-derived constant; everything is vectorised over numpy uint64
(whose arithmetic wraps, exactly like the C it models).
"""

from __future__ import annotations

import numpy as np

from ..errors import ValidationError

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX_1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_2 = np.uint64(0x94D049BB133111EB)
_MASK = np.uint64(0xFFFFFFFFFFFFFFFF)


def _mix64(value: np.ndarray | np.uint64) -> np.ndarray | np.uint64:
    """The splitmix64 finaliser (full-avalanche 64-bit mix)."""
    with np.errstate(over="ignore"):
        value = (value + _GOLDEN) & _MASK
        value ^= value >> np.uint64(30)
        value = (value * _MIX_1) & _MASK
        value ^= value >> np.uint64(27)
        value = (value * _MIX_2) & _MASK
        value ^= value >> np.uint64(31)
    return value


def rss_queues(
    flows: np.ndarray, num_queues: int, *, seed: int = 0
) -> np.ndarray:
    """Map an array of flow labels to queue indices.

    Args:
        flows: integer flow labels (any non-negative integer dtype).
        num_queues: number of RX/TX queue pairs; must be positive.
        seed: RSS key seed; a different seed permutes the whole mapping
            (the driver reprogramming its Toeplitz key).

    Returns:
        int64 array of queue indices in ``[0, num_queues)``, same shape as
        ``flows``.
    """
    if num_queues <= 0:
        raise ValidationError(f"num_queues must be positive, got {num_queues}")
    labels = np.asarray(flows)
    if labels.size and labels.min() < 0:
        raise ValidationError("flow labels must be non-negative")
    if num_queues == 1:
        return np.zeros(labels.shape, dtype=np.int64)
    key = _mix64(np.uint64(seed & 0xFFFFFFFFFFFFFFFF))
    hashed = _mix64(labels.astype(np.uint64) ^ key)
    return (hashed % np.uint64(num_queues)).astype(np.int64)


def rss_queue(flow: int, num_queues: int, *, seed: int = 0) -> int:
    """Scalar convenience wrapper around :func:`rss_queues`."""
    return int(rss_queues(np.asarray([flow]), num_queues, seed=seed)[0])


def rss_buckets(
    flows: np.ndarray, buckets: int, *, seed: int = 0
) -> np.ndarray:
    """Map flow labels to indirection-table *buckets* (``hash % buckets``).

    Real NICs interpose a driver-writable indirection table between the
    hash and the queue: ``queue = table[hash % len(table)]``.  This is
    the ``hash % len(table)`` half, using the exact mix as
    :func:`rss_queues`, so ``table[b] = b % num_queues`` with
    ``num_queues | buckets`` reproduces the direct mapping bucket for
    bucket — the identity the static-RSS golden contract rests on — while
    any other table contents re-steer flows without touching the hash.
    """
    if buckets <= 0:
        raise ValidationError(f"buckets must be positive, got {buckets}")
    labels = np.asarray(flows)
    if labels.size and labels.min() < 0:
        raise ValidationError("flow labels must be non-negative")
    key = _mix64(np.uint64(seed & 0xFFFFFFFFFFFFFFFF))
    hashed = _mix64(labels.astype(np.uint64) ^ key)
    return (hashed % np.uint64(buckets)).astype(np.int64)
