"""Traffic workloads: size distribution + arrival process + offered load.

A :class:`Workload` is the declarative description of the traffic a NIC is
asked to move: what the packets look like (:mod:`repro.workloads.sizes`),
when they arrive (:mod:`repro.workloads.arrivals`), how hard the source
pushes (offered load per direction in Gb/s, or saturating), and whether the
traffic is full-duplex.  ``generate`` materialises a concrete, reproducible
:class:`PacketSchedule` for one direction from a seeded random source.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..errors import ValidationError
from ..units import bytes_over_time_to_gbps
from .arrivals import ArrivalProcess, BurstyArrivals, PoissonArrivals, UniformArrivals
from .flows import FlowModel
from .sizes import IMIX, FixedSize, SizeDistribution, TrimodalSize, UniformSize

#: Offered load used when a workload asks for saturation: comfortably above
#: anything a Gen3 x8 link can sustain (~52 Gb/s of payload), so the
#: datapath — not the source — is always the bottleneck.
SATURATING_LOAD_GBPS = 80.0


@dataclass(frozen=True)
class Packet:
    """One scheduled packet: when it arrives, how big it is, which flow.

    ``flow`` is the integer flow label RSS steering hashes to a queue
    (see :mod:`repro.workloads.rss`); schedules generated without a flow
    model put every packet on flow 0.
    """

    arrival_ns: float
    size: int
    flow: int = 0


@dataclass(frozen=True)
class PacketSchedule:
    """A concrete packet stream for one direction: arrival times, sizes, flows.

    ``flows`` is ``None`` for schedules generated without a flow model —
    the single-queue case, where steering never looks at the label.
    """

    arrival_times_ns: np.ndarray
    sizes: np.ndarray
    flows: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.arrival_times_ns.size != self.sizes.size:
            raise ValidationError(
                "arrival times and sizes must have equal length "
                f"({self.arrival_times_ns.size} != {self.sizes.size})"
            )
        if self.arrival_times_ns.size == 0:
            raise ValidationError("a schedule needs at least one packet")
        if self.flows is not None and self.flows.size != self.sizes.size:
            raise ValidationError(
                "flow labels and sizes must have equal length "
                f"({self.flows.size} != {self.sizes.size})"
            )

    @property
    def count(self) -> int:
        """Number of packets in the schedule."""
        return int(self.sizes.size)

    def packet(self, index: int) -> Packet:
        """The ``index``-th packet as a :class:`Packet` record."""
        return Packet(
            arrival_ns=float(self.arrival_times_ns[index]),
            size=int(self.sizes[index]),
            flow=int(self.flows[index]) if self.flows is not None else 0,
        )

    @property
    def payload_bytes(self) -> int:
        """Total payload carried by the schedule."""
        return int(self.sizes.sum())

    def offered_load_gbps(self) -> float:
        """Realised offered load of the schedule in Gb/s."""
        span = float(self.arrival_times_ns[-1] - self.arrival_times_ns[0])
        if span <= 0.0:
            raise ValidationError("schedule spans zero time")
        # Each gap precedes its packet and the first gap is normalised away,
        # so the span covers the source slots of packets 1..n-1; exclude the
        # first packet's bytes for an unbiased rate estimate.
        return bytes_over_time_to_gbps(int(self.sizes[1:].sum()), span)


def _stream(rng: object, name: str) -> np.random.Generator:
    """Accept either a :class:`~repro.sim.rng.SimRng` or a bare generator."""
    spawn = getattr(rng, "spawn", None)
    if callable(spawn):
        return spawn(name)
    if isinstance(rng, np.random.Generator):
        return rng
    raise ValidationError(
        f"rng must be a SimRng or numpy Generator, got {type(rng).__name__}"
    )


@dataclass(frozen=True)
class Workload:
    """Declarative description of a NIC traffic workload.

    Attributes:
        name: display name used in results and reports.
        sizes: per-packet frame size distribution.
        arrivals: arrival process shaping the packet gaps.
        offered_load_gbps: offered load per direction in Gb/s; ``None``
            means saturating (:data:`SATURATING_LOAD_GBPS`).
        duplex: whether traffic flows in both directions (one TX and one RX
            stream, the Figure 1 setting) or TX only.
        flows: optional flow model labelling each packet for RSS steering
            (required by multi-queue runs; ``None`` leaves schedules
            unlabelled, the single-queue case).
    """

    name: str
    sizes: SizeDistribution
    arrivals: ArrivalProcess
    offered_load_gbps: float | None = None
    duplex: bool = True
    flows: FlowModel | None = None

    def __post_init__(self) -> None:
        if self.offered_load_gbps is not None and self.offered_load_gbps <= 0:
            raise ValidationError(
                f"offered load must be positive, got {self.offered_load_gbps}"
            )

    @property
    def load_gbps(self) -> float:
        """Offered load per direction (saturating default applied)."""
        if self.offered_load_gbps is None:
            return SATURATING_LOAD_GBPS
        return self.offered_load_gbps

    @property
    def is_saturating(self) -> bool:
        """Whether the workload offers more than any Gen3 x8 path can carry."""
        return self.offered_load_gbps is None

    def with_(self, **changes: object) -> "Workload":
        """Return a variant of this workload with selected fields changed."""
        return replace(self, **changes)  # type: ignore[arg-type]

    def generate(self, count: int, rng: object, *, stream: str = "tx") -> PacketSchedule:
        """Materialise ``count`` packets for one direction.

        Args:
            count: number of packets.
            rng: a :class:`~repro.sim.rng.SimRng` (preferred; ``stream``
                selects a decorrelated sub-stream) or a bare numpy generator.
            stream: direction tag (``"tx"`` / ``"rx"``) so full-duplex
                streams are independent but individually reproducible.
        """
        if count <= 0:
            raise ValidationError(f"count must be positive, got {count}")
        generator = _stream(rng, f"workload.{self.name}.{stream}")
        sizes = self.sizes.sample(count, generator)
        # The gap that hits the offered load exactly: a packet of ``sz``
        # bytes at L Gb/s occupies sz*8/L nanoseconds of source time.
        nominal_gaps = sizes.astype(np.float64) * 8.0 / self.load_gbps
        gaps = self.arrivals.gaps(nominal_gaps, generator)
        times = np.cumsum(gaps)
        times -= times[0]  # first packet arrives at t = 0
        # Flow labels are drawn last so attaching a flow model leaves the
        # size and gap draws — and therefore every single-queue result —
        # bit-identical to a flow-free workload on the same seed.
        flows = (
            self.flows.sample(count, generator)
            if self.flows is not None
            else None
        )
        return PacketSchedule(arrival_times_ns=times, sizes=sizes, flows=flows)

    def describe(self) -> dict[str, object]:
        """Summary of the workload (for results and reports)."""
        summary: dict[str, object] = {
            "name": self.name,
            "sizes": self.sizes.name,
            "arrivals": self.arrivals.name,
            "offered_load_gbps": self.offered_load_gbps,
            "duplex": self.duplex,
        }
        if self.flows is not None:
            summary["flows"] = self.flows.name
        return summary


# ---------------------------------------------------------------------------
# Named workload factories (the CLI / bench vocabulary)
# ---------------------------------------------------------------------------


def fixed_workload(
    size: int = 1024,
    *,
    load_gbps: float | None = None,
    duplex: bool = True,
) -> Workload:
    """Fixed-size, evenly paced traffic — the analytic model's setting."""
    return Workload(
        name="fixed",
        sizes=FixedSize(size),
        arrivals=UniformArrivals(),
        offered_load_gbps=load_gbps,
        duplex=duplex,
    )


def uniform_workload(
    minimum: int = 64,
    maximum: int = 1518,
    *,
    load_gbps: float | None = None,
    duplex: bool = True,
) -> Workload:
    """Uniformly mixed frame sizes with smooth arrivals."""
    return Workload(
        name="uniform",
        sizes=UniformSize(minimum, maximum),
        arrivals=UniformArrivals(),
        offered_load_gbps=load_gbps,
        duplex=duplex,
    )


def imix_workload(
    *, load_gbps: float | None = None, duplex: bool = True
) -> Workload:
    """The classic IMIX blend with Poisson arrivals."""
    return Workload(
        name="imix",
        sizes=IMIX,
        arrivals=PoissonArrivals(),
        offered_load_gbps=load_gbps,
        duplex=duplex,
    )


def poisson_workload(
    size: int = 1024,
    *,
    load_gbps: float | None = None,
    duplex: bool = True,
) -> Workload:
    """Fixed-size packets with Poisson (memoryless) arrivals."""
    return Workload(
        name="poisson",
        sizes=FixedSize(size),
        arrivals=PoissonArrivals(),
        offered_load_gbps=load_gbps,
        duplex=duplex,
    )


def bursty_workload(
    size: int = 1024,
    *,
    load_gbps: float | None = None,
    duplex: bool = True,
    burst_size: int = 32,
    peak_factor: float = 8.0,
) -> Workload:
    """Fixed-size packets in on/off bursts at ``peak_factor`` times the load."""
    return Workload(
        name="bursty",
        sizes=FixedSize(size),
        arrivals=BurstyArrivals(burst_size=burst_size, peak_factor=peak_factor),
        offered_load_gbps=load_gbps,
        duplex=duplex,
    )


def bursty_imix_workload(
    *,
    load_gbps: float | None = None,
    duplex: bool = True,
    burst_size: int = 32,
    peak_factor: float = 8.0,
) -> Workload:
    """IMIX frame sizes arriving in on/off bursts."""
    return Workload(
        name="bursty-imix",
        sizes=IMIX,
        arrivals=BurstyArrivals(burst_size=burst_size, peak_factor=peak_factor),
        offered_load_gbps=load_gbps,
        duplex=duplex,
    )


#: Named workload builders in CLI/report order.
WORKLOAD_FACTORIES = {
    "fixed": fixed_workload,
    "uniform": uniform_workload,
    "imix": imix_workload,
    "poisson": poisson_workload,
    "bursty": bursty_workload,
    "bursty-imix": bursty_imix_workload,
}


def workload_names() -> list[str]:
    """All named workloads, in registry order."""
    return list(WORKLOAD_FACTORIES)


def build_workload(
    name: str,
    *,
    size: int = 1024,
    load_gbps: float | None = None,
    duplex: bool = True,
    burst_size: int = 32,
    peak_factor: float = 8.0,
) -> Workload:
    """Construct a named workload with the common knobs applied.

    ``size`` only affects the fixed-size families; ``burst_size`` and
    ``peak_factor`` only the bursty ones.
    """
    key = name.strip().lower()
    if key not in WORKLOAD_FACTORIES:
        raise ValidationError(
            f"unknown workload {name!r}; known workloads: "
            + ", ".join(WORKLOAD_FACTORIES)
        )
    common: dict[str, object] = {"load_gbps": load_gbps, "duplex": duplex}
    if key in ("fixed", "poisson"):
        return WORKLOAD_FACTORIES[key](size, **common)  # type: ignore[arg-type]
    if key == "bursty":
        return bursty_workload(
            size,
            load_gbps=load_gbps,
            duplex=duplex,
            burst_size=burst_size,
            peak_factor=peak_factor,
        )
    if key == "bursty-imix":
        return bursty_imix_workload(
            load_gbps=load_gbps,
            duplex=duplex,
            burst_size=burst_size,
            peak_factor=peak_factor,
        )
    return WORKLOAD_FACTORIES[key](**common)  # type: ignore[arg-type]
