"""Packet arrival processes for NIC traffic workloads.

An arrival process turns a *nominal* inter-arrival gap (the gap that makes
the packet stream hit its offered load exactly) into the actual gap series.
The smooth process keeps the nominal spacing; Poisson arrivals randomise it
memorylessly; the bursty on/off process compresses packets into line-rate
bursts separated by idle periods while preserving the long-run offered
load.  Burstiness is what exposes ring-occupancy and drop behaviour the
closed-form model of :mod:`repro.core.nic` averages away.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ValidationError


class ArrivalProcess:
    """Interface: maps nominal per-packet gaps onto actual gaps."""

    name: str = "arrivals"

    def gaps(
        self, nominal_gaps_ns: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Actual inter-arrival gaps (ns), one per packet.

        ``nominal_gaps_ns[i]`` is the gap that would make packet ``i`` arrive
        exactly at the offered load; implementations must preserve the total
        (long-run offered load) while reshaping the short-term pattern.
        """
        raise NotImplementedError


@dataclass(frozen=True)
class UniformArrivals(ArrivalProcess):
    """Deterministic, evenly paced arrivals (a shaped/smooth source)."""

    @property
    def name(self) -> str:  # type: ignore[override]
        return "uniform"

    def gaps(
        self, nominal_gaps_ns: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        return np.asarray(nominal_gaps_ns, dtype=np.float64).copy()


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals: exponential gaps around the nominal spacing."""

    @property
    def name(self) -> str:  # type: ignore[override]
        return "poisson"

    def gaps(
        self, nominal_gaps_ns: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        nominal = np.asarray(nominal_gaps_ns, dtype=np.float64)
        return rng.exponential(1.0, size=nominal.size) * nominal


@dataclass(frozen=True)
class BurstyArrivals(ArrivalProcess):
    """On/off arrivals: bursts at ``peak_factor`` times the offered rate.

    Packets arrive in back-to-back bursts of ``burst_size`` with gaps
    compressed by ``peak_factor``; the time saved is inserted as idle
    periods between bursts.  Because the schedule span ends at the final
    arrival, the last burst has no following idle period inside the span;
    its saved time is spread over the other idle gaps so the realised load
    over the schedule matches the offered load.  A run therefore needs at
    least two bursts — with a single burst every packet would arrive at
    the peak rate, ``peak_factor`` times the configured load.
    """

    burst_size: int = 32
    peak_factor: float = 8.0

    def __post_init__(self) -> None:
        if self.burst_size <= 1:
            raise ValidationError(
                f"burst_size must be at least 2, got {self.burst_size}"
            )
        if self.peak_factor <= 1.0:
            raise ValidationError(
                f"peak_factor must exceed 1, got {self.peak_factor}"
            )

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"bursty-{self.burst_size}x{self.peak_factor:g}"

    def gaps(
        self, nominal_gaps_ns: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        nominal = np.asarray(nominal_gaps_ns, dtype=np.float64)
        burst_starts = np.arange(0, nominal.size, self.burst_size)
        if burst_starts.size < 2:
            raise ValidationError(
                f"bursty arrivals need at least two bursts; got "
                f"{nominal.size} packets with burst_size {self.burst_size} "
                "(increase the packet count or reduce burst_size)"
            )
        gaps = nominal / self.peak_factor
        saved = nominal - gaps
        per_burst_saved = np.add.reduceat(saved, burst_starts)
        # All saved time — including the final burst's, which has no idle
        # period of its own inside the span — is distributed over the
        # inter-burst gaps so the total time equals the nominal total
        # exactly, even when the final burst is partial.
        later_starts = burst_starts[1:]
        leading_saved = per_burst_saved[: later_starts.size]
        scale = per_burst_saved.sum() / leading_saved.sum()
        gaps[later_starts] += leading_saved * scale
        return gaps
