"""Flow models: how packets are labelled with flows for RSS steering.

A multi-queue NIC spreads packets over its RX/TX ring pairs by hashing a
flow key (the 5-tuple on real hardware) to a queue index.  The simulator
needs the statistical shape of that key stream, not real addresses, so a
:class:`FlowModel` simply draws an integer flow label per packet:

* :class:`UniformFlows` — many equally likely flows, the RSS best case;
* :class:`ZipfFlows` — flow popularity follows a Zipf law, the skewed mix
  measured in data-centre traces (a few elephants, many mice);
* :class:`SingleHotFlow` — one flow carries most of the traffic, the RSS
  worst case (one queue saturates while the others idle).

Flow labels ride on :class:`~repro.workloads.traffic.Packet.flow`; the
flow→queue mapping itself lives in :mod:`repro.workloads.rss`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ValidationError


class FlowModel:
    """Interface: a source of per-packet integer flow labels.

    Implementations are immutable value objects; all randomness comes from
    the generator passed to :meth:`sample`, keeping workloads reproducible.
    """

    name: str = "flows"

    #: Number of distinct flows the model can emit (labels are ``[0, flows)``).
    flows: int = 0

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` flow labels (int64 array in ``[0, flows)``)."""
        raise NotImplementedError


@dataclass(frozen=True)
class UniformFlows(FlowModel):
    """Every flow is equally likely — traffic RSS can spread perfectly."""

    flows: int = 64

    def __post_init__(self) -> None:
        _check_flows(self.flows)

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"uniform-{self.flows}f"

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        _check_count(count)
        return rng.integers(0, self.flows, size=count, dtype=np.int64)


@dataclass(frozen=True)
class ZipfFlows(FlowModel):
    """Flow popularity follows a Zipf law with exponent ``skew``.

    Rank ``r`` (1-based) carries probability proportional to
    ``1 / r**skew``; flow label 0 is the most popular.  ``skew`` around
    1.0-1.5 matches published data-centre flow-size distributions.
    """

    flows: int = 64
    skew: float = 1.2

    def __post_init__(self) -> None:
        _check_flows(self.flows)
        if self.skew <= 0.0:
            raise ValidationError(f"skew must be positive, got {self.skew}")

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"zipf-{self.flows}f-s{self.skew:g}"

    def _probabilities(self) -> np.ndarray:
        ranks = np.arange(1, self.flows + 1, dtype=np.float64)
        weights = ranks**-self.skew
        return weights / weights.sum()

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        _check_count(count)
        return rng.choice(
            np.arange(self.flows, dtype=np.int64),
            size=count,
            p=self._probabilities(),
        )


@dataclass(frozen=True)
class SingleHotFlow(FlowModel):
    """One elephant flow plus background mice — the RSS worst case.

    Flow label 0 carries ``hot_fraction`` of the packets; the remainder is
    spread uniformly over the other ``flows - 1`` labels.  Whatever queue
    the hash assigns flow 0 to must carry almost the whole load alone.
    """

    flows: int = 64
    hot_fraction: float = 0.9

    def __post_init__(self) -> None:
        _check_flows(self.flows)
        if self.flows < 2:
            raise ValidationError(
                "a single-hot-flow model needs at least 2 flows "
                f"(one hot, one background), got {self.flows}"
            )
        if not 0.0 < self.hot_fraction < 1.0:
            raise ValidationError(
                f"hot_fraction must be within (0, 1), got {self.hot_fraction}"
            )

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"hot-{self.flows}f-{self.hot_fraction:g}"

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        _check_count(count)
        hot = rng.random(count) < self.hot_fraction
        background = rng.integers(1, self.flows, size=count, dtype=np.int64)
        return np.where(hot, np.int64(0), background)


#: Named flow-model builders (the CLI / bench vocabulary).  ``"skewed"``
#: aliases ``"zipf"`` to match the paper's wording.
FLOW_MODEL_FACTORIES = {
    "uniform": UniformFlows,
    "zipf": ZipfFlows,
    "hot": SingleHotFlow,
}

_FLOW_ALIASES = {"skewed": "zipf", "single-hot-flow": "hot"}


def flow_model_names() -> list[str]:
    """All named flow models, in registry order."""
    return list(FLOW_MODEL_FACTORIES)


def canonical_flow_name(name: str) -> str:
    """Resolve a flow-model name or alias to its registry key (or raise)."""
    key = name.strip().lower()
    key = _FLOW_ALIASES.get(key, key)
    if key not in FLOW_MODEL_FACTORIES:
        raise ValidationError(
            f"unknown flow model {name!r}; known flow models: "
            + ", ".join(FLOW_MODEL_FACTORIES)
        )
    return key


def build_flow_model(name: str, *, flows: int = 64, **kwargs: object) -> FlowModel:
    """Construct a named flow model (``"uniform"``, ``"zipf"``, ``"hot"``).

    ``kwargs`` pass model-specific knobs through (``skew`` for Zipf,
    ``hot_fraction`` for the single-hot-flow mix).
    """
    key = canonical_flow_name(name)
    return FLOW_MODEL_FACTORIES[key](flows=flows, **kwargs)  # type: ignore[arg-type]


def _check_flows(flows: int) -> None:
    if flows <= 0:
        raise ValidationError(f"flow count must be positive, got {flows}")


def _check_count(count: int) -> None:
    if count <= 0:
        raise ValidationError(f"count must be positive, got {count}")
