"""Packet-size distributions for NIC traffic workloads.

The analytic Figure 1 curves are evaluated at a single packet size at a
time; real traffic mixes sizes.  The distributions here cover the standard
evaluation mixes: fixed-size (the paper's setting), uniform over a range,
weighted trimodal mixes, and the classic IMIX blend (7:4:1 over 64 B,
594 B and 1518 B frames) used by router and NIC vendors to approximate
Internet traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.ethernet import MAX_FRAME_BYTES, MIN_FRAME_BYTES
from ..errors import ValidationError


class SizeDistribution:
    """Interface: a source of per-packet frame sizes in bytes.

    Implementations are immutable value objects; all randomness comes from
    the generator passed to :meth:`sample`, keeping workloads reproducible.
    """

    name: str = "sizes"

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` packet sizes (int64 array of bytes)."""
        raise NotImplementedError

    def mean_size(self) -> float:
        """Expected packet size in bytes (used to pace offered load)."""
        raise NotImplementedError


@dataclass(frozen=True)
class FixedSize(SizeDistribution):
    """Every packet has the same size (the Figure 1 setting)."""

    size: int = 1024

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValidationError(f"packet size must be positive, got {self.size}")

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"fixed-{self.size}B"

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        _check_count(count)
        return np.full(count, self.size, dtype=np.int64)

    def mean_size(self) -> float:
        return float(self.size)


@dataclass(frozen=True)
class UniformSize(SizeDistribution):
    """Sizes drawn uniformly from ``[minimum, maximum]`` inclusive."""

    minimum: int = MIN_FRAME_BYTES
    maximum: int = MAX_FRAME_BYTES

    def __post_init__(self) -> None:
        if self.minimum <= 0:
            raise ValidationError(
                f"minimum size must be positive, got {self.minimum}"
            )
        if self.maximum < self.minimum:
            raise ValidationError(
                f"maximum ({self.maximum}) must be >= minimum ({self.minimum})"
            )

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"uniform-{self.minimum}-{self.maximum}B"

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        _check_count(count)
        return rng.integers(
            self.minimum, self.maximum + 1, size=count, dtype=np.int64
        )

    def mean_size(self) -> float:
        return (self.minimum + self.maximum) / 2.0


@dataclass(frozen=True)
class TrimodalSize(SizeDistribution):
    """A weighted mix over a small set of discrete frame sizes."""

    sizes: tuple[int, ...] = (64, 594, 1518)
    weights: tuple[float, ...] = (7.0, 4.0, 1.0)

    def __post_init__(self) -> None:
        if not self.sizes:
            raise ValidationError("a size mix needs at least one size")
        if len(self.weights) != len(self.sizes):
            raise ValidationError(
                f"{len(self.sizes)} sizes but {len(self.weights)} weights"
            )
        if any(size <= 0 for size in self.sizes):
            raise ValidationError(f"all sizes must be positive, got {self.sizes}")
        if any(weight <= 0 for weight in self.weights):
            raise ValidationError(
                f"all weights must be positive, got {self.weights}"
            )

    @property
    def name(self) -> str:  # type: ignore[override]
        return "mix-" + "/".join(str(size) for size in self.sizes)

    def _probabilities(self) -> np.ndarray:
        weights = np.asarray(self.weights, dtype=np.float64)
        return weights / weights.sum()

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        _check_count(count)
        return rng.choice(
            np.asarray(self.sizes, dtype=np.int64), size=count, p=self._probabilities()
        )

    def mean_size(self) -> float:
        return float(
            np.dot(np.asarray(self.sizes, dtype=np.float64), self._probabilities())
        )


#: The classic IMIX blend: 7 parts 64 B, 4 parts 594 B, 1 part 1518 B.
IMIX = TrimodalSize()


def _check_count(count: int) -> None:
    if count <= 0:
        raise ValidationError(f"count must be positive, got {count}")
