"""Device models: the PCIe endpoints that drive the benchmarks.

The paper implements pcie-bench on two programmable devices — Netronome
NFP-6000/NFP-4000 SmartNICs and the NetFPGA-SUME board — and uses an ExaNIC
for the motivating latency measurement of Figure 2.  Since no hardware is
available here, each device is represented by the handful of parameters that
the paper itself uses to explain the differences between them:

* the NFP pays a fixed cost to build and enqueue a DMA descriptor and an
  internal SRAM-to-memory staging transfer whose cost grows with transfer
  size (§5.1, §6.1), and its small-transfer latency tests can bypass the DMA
  engine through a *PCIe command interface*;
* the NetFPGA issues requests straight from the FPGA every clock cycle with
  no staging, so it tracks the analytical model closely;
* the ExaNIC is modelled only at the level Figure 2 needs: a loopback
  latency split into a PCIe component and a MAC/wire component.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..errors import ValidationError


@dataclass(frozen=True)
class DmaEngineSpec:
    """Performance-relevant parameters of a device's DMA machinery.

    Attributes:
        issue_overhead_ns: latency to build and enqueue one DMA descriptor
            (measured as a fixed ~100 ns offset on the NFP, §6.1).
        completion_overhead_ns: latency from the completion arriving at the
            device to the measuring thread observing it.
        issue_interval_ns: minimum spacing between successive DMA issues —
            the engine's processing rate, which bounds small-transfer write
            bandwidth.
        max_inflight: number of DMAs the engine keeps in flight concurrently
            (worker threads on the NFP, outstanding tags on the NetFPGA);
            bounds small-transfer read bandwidth via Little's law.
        staging_ns_per_byte: extra per-byte latency for devices that stage
            DMA data through internal memory before it reaches the consumer
            (the NFP's CTM-to-EMEM copy); zero for the NetFPGA.
        command_interface_overhead_ns: issue overhead when using the NFP's
            direct PCIe command interface instead of the DMA engine
            (available for transfers up to ``command_interface_max_bytes``).
        command_interface_max_bytes: largest transfer the command interface
            supports (0 when the device has no such interface).
        timestamp_resolution_ns: granularity of the device's timestamp
            counter (19.2 ns on the 1.2 GHz NFP, 4 ns on the NetFPGA);
            latency samples are quantised to this resolution.
    """

    issue_overhead_ns: float = 20.0
    completion_overhead_ns: float = 10.0
    issue_interval_ns: float = 10.0
    max_inflight: int = 32
    staging_ns_per_byte: float = 0.0
    command_interface_overhead_ns: float = 0.0
    command_interface_max_bytes: int = 0
    timestamp_resolution_ns: float = 1.0

    def __post_init__(self) -> None:
        for attr in (
            "issue_overhead_ns",
            "completion_overhead_ns",
            "issue_interval_ns",
            "staging_ns_per_byte",
            "command_interface_overhead_ns",
            "timestamp_resolution_ns",
        ):
            if getattr(self, attr) < 0:
                raise ValidationError(f"{attr} must be non-negative")
        if self.max_inflight <= 0:
            raise ValidationError(
                f"max_inflight must be positive, got {self.max_inflight}"
            )
        if self.command_interface_max_bytes < 0:
            raise ValidationError("command_interface_max_bytes must be >= 0")

    @property
    def has_command_interface(self) -> bool:
        """Whether the device can issue small PCIe ops without the DMA engine."""
        return self.command_interface_max_bytes > 0


@dataclass(frozen=True)
class DeviceModel:
    """A benchmark-capable PCIe device (programmable NIC or FPGA board)."""

    name: str
    vendor: str
    engine: DmaEngineSpec
    description: str = ""

    def with_engine(self, **changes: object) -> "DeviceModel":
        """Return a copy of this device with DMA-engine parameters replaced."""
        return replace(self, engine=replace(self.engine, **changes))  # type: ignore[arg-type]

    def staging_latency_ns(self, size: int) -> float:
        """Internal staging latency for a transfer of ``size`` bytes."""
        if size < 0:
            raise ValidationError(f"size must be non-negative, got {size}")
        return self.engine.staging_ns_per_byte * size

    def quantise(self, latency_ns: float) -> float:
        """Round a latency to the device's timestamp resolution."""
        resolution = self.engine.timestamp_resolution_ns
        if resolution <= 0:
            return latency_ns
        return round(latency_ns / resolution) * resolution


#: Netronome NFP-6000 based SmartNIC (1.2 GHz flow processing cores).
#: The DMA path pays a descriptor-enqueue cost and a size-dependent internal
#: staging transfer; 12 cores x 8 threads keep DMAs in flight but the usable
#: concurrency at the PCIe interface is bounded by the DMA engine queues.
NFP6000 = DeviceModel(
    name="NFP6000",
    vendor="Netronome",
    description="NFP-6000 SmartNIC, firmware-driven DMA engines (pcie-bench firmware)",
    engine=DmaEngineSpec(
        issue_overhead_ns=105.0,
        completion_overhead_ns=25.0,
        issue_interval_ns=17.0,
        max_inflight=32,
        staging_ns_per_byte=0.15,
        command_interface_overhead_ns=15.0,
        command_interface_max_bytes=128,
        timestamp_resolution_ns=19.2,
    ),
)

#: NetFPGA-SUME board: the benchmark logic drives the PCIe hard block
#: directly, issuing a request per 250 MHz clock cycle with no staging.
NETFPGA = DeviceModel(
    name="NetFPGA",
    vendor="NetFPGA community",
    description="NetFPGA-SUME (Virtex-7), pcie-bench DMA engine in reconfigurable logic",
    engine=DmaEngineSpec(
        issue_overhead_ns=16.0,
        completion_overhead_ns=8.0,
        issue_interval_ns=8.0,
        max_inflight=26,
        staging_ns_per_byte=0.0,
        command_interface_overhead_ns=0.0,
        command_interface_max_bytes=0,
        timestamp_resolution_ns=4.0,
    ),
)


@dataclass(frozen=True)
class ExaNicModel:
    """Loopback-latency model of the ExaNIC used for Figure 2.

    The ExaNIC measurement splits application-to-wire-and-back latency into
    the part attributable to PCIe (DMA read of the packet, DMA write of the
    looped-back packet, root-complex service) and the rest (MAC, PHY and the
    cut-through wire path).  Both components are affine in the transfer
    size; the constants below are calibrated to the paper's quoted numbers
    (~1000 ns round trip for 128 B with ~900 ns from PCIe, 77-91 % PCIe share
    across 0-1500 B).
    """

    pcie_base_ns: float = 830.0
    pcie_per_byte_ns: float = 0.62
    other_base_ns: float = 95.0
    other_per_byte_ns: float = 0.21

    def __post_init__(self) -> None:
        for attr in (
            "pcie_base_ns",
            "pcie_per_byte_ns",
            "other_base_ns",
            "other_per_byte_ns",
        ):
            if getattr(self, attr) < 0:
                raise ValidationError(f"{attr} must be non-negative")

    def pcie_latency_ns(self, size: int) -> float:
        """PCIe contribution to the loopback latency for ``size`` bytes."""
        _check_size(size)
        return self.pcie_base_ns + self.pcie_per_byte_ns * size

    def total_latency_ns(self, size: int) -> float:
        """Total application-observed loopback latency for ``size`` bytes."""
        _check_size(size)
        return self.pcie_latency_ns(size) + (
            self.other_base_ns + self.other_per_byte_ns * size
        )

    def pcie_fraction(self, size: int) -> float:
        """Share of the loopback latency attributable to PCIe."""
        total = self.total_latency_ns(size)
        return self.pcie_latency_ns(size) / total if total else 0.0


#: The ExaNIC instance used by the Figure 2 experiment.
EXANIC = ExaNicModel()

#: Devices that can run the full pcie-bench suite, keyed by lower-case name.
DEVICE_REGISTRY: dict[str, DeviceModel] = {
    "nfp6000": NFP6000,
    "netfpga": NETFPGA,
}


def get_device(name: str) -> DeviceModel:
    """Look up a benchmark-capable device by name (case-insensitive)."""
    key = name.strip().lower()
    if key not in DEVICE_REGISTRY:
        raise ValidationError(
            f"unknown device {name!r}; known devices: "
            + ", ".join(sorted(DEVICE_REGISTRY))
        )
    return DEVICE_REGISTRY[key]


def _check_size(size: int) -> None:
    if size < 0:
        raise ValidationError(f"size must be non-negative, got {size}")
