"""Host buffer layout and access-pattern generation (Figure 3 of the paper).

A pcie-bench run DMAs into a logically contiguous host buffer.  Only a
*window* of the buffer is accessed repeatedly so cache effects can be
studied; the window is divided into equally sized *units*, each unit being
the transfer size plus the intra-cache-line offset rounded up to a whole
number of cache lines, so every DMA touches the same number of cache lines.
Units are visited sequentially or in random order.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..errors import ValidationError
from ..units import CACHELINE_BYTES, align_up
from .rng import SimRng


class AccessPattern(enum.Enum):
    """Order in which units of the window are visited."""

    RANDOM = "random"
    SEQUENTIAL = "sequential"

    @classmethod
    def from_value(cls, value: "AccessPattern | str") -> "AccessPattern":
        """Coerce a string (``"random"`` / ``"sequential"``) into a pattern."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).strip().lower())
        except ValueError as exc:
            raise ValidationError(f"unknown access pattern {value!r}") from exc


@dataclass(frozen=True)
class HostBuffer:
    """A DMA target buffer on the host (Figure 3).

    Attributes:
        window_size: number of bytes accessed repeatedly by the benchmark.
        transfer_size: bytes moved by each DMA.
        offset: starting offset of each DMA within its unit (to study
            unaligned accesses); 0 keeps every DMA cache-line aligned.
        total_size: allocated buffer size; must be at least ``window_size``
            and is usually much larger than the LLC so that thrashing the
            cache is meaningful.
        numa_node: NUMA node the buffer's memory is allocated on.
        base_address: I/O virtual (DMA) address of the buffer start; only
            its alignment matters to the model.
        page_size: page size backing the buffer (4 KiB by default; 2 MiB or
            1 GiB when the driver allocates from hugetlbfs).
    """

    window_size: int
    transfer_size: int
    offset: int = 0
    total_size: int | None = None
    numa_node: int = 0
    base_address: int = 0
    page_size: int = 4096

    def __post_init__(self) -> None:
        if self.transfer_size <= 0:
            raise ValidationError(
                f"transfer_size must be positive, got {self.transfer_size}"
            )
        if self.window_size <= 0:
            raise ValidationError(
                f"window_size must be positive, got {self.window_size}"
            )
        if self.offset < 0 or self.offset >= CACHELINE_BYTES:
            raise ValidationError(
                f"offset must be within [0, {CACHELINE_BYTES}), got {self.offset}"
            )
        if self.page_size <= 0 or self.page_size % CACHELINE_BYTES:
            raise ValidationError(
                f"page_size must be a positive multiple of {CACHELINE_BYTES}"
            )
        if self.numa_node < 0:
            raise ValidationError(f"numa_node must be >= 0, got {self.numa_node}")
        if self.base_address < 0:
            raise ValidationError(
                f"base_address must be >= 0, got {self.base_address}"
            )
        if self.unit_size > self.window_size:
            raise ValidationError(
                f"window of {self.window_size} bytes cannot hold a single "
                f"{self.unit_size}-byte unit"
            )
        if self.total_size is not None and self.total_size < self.window_size:
            raise ValidationError(
                "total_size must be at least window_size "
                f"({self.total_size} < {self.window_size})"
            )

    # -- layout ------------------------------------------------------------------

    @property
    def unit_size(self) -> int:
        """Size of one unit: offset + transfer size rounded up to a cache line."""
        return align_up(self.offset + self.transfer_size, CACHELINE_BYTES)

    @property
    def unit_count(self) -> int:
        """Number of whole units in the window."""
        return self.window_size // self.unit_size

    @property
    def cachelines_per_unit(self) -> int:
        """Cache lines touched by each DMA (identical for every unit)."""
        return self.unit_size // CACHELINE_BYTES

    @property
    def window_cachelines(self) -> int:
        """Number of distinct cache lines the benchmark touches."""
        return self.unit_count * self.cachelines_per_unit

    @property
    def window_pages(self) -> int:
        """Number of distinct pages the accessed window spans."""
        last_byte = self.unit_address(self.unit_count - 1) + self.transfer_size - 1
        first_page = self.base_address // self.page_size
        last_page = last_byte // self.page_size
        return int(last_page - first_page + 1)

    def unit_address(self, unit_index: int) -> int:
        """DMA start address of the given unit."""
        if not 0 <= unit_index < self.unit_count:
            raise ValidationError(
                f"unit index {unit_index} out of range [0, {self.unit_count})"
            )
        return self.base_address + unit_index * self.unit_size + self.offset

    def page_of(self, address: int) -> int:
        """Page number containing ``address``."""
        return address // self.page_size

    def cacheline_of(self, address: int) -> int:
        """Cache line number containing ``address``."""
        return address // CACHELINE_BYTES

    # -- access streams ------------------------------------------------------------

    def access_addresses(
        self,
        count: int,
        pattern: AccessPattern | str = AccessPattern.RANDOM,
        rng: SimRng | None = None,
    ) -> np.ndarray:
        """DMA start addresses for ``count`` accesses under the given pattern.

        Random patterns draw units uniformly (the paper's default); the
        sequential pattern walks units in order, wrapping around the window.
        """
        if count < 0:
            raise ValidationError(f"count must be non-negative, got {count}")
        pattern = AccessPattern.from_value(pattern)
        if count == 0:
            return np.empty(0, dtype=np.int64)
        if pattern is AccessPattern.SEQUENTIAL:
            indices = np.arange(count, dtype=np.int64) % self.unit_count
        else:
            rng = rng or SimRng()
            indices = rng.uniform_indices("hostbuffer.access", count, self.unit_count)
        return (
            np.int64(self.base_address)
            + indices * np.int64(self.unit_size)
            + np.int64(self.offset)
        )

    def describe(self) -> dict[str, int]:
        """Layout summary used in reports and tests."""
        return {
            "window_size": self.window_size,
            "transfer_size": self.transfer_size,
            "offset": self.offset,
            "unit_size": self.unit_size,
            "unit_count": self.unit_count,
            "cachelines_per_unit": self.cachelines_per_unit,
            "window_pages": self.window_pages,
            "numa_node": self.numa_node,
            "page_size": self.page_size,
        }
