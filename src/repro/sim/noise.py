"""Latency-noise models for the host root complex.

The paper's headline distribution result (Figure 6) is that a Haswell Xeon
E5 services 64 B DMA reads with a very tight latency distribution (99.9 % of
2 million samples inside an 80 ns band) whereas a Xeon E3 of the same
generation shows a median more than twice as high, a 99th percentile of
several microseconds and occasional multi-millisecond stalls suspected to be
power management.  These behaviours are captured by two noise models that
the system profiles select between.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ValidationError


@dataclass(frozen=True)
class TightNoise:
    """Narrow, symmetric jitter typical of the Xeon E5 root complexes.

    Attributes:
        sigma_ns: standard deviation of the Gaussian jitter.
        tail_probability: probability of a moderate outlier (e.g. an
            unfortunate snoop), roughly doubling the latency.
        tail_extra_ns: size of that moderate outlier.
    """

    sigma_ns: float = 8.0
    tail_probability: float = 5e-4
    tail_extra_ns: float = 350.0

    def __post_init__(self) -> None:
        _check_non_negative(self, ("sigma_ns", "tail_probability", "tail_extra_ns"))
        _check_probability(self.tail_probability, "tail_probability")

    def sample(self, generator: np.random.Generator, count: int) -> np.ndarray:
        """Draw ``count`` non-negative jitter values in nanoseconds."""
        jitter = np.abs(generator.normal(0.0, self.sigma_ns, size=count))
        outliers = generator.random(count) < self.tail_probability
        return jitter + outliers * self.tail_extra_ns


@dataclass(frozen=True)
class HeavyTailNoise:
    """Broad, heavy-tailed jitter reproducing the Xeon E3 behaviour of Figure 6.

    The distribution is the sum of an exponential component (queueing /
    contention inside the root complex) and rare, very large stalls
    attributed by the paper to hidden power-saving modes.

    Attributes:
        exponential_scale_ns: mean of the exponential component.
        stall_probability: probability that a transaction hits a long stall.
        stall_min_ns / stall_max_ns: the stall duration is drawn
            log-uniformly between these bounds (tens of microseconds up to
            several milliseconds).
    """

    exponential_scale_ns: float = 980.0
    stall_probability: float = 6e-4
    stall_min_ns: float = 20_000.0
    stall_max_ns: float = 5_800_000.0

    def __post_init__(self) -> None:
        _check_non_negative(
            self,
            (
                "exponential_scale_ns",
                "stall_probability",
                "stall_min_ns",
                "stall_max_ns",
            ),
        )
        _check_probability(self.stall_probability, "stall_probability")
        if self.stall_max_ns < self.stall_min_ns:
            raise ValidationError("stall_max_ns must be >= stall_min_ns")

    def sample(self, generator: np.random.Generator, count: int) -> np.ndarray:
        """Draw ``count`` non-negative jitter values in nanoseconds."""
        jitter = generator.exponential(self.exponential_scale_ns, size=count)
        stalls = generator.random(count) < self.stall_probability
        if stalls.any():
            log_low = np.log(self.stall_min_ns)
            log_high = np.log(self.stall_max_ns)
            stall_values = np.exp(
                generator.uniform(log_low, log_high, size=int(stalls.sum()))
            )
            jitter = jitter.copy()
            jitter[stalls] += stall_values
        return jitter


#: Union type accepted wherever a noise model is expected.
NoiseModel = TightNoise | HeavyTailNoise


def _check_non_negative(obj: object, attrs: tuple[str, ...]) -> None:
    for attr in attrs:
        if getattr(obj, attr) < 0:
            raise ValidationError(f"{attr} must be non-negative")


def _check_probability(value: float, name: str) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValidationError(f"{name} must be within [0, 1], got {value}")
