"""Small building blocks for the transaction-level simulation.

The DMA-engine simulation in :mod:`repro.sim.dma` is a pipelined,
cursor-based discrete-event model rather than a general event-queue
simulator: transactions are generated in issue order and the only shared
resources are serial ones (each link direction, the IOMMU page walker, the
root-complex ingress pipeline) plus a bounded pool of in-flight DMA slots.
These two primitives — :class:`SerialResource` and :class:`WorkerPool` —
capture exactly that and keep the hot loop simple and fast.
"""

from __future__ import annotations

import heapq

from ..errors import SimulationError, ValidationError


class SerialResource:
    """A resource that serves one request at a time (a link direction, a walker).

    The resource is described entirely by the time it next becomes free.
    ``occupy`` asks for service starting no earlier than ``earliest_start``
    and lasting ``duration``; it returns the time service begins.
    """

    def __init__(self, name: str, *, free_at: float = 0.0) -> None:
        if free_at < 0:
            raise ValidationError(f"free_at must be non-negative, got {free_at}")
        self.name = name
        self._free_at = float(free_at)
        self.busy_time = 0.0
        self.served = 0

    @property
    def free_at(self) -> float:
        """Earliest time the resource can next start serving."""
        return self._free_at

    def occupy(self, earliest_start: float, duration: float) -> float:
        """Reserve the resource; returns the actual service start time."""
        if duration < 0:
            raise ValidationError(f"duration must be non-negative, got {duration}")
        if earliest_start < 0:
            raise ValidationError(
                f"earliest_start must be non-negative, got {earliest_start}"
            )
        start = max(earliest_start, self._free_at)
        self._free_at = start + duration
        self.busy_time += duration
        self.served += 1
        return start

    def utilisation(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` time the resource spent serving."""
        if elapsed <= 0:
            raise ValidationError(f"elapsed must be positive, got {elapsed}")
        return min(1.0, self.busy_time / elapsed)

    def reset(self) -> None:
        """Return the resource to its initial idle state."""
        self._free_at = 0.0
        self.busy_time = 0.0
        self.served = 0


class WorkerPool:
    """A bounded pool of in-flight transaction slots (DMA contexts / tags).

    ``acquire(now)`` returns the earliest time a slot is available (which may
    be later than ``now`` if all slots are busy); the caller then reports the
    slot busy until ``release_at`` via ``commit``.
    """

    def __init__(self, slots: int) -> None:
        if slots <= 0:
            raise ValidationError(f"slots must be positive, got {slots}")
        self.slots = slots
        # Min-heap of times at which each busy slot frees up.
        self._busy_until: list[float] = []

    def acquire(self, now: float) -> float:
        """Earliest time a slot can be handed out, given the current time."""
        if now < 0:
            raise ValidationError(f"now must be non-negative, got {now}")
        if len(self._busy_until) < self.slots:
            return now
        return max(now, self._busy_until[0])

    def commit(self, release_at: float) -> None:
        """Mark one slot busy until ``release_at``."""
        if release_at < 0:
            raise ValidationError(
                f"release_at must be non-negative, got {release_at}"
            )
        if len(self._busy_until) < self.slots:
            heapq.heappush(self._busy_until, release_at)
            return
        if not self._busy_until:  # pragma: no cover - guarded by slots > 0
            raise SimulationError("worker pool has no slots to replace")
        # Replace the earliest-finishing slot (the one acquire() handed out).
        heapq.heapreplace(self._busy_until, release_at)

    @property
    def in_flight(self) -> int:
        """Number of slots currently committed."""
        return len(self._busy_until)

    def reset(self) -> None:
        """Free every slot."""
        self._busy_until.clear()
