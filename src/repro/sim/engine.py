"""Small building blocks for the transaction-level simulation.

The DMA-engine simulation in :mod:`repro.sim.dma` is a pipelined,
cursor-based discrete-event model rather than a general event-queue
simulator: transactions are generated in issue order and the only shared
resources are serial ones (each link direction, the IOMMU page walker, the
root-complex ingress pipeline) plus a bounded pool of in-flight DMA slots.
These two primitives — :class:`SerialResource` and :class:`WorkerPool` —
capture exactly that and keep the hot loop simple and fast.

Two event-driven variants complete the set for the NIC datapath event loop
in :mod:`repro.sim.nicsim`: :class:`TagPool` (bounded in-flight DMA tags
granted through callbacks) and :class:`ArbitratedResource`, a serial
resource shared by several *clients* (devices behind one PCIe switch or
root port) whose pending requests are queued per client and dispatched by
an arbitration scheme — first-come-first-served, round-robin, weighted,
weighted-aging or preemptively sliced — instead of the implicit call-order
FIFO of :class:`SerialResource`.  :mod:`repro.sim.topology` composes these
per-port arbiters into switch trees.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass
from operator import itemgetter
from typing import Callable

from ..errors import SimulationError, ValidationError


@dataclass(frozen=True, slots=True)
class EngineProfile:
    """Wall-clock phase breakdown of one event-driven simulation run.

    Filled by the simulators' ``--profile`` hook: ``build_s`` covers
    workload generation and datapath construction, ``events_s`` is the
    event loop drain (the phase the event-wheel work targets), and
    ``stats_s`` the statistics summarisation.  ``events`` is the number
    of events the loop dispatched, so ``events / events_s`` is the
    engine's raw events-per-second throughput.

    ``mode`` names the engine that produced the run (``exact`` scalar
    event loop, ``batch`` vectorised solver, ``hybrid`` fluid fast-path)
    and ``solve_s`` is the vectorised solve time inside ``events_s``
    (zero for the scalar engines), so per-mode phase timings stay
    comparable in one record shape.
    """

    label: str
    build_s: float
    events_s: float
    stats_s: float
    events: int
    mode: str = "exact"
    solve_s: float = 0.0

    @property
    def total_s(self) -> float:
        """End-to-end wall time of the run."""
        return self.build_s + self.events_s + self.stats_s

    @property
    def events_per_sec(self) -> float:
        """Events dispatched per wall-second of the event phase."""
        return self.events / self.events_s if self.events_s > 0 else 0.0

    def as_dict(self) -> dict[str, object]:
        """Serialisable representation (the perf-smoke record shape)."""
        return {
            "label": self.label,
            "build_s": self.build_s,
            "events_s": self.events_s,
            "stats_s": self.stats_s,
            "total_s": self.total_s,
            "events": self.events,
            "events_per_sec": self.events_per_sec,
            "mode": self.mode,
            "solve_s": self.solve_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EngineProfile":
        """Rebuild a profile from :meth:`as_dict` output.

        The derived keys (``total_s``, ``events_per_sec``) are ignored;
        they are properties recomputed from the stored phases.
        """
        return cls(
            label=str(data["label"]),
            build_s=float(data["build_s"]),
            events_s=float(data["events_s"]),
            stats_s=float(data["stats_s"]),
            events=int(data["events"]),
            mode=str(data.get("mode", "exact")),
            solve_s=float(data.get("solve_s", 0.0)),
        )

    def format(self) -> str:
        """Human-readable one-block summary for the CLI."""
        solve = (
            f", solve {self.solve_s * 1e3:.1f} ms" if self.solve_s > 0 else ""
        )
        return (
            f"[profile] {self.label} [{self.mode}]: {self.events} events in "
            f"{self.events_s * 1e3:.1f} ms "
            f"({self.events_per_sec:,.0f} events/s); "
            f"build {self.build_s * 1e3:.1f} ms{solve}, "
            f"stats {self.stats_s * 1e3:.1f} ms, "
            f"total {self.total_s * 1e3:.1f} ms"
        )


class HeapEventLoop:
    """The reference discrete-event scheduler: one binary heap.

    Events are ``(time, sequence, fn)`` records popped in time order with
    FIFO tie-break on the insertion sequence — the determinism contract
    every simulator in this package (and every seeded golden) rests on.
    :class:`EventLoop` is the production scheduler; this class keeps the
    obviously-correct heap implementation alive as the executable
    specification the property tests compare the event wheel against,
    and as a drop-in fallback.
    """

    __slots__ = (
        "_heap",
        "_sequence",
        "_stream",
        "_stream_pos",
        "processed",
        "running",
    )

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[float], None]]] = []
        self._sequence = 0
        self._stream: list[tuple[float, Callable[[float, object], None], object]] = []
        self._stream_pos = 0
        #: Events dispatched so far (the profiling hook's events counter).
        self.processed = 0
        #: True while :meth:`run` is draining (see ``EventLoop.running``).
        self.running = False

    def at(self, time: float, fn: Callable[[float], None]) -> None:
        """Schedule ``fn(time)``; same-time events run in call order."""
        heapq.heappush(self._heap, (time, self._sequence, fn))
        self._sequence += 1

    def reserve(self) -> int:
        """Claim the next insertion sequence without scheduling anything.

        Pairs with :meth:`at_sequenced`: a caller that *may* schedule an
        event later — after running code that schedules its own events —
        can reserve its tie-break position up front, so the eventual event
        sorts exactly as if it had been scheduled at reservation time.
        """
        sequence = self._sequence
        self._sequence = sequence + 1
        return sequence

    def at_sequenced(
        self, time: float, sequence: int, fn: Callable[[float], None]
    ) -> None:
        """Schedule ``fn(time)`` under a sequence from :meth:`reserve`."""
        heapq.heappush(self._heap, (time, sequence, fn))

    def feed(self, time: float, fn: Callable[[float, object], None], arg: object) -> None:
        """Pre-load one externally generated event (see :meth:`EventLoop.feed`)."""
        self._stream.append((time, fn, arg))

    def feed_many(self, entries) -> None:
        """Pre-load ``(time, fn, arg)`` tuples in bulk (see :meth:`feed`)."""
        self._stream.extend(entries)

    def peek_time(self) -> float:
        """Earliest pending event time (``inf`` when idle)."""
        head = self._heap[0][0] if self._heap else math.inf
        if self._stream_pos < len(self._stream):
            stream_time = self._stream[self._stream_pos][0]
            if stream_time < head:
                head = stream_time
        return head

    def run(self) -> None:
        """Dispatch events until none remain."""
        self._stream.sort(key=itemgetter(0))
        stream = self._stream
        stream_len = len(stream)
        heap = self._heap
        self.running = True
        try:
            while True:
                pos = self._stream_pos
                if pos < stream_len:
                    entry = stream[pos]
                    # Fed events precede any dynamic event at the same time:
                    # they were all scheduled before the loop started.
                    if not heap or entry[0] <= heap[0][0]:
                        self._stream_pos = pos + 1
                        self.processed += 1
                        entry[1](entry[0], entry[2])
                        continue
                if not heap:
                    break
                time, _, fn = heapq.heappop(heap)
                self.processed += 1
                fn(time)
        finally:
            self.running = False


#: Default calendar-queue geometry: 64 ns buckets are of the order of one
#: small-DMA link serialisation, so in steady state each bucket holds only
#: a handful of events; 1024 buckets give a 65 µs rotating window, wider
#: than any causal delay (host round trips are hundreds of ns), so dynamic
#: events essentially never overflow to the fallback heap.
DEFAULT_BUCKET_NS = 64.0
DEFAULT_NUM_BUCKETS = 1024


class EventLoop:
    """The shared discrete-event scheduler: a bucketed calendar queue.

    Drop-in replacement for :class:`HeapEventLoop` with identical pop
    order (time-ordered, FIFO on same-time ties — pinned by the
    wheel-vs-heap property test).  Three ingestion paths, by event shape:

    * :meth:`at` — dynamic events scheduled while the loop runs.  These
      land in a rotating array of time buckets (width ``bucket_ns``);
      since simulators schedule into the causal near future, insertion
      and removal touch a bucket of O(1) occupancy instead of a heap of
      every pending event.
    * the **fallback heap** — events beyond the wheel's rotating window
      (sparse horizons: retry timers, a closed-loop source's next cycle).
      They migrate into the wheel as the cursor advances.
    * :meth:`feed` — the pre-generated workload arrivals.  A run begins
      with every arrival already known and nearly sorted; keeping them
      out of the wheel entirely (one stable sort, then a pointer walk)
      beats paying per-event scheduling for half of all events.

    ``peek_time`` exposes the earliest pending event so resources can
    service back-to-back grants without a scheduler round trip per grant
    (see :meth:`ArbitratedResource.attach_loop`).
    """

    __slots__ = (
        "_buckets",
        "_bucket_ns",
        "_num_buckets",
        "_cursor",
        "_cursor_time",
        "_wheel_end",
        "_wheel_count",
        "_overflow",
        "_sequence",
        "_stream",
        "_stream_pos",
        "processed",
        "running",
    )

    def __init__(
        self,
        *,
        bucket_ns: float = DEFAULT_BUCKET_NS,
        num_buckets: int = DEFAULT_NUM_BUCKETS,
    ) -> None:
        if bucket_ns <= 0:
            raise ValidationError(f"bucket_ns must be positive, got {bucket_ns}")
        if num_buckets <= 0:
            raise ValidationError(
                f"num_buckets must be positive, got {num_buckets}"
            )
        self._bucket_ns = float(bucket_ns)
        self._num_buckets = num_buckets
        self._buckets: list[list[tuple[float, int, Callable[[float], None]]]] = [
            [] for _ in range(num_buckets)
        ]
        self._cursor = 0
        self._cursor_time = 0.0
        self._wheel_end = self._bucket_ns * num_buckets
        self._wheel_count = 0
        self._overflow: list[tuple[float, int, Callable[[float], None]]] = []
        self._sequence = 0
        self._stream: list[tuple[float, Callable[[float, object], None], object]] = []
        self._stream_pos = 0
        #: Events dispatched so far (the profiling hook's events counter).
        self.processed = 0
        #: True while :meth:`run` is draining.  Batch-granting resources
        #: check this: outside the loop, a ``peek_time``-based "nothing
        #: happens before t" conclusion would be unsound, because the
        #: driver may still schedule arbitrary events before calling run.
        self.running = False

    def at(self, time: float, fn: Callable[[float], None]) -> None:
        """Schedule ``fn(time)``; same-time events run in call order."""
        sequence = self._sequence
        self._sequence = sequence + 1
        # _insert, open-coded: this is the hottest scheduling entry point.
        if time >= self._wheel_end:
            heapq.heappush(self._overflow, (time, sequence, fn))
            return
        if time < self._cursor_time:
            bucket = self._buckets[self._cursor]
        else:
            bucket = self._buckets[
                int(time / self._bucket_ns) % self._num_buckets
            ]
        heapq.heappush(bucket, (time, sequence, fn))
        self._wheel_count += 1

    def reserve(self) -> int:
        """Claim the next insertion sequence without scheduling anything.

        Pairs with :meth:`at_sequenced` (see :meth:`HeapEventLoop.reserve`
        for the contract): lets :class:`ArbitratedResource` hold its
        wake-up's tie-break position while the grant callback runs, then
        either schedule under it or batch the next grant inline.
        """
        sequence = self._sequence
        self._sequence = sequence + 1
        return sequence

    def at_sequenced(
        self, time: float, sequence: int, fn: Callable[[float], None]
    ) -> None:
        """Schedule ``fn(time)`` under a sequence from :meth:`reserve`."""
        self._insert(time, sequence, fn)

    def _insert(
        self, time: float, sequence: int, fn: Callable[[float], None]
    ) -> None:
        if time >= self._wheel_end:
            heapq.heappush(self._overflow, (time, sequence, fn))
            return
        if time < self._cursor_time:
            # An event at (or before) the current instant: the cursor's
            # bucket heap sorts it first, exactly where the heap would.
            bucket = self._buckets[self._cursor]
        else:
            bucket = self._buckets[
                int(time / self._bucket_ns) % self._num_buckets
            ]
        heapq.heappush(bucket, (time, sequence, fn))
        self._wheel_count += 1

    def feed(self, time: float, fn: Callable[[float, object], None], arg: object) -> None:
        """Pre-load one externally generated event, dispatched ``fn(time, arg)``.

        Must be called before :meth:`run`.  Fed events are sorted once
        (stably, so same-time entries keep feed order) and precede any
        dynamic event at the same timestamp — the exact order a heap
        gives arrivals scheduled before the loop starts.
        """
        self._stream.append((time, fn, arg))

    def feed_many(self, entries) -> None:
        """Pre-load ``(time, fn, arg)`` tuples in bulk (see :meth:`feed`).

        One ``list.extend`` replaces a method call per arrival — with the
        workload pre-converted via ``ndarray.tolist()``, feeding a run's
        whole arrival schedule costs a few C-level calls total.
        """
        self._stream.extend(entries)

    def _seek(self) -> bool:
        """Advance the cursor to the next non-empty bucket.

        Returns False when wheel and overflow are both empty.  Advancing
        migrates matured overflow events into the bucket they map to; an
        empty wheel jumps straight to the overflow's window instead of
        scanning idle buckets.
        """
        buckets = self._buckets
        num = self._num_buckets
        width = self._bucket_ns
        overflow = self._overflow
        while self._wheel_count:
            if buckets[self._cursor]:
                return True
            self._cursor = (self._cursor + 1) % num
            self._cursor_time += width
            end = self._wheel_end + width
            self._wheel_end = end
            while overflow and overflow[0][0] < end:
                entry = heapq.heappop(overflow)
                heapq.heappush(buckets[int(entry[0] / width) % num], entry)
                self._wheel_count += 1
        if overflow:
            lap = int(overflow[0][0] / width)
            self._cursor = lap % num
            self._cursor_time = lap * width
            end = self._cursor_time + num * width
            self._wheel_end = end
            while overflow and overflow[0][0] < end:
                entry = heapq.heappop(overflow)
                heapq.heappush(buckets[int(entry[0] / width) % num], entry)
                self._wheel_count += 1
            return True
        return False

    def peek_time(self) -> float:
        """Earliest pending event time (``inf`` when idle)."""
        head = math.inf
        if self._wheel_count or self._overflow:
            self._seek()
            head = self._buckets[self._cursor][0][0]
        if self._stream_pos < len(self._stream):
            stream_time = self._stream[self._stream_pos][0]
            if stream_time < head:
                head = stream_time
        return head

    def run(self) -> None:
        """Dispatch events until none remain."""
        self._stream.sort(key=itemgetter(0))
        stream = self._stream
        stream_len = len(stream)
        buckets = self._buckets
        heappop = heapq.heappop
        processed = self.processed
        self.running = True
        try:
            while True:
                if self._wheel_count:
                    # Fast path: the cursor bucket is usually non-empty in
                    # steady state, so skip the _seek call entirely.
                    bucket = buckets[self._cursor]
                    if not bucket:
                        self._seek()
                        bucket = buckets[self._cursor]
                    head = bucket[0][0]
                elif self._overflow:
                    self._seek()
                    bucket = buckets[self._cursor]
                    head = bucket[0][0]
                else:
                    bucket = None
                    head = None
                pos = self._stream_pos
                if pos < stream_len:
                    entry = stream[pos]
                    if head is None or entry[0] <= head:
                        self._stream_pos = pos + 1
                        processed += 1
                        entry[1](entry[0], entry[2])
                        continue
                if bucket is None:
                    break
                time, _, fn = heappop(bucket)
                self._wheel_count -= 1
                processed += 1
                fn(time)
        finally:
            self.processed = processed
            self.running = False


class SerialResource:
    """A resource that serves one request at a time (a link direction, a walker).

    The resource is described entirely by the time it next becomes free.
    ``occupy`` asks for service starting no earlier than ``earliest_start``
    and lasting ``duration``; it returns the time service begins.

    **Tie-break contract.**  Grants are FIFO in *call order*: when two
    requests mature at the same timestamp (equal ``earliest_start``, or
    both arriving while the resource is busy until that instant), the one
    whose ``occupy`` call happens first is served first and the second
    queues behind it.  There is no hidden reordering by duration, caller
    identity or hash order — the resource holds no queue at all, only
    ``free_at``, so the grant order *is* the call order.  Simulators built
    on top (the :mod:`repro.sim.nicsim` event loop orders same-time events
    by insertion sequence) rely on this to make multi-queue runs
    reproducible bit for bit across Python versions and platforms; the
    contract is pinned by ``tests/sim/test_engine_primitives.py``.
    """

    __slots__ = ("name", "_free_at", "busy_time", "served")

    def __init__(self, name: str, *, free_at: float = 0.0) -> None:
        if free_at < 0:
            raise ValidationError(f"free_at must be non-negative, got {free_at}")
        self.name = name
        self._free_at = float(free_at)
        self.busy_time = 0.0
        self.served = 0

    @property
    def free_at(self) -> float:
        """Earliest time the resource can next start serving."""
        return self._free_at

    def occupy(self, earliest_start: float, duration: float) -> float:
        """Reserve the resource; returns the actual service start time."""
        if duration < 0:
            raise ValidationError(f"duration must be non-negative, got {duration}")
        if earliest_start < 0:
            raise ValidationError(
                f"earliest_start must be non-negative, got {earliest_start}"
            )
        start = self._free_at
        if earliest_start > start:
            start = earliest_start
        self._free_at = start + duration
        self.busy_time += duration
        self.served += 1
        return start

    def utilisation(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` time the resource spent serving."""
        if elapsed <= 0:
            raise ValidationError(f"elapsed must be positive, got {elapsed}")
        return min(1.0, self.busy_time / elapsed)

    def reset(self) -> None:
        """Return the resource to its initial idle state."""
        self._free_at = 0.0
        self.busy_time = 0.0
        self.served = 0


class WorkerPool:
    """A bounded pool of in-flight transaction slots (DMA contexts / tags).

    ``acquire(now)`` returns the earliest time a slot is available (which may
    be later than ``now`` if all slots are busy); the caller then reports the
    slot busy until ``release_at`` via ``commit``.

    **Interleaving contract.**  Each ``acquire`` must be followed by its
    ``commit`` before the next ``acquire``.  ``acquire`` quotes the
    earliest-freeing slot and ``commit`` replaces exactly that slot; two
    acquires before any commit would both be quoted the *same* slot, and
    the second commit would silently replace whichever slot the first
    commit made earliest — corrupting the pool's timeline.  ``commit``
    detects the observable symptom (a release time before the slot it
    replaces frees) and raises :class:`SimulationError` instead of
    corrupting state; the contract is pinned by
    ``tests/sim/test_engine_primitives.py``.
    """

    __slots__ = ("slots", "_busy_until")

    def __init__(self, slots: int) -> None:
        if slots <= 0:
            raise ValidationError(f"slots must be positive, got {slots}")
        self.slots = slots
        # Min-heap of times at which each busy slot frees up.
        self._busy_until: list[float] = []

    def acquire(self, now: float) -> float:
        """Earliest time a slot can be handed out, given the current time."""
        if now < 0:
            raise ValidationError(f"now must be non-negative, got {now}")
        if len(self._busy_until) < self.slots:
            return now
        return max(now, self._busy_until[0])

    def commit(self, release_at: float) -> None:
        """Mark one slot busy until ``release_at``."""
        if release_at < 0:
            raise ValidationError(
                f"release_at must be non-negative, got {release_at}"
            )
        if len(self._busy_until) < self.slots:
            heapq.heappush(self._busy_until, release_at)
            return
        if not self._busy_until:  # pragma: no cover - guarded by slots > 0
            raise SimulationError("worker pool has no slots to replace")
        # Replace the earliest-finishing slot (the one acquire() handed
        # out).  A release before that slot even frees means the caller
        # committed against a *different* acquire — the interleaving
        # contract above was broken and a blind replace would corrupt the
        # pool's timeline.
        if release_at < self._busy_until[0]:
            raise SimulationError(
                "worker pool commit out of order: slot releasing at "
                f"{release_at} predates the earliest busy slot "
                f"({self._busy_until[0]}); each acquire must be committed "
                "before the next acquire"
            )
        heapq.heapreplace(self._busy_until, release_at)

    @property
    def in_flight(self) -> int:
        """Number of slots currently committed."""
        return len(self._busy_until)

    def reset(self) -> None:
        """Free every slot."""
        self._busy_until.clear()


class TagPool:
    """A bounded pool of in-flight DMA tags, granted through callbacks.

    :class:`WorkerPool` suits the cursor-based pipeline in
    :mod:`repro.sim.dma`, where a transaction's completion time is known at
    issue time and ``acquire``/``commit`` can book a slot in one step.  The
    NIC datapath event loop cannot know a DMA's completion time up front
    (host latency is resolved when the transaction *reaches* the root
    complex), so this pool is event-driven instead: ``acquire(now, grant)``
    invokes ``grant`` immediately if a tag is free, or queues the request;
    ``release(now)`` returns a tag, handing it straight to the
    longest-waiting request if one exists.

    Waiters are strictly FIFO — two requests queued while the pool is
    exhausted are granted in acquire order even when several tags free at
    the same timestamp — matching the :class:`SerialResource` tie-break
    contract so runs stay reproducible.

    The pool keeps the accounting a result record needs: total grants,
    peak concurrency, how many grants had to wait and for how long.
    """

    __slots__ = (
        "name",
        "capacity",
        "_held",
        "_waiters",
        "acquires",
        "max_in_flight",
        "waited",
        "wait_ns_total",
    )

    def __init__(self, name: str, capacity: int) -> None:
        if capacity <= 0:
            raise ValidationError(f"capacity must be positive, got {capacity}")
        self.name = name
        self.capacity = capacity
        self._held = 0
        self._waiters: deque[tuple[float, Callable[[float], None]]] = deque()
        self.acquires = 0
        self.max_in_flight = 0
        self.waited = 0
        self.wait_ns_total = 0.0

    @property
    def in_flight(self) -> int:
        """Tags currently held."""
        return self._held

    @property
    def waiting(self) -> int:
        """Requests queued for a tag."""
        return len(self._waiters)

    def acquire(self, now: float, grant: Callable[[float], None]) -> None:
        """Request a tag at ``now``; ``grant`` fires when one is held."""
        if now < 0:
            raise ValidationError(f"now must be non-negative, got {now}")
        if self._held < self.capacity:
            held = self._held + 1
            self._held = held
            self.acquires += 1
            if held > self.max_in_flight:
                self.max_in_flight = held
            grant(now)
        else:
            self._waiters.append((now, grant))

    def release(self, now: float) -> None:
        """Return a tag at ``now``, re-granting it to the oldest waiter."""
        if self._waiters:
            asked, grant = self._waiters.popleft()
            self.acquires += 1
            self.waited += 1
            if now > asked:
                self.wait_ns_total += now - asked
            grant(now)
        else:
            if self._held <= 0:
                raise SimulationError(f"tag pool {self.name} released too often")
            self._held -= 1


#: Arbitration schemes :class:`ArbitratedResource` understands.
ARBITER_SCHEMES = ("fcfs", "rr", "wrr", "age", "sliced")

#: The schemes whose grant order honours per-client weights.
WEIGHTED_SCHEMES = ("wrr", "age", "sliced")

#: Default service quantum of the ``"sliced"`` scheme (preemptible grants).
DEFAULT_QUANTUM_NS = 16.0


class ArbiterClientStats:
    """Mutable per-client accounting of one :class:`ArbitratedResource`.

    The frozen, serialisable snapshot of these counters is
    :class:`repro.sim.fabric.FabricPortStats` (built via its
    ``from_client``); this class only accumulates.

    Attributes:
        requests: requests this client submitted.
        waited: grants that could not start at their request time.
        wait_ns_total: cumulative queueing delay across all grants.
        wait_ns_max: worst single-grant queueing delay (the tail the
            ``sliced`` scheme exists to bound).
        busy_ns_total: cumulative service time this client received.
    """

    __slots__ = (
        "requests",
        "waited",
        "wait_ns_total",
        "wait_ns_max",
        "busy_ns_total",
    )

    def __init__(self) -> None:
        self.requests = 0
        self.waited = 0
        self.wait_ns_total = 0.0
        self.wait_ns_max = 0.0
        self.busy_ns_total = 0.0

    @property
    def wait_ns_mean(self) -> float:
        """Mean queueing delay per request (0 when nothing was submitted)."""
        return self.wait_ns_total / self.requests if self.requests else 0.0


class ArbitratedResource:
    """A serial resource shared by N clients under an arbitration scheme.

    :class:`SerialResource` pre-books its timeline at *call* time, so a
    burst of requests from one caller monopolises the resource no matter
    who else is waiting — exactly the unfairness a PCIe switch or root
    port avoids by keeping one upstream queue per ingress port and
    arbitrating among them.  This class models that layer: requests enter
    a per-client FIFO and the next grant is decided *when the resource
    frees*, by the configured scheme:

    * ``"fcfs"`` — the globally oldest pending request wins (ties broken
      by client index); one shared queue in effect, the behaviour closest
      to the un-arbitrated :class:`SerialResource`.
    * ``"rr"`` — round-robin over clients with pending requests, one
      grant each, starting after the last-granted client.
    * ``"wrr"`` — weighted fair service: among pending clients, grant the
      one with the smallest received service time normalised by its
      weight (``busy_ns_total / weight``), ties broken by client index.
      Under persistent backlog each client's share of the resource's busy
      time converges to its weight share; an idle client's normalised
      service falls behind, so its next request is served promptly — the
      protection a latency-sensitive victim needs against a bulk
      aggressor.
    * ``"age"`` — weighted aging (a deadline-style scheme): grant the
      pending request with the largest ``(now - asked) * weight``, ties
      broken by client index.  With equal weights this serves the oldest
      request like fcfs; weighting a latency-sensitive client effectively
      shortens its deadline, so its requests overtake an aggressor's
      backlog once they have aged a fraction ``1/weight`` as long.
    * ``"sliced"`` — preemptible weighted fair service: pick order is
      wrr's, but service is granted in quanta of ``quantum_ns``; a request
      longer than one quantum is put back at the head of its queue with
      the remainder, so a victim's request never waits behind more than
      the in-flight *slice* of a bulk grant instead of its full service
      time.  The grant callback fires when the final slice is dispatched
      and receives the *virtual* start time ``completion - duration``, so
      callers computing ``start + duration`` observe the true completion;
      queueing accounting (``wait_*``) uses the same virtual start and
      therefore includes preemption gaps.

    The class is event-driven: it needs a ``schedule(time, fn)`` hook (an
    event loop's ``at``) so it can wake itself when the in-flight grant's
    service ends.  Grants are delivered through ``grant(start_time)``
    callbacks; service for a grant occupies ``[start, start + duration)``.

    Determinism: grant order is a pure function of (request times, call
    order, scheme, weights, quantum); same-time dispatch decisions use
    client index as the final tie-break, so runs reproduce bit for bit.

    **Batched grants.**  With :meth:`attach_loop`, back-to-back grants
    skip the scheduler round trip: when the loop's next pending event is
    strictly *after* this grant's service end, nothing can change the
    queues before the resource frees, so the next grant is dispatched
    inline instead of through a wake-up event.  The wake-up's tie-break
    sequence is reserved up front (:meth:`EventLoop.reserve`), so when
    batching is *not* possible the scheduled wake-up sorts exactly where
    the unbatched code would have put it — pop order, and therefore every
    seeded golden, is bit-identical either way.
    """

    __slots__ = (
        "name",
        "clients",
        "scheme",
        "weights",
        "quantum_ns",
        "_schedule",
        "_loop",
        "_queues",
        "_sequence",
        "_busy_until",
        "_dispatch_pending",
        "_last_granted",
        "stats",
    )

    def __init__(
        self,
        name: str,
        clients: int,
        *,
        schedule: Callable[[float, Callable[[float], None]], None],
        scheme: str = "fcfs",
        weights: "tuple[float, ...] | None" = None,
        quantum_ns: float | None = None,
    ) -> None:
        if clients <= 0:
            raise ValidationError(f"clients must be positive, got {clients}")
        if scheme not in ARBITER_SCHEMES:
            raise ValidationError(
                f"unknown arbitration scheme {scheme!r}; "
                f"valid: {', '.join(ARBITER_SCHEMES)}"
            )
        if scheme == "sliced":
            if quantum_ns is None:
                quantum_ns = DEFAULT_QUANTUM_NS
            if quantum_ns <= 0:
                raise ValidationError(
                    f"quantum_ns must be positive, got {quantum_ns}"
                )
        elif quantum_ns is not None:
            raise ValidationError(
                f"quantum_ns only applies to the sliced scheme, not {scheme!r}"
            )
        if weights is None:
            weights = (1.0,) * clients
        if len(weights) != clients:
            raise ValidationError(
                f"need one weight per client ({clients}), got {len(weights)}"
            )
        if any(weight <= 0 for weight in weights):
            raise ValidationError(f"weights must be positive, got {weights}")
        self.name = name
        self.clients = clients
        self.scheme = scheme
        self.weights = tuple(float(weight) for weight in weights)
        self.quantum_ns = None if quantum_ns is None else float(quantum_ns)
        self._schedule = schedule
        self._loop: "EventLoop | HeapEventLoop | None" = None
        # Queue entries are (asked, sequence, remaining, grant, total):
        # remaining == total except for a preempted slice remnant.
        self._queues: tuple[
            deque[tuple[float, int, float, Callable[[float], None], float]],
            ...,
        ] = tuple(deque() for _ in range(clients))
        self._sequence = 0
        self._busy_until = 0.0
        self._dispatch_pending = False
        self._last_granted = clients - 1
        self.stats = tuple(ArbiterClientStats() for _ in range(clients))

    @property
    def pending(self) -> int:
        """Requests currently queued across all clients."""
        return sum(len(queue) for queue in self._queues)

    def set_weights(self, weights: "tuple[float, ...]") -> None:
        """Replace the per-client weights mid-run (control-plane actuator).

        Safe at any time: the schedulers read ``self.weights`` at pick
        time, so the new weights govern every grant from the next
        dispatch on, while queued requests and in-flight grants are
        untouched.  Same validation as construction.
        """
        if len(weights) != self.clients:
            raise ValidationError(
                f"need one weight per client ({self.clients}), got {len(weights)}"
            )
        if any(weight <= 0 for weight in weights):
            raise ValidationError(f"weights must be positive, got {weights}")
        self.weights = tuple(float(weight) for weight in weights)

    @property
    def busy_until(self) -> float:
        """Time the in-flight grant's service ends (0 before any grant)."""
        return self._busy_until

    def request(
        self,
        client: int,
        now: float,
        duration: float,
        grant: Callable[[float], None],
    ) -> None:
        """Queue a request for ``duration`` of service; ``grant`` fires at start."""
        if not 0 <= client < self.clients:
            raise ValidationError(
                f"client must be within [0, {self.clients}), got {client}"
            )
        if now < 0:
            raise ValidationError(f"now must be non-negative, got {now}")
        if duration < 0:
            raise ValidationError(f"duration must be non-negative, got {duration}")
        self._queues[client].append(
            (now, self._sequence, duration, grant, duration)
        )
        self._sequence += 1
        self.stats[client].requests += 1
        if not self._dispatch_pending and self._busy_until <= now:
            self._dispatch(now)

    # -- scheduling ------------------------------------------------------------

    def _pick(self, eligible: list[int], now: float) -> int:
        """Choose the next client to serve among those with arrived requests."""
        if self.scheme == "fcfs":
            # Globally oldest request; the per-client queues are FIFO, so
            # comparing heads suffices.  The submission sequence breaks
            # same-time ties in call order, like SerialResource.
            return min(
                eligible, key=lambda index: self._queues[index][0][:2]
            )
        if self.scheme == "rr":
            for offset in range(1, self.clients + 1):
                index = (self._last_granted + offset) % self.clients
                if index in eligible:
                    return index
            return eligible[0]  # pragma: no cover - eligible is non-empty
        if self.scheme == "age":
            # Largest weighted age first; max with (-index) makes the
            # lowest client index win a tie deterministically.
            return max(
                eligible,
                key=lambda index: (
                    (now - self._queues[index][0][0]) * self.weights[index],
                    -index,
                ),
            )
        # wrr and sliced: least normalised service first.
        return min(
            eligible,
            key=lambda index: (
                self.stats[index].busy_ns_total / self.weights[index],
                index,
            ),
        )

    def attach_loop(self, loop: "EventLoop | HeapEventLoop") -> None:
        """Enable batched grants against ``loop``.

        ``loop`` must be the event loop behind the ``schedule`` hook this
        resource was constructed with; batching consults its
        ``peek_time``/``running`` state to prove the inline dispatch is
        indistinguishable from a scheduled wake-up.
        """
        self._loop = loop

    def _dispatch(self, now: float) -> None:
        loop = self._loop
        queues = self._queues
        while True:
            if now < self._busy_until:  # pragma: no cover - defensive guard
                return
            backlog = [
                index for index in range(self.clients) if queues[index]
            ]
            if not backlog:
                return
            eligible = [
                index for index in backlog if queues[index][0][0] <= now
            ]
            if not eligible:
                # Every queued request is in the caller's future (only
                # possible when the resource is driven outside an event
                # loop); sleep until the earliest one arrives.
                wake = min(queues[index][0][0] for index in backlog)
                self._dispatch_pending = True
                self._schedule(wake, self._on_free)
                return
            client = self._pick(eligible, now)
            asked, sequence, remaining, grant, total = queues[client].popleft()
            stats = self.stats[client]
            sliced_remnant = (
                self.scheme == "sliced"
                and self.quantum_ns is not None
                and remaining > self.quantum_ns
            )
            if sliced_remnant:
                # Serve one quantum and put the remnant back at the head
                # of the client's queue (same asked time and sequence, so
                # fcfs-style ordering facts about the original request
                # survive slicing).
                served = self.quantum_ns
                queues[client].appendleft(
                    (asked, sequence, remaining - served, grant, total)
                )
            else:
                served = remaining
            stats.busy_ns_total += served
            end = now + served
            self._busy_until = end
            self._last_granted = client
            self._dispatch_pending = True
            if loop is None or not loop.running:
                # Legacy path: wake up through the scheduler.  The wake-up
                # is scheduled *before* the grant callback runs, so it
                # sorts ahead of any same-time event the grant schedules.
                self._schedule(end, self._on_free)
                if not sliced_remnant:
                    self._grant(stats, grant, end - total, asked)
                return
            # Batched path: hold the wake-up's tie-break position while
            # the grant callback runs, then either dispatch the next grant
            # inline (nothing pending before the service end, so the loop
            # state at ``end`` is already final) or schedule the wake-up
            # under the reserved sequence — same pop order either way.
            wake_sequence = loop.reserve()
            if not sliced_remnant:
                self._grant(stats, grant, end - total, asked)
            if loop.peek_time() > end:
                self._dispatch_pending = False
                now = end
                continue
            loop.at_sequenced(end, wake_sequence, self._on_free)
            return

    def _grant(
        self,
        stats: ArbiterClientStats,
        grant: Callable[[float], None],
        start: float,
        asked: float,
    ) -> None:
        # The virtual start backdates a sliced grant so that
        # start + total == the true completion time; for unsliced grants
        # (remaining == total) it is exactly the dispatch time.
        if start > asked:
            wait = start - asked
            stats.waited += 1
            stats.wait_ns_total += wait
            if wait > stats.wait_ns_max:
                stats.wait_ns_max = wait
        grant(start)

    def _on_free(self, now: float) -> None:
        self._dispatch_pending = False
        self._dispatch(now)
