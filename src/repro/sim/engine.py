"""Small building blocks for the transaction-level simulation.

The DMA-engine simulation in :mod:`repro.sim.dma` is a pipelined,
cursor-based discrete-event model rather than a general event-queue
simulator: transactions are generated in issue order and the only shared
resources are serial ones (each link direction, the IOMMU page walker, the
root-complex ingress pipeline) plus a bounded pool of in-flight DMA slots.
These two primitives — :class:`SerialResource` and :class:`WorkerPool` —
capture exactly that and keep the hot loop simple and fast.

Two event-driven variants complete the set for the NIC datapath event loop
in :mod:`repro.sim.nicsim`: :class:`TagPool` (bounded in-flight DMA tags
granted through callbacks) and :class:`ArbitratedResource`, a serial
resource shared by several *clients* (devices behind one PCIe switch or
root port) whose pending requests are queued per client and dispatched by
an arbitration scheme — first-come-first-served, round-robin, weighted,
weighted-aging or preemptively sliced — instead of the implicit call-order
FIFO of :class:`SerialResource`.  :mod:`repro.sim.topology` composes these
per-port arbiters into switch trees.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable

from ..errors import SimulationError, ValidationError


class SerialResource:
    """A resource that serves one request at a time (a link direction, a walker).

    The resource is described entirely by the time it next becomes free.
    ``occupy`` asks for service starting no earlier than ``earliest_start``
    and lasting ``duration``; it returns the time service begins.

    **Tie-break contract.**  Grants are FIFO in *call order*: when two
    requests mature at the same timestamp (equal ``earliest_start``, or
    both arriving while the resource is busy until that instant), the one
    whose ``occupy`` call happens first is served first and the second
    queues behind it.  There is no hidden reordering by duration, caller
    identity or hash order — the resource holds no queue at all, only
    ``free_at``, so the grant order *is* the call order.  Simulators built
    on top (the :mod:`repro.sim.nicsim` event loop orders same-time events
    by insertion sequence) rely on this to make multi-queue runs
    reproducible bit for bit across Python versions and platforms; the
    contract is pinned by ``tests/sim/test_engine_primitives.py``.
    """

    def __init__(self, name: str, *, free_at: float = 0.0) -> None:
        if free_at < 0:
            raise ValidationError(f"free_at must be non-negative, got {free_at}")
        self.name = name
        self._free_at = float(free_at)
        self.busy_time = 0.0
        self.served = 0

    @property
    def free_at(self) -> float:
        """Earliest time the resource can next start serving."""
        return self._free_at

    def occupy(self, earliest_start: float, duration: float) -> float:
        """Reserve the resource; returns the actual service start time."""
        if duration < 0:
            raise ValidationError(f"duration must be non-negative, got {duration}")
        if earliest_start < 0:
            raise ValidationError(
                f"earliest_start must be non-negative, got {earliest_start}"
            )
        start = max(earliest_start, self._free_at)
        self._free_at = start + duration
        self.busy_time += duration
        self.served += 1
        return start

    def utilisation(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` time the resource spent serving."""
        if elapsed <= 0:
            raise ValidationError(f"elapsed must be positive, got {elapsed}")
        return min(1.0, self.busy_time / elapsed)

    def reset(self) -> None:
        """Return the resource to its initial idle state."""
        self._free_at = 0.0
        self.busy_time = 0.0
        self.served = 0


class WorkerPool:
    """A bounded pool of in-flight transaction slots (DMA contexts / tags).

    ``acquire(now)`` returns the earliest time a slot is available (which may
    be later than ``now`` if all slots are busy); the caller then reports the
    slot busy until ``release_at`` via ``commit``.
    """

    def __init__(self, slots: int) -> None:
        if slots <= 0:
            raise ValidationError(f"slots must be positive, got {slots}")
        self.slots = slots
        # Min-heap of times at which each busy slot frees up.
        self._busy_until: list[float] = []

    def acquire(self, now: float) -> float:
        """Earliest time a slot can be handed out, given the current time."""
        if now < 0:
            raise ValidationError(f"now must be non-negative, got {now}")
        if len(self._busy_until) < self.slots:
            return now
        return max(now, self._busy_until[0])

    def commit(self, release_at: float) -> None:
        """Mark one slot busy until ``release_at``."""
        if release_at < 0:
            raise ValidationError(
                f"release_at must be non-negative, got {release_at}"
            )
        if len(self._busy_until) < self.slots:
            heapq.heappush(self._busy_until, release_at)
            return
        if not self._busy_until:  # pragma: no cover - guarded by slots > 0
            raise SimulationError("worker pool has no slots to replace")
        # Replace the earliest-finishing slot (the one acquire() handed out).
        heapq.heapreplace(self._busy_until, release_at)

    @property
    def in_flight(self) -> int:
        """Number of slots currently committed."""
        return len(self._busy_until)

    def reset(self) -> None:
        """Free every slot."""
        self._busy_until.clear()


class TagPool:
    """A bounded pool of in-flight DMA tags, granted through callbacks.

    :class:`WorkerPool` suits the cursor-based pipeline in
    :mod:`repro.sim.dma`, where a transaction's completion time is known at
    issue time and ``acquire``/``commit`` can book a slot in one step.  The
    NIC datapath event loop cannot know a DMA's completion time up front
    (host latency is resolved when the transaction *reaches* the root
    complex), so this pool is event-driven instead: ``acquire(now, grant)``
    invokes ``grant`` immediately if a tag is free, or queues the request;
    ``release(now)`` returns a tag, handing it straight to the
    longest-waiting request if one exists.

    Waiters are strictly FIFO — two requests queued while the pool is
    exhausted are granted in acquire order even when several tags free at
    the same timestamp — matching the :class:`SerialResource` tie-break
    contract so runs stay reproducible.

    The pool keeps the accounting a result record needs: total grants,
    peak concurrency, how many grants had to wait and for how long.
    """

    def __init__(self, name: str, capacity: int) -> None:
        if capacity <= 0:
            raise ValidationError(f"capacity must be positive, got {capacity}")
        self.name = name
        self.capacity = capacity
        self._held = 0
        self._waiters: deque[tuple[float, Callable[[float], None]]] = deque()
        self.acquires = 0
        self.max_in_flight = 0
        self.waited = 0
        self.wait_ns_total = 0.0

    @property
    def in_flight(self) -> int:
        """Tags currently held."""
        return self._held

    @property
    def waiting(self) -> int:
        """Requests queued for a tag."""
        return len(self._waiters)

    def acquire(self, now: float, grant: Callable[[float], None]) -> None:
        """Request a tag at ``now``; ``grant`` fires when one is held."""
        if now < 0:
            raise ValidationError(f"now must be non-negative, got {now}")
        if self._held < self.capacity:
            self._held += 1
            self.acquires += 1
            self.max_in_flight = max(self.max_in_flight, self._held)
            grant(now)
        else:
            self._waiters.append((now, grant))

    def release(self, now: float) -> None:
        """Return a tag at ``now``, re-granting it to the oldest waiter."""
        if self._waiters:
            asked, grant = self._waiters.popleft()
            self.acquires += 1
            self.waited += 1
            self.wait_ns_total += max(0.0, now - asked)
            grant(now)
        else:
            if self._held <= 0:
                raise SimulationError(f"tag pool {self.name} released too often")
            self._held -= 1


#: Arbitration schemes :class:`ArbitratedResource` understands.
ARBITER_SCHEMES = ("fcfs", "rr", "wrr", "age", "sliced")

#: The schemes whose grant order honours per-client weights.
WEIGHTED_SCHEMES = ("wrr", "age", "sliced")

#: Default service quantum of the ``"sliced"`` scheme (preemptible grants).
DEFAULT_QUANTUM_NS = 16.0


class ArbiterClientStats:
    """Mutable per-client accounting of one :class:`ArbitratedResource`.

    The frozen, serialisable snapshot of these counters is
    :class:`repro.sim.fabric.FabricPortStats` (built via its
    ``from_client``); this class only accumulates.

    Attributes:
        requests: requests this client submitted.
        waited: grants that could not start at their request time.
        wait_ns_total: cumulative queueing delay across all grants.
        wait_ns_max: worst single-grant queueing delay (the tail the
            ``sliced`` scheme exists to bound).
        busy_ns_total: cumulative service time this client received.
    """

    __slots__ = (
        "requests",
        "waited",
        "wait_ns_total",
        "wait_ns_max",
        "busy_ns_total",
    )

    def __init__(self) -> None:
        self.requests = 0
        self.waited = 0
        self.wait_ns_total = 0.0
        self.wait_ns_max = 0.0
        self.busy_ns_total = 0.0

    @property
    def wait_ns_mean(self) -> float:
        """Mean queueing delay per request (0 when nothing was submitted)."""
        return self.wait_ns_total / self.requests if self.requests else 0.0


class ArbitratedResource:
    """A serial resource shared by N clients under an arbitration scheme.

    :class:`SerialResource` pre-books its timeline at *call* time, so a
    burst of requests from one caller monopolises the resource no matter
    who else is waiting — exactly the unfairness a PCIe switch or root
    port avoids by keeping one upstream queue per ingress port and
    arbitrating among them.  This class models that layer: requests enter
    a per-client FIFO and the next grant is decided *when the resource
    frees*, by the configured scheme:

    * ``"fcfs"`` — the globally oldest pending request wins (ties broken
      by client index); one shared queue in effect, the behaviour closest
      to the un-arbitrated :class:`SerialResource`.
    * ``"rr"`` — round-robin over clients with pending requests, one
      grant each, starting after the last-granted client.
    * ``"wrr"`` — weighted fair service: among pending clients, grant the
      one with the smallest received service time normalised by its
      weight (``busy_ns_total / weight``), ties broken by client index.
      Under persistent backlog each client's share of the resource's busy
      time converges to its weight share; an idle client's normalised
      service falls behind, so its next request is served promptly — the
      protection a latency-sensitive victim needs against a bulk
      aggressor.
    * ``"age"`` — weighted aging (a deadline-style scheme): grant the
      pending request with the largest ``(now - asked) * weight``, ties
      broken by client index.  With equal weights this serves the oldest
      request like fcfs; weighting a latency-sensitive client effectively
      shortens its deadline, so its requests overtake an aggressor's
      backlog once they have aged a fraction ``1/weight`` as long.
    * ``"sliced"`` — preemptible weighted fair service: pick order is
      wrr's, but service is granted in quanta of ``quantum_ns``; a request
      longer than one quantum is put back at the head of its queue with
      the remainder, so a victim's request never waits behind more than
      the in-flight *slice* of a bulk grant instead of its full service
      time.  The grant callback fires when the final slice is dispatched
      and receives the *virtual* start time ``completion - duration``, so
      callers computing ``start + duration`` observe the true completion;
      queueing accounting (``wait_*``) uses the same virtual start and
      therefore includes preemption gaps.

    The class is event-driven: it needs a ``schedule(time, fn)`` hook (an
    event loop's ``at``) so it can wake itself when the in-flight grant's
    service ends.  Grants are delivered through ``grant(start_time)``
    callbacks; service for a grant occupies ``[start, start + duration)``.

    Determinism: grant order is a pure function of (request times, call
    order, scheme, weights, quantum); same-time dispatch decisions use
    client index as the final tie-break, so runs reproduce bit for bit.
    """

    def __init__(
        self,
        name: str,
        clients: int,
        *,
        schedule: Callable[[float, Callable[[float], None]], None],
        scheme: str = "fcfs",
        weights: "tuple[float, ...] | None" = None,
        quantum_ns: float | None = None,
    ) -> None:
        if clients <= 0:
            raise ValidationError(f"clients must be positive, got {clients}")
        if scheme not in ARBITER_SCHEMES:
            raise ValidationError(
                f"unknown arbitration scheme {scheme!r}; "
                f"valid: {', '.join(ARBITER_SCHEMES)}"
            )
        if scheme == "sliced":
            if quantum_ns is None:
                quantum_ns = DEFAULT_QUANTUM_NS
            if quantum_ns <= 0:
                raise ValidationError(
                    f"quantum_ns must be positive, got {quantum_ns}"
                )
        elif quantum_ns is not None:
            raise ValidationError(
                f"quantum_ns only applies to the sliced scheme, not {scheme!r}"
            )
        if weights is None:
            weights = (1.0,) * clients
        if len(weights) != clients:
            raise ValidationError(
                f"need one weight per client ({clients}), got {len(weights)}"
            )
        if any(weight <= 0 for weight in weights):
            raise ValidationError(f"weights must be positive, got {weights}")
        self.name = name
        self.clients = clients
        self.scheme = scheme
        self.weights = tuple(float(weight) for weight in weights)
        self.quantum_ns = None if quantum_ns is None else float(quantum_ns)
        self._schedule = schedule
        # Queue entries are (asked, sequence, remaining, grant, total):
        # remaining == total except for a preempted slice remnant.
        self._queues: tuple[
            deque[tuple[float, int, float, Callable[[float], None], float]],
            ...,
        ] = tuple(deque() for _ in range(clients))
        self._sequence = 0
        self._busy_until = 0.0
        self._dispatch_pending = False
        self._last_granted = clients - 1
        self.stats = tuple(ArbiterClientStats() for _ in range(clients))

    @property
    def pending(self) -> int:
        """Requests currently queued across all clients."""
        return sum(len(queue) for queue in self._queues)

    @property
    def busy_until(self) -> float:
        """Time the in-flight grant's service ends (0 before any grant)."""
        return self._busy_until

    def request(
        self,
        client: int,
        now: float,
        duration: float,
        grant: Callable[[float], None],
    ) -> None:
        """Queue a request for ``duration`` of service; ``grant`` fires at start."""
        if not 0 <= client < self.clients:
            raise ValidationError(
                f"client must be within [0, {self.clients}), got {client}"
            )
        if now < 0:
            raise ValidationError(f"now must be non-negative, got {now}")
        if duration < 0:
            raise ValidationError(f"duration must be non-negative, got {duration}")
        self._queues[client].append(
            (now, self._sequence, duration, grant, duration)
        )
        self._sequence += 1
        self.stats[client].requests += 1
        if not self._dispatch_pending and self._busy_until <= now:
            self._dispatch(now)

    # -- scheduling ------------------------------------------------------------

    def _pick(self, eligible: list[int], now: float) -> int:
        """Choose the next client to serve among those with arrived requests."""
        if self.scheme == "fcfs":
            # Globally oldest request; the per-client queues are FIFO, so
            # comparing heads suffices.  The submission sequence breaks
            # same-time ties in call order, like SerialResource.
            return min(
                eligible, key=lambda index: self._queues[index][0][:2]
            )
        if self.scheme == "rr":
            for offset in range(1, self.clients + 1):
                index = (self._last_granted + offset) % self.clients
                if index in eligible:
                    return index
            return eligible[0]  # pragma: no cover - eligible is non-empty
        if self.scheme == "age":
            # Largest weighted age first; max with (-index) makes the
            # lowest client index win a tie deterministically.
            return max(
                eligible,
                key=lambda index: (
                    (now - self._queues[index][0][0]) * self.weights[index],
                    -index,
                ),
            )
        # wrr and sliced: least normalised service first.
        return min(
            eligible,
            key=lambda index: (
                self.stats[index].busy_ns_total / self.weights[index],
                index,
            ),
        )

    def _dispatch(self, now: float) -> None:
        if now < self._busy_until:  # pragma: no cover - defensive guard
            return
        backlog = [
            index for index in range(self.clients) if self._queues[index]
        ]
        if not backlog:
            return
        eligible = [
            index for index in backlog if self._queues[index][0][0] <= now
        ]
        if not eligible:
            # Every queued request is in the caller's future (only possible
            # when the resource is driven outside an event loop); sleep
            # until the earliest one arrives.
            wake = min(self._queues[index][0][0] for index in backlog)
            self._dispatch_pending = True
            self._schedule(wake, self._on_free)
            return
        client = self._pick(eligible, now)
        asked, sequence, remaining, grant, total = self._queues[client].popleft()
        stats = self.stats[client]
        if (
            self.scheme == "sliced"
            and self.quantum_ns is not None
            and remaining > self.quantum_ns
        ):
            # Serve one quantum and put the remnant back at the head of the
            # client's queue (same asked time and sequence, so fcfs-style
            # ordering facts about the original request survive slicing).
            served = self.quantum_ns
            self._queues[client].appendleft(
                (asked, sequence, remaining - served, grant, total)
            )
            stats.busy_ns_total += served
            self._busy_until = now + served
            self._last_granted = client
            self._dispatch_pending = True
            self._schedule(self._busy_until, self._on_free)
            return
        stats.busy_ns_total += remaining
        self._busy_until = now + remaining
        self._last_granted = client
        self._dispatch_pending = True
        self._schedule(self._busy_until, self._on_free)
        # The virtual start backdates a sliced grant so that
        # start + total == the true completion time; for unsliced grants
        # (remaining == total) it is exactly ``now``.
        start = now + remaining - total
        if start > asked:
            wait = start - asked
            stats.waited += 1
            stats.wait_ns_total += wait
            stats.wait_ns_max = max(stats.wait_ns_max, wait)
        grant(start)

    def _on_free(self, now: float) -> None:
        self._dispatch_pending = False
        self._dispatch(now)
