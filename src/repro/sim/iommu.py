"""IOMMU and IOTLB model.

When the IOMMU is enabled, every address in a PCIe transaction is an I/O
virtual address that must be translated.  Translations are cached in a small
IOTLB; a miss forces a multi-level page-table walk which the paper measures
at roughly 330 ns on its Intel systems, and which additionally occupies the
IOMMU's walk machinery, throttling the sustainable transaction rate.  The
paper infers a 64-entry IOTLB from the 256 KiB working-set knee with 4 KiB
pages (§6.5) and recommends super-pages to avoid the cliff.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from ..errors import ValidationError
from ..units import KIB, MIB, GIB

#: Page sizes supported by the model (4 KiB, 2 MiB super-pages, 1 GiB pages).
SUPPORTED_PAGE_SIZES = (4 * KIB, 2 * MIB, 1 * GIB)

#: IOTLB capacity the paper infers for its Intel systems (§6.5).
DEFAULT_IOTLB_ENTRIES = 64
#: Cost of an IOTLB miss (full page table walk) measured in §6.5.
DEFAULT_WALK_LATENCY_NS = 330.0
#: Time the page-walk machinery is occupied per miss; bounds the transaction
#: rate under a miss storm and therefore the large-window bandwidth drop.
DEFAULT_WALKER_OCCUPANCY_NS = 60.0


@dataclass
class IommuStats:
    """Counters kept by the IOMMU model."""

    translations: int = 0
    hits: int = 0
    misses: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of translations served by the IOTLB."""
        return self.hits / self.translations if self.translations else 0.0

    @property
    def miss_rate(self) -> float:
        """Fraction of translations requiring a page-table walk."""
        return self.misses / self.translations if self.translations else 0.0


@dataclass(frozen=True)
class TranslationResult:
    """Outcome of translating one transaction's address."""

    hit: bool
    latency_ns: float
    walker_occupancy_ns: float = 0.0


class Iotlb:
    """A fully associative, LRU Translation Lookaside Buffer for I/O addresses."""

    def __init__(self, entries: int = DEFAULT_IOTLB_ENTRIES) -> None:
        if entries <= 0:
            raise ValidationError(f"IOTLB entries must be positive, got {entries}")
        self.entries = entries
        self._lru: OrderedDict[int, None] = OrderedDict()

    def lookup(self, page: int) -> bool:
        """Look up a page, updating LRU order; returns True on hit."""
        if page in self._lru:
            self._lru.move_to_end(page)
            return True
        return False

    def insert(self, page: int) -> int | None:
        """Insert a translation, returning the evicted page if any."""
        evicted = None
        if page in self._lru:
            self._lru.move_to_end(page)
            return None
        if len(self._lru) >= self.entries:
            evicted, _ = self._lru.popitem(last=False)
        self._lru[page] = None
        return evicted

    def invalidate_all(self) -> None:
        """Drop every cached translation (e.g. after an unmap)."""
        self._lru.clear()

    def __len__(self) -> int:
        return len(self._lru)

    def __contains__(self, page: int) -> bool:
        return page in self._lru


@dataclass
class IommuConfig:
    """Static configuration of the IOMMU model.

    Attributes:
        enabled: whether DMA addresses are translated at all (``intel_iommu=on``).
        page_size: page size of the IOVA mappings; 4 KiB unless super-pages
            are used (``sp_off`` forces 4 KiB as in the paper's experiments).
        iotlb_entries: number of IOTLB entries.
        walk_latency_ns: latency added to a transaction on an IOTLB miss.
        walker_occupancy_ns: time the walker is busy per miss (serialises
            concurrent misses and throttles throughput).
        hit_latency_ns: latency added on an IOTLB hit (effectively free).
    """

    enabled: bool = False
    page_size: int = 4 * KIB
    iotlb_entries: int = DEFAULT_IOTLB_ENTRIES
    walk_latency_ns: float = DEFAULT_WALK_LATENCY_NS
    walker_occupancy_ns: float = DEFAULT_WALKER_OCCUPANCY_NS
    hit_latency_ns: float = 0.0

    def __post_init__(self) -> None:
        if self.page_size not in SUPPORTED_PAGE_SIZES:
            raise ValidationError(
                f"page_size must be one of {SUPPORTED_PAGE_SIZES}, got {self.page_size}"
            )
        if self.iotlb_entries <= 0:
            raise ValidationError(
                f"iotlb_entries must be positive, got {self.iotlb_entries}"
            )
        for attr in ("walk_latency_ns", "walker_occupancy_ns", "hit_latency_ns"):
            if getattr(self, attr) < 0:
                raise ValidationError(f"{attr} must be non-negative")

    @property
    def reach_bytes(self) -> int:
        """Working-set size fully covered by the IOTLB (entries x page size)."""
        return self.iotlb_entries * self.page_size


class Iommu:
    """Behavioural IOMMU: translates transaction addresses through the IOTLB."""

    def __init__(self, config: IommuConfig | None = None) -> None:
        self.config = config or IommuConfig()
        self.iotlb = Iotlb(self.config.iotlb_entries)
        self.stats = IommuStats()

    @property
    def enabled(self) -> bool:
        """Whether translation is active."""
        return self.config.enabled

    def page_of(self, address: int) -> int:
        """Page number containing ``address`` for the configured page size."""
        if address < 0:
            raise ValidationError(f"address must be non-negative, got {address}")
        return address // self.config.page_size

    def translate(self, address: int) -> TranslationResult:
        """Translate one transaction's start address.

        A transaction that spans two pages would in reality require two
        translations; pcie-bench transfers are at most 2 KiB and start
        cache-line aligned, so a single translation per transaction is the
        common case and the model keeps that simplification.
        """
        if not self.config.enabled:
            return TranslationResult(hit=True, latency_ns=0.0)
        page = self.page_of(address)
        self.stats.translations += 1
        if self.iotlb.lookup(page):
            self.stats.hits += 1
            return TranslationResult(hit=True, latency_ns=self.config.hit_latency_ns)
        self.stats.misses += 1
        self.iotlb.insert(page)
        return TranslationResult(
            hit=False,
            latency_ns=self.config.walk_latency_ns,
            walker_occupancy_ns=self.config.walker_occupancy_ns,
        )

    def warm(self, addresses: list[int]) -> None:
        """Pre-load translations (e.g. after the driver maps the buffer)."""
        for address in addresses:
            self.iotlb.insert(self.page_of(address))

    def invalidate(self) -> None:
        """Invalidate the IOTLB (unmap / domain flush)."""
        self.iotlb.invalidate_all()
        self.stats.invalidations += 1

    def reset_stats(self) -> None:
        """Zero the counters (between benchmark phases)."""
        self.stats = IommuStats()

    def expected_miss_rate(self, window_pages: int) -> float:
        """Analytical steady-state miss rate for uniform access over N pages.

        With a fully associative LRU TLB of E entries and uniform random
        page accesses over ``window_pages`` pages, the steady-state hit rate
        is ``min(1, E / window_pages)``.
        """
        if window_pages <= 0:
            raise ValidationError(
                f"window_pages must be positive, got {window_pages}"
            )
        if not self.config.enabled:
            return 0.0
        return max(0.0, 1.0 - self.config.iotlb_entries / window_pages)
