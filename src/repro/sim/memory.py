"""DRAM / memory-controller model.

The memory system's contribution to a DMA is folded into a small number of
calibrated constants: the time to fetch a line from DRAM through the
integrated memory controller, the discount when the LLC already holds the
line, and the cost of writing a dirty victim back.  Per-channel bandwidth is
modelled as a cap that is far above anything a single Gen3 x8 device can
generate, matching the paper's observation that DRAM bandwidth is never the
bottleneck for these workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ValidationError


@dataclass(frozen=True)
class MemoryConfig:
    """Calibrated constants for the host memory path.

    Attributes:
        dram_access_ns: additional latency of servicing a DMA from DRAM
            compared to an LLC hit (~70 ns on the paper's systems, §6.3).
        writeback_ns: penalty when a dirty line must be flushed before a DDIO
            write allocation can proceed (~70 ns, §6.3).
        channel_bandwidth_gbps: aggregate DRAM bandwidth; only relevant when
            simulating many devices, never the bottleneck for one NIC.
    """

    dram_access_ns: float = 70.0
    writeback_ns: float = 70.0
    channel_bandwidth_gbps: float = 400.0

    def __post_init__(self) -> None:
        for attr in ("dram_access_ns", "writeback_ns", "channel_bandwidth_gbps"):
            if getattr(self, attr) < 0:
                raise ValidationError(f"{attr} must be non-negative")


class MemorySystem:
    """Stateless helper answering latency questions about the memory path."""

    def __init__(self, config: MemoryConfig | None = None) -> None:
        self.config = config or MemoryConfig()

    def read_penalty_ns(self, *, cache_hit: bool) -> float:
        """Extra latency versus an LLC hit when reading a line."""
        return 0.0 if cache_hit else self.config.dram_access_ns

    def write_allocation_penalty_ns(self, *, writeback_required: bool) -> float:
        """Extra latency for a DDIO write allocation that must evict a dirty line."""
        return self.config.writeback_ns if writeback_required else 0.0

    def bytes_per_ns(self) -> float:
        """Memory bandwidth cap expressed in bytes per nanosecond."""
        return self.config.channel_bandwidth_gbps * 0.125
