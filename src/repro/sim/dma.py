"""DMA engine simulation: turning device + host models into measurements.

This module is the simulated counterpart of the pcie-bench firmware/gateware
(§5.1, §5.2): it issues DMA transactions against the host model and measures
either per-transaction latency (one transaction outstanding, as the latency
benchmarks do) or sustained bandwidth (as many transactions in flight as the
device supports, as the bandwidth benchmarks do).

The bandwidth simulation is a cursor-based pipelined model.  Transactions
are generated in issue order; the shared serial resources are the two link
directions, the root-complex ingress pipeline and the IOMMU page walker, and
the device bounds concurrency with a finite pool of in-flight DMA slots and
a minimum spacing between issues.  This reproduces the three regimes the
paper observes: link-limited (large transfers), issue-rate-limited (small
writes) and latency/concurrency-limited (small reads), plus the collapses
caused by IOTLB misses and remote NUMA placement.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..core.bandwidth import dma_read_wire_bytes, dma_write_wire_bytes
from ..core.config import PAPER_DEFAULT_CONFIG, PCIeConfig
from ..errors import BenchmarkError, ValidationError
from ..units import bytes_over_time_to_gbps
from .devices import DeviceModel
from .engine import SerialResource, WorkerPool
from .host import HostSystem
from .hostbuffer import AccessPattern, HostBuffer


class DmaOperation(enum.Enum):
    """Transaction mixes supported by the engine."""

    READ = "read"
    WRITE = "write"
    READ_WRITE = "read_write"
    WRITE_READ = "write_read"

    @classmethod
    def from_value(cls, value: "DmaOperation | str") -> "DmaOperation":
        """Coerce strings such as ``"read"`` or ``"rdwr"`` into an operation."""
        if isinstance(value, cls):
            return value
        text = str(value).strip().lower()
        aliases = {
            "rd": cls.READ,
            "wr": cls.WRITE,
            "rdwr": cls.READ_WRITE,
            "readwrite": cls.READ_WRITE,
            "wrrd": cls.WRITE_READ,
            "writeread": cls.WRITE_READ,
        }
        if text in aliases:
            return aliases[text]
        try:
            return cls(text)
        except ValueError as exc:
            raise ValidationError(f"unknown DMA operation {value!r}") from exc


@dataclass(frozen=True)
class BandwidthMeasurement:
    """Result of a bandwidth run."""

    operation: DmaOperation
    transfer_size: int
    transactions: int
    elapsed_ns: float
    gbps: float
    transactions_per_second: float
    link_utilisation_up: float
    link_utilisation_down: float
    cache_hit_rate: float
    iotlb_miss_rate: float


@dataclass(frozen=True)
class LatencyMeasurement:
    """Result of a latency run: raw per-transaction samples in nanoseconds."""

    operation: DmaOperation
    transfer_size: int
    samples_ns: np.ndarray
    cache_hit_rate: float
    iotlb_miss_rate: float


class DmaEngine:
    """Simulated DMA engine of a benchmark device attached to a host system."""

    def __init__(
        self,
        host: HostSystem,
        device: DeviceModel | None = None,
        config: PCIeConfig = PAPER_DEFAULT_CONFIG,
    ) -> None:
        self.host = host
        self.device = device or host.device
        self.config = config

    # -- latency benchmarks ---------------------------------------------------------

    def measure_latency(
        self,
        buffer: HostBuffer,
        operation: DmaOperation | str,
        count: int,
        *,
        pattern: AccessPattern | str = AccessPattern.RANDOM,
        use_command_interface: bool = False,
    ) -> LatencyMeasurement:
        """Measure per-transaction latency with one transaction outstanding.

        Args:
            buffer: the prepared host buffer to access.
            operation: ``READ`` (LAT_RD) or ``WRITE_READ`` (LAT_WRRD).
            count: number of transactions to time.
            pattern: unit visit order (random by default, as in the paper).
            use_command_interface: issue through the NFP's direct PCIe
                command interface (suitable for small transfers, §5.1)
                instead of the DMA engine; used by the Figure 7(a) cache
                experiments.
        """
        operation = DmaOperation.from_value(operation)
        if operation not in (DmaOperation.READ, DmaOperation.WRITE_READ):
            raise BenchmarkError(
                f"latency benchmarks support READ and WRITE_READ, got {operation}"
            )
        if count <= 0:
            raise ValidationError(f"count must be positive, got {count}")

        size = buffer.transfer_size
        spec = self.device.engine
        if use_command_interface and not spec.has_command_interface:
            raise BenchmarkError(
                f"{self.device.name} has no PCIe command interface"
            )
        if use_command_interface and size > spec.command_interface_max_bytes:
            raise BenchmarkError(
                f"command interface limited to {spec.command_interface_max_bytes} "
                f"bytes, requested {size}"
            )

        issue_overhead = (
            spec.command_interface_overhead_ns
            if use_command_interface
            else spec.issue_overhead_ns
        )
        staging = 0.0 if use_command_interface else self.device.staging_latency_ns(size)

        addresses = buffer.access_addresses(count, pattern, self.host.rng)
        root_complex = self.host.root_complex
        node = buffer.numa_node
        link = self.config.link
        read_wire = dma_read_wire_bytes(size, self.config)
        write_wire = dma_write_wire_bytes(size, self.config)
        read_request_ns = link.serialisation_time_ns(read_wire.device_to_host)
        read_completion_ns = link.serialisation_time_ns(read_wire.host_to_device)
        write_request_ns = link.serialisation_time_ns(write_wire.device_to_host)

        samples = np.empty(count, dtype=np.float64)
        hits = 0
        for index, address in enumerate(addresses):
            address = int(address)
            if operation is DmaOperation.READ:
                access = root_complex.read(address, size, buffer_node=node)
                latency = (
                    issue_overhead
                    + read_request_ns
                    + access.latency_ns
                    + read_completion_ns
                    + spec.completion_overhead_ns
                    + staging
                )
            else:  # WRITE_READ
                access = root_complex.write_read(address, size, buffer_node=node)
                latency = (
                    2 * issue_overhead
                    + write_request_ns
                    + read_request_ns
                    + access.latency_ns
                    + read_completion_ns
                    + spec.completion_overhead_ns
                    + staging
                )
            hits += access.cache_hit
            samples[index] = self.device.quantise(latency)

        iommu_stats = self.host.iommu.stats
        return LatencyMeasurement(
            operation=operation,
            transfer_size=size,
            samples_ns=samples,
            cache_hit_rate=hits / count,
            iotlb_miss_rate=iommu_stats.miss_rate,
        )

    # -- bandwidth benchmarks ----------------------------------------------------------

    def measure_bandwidth(
        self,
        buffer: HostBuffer,
        operation: DmaOperation | str,
        count: int,
        *,
        pattern: AccessPattern | str = AccessPattern.RANDOM,
    ) -> BandwidthMeasurement:
        """Measure sustained DMA bandwidth with the engine's full concurrency.

        Args:
            buffer: the prepared host buffer to access.
            operation: ``READ`` (BW_RD), ``WRITE`` (BW_WR) or ``READ_WRITE``
                (BW_RDWR, alternating reads and writes as the firmware does).
            count: number of DMA transactions to issue.
            pattern: unit visit order.
        """
        operation = DmaOperation.from_value(operation)
        if operation is DmaOperation.WRITE_READ:
            raise BenchmarkError("bandwidth benchmarks do not use WRITE_READ")
        if count <= 0:
            raise ValidationError(f"count must be positive, got {count}")

        size = buffer.transfer_size
        spec = self.device.engine
        addresses = buffer.access_addresses(count, pattern, self.host.rng)
        root_complex = self.host.root_complex
        node = buffer.numa_node
        link = self.config.link

        read_wire = dma_read_wire_bytes(size, self.config)
        write_wire = dma_write_wire_bytes(size, self.config)
        read_request_ns = link.serialisation_time_ns(read_wire.device_to_host)
        read_completion_ns = link.serialisation_time_ns(read_wire.host_to_device)
        write_request_ns = link.serialisation_time_ns(write_wire.device_to_host)

        link_up = SerialResource("link.device_to_host")
        link_down = SerialResource("link.host_to_device")
        ingress = SerialResource("root_complex.ingress")
        walker = SerialResource("iommu.walker")
        workers = WorkerPool(spec.max_inflight)

        last_issue = -spec.issue_interval_ns
        last_completion = 0.0
        hits = 0

        for index, address in enumerate(addresses):
            address = int(address)
            is_read = operation is DmaOperation.READ or (
                operation is DmaOperation.READ_WRITE and index % 2 == 0
            )
            earliest = max(last_issue + spec.issue_interval_ns, 0.0)
            issue_start = workers.acquire(earliest)
            last_issue = issue_start
            ready = issue_start + spec.issue_overhead_ns

            if is_read:
                access = root_complex.read(address, size, buffer_node=node)
                request_start = link_up.occupy(ready, read_request_ns)
                arrival = request_start + read_request_ns
                arrival = (
                    ingress.occupy(arrival, access.ingress_occupancy_ns)
                    + access.ingress_occupancy_ns
                )
                if access.walker_occupancy_ns > 0.0:
                    arrival = (
                        walker.occupy(arrival, access.walker_occupancy_ns)
                        + access.walker_occupancy_ns
                    )
                data_ready = arrival + access.latency_ns
                completion_start = link_down.occupy(data_ready, read_completion_ns)
                done = (
                    completion_start
                    + read_completion_ns
                    + spec.completion_overhead_ns
                    + self.device.staging_latency_ns(size)
                )
            else:
                access = root_complex.write(address, size, buffer_node=node)
                request_start = link_up.occupy(ready, write_request_ns)
                arrival = request_start + write_request_ns
                arrival = (
                    ingress.occupy(arrival, access.ingress_occupancy_ns)
                    + access.ingress_occupancy_ns
                )
                if access.walker_occupancy_ns > 0.0:
                    walker.occupy(arrival, access.walker_occupancy_ns)
                # Posted write: the device slot frees once the TLPs are on
                # the wire; the host commits asynchronously.
                done = request_start + write_request_ns + spec.completion_overhead_ns

            hits += access.cache_hit
            workers.commit(done)
            last_completion = max(last_completion, done)

        elapsed = last_completion
        if elapsed <= 0:
            raise BenchmarkError("bandwidth run produced no elapsed time")
        # For the alternating read/write benchmark the paper reports the
        # per-direction payload rate (half the transactions move data each
        # way), which is what makes BW_RDWR comparable to the unidirectional
        # curves and to the bidirectional model line of Figure 4(c).
        accounted_bytes = count * size
        if operation is DmaOperation.READ_WRITE:
            accounted_bytes //= 2
        iommu_stats = self.host.iommu.stats
        return BandwidthMeasurement(
            operation=operation,
            transfer_size=size,
            transactions=count,
            elapsed_ns=elapsed,
            gbps=bytes_over_time_to_gbps(accounted_bytes, elapsed),
            transactions_per_second=count / (elapsed * 1e-9),
            link_utilisation_up=link_up.utilisation(elapsed),
            link_utilisation_down=link_down.utilisation(elapsed),
            cache_hit_rate=hits / count,
            iotlb_miss_rate=iommu_stats.miss_rate,
        )
