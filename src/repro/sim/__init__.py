"""Simulated substrate: hosts, devices and the components between them.

This subpackage stands in for the hardware the paper uses — programmable
NICs (Netronome NFP-6000, NetFPGA-SUME) and several generations of Intel
Xeon servers — with behavioural models calibrated from the measurements the
paper reports.  See ``DESIGN.md`` for the substitution rationale.
"""

from .cache import (
    CacheAccessResult,
    CacheState,
    SetAssociativeCache,
    StatisticalCache,
)
from .devices import (
    DEVICE_REGISTRY,
    EXANIC,
    NETFPGA,
    NFP6000,
    DeviceModel,
    DmaEngineSpec,
    ExaNicModel,
    get_device,
)
from .dma import BandwidthMeasurement, DmaEngine, DmaOperation, LatencyMeasurement
from .engine import (
    ARBITER_SCHEMES,
    ArbitratedResource,
    SerialResource,
    TagPool,
    WorkerPool,
)
from .fabric import (
    ContentionResult,
    DeviceContentionResult,
    FabricConfig,
    FabricDevice,
    FabricPortStats,
    FabricSimulator,
    SharedHost,
)
from .nichost import HostCoupling, HostSideStats, NicHostConfig
from .nicsim import (
    CrossValidationPoint,
    LatencySummary,
    NicDatapathSimulator,
    NicSimConfig,
    NicSimResult,
    PathResult,
    PathTrace,
    RingStats,
    cross_validate,
    cross_validate_figure1,
    simulate_nic,
)
from .host import HostSystem
from .hostbuffer import AccessPattern, HostBuffer
from .iommu import Iommu, IommuConfig, Iotlb, TranslationResult
from .memory import MemoryConfig, MemorySystem
from .noise import HeavyTailNoise, TightNoise
from .numa import NumaNode, NumaTopology
from .profiles import (
    NETFPGA_HSW,
    NFP6000_BDW,
    NFP6000_HSW,
    NFP6000_HSW_E3,
    NFP6000_IB,
    NFP6000_SNB,
    TABLE1_PROFILES,
    SystemProfile,
    get_profile,
    profile_names,
)
from .rng import DEFAULT_SEED, SimRng
from .root_complex import HostAccess, RootComplex, RootComplexConfig

__all__ = [
    "CacheAccessResult",
    "CacheState",
    "SetAssociativeCache",
    "StatisticalCache",
    "DEVICE_REGISTRY",
    "EXANIC",
    "NETFPGA",
    "NFP6000",
    "DeviceModel",
    "DmaEngineSpec",
    "ExaNicModel",
    "get_device",
    "BandwidthMeasurement",
    "DmaEngine",
    "DmaOperation",
    "LatencyMeasurement",
    "ARBITER_SCHEMES",
    "ArbitratedResource",
    "SerialResource",
    "TagPool",
    "WorkerPool",
    "ContentionResult",
    "DeviceContentionResult",
    "FabricConfig",
    "FabricDevice",
    "FabricPortStats",
    "FabricSimulator",
    "SharedHost",
    "CrossValidationPoint",
    "HostCoupling",
    "HostSideStats",
    "LatencySummary",
    "NicDatapathSimulator",
    "NicHostConfig",
    "NicSimConfig",
    "NicSimResult",
    "PathResult",
    "PathTrace",
    "RingStats",
    "cross_validate",
    "cross_validate_figure1",
    "simulate_nic",
    "HostSystem",
    "AccessPattern",
    "HostBuffer",
    "Iommu",
    "IommuConfig",
    "Iotlb",
    "TranslationResult",
    "MemoryConfig",
    "MemorySystem",
    "HeavyTailNoise",
    "TightNoise",
    "NumaNode",
    "NumaTopology",
    "NETFPGA_HSW",
    "NFP6000_BDW",
    "NFP6000_HSW",
    "NFP6000_HSW_E3",
    "NFP6000_IB",
    "NFP6000_SNB",
    "TABLE1_PROFILES",
    "SystemProfile",
    "get_profile",
    "profile_names",
    "DEFAULT_SEED",
    "SimRng",
    "HostAccess",
    "RootComplex",
    "RootComplexConfig",
]
