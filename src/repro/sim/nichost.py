"""Host-side coupling for the packet-level NIC datapath simulator.

PR 1's :mod:`repro.sim.nicsim` charged every descriptor fetch, payload DMA
and write-back a flat link cost plus a constant host latency, which hides
the paper's central result: what a device observes on PCIe is dominated by
*host* effects — LLC/DDIO allocation, IOTLB misses and NUMA placement
(§6.3-§6.5).  This module supplies the missing half: a
:class:`HostCoupling` adapter that turns each datapath DMA into a
:class:`~repro.sim.root_complex.HostAccess` against a Table 1 host profile,
so the datapath inherits cache hits and DRAM penalties, DDIO write-backs,
IOTLB walks (with walker serialisation), remote-NUMA adders, per-TLP
ingress occupancy and per-profile latency noise.

Two memory regions with deliberately different temperatures model what a
real driver allocates:

* **Descriptor rings** are tiny, constantly re-walked structures laid out
  through :class:`~repro.sim.hostbuffer.HostBuffer` on the device's NUMA
  node; their cache model is prepared host-warm, so descriptor fetches,
  write-backs and interrupt writes almost always hit the LLC (the hot
  path a driver works hard to keep hot).
* **Payload buffers** draw uniformly from a configurable *window* of
  packet-sized units — the same windowed-access methodology as pcie-bench
  (Figure 3) — with their own cache preparation state and NUMA placement,
  so growing the window walks the datapath off the DDIO slice, past the
  IOTLB reach, or across the socket interconnect.

Both regions share one IOMMU (payload pressure evicts descriptor
translations, as on real hardware) but use separate
:class:`~repro.sim.cache.StatisticalCache` instances, because that model's
residency probability is per-window, not per-address.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.transactions import DESCRIPTOR_BYTES, OpKind
from ..errors import ValidationError
from ..units import CACHELINE_BYTES, KIB, MIB, align_up
from .cache import CacheState, StatisticalCache
from .host import HostSystem
from .hostbuffer import HostBuffer
from .iommu import SUPPORTED_PAGE_SIZES
from .profiles import get_profile
from .rng import SimRng
from .root_complex import HostAccess, RootComplex

#: Size of one payload unit in the payload window.  Every packet's DMA is
#: mapped to one unit, so the unit must hold a maximum-size frame.
PAYLOAD_UNIT_BYTES = 2048

#: Base I/O virtual addresses of the three regions.  They only need to be
#: disjoint at page granularity so descriptor and payload translations do
#: not alias in the IOTLB.
TX_RING_BASE = 0
RX_RING_BASE = 1 << 30
PAYLOAD_BASE = 1 << 34

#: Address-space stride between devices sharing one host (see
#: :mod:`repro.sim.fabric`).  Each device's three regions are offset by
#: ``device_index * DEVICE_ADDRESS_STRIDE`` so no two devices' pages alias
#: in the shared IOTLB.  Device 0's layout is byte-identical to the
#: single-device layout above.
DEVICE_ADDRESS_STRIDE = 1 << 40

#: Seed perturbation for the descriptor-side RNG.  ``SimRng`` caches named
#: sub-streams, so building the descriptor root complex from the *same*
#: ``SimRng`` as the payload one would make both caches (and both noise
#: models) draw from one interleaved stream — descriptor traffic volume
#: would then silently reshuffle payload hit/miss draws, defeating the
#: per-component decorrelation :mod:`repro.sim.rng` promises.
_DESCRIPTOR_SEED_SALT = 0x6E69_6352


@dataclass(frozen=True)
class NicHostConfig:
    """How the simulated NIC datapath is attached to a host.

    Attributes:
        system: Table 1 profile supplying the root complex, cache, IOMMU,
            NUMA and noise calibrations (e.g. ``"NFP6000-HSW"``).
        iommu_enabled: translate DMA addresses (``intel_iommu=on``).
        iommu_page_size: IOVA mapping granularity; 4 KiB replicates the
            paper's ``sp_off`` setting, 2 MiB models super-pages.
        payload_window: bytes of payload buffer the workload cycles
            through; the working set that interacts with the DDIO slice,
            the LLC and the IOTLB reach.
        payload_cache_state: cache preparation for the payload window
            (``"cold"``, ``"host_warm"`` or ``"device_warm"``).
        payload_placement: ``"local"`` pins payload buffers to the
            device's NUMA node, ``"remote"`` to the other socket (requires
            a two-socket profile).
    """

    system: str = "NFP6000-HSW"
    iommu_enabled: bool = False
    iommu_page_size: int = 4 * KIB
    payload_window: int = 4 * MIB
    payload_cache_state: str = "host_warm"
    payload_placement: str = "local"

    def __post_init__(self) -> None:
        profile = get_profile(self.system)  # raises on unknown profiles
        object.__setattr__(self, "system", profile.name)
        if self.iommu_page_size not in SUPPORTED_PAGE_SIZES:
            raise ValidationError(
                f"iommu_page_size must be one of {SUPPORTED_PAGE_SIZES}, "
                f"got {self.iommu_page_size}"
            )
        if self.payload_window < PAYLOAD_UNIT_BYTES:
            raise ValidationError(
                f"payload_window must hold at least one {PAYLOAD_UNIT_BYTES}-byte "
                f"unit, got {self.payload_window}"
            )
        state = CacheState.from_value(self.payload_cache_state)
        object.__setattr__(self, "payload_cache_state", state.value)
        if self.payload_placement not in ("local", "remote"):
            raise ValidationError(
                "payload_placement must be 'local' or 'remote', got "
                f"{self.payload_placement!r}"
            )
        if self.payload_placement == "remote" and profile.sockets < 2:
            raise ValidationError(
                f"{profile.name} has a single socket; remote payload "
                "placement needs a two-socket profile"
            )


@dataclass(frozen=True)
class HostSideStats:
    """Host-side counters from one host-coupled datapath run.

    Attributes:
        accesses: DMA transactions serviced by the root complex.
        payload_accesses / descriptor_accesses: split by target region.
        payload_cache_hit_rate: LLC hit fraction of payload DMAs.
        descriptor_cache_hit_rate: LLC hit fraction of descriptor-region
            DMAs (fetches, write-backs, interrupt writes).
        iotlb_hit_rate: IOTLB hit fraction (1.0 with the IOMMU disabled).
        iotlb_misses: page-table walks performed.
        walker_stall_ns_total: cumulative time transactions waited for a
            busy page walker (the §6.5 serialisation effect).
        walker_stall_ns_mean: mean stall per walk (0 without walks).
        writebacks: dirty DDIO evictions forced by payload writes.
        remote_fraction: fraction of DMAs that crossed the socket
            interconnect.
    """

    accesses: int
    payload_accesses: int
    descriptor_accesses: int
    payload_cache_hit_rate: float
    descriptor_cache_hit_rate: float
    iotlb_hit_rate: float
    iotlb_misses: int
    walker_stall_ns_total: float
    walker_stall_ns_mean: float
    writebacks: int
    remote_fraction: float

    def as_dict(self) -> dict[str, object]:
        """Serialisable representation."""
        return {
            "accesses": self.accesses,
            "payload_accesses": self.payload_accesses,
            "descriptor_accesses": self.descriptor_accesses,
            "payload_cache_hit_rate": self.payload_cache_hit_rate,
            "descriptor_cache_hit_rate": self.descriptor_cache_hit_rate,
            "iotlb_hit_rate": self.iotlb_hit_rate,
            "iotlb_misses": self.iotlb_misses,
            "walker_stall_ns_total": self.walker_stall_ns_total,
            "walker_stall_ns_mean": self.walker_stall_ns_mean,
            "writebacks": self.writebacks,
            "remote_fraction": self.remote_fraction,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HostSideStats":
        """Rebuild host-side counters from :meth:`as_dict` output."""
        return cls(
            accesses=int(data["accesses"]),
            payload_accesses=int(data["payload_accesses"]),
            descriptor_accesses=int(data["descriptor_accesses"]),
            payload_cache_hit_rate=float(data["payload_cache_hit_rate"]),
            descriptor_cache_hit_rate=float(data["descriptor_cache_hit_rate"]),
            iotlb_hit_rate=float(data["iotlb_hit_rate"]),
            iotlb_misses=int(data["iotlb_misses"]),
            walker_stall_ns_total=float(data["walker_stall_ns_total"]),
            walker_stall_ns_mean=float(data["walker_stall_ns_mean"]),
            writebacks=int(data["writebacks"]),
            remote_fraction=float(data["remote_fraction"]),
        )


class HostCoupling:
    """Runtime host-side state for one host-coupled datapath run.

    Owns the profile-built :class:`~repro.sim.host.HostSystem`, the
    descriptor-ring and payload buffer layouts, the address streams, and
    the hit/stall counters; :class:`~repro.sim.nicsim.NicDatapathSimulator`
    calls :meth:`access` once per DMA transaction and layers link
    serialisation, ingress and walker occupancy on top of the returned
    :class:`HostAccess`.

    Two construction modes exist.  The historical one (``shared=None``)
    builds a private :class:`~repro.sim.host.HostSystem` for this one
    device and prepares cache/IOTLB state itself.  The *shared-host* mode
    (``shared`` set to a :class:`repro.sim.fabric.SharedHost`) instead
    binds this coupling to a host that several devices contend on: the
    root complexes, cache, IOMMU, NUMA and noise models come from the
    shared instance, this device's buffer regions are offset by
    ``device_index * DEVICE_ADDRESS_STRIDE`` so translations never alias
    across devices, and cache/IOTLB preparation is deferred to the shared
    host — which warms either the *aggregate* working set (the shared
    regime) or, under per-device DDIO way partitioning, each device's own
    capacity slice, routed back to this device by the same address-region
    stride.  Per-device counters work identically in both modes.
    """

    def __init__(
        self,
        config: NicHostConfig,
        *,
        ring_depth: int,
        seed: int,
        shared: "object | None" = None,
        device_index: int = 0,
    ) -> None:
        if ring_depth <= 0:
            raise ValidationError(
                f"ring_depth must be positive, got {ring_depth}"
            )
        if device_index < 0:
            raise ValidationError(
                f"device_index must be non-negative, got {device_index}"
            )
        if shared is None and device_index != 0:
            raise ValidationError(
                "device_index is only meaningful with a shared host"
            )
        self.config = config
        self.device_index = device_index
        if shared is None:
            self.host = HostSystem.from_profile(
                config.system,
                iommu_enabled=config.iommu_enabled,
                iommu_page_size=config.iommu_page_size,
                seed=seed,
                cache_model="statistical",
            )
        else:
            self.host = shared.host
            if self.host.profile.name != get_profile(config.system).name:
                raise ValidationError(
                    f"device profile {config.system!r} does not match the "
                    f"shared host profile {self.host.profile.name!r}"
                )
        profile = self.host.profile
        numa = self.host.numa
        self._payload_node = (
            numa.device_node
            if config.payload_placement == "local"
            else numa.remote_node()
        )
        region_base = device_index * DEVICE_ADDRESS_STRIDE
        self.payload_buffer = HostBuffer(
            window_size=config.payload_window,
            transfer_size=PAYLOAD_UNIT_BYTES,
            numa_node=self._payload_node,
            base_address=PAYLOAD_BASE + region_base,
            page_size=config.iommu_page_size,
        )
        ring_window = align_up(ring_depth * DESCRIPTOR_BYTES, CACHELINE_BYTES)
        self.ring_buffers = {
            "tx": HostBuffer(
                window_size=ring_window,
                transfer_size=DESCRIPTOR_BYTES,
                numa_node=numa.device_node,
                base_address=TX_RING_BASE + region_base,
                page_size=config.iommu_page_size,
            ),
            "rx": HostBuffer(
                window_size=ring_window,
                transfer_size=DESCRIPTOR_BYTES,
                numa_node=numa.device_node,
                base_address=RX_RING_BASE + region_base,
                page_size=config.iommu_page_size,
            ),
        }

        # Payload DMAs go through the profile host's root complex; the
        # descriptor regions get their own root complex sharing the IOMMU,
        # NUMA, memory and noise models but with a separate cache model,
        # because the statistical cache's residency is per-window: the hot
        # ring must not inherit the payload window's (low) hit probability.
        # A salted RNG keeps the descriptor-side streams independent of the
        # payload-side ones (see _DESCRIPTOR_SEED_SALT).  In shared-host
        # mode both root complexes (and so both caches) are the shared
        # host's: devices genuinely contend on one LLC/DDIO slice and one
        # descriptor-cache view, and preparation is the shared host's job.
        self.payload_rc = self.host.root_complex
        if shared is None:
            descriptor_rng = SimRng(seed ^ _DESCRIPTOR_SEED_SALT)
            descriptor_cache = StatisticalCache(
                profile.llc_bytes,
                ddio_fraction=profile.ddio_fraction,
                rng=descriptor_rng,
            )
            self.descriptor_rc = RootComplex(
                profile.root_complex_config(),
                cache=descriptor_cache,
                iommu=self.host.iommu,
                numa=numa,
                memory=self.payload_rc.memory,
                noise=profile.noise,
                rng=descriptor_rng,
            )
            self.payload_rc.prepare_cache(
                config.payload_cache_state, self.payload_buffer.window_cachelines
            )
            self.descriptor_rc.prepare_cache(
                CacheState.HOST_WARM,
                2 * self.ring_buffers["tx"].window_cachelines,
            )
            self._warm_iotlb()
        else:
            self.descriptor_rc = shared.descriptor_rc

        # Device 0 keeps the historical stream name so a single-device
        # shared host reproduces the un-shared coupling bit for bit; later
        # devices get decorrelated sibling streams.
        stream = (
            "nicsim.host.payload_units"
            if device_index == 0
            else f"nicsim.host.payload_units.dev{device_index}"
        )
        self._unit_stream = self.host.rng.spawn(stream)
        self._ring_cursor = {"tx": 0, "rx": 0}
        self._payload_accesses = 0
        self._payload_cache_hits = 0
        self._descriptor_accesses = 0
        self._descriptor_cache_hits = 0
        self._iotlb_hits = 0
        self._iotlb_misses = 0
        self._writebacks = 0
        self._remote_accesses = 0
        self._walker_stall_ns = 0.0

    # -- construction helpers ---------------------------------------------------

    def _warm_iotlb(self) -> None:
        """Model steady state after the driver mapped its buffers.

        As in :meth:`~repro.sim.host.HostSystem.prepare`, translations for
        as much of the payload window as the IOTLB can hold start cached;
        the (few) descriptor-ring pages are warmed last so they begin as
        the most recently used entries.
        """
        iommu = self.host.iommu
        iommu.invalidate()
        if iommu.enabled:
            page = self.config.iommu_page_size
            pages_to_warm = min(
                self.payload_buffer.window_pages, iommu.config.iotlb_entries
            )
            iommu.warm(
                [PAYLOAD_BASE + index * page for index in range(pages_to_warm)]
            )
            for buffer in self.ring_buffers.values():
                iommu.warm(
                    [
                        buffer.base_address + index * page
                        for index in range(buffer.window_pages)
                    ]
                )
        iommu.reset_stats()

    # -- per-transaction servicing ----------------------------------------------

    @property
    def mmio_read_ns(self) -> float:
        """Host turnaround of a driver register read, from the profile."""
        return self.host.profile.mmio_read_ns

    def _payload_address(self) -> int:
        unit = int(
            self._unit_stream.integers(0, self.payload_buffer.unit_count)
        )
        return self.payload_buffer.unit_address(unit)

    def _descriptor_address(self, direction: str) -> int:
        buffer = self.ring_buffers[direction]
        cursor = self._ring_cursor[direction]
        self._ring_cursor[direction] = cursor + 1
        return buffer.unit_address(cursor % buffer.unit_count)

    def access(
        self, kind: OpKind, *, direction: str, payload: bool, size: int
    ) -> HostAccess:
        """Service one DMA transaction's host side and update the counters.

        Args:
            kind: ``DMA_READ`` or ``DMA_WRITE`` (MMIO never reaches host
                memory and is not routed here).
            direction: ``"tx"`` or ``"rx"`` (selects the descriptor ring).
            payload: whether this is the per-packet payload DMA (targets
                the payload window) rather than a descriptor-region DMA.
            size: transaction size in bytes (drives ingress occupancy).
        """
        if kind not in (OpKind.DMA_READ, OpKind.DMA_WRITE):
            raise ValidationError(
                f"host coupling only services DMA transactions, got {kind}"
            )
        if payload:
            root_complex = self.payload_rc
            address = self._payload_address()
            node = self._payload_node
        else:
            root_complex = self.descriptor_rc
            address = self._descriptor_address(direction)
            node = self.host.numa.device_node
        if kind is OpKind.DMA_READ:
            result = root_complex.read(address, size, buffer_node=node)
        else:
            result = root_complex.write(address, size, buffer_node=node)
        if payload:
            self._payload_accesses += 1
            self._payload_cache_hits += result.cache_hit
        else:
            self._descriptor_accesses += 1
            self._descriptor_cache_hits += result.cache_hit
        self._iotlb_hits += result.iotlb_hit
        self._iotlb_misses += not result.iotlb_hit
        self._writebacks += result.writeback
        self._remote_accesses += result.remote
        return result

    def aggregate_access(
        self, kind: OpKind, *, direction: str, sizes: list[int]
    ) -> HostAccess:
        """Service a fluid batch of payload DMAs as one combined access.

        The hybrid fast path replaces per-packet payload transactions
        with one fabric-visible claim per completion batch.  Every packet
        still takes an individual :meth:`access` internally — cache,
        IOTLB and NUMA counters stay exact — but the returned record
        combines them the way a single aggregate claim would hold the
        shared resources: walker/ingress occupancies *sum* (serial holds)
        while the latency is the batch *mean* (packets pipeline through
        the host, they do not serialise on completion latency).
        """
        if not sizes:
            raise ValidationError("aggregate access needs at least one size")
        latency = 0.0
        walker = 0.0
        ingress = 0.0
        for size in sizes:
            access = self.access(
                kind, direction=direction, payload=True, size=size
            )
            latency += access.latency_ns
            walker += access.walker_occupancy_ns
            ingress += access.ingress_occupancy_ns
        return HostAccess(
            latency_ns=latency / len(sizes),
            walker_occupancy_ns=walker,
            ingress_occupancy_ns=ingress,
        )

    def note_walker_stall(self, stall_ns: float) -> None:
        """Record time a transaction spent waiting for the busy page walker."""
        self._walker_stall_ns += stall_ns

    def descriptor_counters(self) -> tuple[int, int]:
        """Cumulative ``(accesses, hits)`` for the descriptor cache.

        Read mid-run by the control plane, which differences consecutive
        reads to get per-window hit rates.
        """
        return self._descriptor_accesses, self._descriptor_cache_hits

    # -- summary ----------------------------------------------------------------

    def stats(self) -> HostSideStats:
        """Snapshot of the host-side counters after a run."""
        total = self._payload_accesses + self._descriptor_accesses
        return HostSideStats(
            accesses=total,
            payload_accesses=self._payload_accesses,
            descriptor_accesses=self._descriptor_accesses,
            payload_cache_hit_rate=(
                self._payload_cache_hits / self._payload_accesses
                if self._payload_accesses
                else 0.0
            ),
            descriptor_cache_hit_rate=(
                self._descriptor_cache_hits / self._descriptor_accesses
                if self._descriptor_accesses
                else 0.0
            ),
            iotlb_hit_rate=self._iotlb_hits / total if total else 1.0,
            iotlb_misses=self._iotlb_misses,
            walker_stall_ns_total=self._walker_stall_ns,
            walker_stall_ns_mean=(
                self._walker_stall_ns / self._iotlb_misses
                if self._iotlb_misses
                else 0.0
            ),
            writebacks=self._writebacks,
            remote_fraction=self._remote_accesses / total if total else 0.0,
        )
