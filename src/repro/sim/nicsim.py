"""Packet-level NIC datapath simulation (the dynamic counterpart of Figure 1).

The analytic models in :mod:`repro.core.nic` turn a packet size into
*average* PCIe bytes per packet; every doorbell, descriptor fetch and
interrupt is amortised into a per-packet fraction.  This module replays the
same declarative :class:`~repro.core.nic.NicModel` transaction sequences as
*individual* PCIe transactions: TX and RX descriptor rings of finite depth,
doorbell MMIO writes, batched descriptor fetch/write-back DMAs, per-packet
payload DMAs, interrupts and pointer reads, each occupying the two link
directions (modelled as :class:`~repro.sim.engine.SerialResource`) for its
real serialisation time.

Unlike the cursor-based pipeline in :mod:`repro.sim.dma` — whose
transactions are homogeneous enough to be generated in issue order — the
NIC datapath mixes transactions with very different causal delays
(a doorbell is ready instantly, a read completion only after the host
round trip), so transactions here are scheduled through a small
discrete-event loop and claim link time only at the moment they are
actually ready.  That keeps link service FIFO in *time* order, which is
what lets unrelated transactions fill the gaps a latency-bound chain would
otherwise leave.

Batched (amortised) transactions are issued as real instances: fetch-side
transactions fire at the head of each batch (the NIC prefetches a batch of
descriptors), completion-report transactions fire when the batch fills
(write-backs and moderated interrupts trail their packets), and a packet
is *complete* when its driver learns about it — the interrupt for
interrupt-driven models, the descriptor write-back for polling drivers.

Under smooth fixed-size load the simulation converges on the closed-form
:meth:`~repro.core.nic.NicModel.throughput_gbps` (the cross-validation
harness at the bottom of this module checks that); under bursty or
mixed-size traffic it additionally exposes what the averages hide — ring
occupancy, head-of-line waits, drops, and the latency cost of interrupt
moderation — which is the new scientific output of the subsystem.

When a :class:`~repro.sim.nichost.NicHostConfig` is attached (via
``NicSimConfig.host``), the flat per-DMA host latency is replaced by the
full host model: every descriptor fetch, payload DMA and write-back
becomes a :class:`~repro.sim.root_complex.HostAccess` against a Table 1
profile, adding cache hit/DRAM-miss latency, DDIO write-backs, IOTLB
walks serialised on a shared page-walker resource, per-TLP root-complex
ingress occupancy and remote-NUMA penalties on top of link serialisation.
Data flow: ``workloads → nicsim (rings, event loop, links) → nichost
(buffers, address streams) → root_complex (cache/IOMMU/NUMA/memory/
noise)``.  Without a host config the PR 1 link-only behaviour is
preserved bit for bit.

Two device-side resource limits complete the picture:

* **Bounded DMA tags** (``NicSimConfig.dma_tags``): real NICs hold a
  finite pool of outstanding-DMA contexts, so host latency does not just
  stretch the tail — once every tag is waiting out a host round trip, the
  device cannot issue new work and *throughput* collapses (the Figure 8
  bandwidth dip).  Every descriptor fetch, payload DMA and write-back
  acquires a tag from one device-wide :class:`~repro.sim.engine.TagPool`
  before touching a link; reads hold it until the completion lands,
  writes until the root complex has drained them (the flow-control
  credit loop).  ``dma_tags=None`` keeps the historical unbounded issue.
* **Multiple queues** (``NicSimConfig.num_queues``): N TX/RX ring pairs
  per device, each an independent descriptor ring with its own batching
  state, sharing the two link directions, the host coupling and the tag
  pool.  Packets are steered by hashing their workload-assigned flow
  label (:mod:`repro.workloads.rss`), so skewed flow mixes reproduce the
  queue imbalance real RSS suffers.  ``num_queues=1`` is the degenerate
  case and remains bit-identical to the single-queue datapath.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, replace
from time import perf_counter
from typing import Callable

import numpy as np

from ..core.config import PAPER_DEFAULT_CONFIG, PCIeConfig
from ..core.nic import FIGURE1_MODELS, NicModel, model_by_name
from ..core.transactions import OpKind
from ..errors import SimulationError, ValidationError
from ..obs.metrics import (
    DEFAULT_METRICS_WINDOW_NS,
    MetricsRegistry,
    metric_segment,
)
from ..obs.trace import (
    ARB_PREFIX,
    OP_PREFIX,
    STAGE_COMPLETION,
    STAGE_DROP,
    STAGE_ISSUE,
    STAGE_PAYLOAD,
    STAGE_RING,
    STAGE_WALKER,
    Tracer,
)
from ..stats import QuantileSketch
from ..units import bytes_over_time_to_gbps, ns_to_s
from ..workloads import (
    Workload,
    build_flow_model,
    build_workload,
    rss_buckets,
    rss_queues,
)
from .engine import EngineProfile, EventLoop, SerialResource, TagPool
from .nichost import HostCoupling, HostSideStats, NicHostConfig
from .rng import DEFAULT_SEED, SimRng

#: Packet size used to classify a model's transaction sequence (any valid
#: frame size works; it only needs to dominate descriptor-sized DMAs).
_REFERENCE_PACKET = 1024


@dataclass(frozen=True)
class NicSimConfig:
    """Datapath parameters not captured by the :class:`NicModel` itself.

    Attributes:
        ring_depth: descriptor ring depth per direction (entries).
        host_read_latency_ns: host-side latency from a DMA read request
            arriving at the root complex to the first completion data.
        mmio_read_latency_ns: device-register read turnaround for driver
            pointer reads.
        warmup_fraction: leading fraction of delivered packets excluded
            from throughput and latency statistics (pipeline fill).
        rx_backpressure: when true a full RX ring stalls the source instead
            of dropping — the lossless-fabric premise of the closed-form
            model, used by the cross-validation harness.  The realistic
            default tail-drops, as a NIC must when the wire does not wait.
        host: optional :class:`~repro.sim.nichost.NicHostConfig` coupling
            the datapath to a Table 1 host model; when set, DMAs are
            serviced by the root complex (cache, IOMMU, NUMA, noise) and
            ``host_read_latency_ns`` / ``mmio_read_latency_ns`` are
            superseded by the profile's calibrated behaviour.
        num_queues: TX/RX ring pairs per device.  Each queue has its own
            descriptor ring and batching state; packets steer to queues by
            RSS-hashing their flow label.  The default single queue is the
            degenerate case, bit-identical to the pre-multi-queue datapath.
        dma_tags: size of the device-wide pool of in-flight DMA tags every
            descriptor fetch, payload DMA and write-back must hold while
            outstanding.  ``None`` (default) models an infinitely deep
            pool — the historical behaviour, where host latency can only
            stretch the latency distribution, never cap throughput.
        retain_samples: when true (default) per-packet event times are
            kept in full, exactly as before — O(packets) memory, exact
            percentiles, ``last_traces`` populated.  When false, latency
            samples stream through a mergeable
            :class:`~repro.stats.QuantileSketch` instead (O(1) memory
            w.r.t. packet count, percentiles within the sketch's 0.5%
            documented relative error) and warmup is applied as an
            a-priori packet-count cutoff rather than the retained-mode
            sort-by-completion rule — statistically equivalent, not
            bit-identical.  Fleet-scale runs (:mod:`repro.fleet`) use
            this mode so results survive 10^8-packet sweeps.
    """

    ring_depth: int = 512
    host_read_latency_ns: float = 400.0
    mmio_read_latency_ns: float = 300.0
    warmup_fraction: float = 0.25
    rx_backpressure: bool = False
    host: NicHostConfig | None = None
    num_queues: int = 1
    dma_tags: int | None = None
    retain_samples: bool = True
    #: Optional RSS indirection table: ``queue = table[hash % len(table)]``.
    #: ``None`` hashes directly onto queues (``hash % num_queues``), the
    #: historical mapping.  Requires ``num_queues > 1``.
    rss_table: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.ring_depth <= 0:
            raise ValidationError(
                f"ring_depth must be positive, got {self.ring_depth}"
            )
        for attr in ("host_read_latency_ns", "mmio_read_latency_ns"):
            if getattr(self, attr) < 0:
                raise ValidationError(f"{attr} must be non-negative")
        if not 0.0 <= self.warmup_fraction < 0.9:
            raise ValidationError(
                f"warmup_fraction must be within [0, 0.9), got {self.warmup_fraction}"
            )
        if not 1 <= self.num_queues <= 256:
            raise ValidationError(
                f"num_queues must be within [1, 256], got {self.num_queues}"
            )
        if self.dma_tags is not None and self.dma_tags <= 0:
            raise ValidationError(
                f"dma_tags must be positive (or None for unbounded), "
                f"got {self.dma_tags}"
            )
        if self.rss_table is not None:
            if self.num_queues == 1:
                raise ValidationError(
                    "rss_table requires num_queues > 1 (single-queue runs "
                    "have nothing to steer)"
                )
            table = tuple(int(entry) for entry in self.rss_table)
            if not table:
                raise ValidationError("rss_table must not be empty")
            for entry in table:
                if not 0 <= entry < self.num_queues:
                    raise ValidationError(
                        f"rss_table entries must be queue indices in "
                        f"[0, {self.num_queues}), got {entry}"
                    )
            object.__setattr__(self, "rss_table", table)


# ---------------------------------------------------------------------------
# Result records
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RingStats:
    """Occupancy and drop accounting for one descriptor ring."""

    depth: int
    posts: int
    drops: int
    max_occupancy: int
    mean_occupancy: float

    def as_dict(self) -> dict[str, object]:
        """Serialisable representation."""
        return {
            "depth": self.depth,
            "posts": self.posts,
            "drops": self.drops,
            "max_occupancy": self.max_occupancy,
            "mean_occupancy": self.mean_occupancy,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RingStats":
        """Rebuild ring statistics from :meth:`as_dict` output."""
        return cls(
            depth=int(data["depth"]),
            posts=int(data["posts"]),
            drops=int(data["drops"]),
            max_occupancy=int(data["max_occupancy"]),
            mean_occupancy=float(data["mean_occupancy"]),
        )


@dataclass(frozen=True)
class DmaTagStats:
    """Accounting of the bounded in-flight DMA tag pool over one run.

    ``waited`` grants out of ``acquires`` found the pool exhausted and
    queued; their cumulative queueing time is ``wait_ns_total``.  A pool
    whose ``max_in_flight`` never reaches ``capacity`` was effectively
    unbounded for that run.
    """

    capacity: int
    acquires: int
    max_in_flight: int
    waited: int
    wait_ns_total: float

    @property
    def wait_ns_mean(self) -> float:
        """Mean queueing time per delayed grant (0 when nothing waited)."""
        return self.wait_ns_total / self.waited if self.waited else 0.0

    @classmethod
    def from_pool(cls, pool: TagPool) -> "DmaTagStats":
        """Snapshot a :class:`~repro.sim.engine.TagPool` after a run."""
        return cls(
            capacity=pool.capacity,
            acquires=pool.acquires,
            max_in_flight=pool.max_in_flight,
            waited=pool.waited,
            wait_ns_total=pool.wait_ns_total,
        )

    def as_dict(self) -> dict[str, object]:
        """Serialisable representation."""
        return {
            "capacity": self.capacity,
            "acquires": self.acquires,
            "max_in_flight": self.max_in_flight,
            "waited": self.waited,
            "wait_ns_total": self.wait_ns_total,
            "wait_ns_mean": self.wait_ns_mean,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DmaTagStats":
        """Rebuild tag-pool statistics from :meth:`as_dict` output."""
        return cls(
            capacity=int(data["capacity"]),
            acquires=int(data["acquires"]),
            max_in_flight=int(data["max_in_flight"]),
            waited=int(data["waited"]),
            wait_ns_total=float(data["wait_ns_total"]),
        )


@dataclass(frozen=True)
class LatencySummary:
    """Per-packet latency percentiles in nanoseconds.

    Built either from raw samples (:meth:`from_samples`, exact numpy
    percentiles) or from a streaming :class:`~repro.stats.QuantileSketch`
    (:meth:`from_sketch`, percentiles within the sketch's documented
    relative-error bound; the sketch itself rides along on ``sketch`` so
    downstream consumers — the fleet reduce step — can keep merging).
    A summary with ``count == 0`` is the explicit empty representation
    (a fleet host whose device saw no traffic in a window): every
    statistic is zero and no consumer needs to special-case an exception.
    """

    count: int
    mean: float
    median: float
    p90: float
    p99: float
    p999: float
    minimum: float
    maximum: float
    sketch: QuantileSketch | None = None

    @classmethod
    def empty(cls) -> "LatencySummary":
        """The summary of zero samples (all statistics zero)."""
        return cls(
            count=0,
            mean=0.0,
            median=0.0,
            p90=0.0,
            p99=0.0,
            p999=0.0,
            minimum=0.0,
            maximum=0.0,
        )

    @classmethod
    def from_samples(cls, samples_ns: np.ndarray) -> "LatencySummary":
        """Compute the summary from raw samples (empty input → :meth:`empty`)."""
        samples = np.asarray(samples_ns, dtype=np.float64)
        if samples.size == 0:
            return cls.empty()
        return cls(
            count=int(samples.size),
            mean=float(np.mean(samples)),
            median=float(np.median(samples)),
            p90=float(np.percentile(samples, 90)),
            p99=float(np.percentile(samples, 99)),
            p999=float(np.percentile(samples, 99.9)),
            minimum=float(np.min(samples)),
            maximum=float(np.max(samples)),
        )

    @classmethod
    def from_sketch(cls, sketch: QuantileSketch) -> "LatencySummary":
        """Summarise a quantile sketch (the O(1)-memory streaming path).

        Count, mean, min and max are exact; the percentiles carry the
        sketch's relative-error bound (0.5% at the default accuracy).
        The sketch is attached so shard summaries stay mergeable.
        """
        if sketch.count == 0:
            return cls.empty()
        return cls(
            count=sketch.count,
            mean=sketch.mean,
            median=sketch.quantile(0.5),
            p90=sketch.quantile(0.90),
            p99=sketch.quantile(0.99),
            p999=sketch.quantile(0.999),
            minimum=sketch.minimum,
            maximum=sketch.maximum,
            sketch=sketch,
        )

    def as_dict(self) -> dict[str, object]:
        """Serialisable representation."""
        record: dict[str, object] = {
            "count": self.count,
            "mean": self.mean,
            "median": self.median,
            "p90": self.p90,
            "p99": self.p99,
            "p99.9": self.p999,
            "min": self.minimum,
            "max": self.maximum,
        }
        if self.sketch is not None:
            record["sketch"] = self.sketch.as_dict()
        return record

    @classmethod
    def from_dict(cls, data: dict) -> "LatencySummary":
        """Rebuild a latency summary from :meth:`as_dict` output."""
        sketch = data.get("sketch")
        return cls(
            count=int(data["count"]),
            mean=float(data["mean"]),
            median=float(data["median"]),
            p90=float(data["p90"]),
            p99=float(data["p99"]),
            p999=float(data["p99.9"]),
            minimum=float(data["min"]),
            maximum=float(data["max"]),
            sketch=QuantileSketch.from_dict(sketch) if sketch else None,
        )


@dataclass(frozen=True)
class PathResult:
    """Measured behaviour of one direction (TX or RX) of the datapath.

    ``offered_bytes`` / ``dropped_bytes`` and ``in_flight`` (packets still
    queued for a ring entry when the run ended) make the conservation laws
    checkable from the result alone: ``offered_packets = delivered_packets
    + drops + in_flight`` exactly, and ``payload_bytes + dropped_bytes <=
    offered_bytes`` (the remainder being the bytes of in-flight packets,
    whose sizes are not recorded individually).

    Multi-queue directions additionally carry ``queues``: one nested
    :class:`PathResult` per RX/TX queue (direction labelled ``"tx[0]"``,
    ``"tx[1]"``, ...), whose counters sum to the direction totals.  The
    direction-level ring statistics aggregate the per-queue rings: posts
    and drops sum, ``max_occupancy`` is the worst single queue and
    ``mean_occupancy`` the mean across queues, so every per-ring bound
    (``<= depth``) still holds for the aggregate.  Single-queue runs leave
    ``queues`` as ``None`` and serialise exactly as before.
    """

    direction: str
    offered_packets: int
    delivered_packets: int
    drops: int
    in_flight: int
    payload_bytes: int
    offered_bytes: int
    dropped_bytes: int
    throughput_gbps: float
    packet_rate_pps: float
    latency: LatencySummary | None
    ring: RingStats
    queues: tuple["PathResult", ...] | None = None

    def as_dict(self) -> dict[str, object]:
        """Serialisable representation."""
        record: dict[str, object] = {
            "direction": self.direction,
            "offered_packets": self.offered_packets,
            "delivered_packets": self.delivered_packets,
            "drops": self.drops,
            "in_flight": self.in_flight,
            "payload_bytes": self.payload_bytes,
            "offered_bytes": self.offered_bytes,
            "dropped_bytes": self.dropped_bytes,
            "throughput_gbps": self.throughput_gbps,
            "packet_rate_pps": self.packet_rate_pps,
            "ring": self.ring.as_dict(),
        }
        if self.latency is not None:
            record["latency_ns"] = self.latency.as_dict()
        if self.queues is not None:
            record["queues"] = [queue.as_dict() for queue in self.queues]
        return record

    @classmethod
    def from_dict(cls, data: dict) -> "PathResult":
        """Rebuild a path result from :meth:`as_dict` output."""
        latency = data.get("latency_ns")
        queues = data.get("queues")
        return cls(
            direction=str(data["direction"]),
            offered_packets=int(data["offered_packets"]),
            delivered_packets=int(data["delivered_packets"]),
            drops=int(data["drops"]),
            in_flight=int(data.get("in_flight", 0)),
            payload_bytes=int(data["payload_bytes"]),
            offered_bytes=int(data.get("offered_bytes", 0)),
            dropped_bytes=int(data.get("dropped_bytes", 0)),
            throughput_gbps=float(data["throughput_gbps"]),
            packet_rate_pps=float(data["packet_rate_pps"]),
            latency=LatencySummary.from_dict(latency) if latency else None,
            ring=RingStats.from_dict(data["ring"]),
            queues=(
                tuple(cls.from_dict(queue) for queue in queues)
                if queues is not None
                else None
            ),
        )


@dataclass(frozen=True)
class NicSimResult:
    """Everything one simulated workload run produced."""

    model: str
    workload: str
    packets: int
    duration_ns: float
    tx: PathResult
    rx: PathResult | None
    link_utilisation_up: float
    link_utilisation_down: float
    host: HostSideStats | None = None
    tags: DmaTagStats | None = None
    #: Engine phase timing, attached only when profiling was requested, and
    #: the serialised metrics-registry snapshot, attached only when a
    #: registry was supplied — both absent by default so historical records
    #: (and the seeded goldens) round-trip unchanged.
    profile: EngineProfile | None = None
    metrics: dict | None = None
    #: Hybrid-mode fluid accounting (certifications, fluid packets and
    #: re-entry reasons per direction); absent for exact/batch runs so
    #: historical records round-trip unchanged.
    fluid: dict | None = None

    @property
    def throughput_gbps(self) -> float:
        """Mean per-direction payload throughput across the active paths."""
        paths = [path for path in (self.tx, self.rx) if path is not None]
        return sum(path.throughput_gbps for path in paths) / len(paths)

    @property
    def total_drops(self) -> int:
        """Drops across both rings."""
        drops = self.tx.drops
        if self.rx is not None:
            drops += self.rx.drops
        return drops

    def as_dict(self) -> dict[str, object]:
        """Serialisable representation (used by the CLI and reports).

        The ``"kind"`` tag distinguishes these records from micro-benchmark
        results when both are persisted in one file.
        """
        record: dict[str, object] = {
            "kind": "NICSIM",
            "model": self.model,
            "workload": self.workload,
            "packets": self.packets,
            "duration_ns": self.duration_ns,
            "throughput_gbps": self.throughput_gbps,
            "link_utilisation_up": self.link_utilisation_up,
            "link_utilisation_down": self.link_utilisation_down,
            "tx": self.tx.as_dict(),
        }
        if self.rx is not None:
            record["rx"] = self.rx.as_dict()
        if self.host is not None:
            record["host"] = self.host.as_dict()
        if self.tags is not None:
            record["tags"] = self.tags.as_dict()
        if self.profile is not None:
            record["profile"] = self.profile.as_dict()
        if self.metrics is not None:
            record["metrics"] = self.metrics
        if self.fluid is not None:
            record["fluid"] = self.fluid
        return record

    @classmethod
    def from_dict(cls, data: dict) -> "NicSimResult":
        """Rebuild a result from :meth:`as_dict` output."""
        rx = data.get("rx")
        host = data.get("host")
        tags = data.get("tags")
        profile = data.get("profile")
        return cls(
            model=str(data["model"]),
            workload=str(data["workload"]),
            packets=int(data["packets"]),
            duration_ns=float(data["duration_ns"]),
            tx=PathResult.from_dict(data["tx"]),
            rx=PathResult.from_dict(rx) if rx else None,
            link_utilisation_up=float(data["link_utilisation_up"]),
            link_utilisation_down=float(data["link_utilisation_down"]),
            host=HostSideStats.from_dict(host) if host else None,
            tags=DmaTagStats.from_dict(tags) if tags else None,
            profile=EngineProfile.from_dict(profile) if profile else None,
            metrics=data.get("metrics"),
            fluid=data.get("fluid"),
        )


# ---------------------------------------------------------------------------
# Event-loop machinery
# ---------------------------------------------------------------------------

#: The scheduler this simulator runs on now lives in :mod:`repro.sim.engine`
#: (a calendar-queue event wheel with a heap fallback, pop-order-identical
#: to the heap loop this module used to define); the old private name is
#: kept as an alias for anything that imported it.
_EventLoop = EventLoop


class _Signal:
    """A one-shot completion other work can wait on (a batch's fetch DMA)."""

    __slots__ = ("time", "_waiters")

    def __init__(self) -> None:
        self.time: float | None = None
        self._waiters: list[Callable[[float], None]] = []

    def fire(self, now: float) -> None:
        self.time = now
        waiters, self._waiters = self._waiters, []
        for fn in waiters:
            fn(now)

    def wait(self, now: float, fn: Callable[[float], None]) -> None:
        time = self.time
        if time is not None:
            fn(time if time > now else now)
        else:
            self._waiters.append(fn)


@dataclass(frozen=True, slots=True)
class _CompiledOp:
    """One transaction of a sequence with its serialisation times resolved."""

    kind: OpKind
    per_packets: float
    size: int
    up_ns: float
    down_ns: float
    label: str
    #: Whether the transaction is a DMA (holds a tag when the pool is
    #: bounded) — precomputed so the issue path skips the kind test.
    dma: bool


class _Ring:
    """A descriptor ring: bounded entries, completion-batched reclamation.

    Entries are claimed when a packet posts and freed when the driver
    learns the packet finished — which, for batched write-backs and
    moderated interrupts, happens for several entries at once (the source
    of the occupancy plateaus the analytic model cannot show).  A full TX
    ring backpressures the sender; a full RX ring drops the packet, since
    the wire does not wait.
    """

    __slots__ = (
        "name",
        "depth",
        "_used",
        "_waiters",
        "posts",
        "drops",
        "max_occupancy",
        "_occupancy_integral",
        "_first_event",
        "_last_event",
    )

    def __init__(self, name: str, depth: int) -> None:
        self.name = name
        self.depth = depth
        self._used = 0
        self._waiters: deque[Callable[[float], None]] = deque()
        self.posts = 0
        self.drops = 0
        self.max_occupancy = 0
        # Time-weighted occupancy accounting: sampling only at events would
        # weight busy bursts and ignore idle periods entirely.
        self._occupancy_integral = 0.0
        self._first_event: float | None = None
        self._last_event = 0.0

    @property
    def occupancy(self) -> int:
        """Entries currently held."""
        return self._used

    @property
    def waiting(self) -> int:
        """Packets queued for an entry (TX backpressure queue)."""
        return len(self._waiters)

    def _advance(self, now: float) -> None:
        if self._first_event is None:
            self._first_event = now
            if now > self._last_event:
                self._last_event = now
        elif now > self._last_event:
            self._occupancy_integral += self._used * (now - self._last_event)
            self._last_event = now

    def admit(
        self,
        now: float,
        on_post: Callable[[float], None],
        *,
        wait: bool,
        on_drop: Callable[[], None] | None = None,
    ) -> None:
        """Claim an entry at ``now``; posts now, later (TX), or drops (RX)."""
        self._advance(now)
        if self._used < self.depth:
            used = self._used + 1
            self._used = used
            self.posts += 1
            if used > self.max_occupancy:
                self.max_occupancy = used
            on_post(now)
        elif wait:
            self._waiters.append(on_post)
        else:
            self.drops += 1
            if on_drop is not None:
                on_drop()

    def release(self, now: float, count: int) -> None:
        """Free ``count`` entries, handing them straight to any waiters."""
        self._advance(now)
        for _ in range(count):
            if self._waiters:
                self.posts += 1
                self._waiters.popleft()(now)
            else:
                if self._used <= 0:
                    raise SimulationError(f"ring {self.name} released too often")
                self._used -= 1

    def stats(self) -> RingStats:
        """Snapshot of the ring accounting."""
        elapsed = (
            self._last_event - self._first_event
            if self._first_event is not None
            else 0.0
        )
        mean = self._occupancy_integral / elapsed if elapsed > 0 else 0.0
        return RingStats(
            depth=self.depth,
            posts=self.posts,
            drops=self.drops,
            max_occupancy=self.max_occupancy,
            mean_occupancy=mean,
        )


def _ignore(_now: float) -> None:
    """Completion sink for transactions nothing waits on."""


def _streaming_warmup_threshold(
    packets: int, *, warmup_fraction: float, ring_depth: int
) -> int:
    """A-priori warmup cutoff for streaming (``retain_samples=False``) runs.

    Mirrors the retained-mode rule in :func:`_path_statistics`, with the
    *offered* packet count standing in for the delivered count — which a
    streaming run cannot know until it ends, and by then the early samples
    would already have polluted the sketch.
    """
    return max(
        int(packets * warmup_fraction),
        min(ring_depth, packets // 2),
    )


class _WarmupGate:
    """Shared per-direction warmup counter for streaming-mode statistics.

    All queues of one direction report their deliveries through one gate,
    so the first ``threshold`` packets of the *direction* (in completion-
    report order, the order ``_flush`` observes) are excluded — the
    streaming analogue of retained mode's sort-by-completion warmup cut.
    """

    __slots__ = ("threshold", "seen")

    def __init__(self, threshold: int) -> None:
        self.threshold = threshold
        self.seen = 0

    def admit(self) -> bool:
        """True when the packet falls past the warmup cutoff (measure it)."""
        measured = self.seen >= self.threshold
        self.seen += 1
        return measured


class _StreamStats:
    """O(1)-memory measurement accumulator for one queue (streaming mode).

    Holds what :func:`_path_statistics` would have recomputed from the
    retained arrays: a latency sketch over the post-warmup samples plus
    the measurement window (first/last completion, byte and packet
    totals) that throughput and packet rate derive from.  ``merge`` folds
    queues into their direction aggregate.
    """

    __slots__ = ("sketch", "count", "payload_bytes", "first_done", "first_size", "last_done")

    def __init__(self) -> None:
        self.sketch = QuantileSketch()
        self.count = 0
        self.payload_bytes = 0
        self.first_done = float("inf")
        self.first_size = 0
        self.last_done = float("-inf")

    def record(self, latency_ns: float, done: float, size: int) -> None:
        self.sketch.add(latency_ns)
        self.count += 1
        self.payload_bytes += size
        if done < self.first_done:
            self.first_done = done
            self.first_size = size
        if done > self.last_done:
            self.last_done = done

    def merge(self, other: "_StreamStats") -> "_StreamStats":
        self.sketch.merge(other.sketch)
        self.count += other.count
        self.payload_bytes += other.payload_bytes
        if other.first_done < self.first_done:
            self.first_done = other.first_done
            self.first_size = other.first_size
        self.last_done = max(self.last_done, other.last_done)
        return self

    def statistics(self) -> tuple[float, float, LatencySummary | None]:
        """Throughput (Gb/s), packet rate (pps) and latency summary.

        Matches the retained-mode measurement rules: the first measured
        packet marks t0 (its own bytes precede the window) and fewer than
        two measured packets yield no statistics.
        """
        if self.count < 2:
            return 0.0, 0.0, None
        throughput = 0.0
        rate = 0.0
        elapsed = self.last_done - self.first_done
        if elapsed > 0.0:
            throughput = bytes_over_time_to_gbps(
                self.payload_bytes - self.first_size, elapsed
            )
            rate = (self.count - 1) / ns_to_s(elapsed)
        return throughput, rate, LatencySummary.from_sketch(self.sketch)


class _Datapath:
    """One queue of one direction (TX or RX) of the simulated NIC datapath.

    A single-queue device has exactly one of these per direction (the
    historical layout).  A multi-queue device has ``num_queues`` per
    direction, each with its own descriptor ring, batching credits and
    per-packet accounting, all sharing the two link directions, the host
    coupling and the device-wide DMA tag pool.
    """

    __slots__ = (
        "direction",
        "queue_index",
        "label",
        "_model",
        "_config",
        "_sim_config",
        "_loop",
        "_link_up",
        "_link_down",
        "_coupling",
        "_ingress",
        "_walker",
        "_tags",
        "_host_port",
        "ring",
        "_compiled",
        "_payload_idx",
        "_notify_idx",
        "_credits",
        "_signals",
        "_pending",
        "_wait_on_full",
        "arrivals",
        "dones",
        "notifies",
        "delivered_sizes",
        "offered",
        "offered_bytes",
        "dropped_bytes",
        "delivered",
        "delivered_bytes",
        "max_notify",
        "stream",
        "_warmup_gate",
        "observer",
        "tracer",
        "device",
        "_trace_pending",
    )

    def __init__(
        self,
        direction: str,
        model: NicModel,
        config: PCIeConfig,
        sim_config: NicSimConfig,
        loop: EventLoop,
        link_up: SerialResource,
        link_down: SerialResource,
        coupling: HostCoupling | None = None,
        ingress: SerialResource | None = None,
        walker: SerialResource | None = None,
        tags: TagPool | None = None,
        queue_index: int = 0,
        num_queues: int = 1,
        host_port: "object | None" = None,
        warmup_gate: _WarmupGate | None = None,
        tracer: Tracer | None = None,
        device: str = "nic",
    ) -> None:
        self.direction = direction
        self.queue_index = queue_index
        #: Display label: plain direction for single-queue devices (so
        #: serialised results stay identical), ``"tx[i]"`` per queue.
        self.label = direction if num_queues == 1 else f"{direction}[{queue_index}]"
        self._model = model
        self._config = config
        self._sim_config = sim_config
        self._loop = loop
        self._link_up = link_up
        self._link_down = link_down
        self._coupling = coupling
        self._ingress = ingress
        self._walker = walker
        self._tags = tags
        #: Optional arbitrated upstream port (multi-device fabric runs):
        #: an object with ``claim(now, access, coupling, then)`` that
        #: replaces the direct ingress/walker serialisation below.
        self._host_port = host_port
        self.ring = _Ring(f"{self.label}_ring", sim_config.ring_depth)
        #: A full ring queues the packet (TX backpressure / RX with
        #: backpressure on) or drops it (default RX) — fixed per run.
        self._wait_on_full = direction == "tx" or sim_config.rx_backpressure
        self._compiled: dict[int, list[_CompiledOp]] = {}

        reference = self._ops_for(_REFERENCE_PACKET)
        self._payload_idx = self._find_payload(reference)
        self._notify_idx = self._find_notify(reference, self._payload_idx)
        if self._notify_idx is not None:
            notify = reference[self._notify_idx]
            if sim_config.ring_depth < notify.per_packets:
                # Entries free only when a completion report fires, and the
                # report fires only after per_packets payloads complete: a
                # shallower ring can never fill a batch and deadlocks.
                raise ValidationError(
                    f"ring_depth {sim_config.ring_depth} is shallower than "
                    f"the model's completion-report batch "
                    f"({notify.label!r} every {notify.per_packets:g} "
                    "packets); the datapath could never report a batch"
                )
        # Fetch-side (gating) transactions start with a full credit so the
        # first packet of every batch issues the instance (prefetch);
        # completion-report (trailing) transactions start empty so the
        # instance fires when the batch fills.
        self._credits = [
            op.per_packets if index < self._payload_idx else 0.0
            for index, op in enumerate(reference)
        ]
        self._signals: list[_Signal] = [_Signal() for _ in reference]
        for signal in self._signals:
            signal.fire(0.0)  # nothing to wait for until an instance issues
        self._pending: list[tuple[float, float, int]] = []  # arrival, done, size

        self.arrivals: list[float] = []
        self.dones: list[float] = []
        self.notifies: list[float] = []
        self.delivered_sizes: list[int] = []
        self.offered = 0
        self.offered_bytes = 0
        self.dropped_bytes = 0
        self.delivered = 0
        self.delivered_bytes = 0
        #: Latest completion-report time seen (the run duration source in
        #: both modes — streaming runs have no notify list to max over).
        self.max_notify = 0.0
        #: Streaming-mode accumulator; ``None`` in retained mode, where
        #: the per-packet lists above are kept instead.
        self.stream: _StreamStats | None = None
        #: Control-plane observation hook: ``observer(latency_ns)`` per
        #: delivered packet.  ``None`` (always, for controller-less runs)
        #: keeps ``_record`` on the exact historical code path.
        self.observer: Callable[[float], None] | None = None
        #: Span tracer (``None`` keeps every hot path at a bare ``is None``
        #: check) and the device name its spans carry (fabric runs pass the
        #: contending device's name; single-device runs default to "nic").
        self.tracer = tracer
        self.device = device
        #: Parallel to ``_pending``: ``(packet_id, done)`` per delivered
        #: packet awaiting its completion report, popped front-aligned in
        #: ``_flush`` (reports fire in issue order, so order matches).
        self._trace_pending: list[tuple[int, float]] = []
        self._warmup_gate = warmup_gate
        if not sim_config.retain_samples:
            self.stream = _StreamStats()
            if self._warmup_gate is None:
                # Direct construction without a shared gate: measure from
                # the first packet (the runners always pass a gate).
                self._warmup_gate = _WarmupGate(0)

    # -- sequence compilation ---------------------------------------------------

    def _ops_for(self, size: int) -> list[_CompiledOp]:
        ops = self._compiled.get(size)
        if ops is None:
            sequence = (
                self._model.tx_sequence(size)
                if self.direction == "tx"
                else self._model.rx_sequence(size)
            )
            link = self._config.link
            ops = []
            for transaction in sequence.transactions:
                wire = transaction.wire_bytes(self._config)
                ops.append(
                    _CompiledOp(
                        kind=transaction.kind,
                        per_packets=transaction.per_packets,
                        size=transaction.size,
                        up_ns=link.serialisation_time_ns(wire.device_to_host),
                        down_ns=link.serialisation_time_ns(wire.host_to_device),
                        label=transaction.label,
                        dma=transaction.kind
                        in (OpKind.DMA_READ, OpKind.DMA_WRITE),
                    )
                )
            self._compiled[size] = ops
        return ops

    @staticmethod
    def _find_payload(reference: list[_CompiledOp]) -> int:
        payload = None
        payload_time = None
        for index, op in enumerate(reference):
            if op.per_packets != 1.0:
                continue
            if op.kind not in (OpKind.DMA_READ, OpKind.DMA_WRITE):
                continue
            # The payload is the per-packet DMA whose wire time scales with
            # the reference packet, i.e. the largest per-packet DMA.
            time = max(op.up_ns, op.down_ns)
            if payload_time is None or time > payload_time:
                payload_time = time
                payload = index
        if payload is None:
            raise SimulationError(
                "transaction sequence has no per-packet payload DMA"
            )
        return payload

    @staticmethod
    def _find_notify(reference: list[_CompiledOp], payload_idx: int) -> int | None:
        trailing = range(payload_idx + 1, len(reference))
        for index in trailing:
            op = reference[index]
            if op.kind is OpKind.DMA_WRITE and "interrupt" in op.label.lower():
                return index
        for index in trailing:
            if reference[index].kind is OpKind.DMA_WRITE:
                return index
        return None

    # -- transaction issue ------------------------------------------------------

    def _claim_host_resources(self, now: float, access) -> float:
        """Serialise a transaction through root-complex ingress and walker.

        Returns the time host processing can begin; the IOMMU page walker
        is a shared serial resource, so concurrent misses queue — the
        throughput collapse of §6.5.
        """
        ready = now
        tracer = self.tracer
        if access.ingress_occupancy_ns > 0.0:
            if tracer is None:
                ready = (
                    self._ingress.occupy(ready, access.ingress_occupancy_ns)
                    + access.ingress_occupancy_ns
                )
            else:
                start = self._ingress.occupy(ready, access.ingress_occupancy_ns)
                if start > ready:
                    tracer.record(
                        self.device,
                        self.label,
                        -1,
                        ARB_PREFIX + "ingress",
                        ready,
                        start - ready,
                    )
                ready = start + access.ingress_occupancy_ns
        if access.walker_occupancy_ns > 0.0:
            stall = self._walker.free_at - ready
            self._coupling.note_walker_stall(stall if stall > 0.0 else 0.0)
            if tracer is None:
                ready = (
                    self._walker.occupy(ready, access.walker_occupancy_ns)
                    + access.walker_occupancy_ns
                )
            else:
                start = self._walker.occupy(ready, access.walker_occupancy_ns)
                if start > ready:
                    tracer.record(
                        self.device,
                        self.label,
                        -1,
                        ARB_PREFIX + "walker",
                        ready,
                        start - ready,
                    )
                tracer.record(
                    self.device,
                    self.label,
                    -1,
                    STAGE_WALKER,
                    start,
                    access.walker_occupancy_ns,
                )
                ready = start + access.walker_occupancy_ns
        return ready

    def _visit_host(
        self, now: float, access, then: Callable[[float], None]
    ) -> None:
        """Route one transaction through the host-side resources.

        Single-device runs take the direct, synchronous path above (so the
        pre-fabric behaviour is preserved bit for bit); fabric runs route
        through the device's arbitrated upstream port, where ingress and
        walker grants are scheduled among all devices sharing the host.
        ``then(ready)`` fires when host processing can begin.
        """
        if self._host_port is None:
            then(self._claim_host_resources(now, access))
        else:
            self._host_port.claim(now, access, self._coupling, then)

    def _issue(
        self,
        op: _CompiledOp,
        now: float,
        on_done: Callable[[float], None],
        *,
        payload: bool = False,
    ) -> None:
        """Issue one transaction instance, gated by the DMA tag pool.

        With a bounded pool, every DMA (descriptor fetch, payload,
        write-back) must hold a tag while outstanding; an exhausted pool
        delays the issue until the longest-held tag frees — the finite
        concurrency that turns host latency into a throughput cap.  MMIO
        transactions are device register traffic and bypass the pool.
        """
        if self._tags is None or not op.dma:
            self._execute(op, now, on_done, payload=payload, tagged=False)
        else:
            self._tags.acquire(
                now,
                lambda grant: self._execute(
                    op, grant, on_done, payload=payload, tagged=True
                ),
            )

    def _release_then(
        self, on_done: Callable[[float], None]
    ) -> Callable[[float], None]:
        """Wrap a completion so it frees the held DMA tag first."""

        def done(time: float) -> None:
            self._tags.release(time)
            on_done(time)

        return done

    def _execute(
        self,
        op: _CompiledOp,
        now: float,
        on_done: Callable[[float], None],
        *,
        payload: bool,
        tagged: bool,
    ) -> None:
        """Claim link time for one instance; ``on_done`` fires at completion.

        With host coupling active, DMA transactions additionally visit the
        root complex *at the simulated time they arrive there* (so ingress
        and walker occupancy is claimed in event order): reads wait out the
        returned host latency before their completion claims the down
        link; posted writes complete on the wire but still consume host
        resources, back-pressuring later transactions.

        A held tag (``tagged``) frees when the device's DMA context would:
        for reads, when the completion lands back at the device; for
        posted writes, at wire completion — or, host-coupled, when the
        root complex has drained the write into the memory system (the
        flow-control credit loop that lets a slow host throttle even
        posted traffic).
        """
        if op.kind is OpKind.DMA_READ:
            if tagged:
                on_done = self._release_then(on_done)
            up_ns = op.up_ns
            down_ns = op.down_ns
            loop_at = self._loop.at
            link_down = self._link_down
            start = self._link_up.occupy(now, up_ns)

            def completion(time: float) -> None:
                completion_start = link_down.occupy(time, down_ns)
                loop_at(completion_start + down_ns, on_done)

            if self._coupling is None:
                at_host = start + up_ns + self._sim_config.host_read_latency_ns
                loop_at(at_host, completion)
            else:

                def at_root_complex(time: float) -> None:
                    access = self._coupling.access(
                        op.kind,
                        direction=self.direction,
                        payload=payload,
                        size=op.size,
                    )
                    self._visit_host(
                        time,
                        access,
                        lambda ready: loop_at(
                            ready + access.latency_ns, completion
                        ),
                    )

                loop_at(start + up_ns, at_root_complex)
        elif op.kind is OpKind.DMA_WRITE:
            start = self._link_up.occupy(now, op.up_ns)
            if self._coupling is None:
                if tagged:
                    on_done = self._release_then(on_done)
                self._loop.at(start + op.up_ns, on_done)
            else:
                self._loop.at(start + op.up_ns, on_done)

                def at_root_complex_write(time: float) -> None:
                    access = self._coupling.access(
                        op.kind,
                        direction=self.direction,
                        payload=payload,
                        size=op.size,
                    )

                    def drained(ready: float) -> None:
                        if tagged:
                            self._loop.at(
                                ready + access.latency_ns, self._tags.release
                            )

                    self._visit_host(time, access, drained)

                self._loop.at(start + op.up_ns, at_root_complex_write)
        elif op.kind is OpKind.MMIO_WRITE:
            start = self._link_down.occupy(now, op.down_ns)
            self._loop.at(start + op.down_ns, on_done)
        else:  # MMIO_READ: request downstream, completion upstream
            start = self._link_down.occupy(now, op.down_ns)
            turnaround = (
                self._coupling.mmio_read_ns
                if self._coupling is not None
                else self._sim_config.mmio_read_latency_ns
            )
            at_device = start + op.down_ns + turnaround

            def mmio_completion(time: float) -> None:
                completion_start = self._link_up.occupy(time, op.up_ns)
                self._loop.at(completion_start + op.up_ns, on_done)

            self._loop.at(at_device, mmio_completion)

    # -- packet lifecycle -------------------------------------------------------

    def on_arrival(self, now: float, size: int) -> None:
        """A packet reaches the datapath (driver for TX, wire for RX)."""
        if self.tracer is not None:
            self._traced_arrival(now, size)
            return
        self.offered += 1
        self.offered_bytes += size
        # The ring admit fast path, open-coded: an entry is usually free,
        # and going through `_Ring.admit` would allocate two closures per
        # packet on the hottest call chain of the whole simulator.
        ring = self.ring
        # _Ring._advance, open-coded for the same reason.
        if ring._first_event is None:
            ring._first_event = now
            if now > ring._last_event:
                ring._last_event = now
        elif now > ring._last_event:
            ring._occupancy_integral += ring._used * (now - ring._last_event)
            ring._last_event = now
        if ring._used < ring.depth:
            used = ring._used + 1
            ring._used = used
            ring.posts += 1
            if used > ring.max_occupancy:
                ring.max_occupancy = used
            ops = self._compiled.get(size)
            if ops is None:
                ops = self._ops_for(size)
            self._step(ops, 0, now, now, size)
        elif self._wait_on_full:
            ring._waiters.append(
                lambda post: self._step(self._ops_for(size), 0, post, now, size)
            )
        else:
            ring.drops += 1
            self.dropped_bytes += size

    def _traced_arrival(self, now: float, size: int) -> None:
        """Traced mirror of :meth:`on_arrival`.

        Kept out of line so the untraced hot path above pays exactly one
        ``is None`` check per packet.  Simulation decisions are identical
        (same ring admit semantics via :meth:`_Ring.admit`); on top of
        them, one span per lifecycle stage is recorded.  The four packet
        stages are contiguous — ``ring`` (arrival→post), ``issue``
        (post→payload dispatch), ``payload`` (dispatch→done) and
        ``completion`` (done→notify) — so their durations sum to the
        packet's recorded end-to-end latency ``notify - arrival``.
        """
        self.offered += 1
        self.offered_bytes += size
        tracer = self.tracer
        packet = tracer.next_packet()
        device = self.device
        lane = self.label

        def on_post(post: float) -> None:
            tracer.record(device, lane, packet, STAGE_RING, now, post - now)
            self._trace_step(
                self._ops_for(size), 0, post, now, size, packet, post
            )

        def on_drop() -> None:
            self.dropped_bytes += size
            tracer.record(device, lane, packet, STAGE_DROP, now, 0.0)

        self.ring.admit(now, on_post, wait=self._wait_on_full, on_drop=on_drop)

    def _trace_step(
        self,
        ops: list[_CompiledOp],
        index: int,
        now: float,
        arrival: float,
        size: int,
        packet: int,
        post: float,
    ) -> None:
        """Traced mirror of :meth:`_step`.

        Identical gate walk; additionally records one ``op:<label>`` span
        per gating transaction instance (batch-level, so ``packet=-1``)
        and the packet's ``issue`` span once the payload dispatches.
        """
        payload_idx = self._payload_idx
        credits = self._credits
        signals = self._signals
        tracer = self.tracer
        device = self.device
        lane = self.label
        while index != payload_idx:
            op = ops[index]
            if credits[index] >= op.per_packets:
                credits[index] -= op.per_packets
                signal = _Signal()
                signals[index] = signal

                def gate_done(
                    done: float,
                    signal: _Signal = signal,
                    issued: float = now,
                    stage: str = OP_PREFIX + op.label,
                ) -> None:
                    tracer.record(
                        device, lane, -1, stage, issued, done - issued
                    )
                    signal.fire(done)

                self._issue(op, now, gate_done)
            credits[index] += 1.0
            signal = signals[index]
            time = signal.time
            if time is None:
                signal._waiters.append(
                    lambda time, index=index: self._trace_step(
                        ops, index + 1, time, arrival, size, packet, post
                    )
                )
                return
            if time > now:
                now = time
            index += 1
        dispatch = now
        tracer.record(device, lane, packet, STAGE_ISSUE, post, dispatch - post)
        self._issue(
            ops[index],
            now,
            lambda done: self._trace_on_payload(
                arrival, done, size, packet, dispatch
            ),
            payload=True,
        )

    def _trace_on_payload(
        self, arrival: float, done: float, size: int, packet: int, dispatch: float
    ) -> None:
        """Record the ``payload`` span, then run the untraced accounting.

        The ``(packet, done)`` pair is queued *before* :meth:`_on_payload`
        appends to ``_pending`` swaps it, keeping ``_trace_pending``
        front-aligned with the batches ``_flush`` receives.
        """
        self.tracer.record(
            self.device, self.label, packet, STAGE_PAYLOAD, dispatch, done - dispatch
        )
        self._trace_pending.append((packet, done))
        self._on_payload(arrival, done, size)

    def _step(
        self,
        ops: list[_CompiledOp],
        index: int,
        now: float,
        arrival: float,
        size: int,
    ) -> None:
        """Walk the gating transactions in causal order, then the payload.

        Iterative over the already-fired gates (the steady-state case:
        every wait on an already-fired signal continues synchronously), so
        one packet costs one ``_step`` frame instead of one per gate.
        """
        payload_idx = self._payload_idx
        credits = self._credits
        signals = self._signals
        while index != payload_idx:
            op = ops[index]
            if credits[index] >= op.per_packets:
                credits[index] -= op.per_packets
                signal = _Signal()
                signals[index] = signal
                self._issue(op, now, signal.fire)
            credits[index] += 1.0
            signal = signals[index]
            time = signal.time
            if time is None:
                signal._waiters.append(
                    lambda time, index=index: self._step(
                        ops, index + 1, time, arrival, size
                    )
                )
                return
            if time > now:
                now = time
            index += 1
        self._issue(
            ops[index],
            now,
            lambda done: self._on_payload(arrival, done, size),
            payload=True,
        )

    def _on_payload(self, arrival: float, done: float, size: int) -> None:
        """Payload DMA finished: account trailing (report-side) transactions."""
        self._pending.append((arrival, done, size))
        ops = self._compiled.get(size)
        if ops is None:
            ops = self._ops_for(size)
        credits = self._credits
        for index in range(self._payload_idx + 1, len(ops)):
            op = ops[index]
            credits[index] += 1.0
            while credits[index] >= op.per_packets:
                credits[index] -= op.per_packets
                if index == self._notify_idx:
                    batch, self._pending = self._pending, []
                    self._issue(
                        op,
                        done,
                        lambda time, batch=batch: self._flush(batch, time),
                    )
                else:
                    self._issue(op, done, _ignore)
        if self._notify_idx is None:
            batch, self._pending = self._pending, []
            self._flush(batch, done)

    def _flush(self, batch: list[tuple[float, float, int]], report: float) -> None:
        """The driver learned about a batch: free ring entries, sample stats."""
        self.ring.release(report, len(batch))
        tracer = self.tracer
        if tracer is None:
            for arrival, done, size in batch:
                self._record(
                    arrival, done, done if done > report else report, size
                )
            return
        trace_batch = self._trace_pending[: len(batch)]
        del self._trace_pending[: len(batch)]
        for (arrival, done, size), (packet, _done) in zip(batch, trace_batch):
            notify = done if done > report else report
            tracer.record(
                self.device,
                self.label,
                packet,
                STAGE_COMPLETION,
                done,
                notify - done,
            )
            self._record(arrival, done, notify, size)

    def finish(self) -> None:
        """Account packets whose completion report never fired (end of run).

        The last, partial batch has delivered its payloads but the
        moderated interrupt / write-back that would report it never came;
        record those packets with their payload-completion time so the
        delivered/latency accounting covers every packet.  Ring state no
        longer matters once the event loop has drained.
        """
        batch, self._pending = self._pending, []
        tracer = self.tracer
        if tracer is None:
            for arrival, done, size in batch:
                self._record(arrival, done, done, size)
            return
        trace_batch = self._trace_pending[: len(batch)]
        del self._trace_pending[: len(batch)]
        for (arrival, done, size), (packet, _done) in zip(batch, trace_batch):
            # Never reported: the completion stage collapses to zero width
            # at the payload-done time, keeping the span sum exact.
            tracer.record(
                self.device, self.label, packet, STAGE_COMPLETION, done, 0.0
            )
            self._record(arrival, done, done, size)

    def _record(self, arrival: float, done: float, notify: float, size: int) -> None:
        """One delivered packet: retained mode appends, streaming sketches."""
        self.delivered += 1
        self.delivered_bytes += size
        if notify > self.max_notify:
            self.max_notify = notify
        if self.stream is None:
            self.arrivals.append(arrival)
            self.dones.append(done)
            self.notifies.append(notify)
            self.delivered_sizes.append(size)
        elif self._warmup_gate.admit():
            self.stream.record(notify - arrival, done, size)
        if self.observer is not None:
            self.observer(notify - arrival)

    # -- statistics -------------------------------------------------------------

    def result(self) -> PathResult:
        """Summarise this queue (or the whole direction, single-queue)."""
        if self.stream is None:
            throughput, rate, latency = _path_statistics(
                self.arrivals,
                self.dones,
                self.notifies,
                self.delivered_sizes,
                warmup_fraction=self._sim_config.warmup_fraction,
                ring_depth=self._sim_config.ring_depth,
            )
        else:
            throughput, rate, latency = self.stream.statistics()
        return PathResult(
            direction=self.label,
            offered_packets=self.offered,
            delivered_packets=self.delivered,
            drops=self.ring.drops,
            in_flight=self.ring.waiting,
            payload_bytes=self.delivered_bytes,
            offered_bytes=self.offered_bytes,
            dropped_bytes=self.dropped_bytes,
            throughput_gbps=throughput,
            packet_rate_pps=rate,
            latency=latency,
            ring=self.ring.stats(),
        )


def _path_statistics(
    arrivals: list[float] | np.ndarray,
    dones: list[float] | np.ndarray,
    notifies: list[float] | np.ndarray,
    sizes: list[int] | np.ndarray,
    *,
    warmup_fraction: float,
    ring_depth: int,
) -> tuple[float, float, LatencySummary | None]:
    """Steady-state throughput, packet rate and latency of one packet set.

    Shared by the per-queue and the merged per-direction summaries so both
    apply exactly the same warmup and measurement-window rules.
    """
    delivered = len(dones)
    if delivered < 2:
        return 0.0, 0.0, None
    order = np.argsort(np.asarray(dones), kind="stable")
    # The pipeline-fill transient lasts about one ring depth of
    # packets; skip at least that much (up to half the run) on top
    # of the configured warmup fraction.
    warmup = max(
        int(delivered * warmup_fraction),
        min(ring_depth, delivered // 2),
    )
    warmup = min(warmup, delivered - 2)
    measured = order[warmup:]
    throughput = 0.0
    rate = 0.0
    done_times = np.asarray(dones, dtype=np.float64)[measured]
    measured_sizes = np.asarray(sizes, dtype=np.int64)[measured]
    elapsed = float(done_times[-1] - done_times[0])
    if elapsed > 0.0:
        # The first measured packet marks t0; its own bytes precede it.
        throughput = bytes_over_time_to_gbps(
            int(measured_sizes[1:].sum()), elapsed
        )
        rate = (measured_sizes.size - 1) / ns_to_s(elapsed)
    samples = (
        np.asarray(notifies, dtype=np.float64)
        - np.asarray(arrivals, dtype=np.float64)
    )[measured]
    return throughput, rate, LatencySummary.from_samples(samples)


def _direction_result(
    direction: str, queues: list["_Datapath"], sim_config: NicSimConfig
) -> PathResult:
    """Aggregate the queues of one direction into its :class:`PathResult`.

    The single-queue case returns the queue's own result untouched (the
    bit-identical degenerate path).  Otherwise counters sum across queues,
    ring statistics aggregate per the :class:`PathResult` docstring, and
    throughput/latency are recomputed over the *merged* packet set so the
    direction numbers weight every queue by its actual traffic.
    """
    if len(queues) == 1:
        return queues[0].result()
    per_queue = tuple(queue.result() for queue in queues)
    if queues[0].stream is not None:
        # Streaming mode: fold the per-queue sketches/windows in queue
        # order — integer bucket counts make the merged quantiles exact
        # under any order, fixed order keeps the float sums bit-stable.
        merged = _StreamStats()
        for queue in queues:
            merged.merge(queue.stream)
        throughput, rate, latency = merged.statistics()
    else:
        arrivals = [time for queue in queues for time in queue.arrivals]
        dones = [time for queue in queues for time in queue.dones]
        notifies = [time for queue in queues for time in queue.notifies]
        sizes = [size for queue in queues for size in queue.delivered_sizes]
        throughput, rate, latency = _path_statistics(
            arrivals,
            dones,
            notifies,
            sizes,
            warmup_fraction=sim_config.warmup_fraction,
            ring_depth=sim_config.ring_depth,
        )
    ring = RingStats(
        depth=sim_config.ring_depth,
        posts=sum(result.ring.posts for result in per_queue),
        drops=sum(result.ring.drops for result in per_queue),
        max_occupancy=max(result.ring.max_occupancy for result in per_queue),
        mean_occupancy=(
            sum(result.ring.mean_occupancy for result in per_queue)
            / len(per_queue)
        ),
    )
    return PathResult(
        direction=direction,
        offered_packets=sum(result.offered_packets for result in per_queue),
        delivered_packets=sum(result.delivered_packets for result in per_queue),
        drops=sum(result.drops for result in per_queue),
        in_flight=sum(result.in_flight for result in per_queue),
        payload_bytes=sum(result.payload_bytes for result in per_queue),
        offered_bytes=sum(result.offered_bytes for result in per_queue),
        dropped_bytes=sum(result.dropped_bytes for result in per_queue),
        throughput_gbps=throughput,
        packet_rate_pps=rate,
        latency=latency,
        ring=ring,
        queues=per_queue,
    )


# ---------------------------------------------------------------------------
# Metrics publication
# ---------------------------------------------------------------------------


_COUNTER_MEASURES: tuple[tuple[str, str], ...] = (
    ("offered_packets", "offered"),
    ("delivered_packets", "delivered"),
    ("delivered_bytes", "delivered_bytes"),
    ("dropped_bytes", "dropped_bytes"),
)


def _update_direction_counters(
    metrics: MetricsRegistry, base: str, queues: list["_Datapath"]
) -> None:
    """Advance the direction's counters to the queues' live totals."""
    for measure, attribute in _COUNTER_MEASURES:
        counter = metrics.counter(f"{base}.{measure}")
        total = sum(getattr(queue, attribute) for queue in queues)
        counter.add(total - counter.value)
    drops = metrics.counter(base + ".drops")
    drops.add(sum(queue.ring.drops for queue in queues) - drops.value)


def _install_metrics_sampler(
    metrics: MetricsRegistry,
    loop: EventLoop,
    groups: list[tuple[str, list[tuple[str, list["_Datapath"]]]]],
    *,
    prefix: str,
    window_ns: float = DEFAULT_METRICS_WINDOW_NS,
) -> None:
    """Sample the devices' counters every ``window_ns`` of simulated time.

    ``groups`` pairs each device name with its per-direction queue lists;
    one shared tick samples all of them, so each window boundary yields
    exactly one registry row.  Rides the same self-rescheduling pattern
    as the control plane's tick: the sampler re-arms itself only while
    the loop still has events, so a drained run stops cleanly.  Cost is
    zero on the per-packet hot path — live datapath counters are only
    *read* at window boundaries.
    """
    lanes = [
        (f"{prefix}.{metric_segment(device)}.{direction}", queues)
        for device, directions in groups
        for direction, queues in directions
    ]
    for base, _ in lanes:
        for measure, _attribute in _COUNTER_MEASURES:
            metrics.counter(f"{base}.{measure}")
        metrics.counter(base + ".drops")

    def tick(now: float) -> None:
        for base, queues in lanes:
            _update_direction_counters(metrics, base, queues)
        metrics.sample(now)
        if loop.peek_time() < math.inf:
            loop.at(now + window_ns, tick)

    loop.at(window_ns, tick)


def _finalise_metrics(
    metrics: MetricsRegistry,
    groups: list[tuple[str, list[tuple[str, list["_Datapath"]]]]],
    *,
    prefix: str,
) -> None:
    """Publish end-of-run totals and per-direction latency histograms."""
    for device, directions in groups:
        dev = metric_segment(device)
        for direction, queues in directions:
            base = f"{prefix}.{dev}.{direction}"
            _update_direction_counters(metrics, base, queues)
            histogram = metrics.histogram(base + ".latency_ns")
            for queue in queues:
                if queue.stream is not None:
                    histogram.sketch.merge(queue.stream.sketch)
                elif queue.notifies:
                    histogram.observe_many(
                        (
                            np.asarray(queue.notifies, dtype=np.float64)
                            - np.asarray(queue.arrivals, dtype=np.float64)
                        ).tolist()
                    )


# ---------------------------------------------------------------------------
# The simulator façade
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PathTrace:
    """Raw per-packet event times of one direction, for invariant checking.

    ``NicDatapathSimulator.run`` keeps the trace of its most recent run in
    ``last_traces`` so test harnesses can assert the causal ordering
    (arrival <= payload completion <= completion report) packet by packet
    — the summaries in :class:`PathResult` cannot express that.

    ``queue_ids`` labels every delivered packet with the queue that
    carried it (all zeros for single-queue runs), so per-queue slices of
    the trace can be checked against per-queue counters.
    """

    direction: str
    arrivals_ns: np.ndarray
    dones_ns: np.ndarray
    notifies_ns: np.ndarray
    sizes: np.ndarray
    queue_ids: np.ndarray | None = None


class NicDatapathSimulator:
    """Replays workloads through a NIC/driver model, packet by packet."""

    def __init__(
        self,
        model: NicModel | str,
        config: PCIeConfig = PAPER_DEFAULT_CONFIG,
        sim_config: NicSimConfig | None = None,
    ) -> None:
        self.model = model_by_name(model) if isinstance(model, str) else model
        self.config = config
        self.sim_config = sim_config or NicSimConfig()
        #: Per-direction :class:`PathTrace` of the most recent ``run``.
        self.last_traces: dict[str, PathTrace] = {}
        #: Phase timing of the most recent ``run`` (the ``--profile`` hook).
        self.last_profile: EngineProfile | None = None

    def run(
        self,
        workload: Workload,
        packets: int,
        *,
        seed: int | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        device: str = "nic",
        mode: str = "exact",
    ) -> NicSimResult:
        """Simulate ``packets`` packets per active direction.

        Args:
            workload: the traffic description to replay.
            packets: packets per direction (full duplex runs 2x this).
            seed: RNG seed for the workload draws (defaults to the library
                seed so runs are reproducible).
            tracer: optional span recorder; when set, every packet's
                lifecycle stages (and walker/arbitration waits) land in
                its flight-recorder buffer.  ``None`` (the default) keeps
                the hot path on the exact historical code.
            metrics: optional registry; when set, per-direction counters
                are sampled every ``DEFAULT_METRICS_WINDOW_NS`` of
                simulated time and the cumulative snapshot is attached to
                the result as ``result.metrics``.
            device: name carried by spans and metric names (fabric runs
                pass the contending device's name).
            mode: engine selection — ``"exact"`` (default, the scalar
                event loop every golden is pinned to), ``"batch"`` (the
                vectorised :mod:`repro.sim.fastpath` solver, falling back
                to the scalar loop whenever an interaction point makes it
                inapplicable) or ``"hybrid"`` (scalar loop with the fluid
                steady-state fast path per queue).
        """
        if packets <= 0:
            raise ValidationError(f"packets must be positive, got {packets}")
        if mode not in ("exact", "batch", "hybrid"):
            raise ValidationError(
                f"mode must be one of exact, batch, hybrid; got {mode!r}"
            )
        datapath_cls = _Datapath
        if mode == "batch":
            # Lazy import: the scalar path never touches the fastpath
            # module (which is where the optional-numpy contract lives).
            from .fastpath import BatchFallback, run_batch

            try:
                return run_batch(
                    self,
                    workload,
                    packets,
                    seed=seed,
                    tracer=tracer,
                    metrics=metrics,
                    device=device,
                )
            except BatchFallback:
                # An interaction point (host coupling, bounded tags,
                # multi-queue, ring pressure) or non-convergence: the
                # scalar loop is authoritative.  Fallbacks fire before the
                # solver touches the tracer or metrics registry, so the
                # scalar run below starts from a clean slate; the profile
                # keeps mode="exact" so records say which engine ran.
                pass
        elif mode == "hybrid":
            from .fastpath import fluid_datapath_class

            datapath_cls = fluid_datapath_class()
        wall_start = perf_counter()
        resolved_seed = DEFAULT_SEED if seed is None else seed
        rng = SimRng(resolved_seed)
        loop = EventLoop()
        link_up = SerialResource("nicsim.device_to_host")
        link_down = SerialResource("nicsim.host_to_device")
        coupling = None
        ingress = None
        walker = None
        if self.sim_config.host is not None:
            coupling = HostCoupling(
                self.sim_config.host,
                ring_depth=self.sim_config.ring_depth,
                seed=resolved_seed,
            )
            ingress = SerialResource("nicsim.root_complex.ingress")
            walker = SerialResource("nicsim.iommu.walker")
        num_queues = self.sim_config.num_queues
        tags = (
            TagPool("nicsim.dma_tags", self.sim_config.dma_tags)
            if self.sim_config.dma_tags is not None
            else None
        )
        directions: list[tuple[str, list[_Datapath]]] = []
        for direction in ("tx", "rx") if workload.duplex else ("tx",):
            warmup_gate = (
                None
                if self.sim_config.retain_samples
                else _WarmupGate(
                    _streaming_warmup_threshold(
                        packets,
                        warmup_fraction=self.sim_config.warmup_fraction,
                        ring_depth=self.sim_config.ring_depth,
                    )
                )
            )
            queues = [
                datapath_cls(
                    direction,
                    self.model,
                    self.config,
                    self.sim_config,
                    loop,
                    link_up,
                    link_down,
                    coupling=coupling,
                    ingress=ingress,
                    walker=walker,
                    tags=tags,
                    queue_index=index,
                    num_queues=num_queues,
                    warmup_gate=warmup_gate,
                    tracer=tracer,
                    device=device,
                )
                for index in range(num_queues)
            ]
            schedule = workload.generate(packets, rng, stream=direction)
            if num_queues == 1:
                targets = None
            else:
                if schedule.flows is None:
                    raise ValidationError(
                        f"a {num_queues}-queue run needs a workload with a "
                        "flow model to steer by (set Workload.flows, e.g. "
                        "via repro.workloads.build_flow_model)"
                    )
                # The RSS key derives from the run seed: reseeding the run
                # reprograms the hash, like a driver re-keying Toeplitz.
                if self.sim_config.rss_table is not None:
                    table = np.asarray(
                        self.sim_config.rss_table, dtype=np.int64
                    )
                    targets = table[
                        rss_buckets(
                            schedule.flows, len(table), seed=resolved_seed
                        )
                    ]
                else:
                    targets = rss_queues(
                        schedule.flows, num_queues, seed=resolved_seed
                    )
            # Arrivals are pre-generated and nearly sorted: feed them to
            # the loop's stream (one stable sort + pointer walk) instead
            # of paying per-event scheduling and a closure per packet.
            arrival_times = schedule.arrival_times_ns.tolist()
            sizes = schedule.sizes.tolist()
            if targets is None:
                on_arrival = queues[0].on_arrival
                loop.feed_many(
                    (time, on_arrival, size)
                    for time, size in zip(arrival_times, sizes)
                )
            else:
                loop.feed_many(
                    (arrival_times[index], queues[target].on_arrival, sizes[index])
                    for index, target in enumerate(targets.tolist())
                )
            directions.append((direction, queues))
        if metrics is not None:
            _install_metrics_sampler(
                metrics, loop, [(device, directions)], prefix="nicsim"
            )
        events_start = perf_counter()
        loop.run()
        stats_start = perf_counter()
        for _, queues in directions:
            for path in queues:
                path.finish()

        # Streaming runs keep no per-packet arrays, so there is no trace
        # to publish; retained runs expose the full trace as before.
        self.last_traces = {
            direction: PathTrace(
                direction=direction,
                arrivals_ns=np.asarray(
                    [t for q in queues for t in q.arrivals], dtype=np.float64
                ),
                dones_ns=np.asarray(
                    [t for q in queues for t in q.dones], dtype=np.float64
                ),
                notifies_ns=np.asarray(
                    [t for q in queues for t in q.notifies], dtype=np.float64
                ),
                sizes=np.asarray(
                    [s for q in queues for s in q.delivered_sizes],
                    dtype=np.int64,
                ),
                queue_ids=np.asarray(
                    [q.queue_index for q in queues for _ in q.dones],
                    dtype=np.int64,
                ),
            )
            for direction, queues in directions
        } if self.sim_config.retain_samples else {}
        duration = max(
            [0.0]
            + [
                path.max_notify
                for _, queues in directions
                for path in queues
            ]
        )
        results = [
            _direction_result(direction, queues, self.sim_config)
            for direction, queues in directions
        ]
        tx = results[0]
        rx = results[1] if len(results) > 1 else None
        fluid = None
        if mode == "hybrid":
            from .fastpath import fluid_result_summary

            fluid = fluid_result_summary(directions)
        self.last_profile = EngineProfile(
            label=f"nicsim {self.model.name} {workload.name}",
            build_s=events_start - wall_start,
            events_s=stats_start - events_start,
            stats_s=perf_counter() - stats_start,
            events=loop.processed,
            mode=mode if mode == "hybrid" else "exact",
        )
        if metrics is not None:
            _finalise_metrics(metrics, [(device, directions)], prefix="nicsim")
            dev = metric_segment(device)
            metrics.gauge(f"nicsim.{dev}.link.up_utilisation").set(
                link_up.utilisation(duration) if duration > 0 else 0.0
            )
            metrics.gauge(f"nicsim.{dev}.link.down_utilisation").set(
                link_down.utilisation(duration) if duration > 0 else 0.0
            )
        return NicSimResult(
            model=self.model.name,
            workload=workload.name,
            packets=packets,
            duration_ns=duration,
            tx=tx,
            rx=rx,
            link_utilisation_up=(
                link_up.utilisation(duration) if duration > 0 else 0.0
            ),
            link_utilisation_down=(
                link_down.utilisation(duration) if duration > 0 else 0.0
            ),
            host=coupling.stats() if coupling is not None else None,
            tags=DmaTagStats.from_pool(tags) if tags is not None else None,
            metrics=metrics.as_dict() if metrics is not None else None,
            fluid=fluid,
        )


def simulate_nic(
    model: NicModel | str,
    workload: Workload | str = "fixed",
    *,
    packets: int = 4000,
    packet_size: int = 1024,
    load_gbps: float | None = None,
    duplex: bool = True,
    ring_depth: int = 512,
    rx_backpressure: bool = False,
    host: NicHostConfig | str | None = None,
    num_queues: int = 1,
    dma_tags: int | None = None,
    rss: str = "uniform",
    rss_table: tuple[int, ...] | None = None,
    flow_count: int = 64,
    retain_samples: bool = True,
    seed: int | None = None,
    config: PCIeConfig = PAPER_DEFAULT_CONFIG,
    profile_sink: list[EngineProfile] | None = None,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    device: str = "nic",
    mode: str = "exact",
) -> NicSimResult:
    """One-call convenience wrapper around :class:`NicDatapathSimulator`.

    ``workload`` accepts either a prepared :class:`Workload` or a registry
    name (``"fixed"``, ``"imix"``, ``"bursty"``, ...); the ``packet_size``,
    ``load_gbps`` and ``duplex`` knobs only apply when building by name.
    ``host`` couples the datapath to a host model: either a full
    :class:`~repro.sim.nichost.NicHostConfig` or a Table 1 profile name
    (which uses the config's neutral defaults).

    ``num_queues`` and ``dma_tags`` configure the multi-queue layout and
    the bounded in-flight DMA tag pool.  A multi-queue run steers packets
    by flow; if the workload carries no flow model one is attached from
    the ``rss`` scenario name (``"uniform"``, ``"zipf"``/``"skewed"``,
    ``"hot"``) with ``flow_count`` distinct flows.

    ``retain_samples=False`` selects the O(1)-memory streaming-statistics
    mode (see :class:`NicSimConfig`).

    ``profile_sink`` (a caller-owned list) receives the run's
    :class:`~repro.sim.engine.EngineProfile` — per-phase wall time and
    event throughput — when provided; the profile is then also attached
    to the returned result (``result.profile``) so it serialises.

    ``tracer`` and ``metrics`` opt into the observability layer
    (:mod:`repro.obs`): span traces of every packet lifecycle stage, and
    a window-sampled counter/gauge/histogram registry attached to the
    result as ``result.metrics``.  Both default to off, which keeps the
    datapath on the exact historical (golden-verified) code path.

    ``mode`` selects the engine (``"exact"``/``"batch"``/``"hybrid"``,
    see :meth:`NicDatapathSimulator.run`).
    """
    if isinstance(workload, str):
        workload = build_workload(
            workload, size=packet_size, load_gbps=load_gbps, duplex=duplex
        )
    if num_queues > 1 and workload.flows is None:
        workload = workload.with_(
            flows=build_flow_model(rss, flows=flow_count)
        )
    if isinstance(host, str):
        host = NicHostConfig(system=host)
    simulator = NicDatapathSimulator(
        model,
        config=config,
        sim_config=NicSimConfig(
            ring_depth=ring_depth,
            rx_backpressure=rx_backpressure,
            host=host,
            num_queues=num_queues,
            dma_tags=dma_tags,
            retain_samples=retain_samples,
            rss_table=rss_table,
        ),
    )
    result = simulator.run(
        workload,
        packets,
        seed=seed,
        tracer=tracer,
        metrics=metrics,
        device=device,
        mode=mode,
    )
    if profile_sink is not None and simulator.last_profile is not None:
        profile_sink.append(simulator.last_profile)
        result = replace(result, profile=simulator.last_profile)
    return result


# ---------------------------------------------------------------------------
# Cross-validation against the analytic model
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CrossValidationPoint:
    """Analytic vs simulated throughput for one (model, packet size) pair."""

    model: str
    packet_size: int
    analytic_gbps: float
    simulated_gbps: float

    @property
    def relative_error(self) -> float:
        """``|simulated - analytic| / analytic``."""
        return abs(self.simulated_gbps - self.analytic_gbps) / self.analytic_gbps

    def within(self, tolerance: float = 0.1) -> bool:
        """Whether the simulation agrees with the model to ``tolerance``."""
        return self.relative_error <= tolerance


def cross_validate(
    model: NicModel | str,
    sizes: tuple[int, ...] = (64, 512, 1500),
    *,
    packets: int = 2000,
    ring_depth: int = 512,
    host: NicHostConfig | str | None = None,
    dma_tags: int | None = None,
    seed: int | None = None,
    config: PCIeConfig = PAPER_DEFAULT_CONFIG,
) -> list[CrossValidationPoint]:
    """Compare steady-state simulated throughput with the analytic curve.

    Runs a fixed-size full-duplex saturating workload per size — the exact
    setting the closed-form model describes — and pairs the measured
    per-direction payload throughput with
    :meth:`~repro.core.nic.NicModel.throughput_gbps`.  RX backpressure is
    enabled so both directions stay in the 1:1 lossless mix the model
    assumes (with tail-drop, dropped RX packets would free upstream
    bandwidth and let TX exceed the model's bound).  Agreement here is
    what licenses trusting the simulator where the model cannot go (bursty
    arrivals, mixed sizes, shallow rings).

    Passing ``host`` runs the comparison with the datapath coupled to a
    host model; with a *neutral* host configuration (IOMMU off, warm
    cache, local buffers) the agreement must survive the coupling — the
    regression contract the host-coupling refactor is held to.  A
    ``dma_tags`` bound participates in the same contract only while the
    pool is deep enough not to bind; a deliberately small pool *should*
    break the agreement (that is the Figure 8 experiment).
    """
    resolved = model_by_name(model) if isinstance(model, str) else model
    points = []
    for size in sizes:
        result = simulate_nic(
            resolved,
            "fixed",
            packets=packets,
            packet_size=size,
            ring_depth=ring_depth,
            rx_backpressure=True,
            host=host,
            dma_tags=dma_tags,
            seed=seed,
            config=config,
        )
        points.append(
            CrossValidationPoint(
                model=resolved.name,
                packet_size=size,
                analytic_gbps=resolved.throughput_gbps(size, config),
                simulated_gbps=result.throughput_gbps,
            )
        )
    return points


def cross_validate_figure1(
    sizes: tuple[int, ...] = (64, 512, 1500),
    *,
    packets: int = 2000,
    config: PCIeConfig = PAPER_DEFAULT_CONFIG,
) -> dict[str, list[CrossValidationPoint]]:
    """Cross-validate all three Figure 1 models; keyed by model name."""
    return {
        model.name: cross_validate(model, sizes, packets=packets, config=config)
        for model in FIGURE1_MODELS
    }
