"""Compiled-speed fast paths for the NIC datapath simulator.

Two escapes from per-event interpreter dispatch live here, both opt-in
via ``mode=`` on :class:`~repro.sim.nicsim.NicDatapathSimulator.run`
(and ``--mode`` on the CLI):

* ``mode="batch"`` — a **vectorised batch engine** (:func:`run_batch`).
  When a run has no interaction points (no host coupling, no bounded DMA
  tag pool, a single queue pair, and descriptor rings that never fill),
  every transaction instance of the whole run can be laid out as numpy
  columns and the two link directions solved by waveform relaxation:
  each sweep computes every instance's *request* time from the previous
  sweep's link schedule, re-serves each link FIFO-in-request-order with
  a max-plus scan, and repeats until the schedule reaches a fixed point.
  Per-stage latencies are computed column-wise and scattered back into
  the sketch/stats layer in one call.  The moment any coupling condition
  triggers (or the relaxation fails to converge) :class:`BatchFallback`
  is raised and the caller falls back to the scalar event loop.

  Equivalence contract: on runs whose relaxation converges (everything
  short of sustained saturation) the batch schedule is **bit-identical**
  to the scalar event loop — the link solve replays the scalar float
  association and serves ties in event order.  Saturated runs stop at
  the sweep cap instead of iterating to the fixed point and are
  *statistically equivalent*: throughput within 1%, p50 within 3%, p99
  within 8% (asserted by ``tests/property/test_fastpath_equivalence.py``).

* ``mode="hybrid"`` — the scalar event loop with a **fluid fast path**
  per queue (:func:`fluid_datapath_class`).  A
  :class:`SteadyStateMonitor` watches each queue's delivered latencies
  through :class:`~repro.stats.WindowedStats` windows; once consecutive
  windows agree (mean and p99 within a relative band) the queue is
  *certified* steady and stops simulating packet granularity: arrivals
  are buffered, one aggregate transaction per completion batch claims
  the links at the model's analytic amortised cost, and per-packet
  latencies are drawn from the certified residual distribution (a
  low-discrepancy walk over the recent packet-mode samples).  Any
  control action, load-curve knee (arrival-gap drift) or contention
  signal (ring pressure) re-enters packet mode and re-arms the monitor.

numpy is required for both fast paths but is an *optional* extra
(``pip install .[fast]``): this module imports it behind a guard, the
scalar path never imports this module, and :func:`require_numpy` turns
a missing install into a actionable error naming the extra.
"""

from __future__ import annotations

import math
from collections import deque
from time import perf_counter
from typing import TYPE_CHECKING, Callable

try:  # pragma: no cover - exercised by monkeypatching `np` in tests
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

from ..core.transactions import OpKind
from ..errors import SimulationError, UsageError, ValidationError
from ..stats import WindowedStats
from .engine import EngineProfile

if TYPE_CHECKING:  # pragma: no cover
    from .nicsim import NicDatapathSimulator, NicSimResult
    from ..workloads import Workload

#: The engine selection knob shared by the simulator, the bench layer and
#: the CLI.  ``exact`` is the scalar event loop (the default, golden-
#: verified path); ``batch`` and ``hybrid`` are the fast paths above.
MODES: tuple[str, ...] = ("exact", "batch", "hybrid")

#: Outer waveform-relaxation sweep cap.  Interaction-free runs reach
#: their fixed point in a handful of sweeps (the per-packet dependency
#: chain is ~8 link visits) — those are the bit-identical runs.  Under
#: sustained congestion the service-order frontier only advances a burst
#: or so per sweep (one gate-batch generation per sweep is the inherent
#: information-propagation speed of waveform relaxation), so iterating a
#: saturated run to its fixed point costs more than the scalar loop.
#: The solver instead stops here and keeps the causally-clamped
#: approximate schedule.  The fixed point itself is *exact* (raising
#: this cap until convergence reproduces the scalar run bit for bit —
#: pinned by the equivalence suite), so this constant is a pure
#: speed/accuracy dial: runs that converge within the cap are exact;
#: runs that exhaust it carry the documented saturated-regime tolerance
#: (throughput <=1%, p50 <=3%, p99 <=8% — asserted by the equivalence
#: suite).
MAX_RELAXATION_SWEEPS = 6

#: Inner elementwise polish sweeps per link solve: the max-plus scan is
#: exact up to float reassociation, and each polish sweep replays the
#: scalar recurrence ``start = max(req, free_prev); free = start + dur``
#: so queue chains up to this depth settle to the bit-exact scalar
#: values.  Intermediate relaxation sweeps only need approximate starts
#: to propagate (their requests move again next sweep anyway), so they
#: run a short polish; the two *final* rounds after the relaxation loop
#: re-serve the settled schedule with the deep budget, pinning busy
#: chains up to that depth to the scalar float association.
_POLISH_SWEEPS = 4
_POLISH_FINAL = 128

#: Caps on the final deep-polish rounds (they early-exit as soon as the
#: served starts stop moving).  Converged runs get the full budget —
#: they settle in 2-3 rounds and come out bit-identical; cap-exhausted
#: (saturated) runs get two rounds, which the tolerance calibration
#: below is measured against.
_FINAL_ROUNDS = 6
_SATURATED_ROUNDS = 2

#: Tie-rank stride: ``trigger_packet * stride + op_position`` orders
#: same-instant link requests the way the event loop does (packet-major,
#: then walk order).  Compiled op chains are far shorter than this.
_RANK_STRIDE = 64

#: Tie ranks come in two tiers mirroring the event loop's fed-before-
#: dynamic rule.  Tier 0 is an occupy issued directly by an arrival-fed
#: walk (request == the trigger packet's arrival): the pre-fed arrival
#: events run first at a tied timestamp, in feed order — direction, then
#: packet, then walk position.  Tier 1 is everything dynamic (gate-fire
#: released walks, read completions, trailing ops): those resume
#: packet-major — packet, then walk position, then direction.  Tier-1
#: keys are offset past every tier-0 key.
_TIER1_BASE = 1 << 40

_GOLDEN_RATIO_FRACTION = 0.6180339887498949


def numpy_available() -> bool:
    """Whether the optional ``[fast]`` extra (numpy) is importable."""
    return np is not None


def require_numpy(context: str) -> None:
    """Raise :class:`UsageError` naming the extra when numpy is missing."""
    if np is None:
        raise UsageError(
            f"{context} requires numpy; install the optional extra with "
            "`pip install repro[fast]` (or use --mode exact)"
        )


def validate_mode(mode: str) -> str:
    """Normalise and validate an engine mode name."""
    resolved = str(mode).strip().lower()
    if resolved not in MODES:
        raise ValidationError(
            f"mode must be one of {', '.join(MODES)}; got {mode!r}"
        )
    return resolved


class BatchFallback(Exception):
    """The batch engine cannot honour this run; use the scalar path.

    Raised for *eligibility* reasons (host coupling, bounded tags,
    multiple queues, fractional batch factors) before any work happens,
    and for *dynamic* reasons (ring backpressure/drops, non-convergence)
    after the solve — both mean the scalar event loop is authoritative.
    """

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


# ---------------------------------------------------------------------------
# The vectorised link model
# ---------------------------------------------------------------------------


class _Link:
    """One serialised link direction, solved as columns.

    Mirrors :class:`~repro.sim.engine.SerialResource` semantics — FIFO in
    request order, ``start = max(request, free_at)`` — over every
    transaction instance of the run at once.  Segments register their
    per-instance durations up front (fixed); each relaxation sweep fills
    the request column and :meth:`solve` re-serves the link.  The sort
    order is cached and only recomputed when a sweep actually reorders
    requests, which stops happening once the schedule stabilises.

    **Ties.**  The scalar grant order is the ``occupy`` *call* order, and
    every call happens inside an event scheduled exactly at its request
    time — so ties at equal request times resolve by the event loop's
    order at that instant: pre-fed arrival events first (in feed order —
    direction, then packet, then walk position), then dynamic events
    (gate-fire released batches, read completions) packet-major.  Each
    registration therefore carries *two* rank columns — a tier-0 key for
    arrival-fed requests and a tier-1 key for derived ones — and each
    sweep picks per entry (``_Seg.set_req``) whichever tier the entry's
    request fell into.  The link serves by ``lexsort((key, req))``.
    """

    __slots__ = (
        "name",
        "_dur_parts",
        "_rank0_parts",
        "_rank1_parts",
        "_offsets",
        "dur",
        "rank0",
        "rank1",
        "key",
        "req",
        "start",
        "moved",
        "_order",
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self._dur_parts: list = []
        self._rank0_parts: list = []
        self._rank1_parts: list = []
        self._offsets = [0]
        self.dur = None
        self.rank0 = None
        self.rank1 = None
        self.key = None
        self.req = None
        self.start = None
        self.moved = 0
        self._order = None

    def register(self, durations, rank0, rank1) -> tuple[int, int]:
        """Reserve a slot range; returns its ``(lo, hi)`` bounds."""
        lo = self._offsets[-1]
        self._dur_parts.append(np.asarray(durations, dtype=np.float64))
        self._rank0_parts.append(np.asarray(rank0, dtype=np.int64))
        self._rank1_parts.append(np.asarray(rank1, dtype=np.int64))
        hi = lo + self._dur_parts[-1].size
        self._offsets.append(hi)
        return lo, hi

    def finalize(self) -> None:
        total = self._offsets[-1]
        self.dur = (
            np.concatenate(self._dur_parts)
            if self._dur_parts
            else np.empty(0, dtype=np.float64)
        )
        self.rank0 = (
            np.concatenate(self._rank0_parts)
            if self._rank0_parts
            else np.empty(0, dtype=np.int64)
        )
        self.rank1 = (
            np.concatenate(self._rank1_parts)
            if self._rank1_parts
            else np.empty(0, dtype=np.int64)
        )
        self.key = self.rank1.copy()
        self.req = np.zeros(total, dtype=np.float64)

    def solve(self, polish: int = _POLISH_SWEEPS) -> bool:
        """Serve every request FIFO-in-time-order; True when starts moved."""
        n = self.req.size
        if n == 0:
            return False
        order = self._order
        if order is not None:
            r = self.req[order]
            k = self.key[order]
            if not np.all(
                (r[1:] > r[:-1]) | ((r[1:] == r[:-1]) & (k[1:] >= k[:-1]))
            ):
                order = None
        if order is None:
            order = np.lexsort((self.key, self.req))
            self._order = order
            r = self.req[order]
        d = self.dur[order]
        # Max-plus scan: free_k = c_k + max_{j<=k}(req_j - c_{j-1}).
        c = np.add.accumulate(d)
        free = c + np.maximum.accumulate(r - (c - d))
        shifted = np.empty_like(free)
        start = None
        for _ in range(polish):
            shifted[0] = 0.0
            shifted[1:] = free[:-1]
            new_start = np.maximum(r, shifted)
            new_free = new_start + d
            if start is not None and np.array_equal(new_start, start):
                break
            start = new_start
            free = new_free
        starts = np.empty_like(free)
        starts[order] = start
        if self.start is None:
            self.moved = n
        else:
            self.moved = int(np.count_nonzero(starts != self.start))
        changed = self.moved > 0
        self.start = starts
        return changed

    def busy_time(self) -> float:
        """Total service time, accumulated in final service order."""
        if self.dur.size == 0:
            return 0.0
        ordered = self.dur[self._order] if self._order is not None else self.dur
        return float(np.add.accumulate(ordered)[-1])


class _Seg:
    """One segment of a link's columns (one occupy phase of one op)."""

    __slots__ = ("link", "lo", "hi", "_bootstrap")

    def __init__(self, link: _Link, durations, rank0, rank1) -> None:
        self.link = link
        self.lo, self.hi = link.register(durations, rank0, rank1)
        self._bootstrap = None

    def set_req(self, values, fed=None) -> None:
        """Post this segment's requests for the coming solve.

        ``fed`` marks the entries whose request coincides with their
        trigger packet's arrival — those are served with the tier-0
        (feed-order) tie key; everything else keeps the tier-1
        (packet-major dynamic) key.  Segments that can never be
        arrival-fed (completion legs, trailing ops) omit it.
        """
        lo, hi = self.lo, self.hi
        link = self.link
        link.req[lo:hi] = values
        if fed is not None:
            link.key[lo:hi] = np.where(
                fed, link.rank0[lo:hi], link.rank1[lo:hi]
            )
        self._bootstrap = values

    def start(self, bootstrap: bool):
        if bootstrap:
            return self._bootstrap
        # Clamp against the request set *this* sweep: the link schedule
        # lags the requests by one sweep, and on the (tolerance-regime)
        # runs that stop before the fixed point an un-clamped stale start
        # could precede its own request and break causality.  At the
        # fixed point ``start >= req`` holds anyway, so the clamp is a
        # no-op on every bit-identical run.
        return np.maximum(self.link.start[self.lo : self.hi], self._bootstrap)


class _OpCols:
    """Column view of every instance of one transaction of one direction."""

    __slots__ = (
        "label",
        "kind",
        "batch",
        "trig",
        "pmap",
        "up",
        "down",
        "seg_up",
        "seg_down",
        "is_notify",
        "completions",
        "first_req",
    )

    def __init__(self, label: str, kind: OpKind, batch: int) -> None:
        self.label = label
        self.kind = kind
        self.batch = batch
        self.trig = None
        self.pmap = None
        self.up = None
        self.down = None
        self.seg_up = None
        self.seg_down = None
        self.is_notify = False
        self.completions = None
        self.first_req = 0.0


def _integral_batch(op, direction: str) -> int:
    batch = op.per_packets
    if batch < 1.0 or batch != int(batch):
        raise BatchFallback(
            f"{direction} op {op.label!r} has fractional batch factor "
            f"{batch:g}; the batch engine needs integral batches"
        )
    return int(batch)


class _DirSolver:
    """Per-direction column state: gates, payload, trailing, ring."""

    def __init__(
        self,
        direction: str,
        path,
        arrivals,
        sizes,
        link_up: _Link,
        link_down: _Link,
        sim_config,
        packets: int,
    ) -> None:
        self.direction = direction
        # Feed order of same-time arrival events across directions: the
        # run feeds the tx stream before rx, so tx wins tier-0 ties.
        self.dir_index = 0 if direction == "tx" else 1
        self.path = path
        self.packets = packets
        # The event loop processes arrivals in (time, feed-order) order;
        # packet indices below follow that order so gate triggers, batch
        # boundaries and record order all match the scalar walk.
        order = np.argsort(np.asarray(arrivals, dtype=np.float64), kind="stable")
        self.arrivals = np.asarray(arrivals, dtype=np.float64)[order]
        self.sizes = np.asarray(sizes, dtype=np.int64)[order]
        self.hrl = sim_config.host_read_latency_ns
        self.mmio = sim_config.mmio_read_latency_ns
        self.ring_depth = sim_config.ring_depth
        p = self.arrivals.size

        reference = path._ops_for(_reference_packet())
        payload_idx = path._payload_idx
        self.notify_idx = path._notify_idx

        # Per-packet payload serialisation times, gathered per unique size
        # through the datapath's own compiled sequences so every float is
        # the exact value the scalar path would use.  Non-payload ops must
        # not vary with packet size — the gate walk uses the *trigger*
        # packet's compiled sequence, which the column layout cannot.
        uniq, inverse = np.unique(self.sizes, return_inverse=True)
        pay_up = np.empty(uniq.size, dtype=np.float64)
        pay_down = np.empty(uniq.size, dtype=np.float64)
        for u, size in enumerate(uniq.tolist()):
            ops = path._ops_for(int(size))
            pay_up[u] = ops[payload_idx].up_ns
            pay_down[u] = ops[payload_idx].down_ns
            for index, op in enumerate(ops):
                if index == payload_idx:
                    continue
                ref = reference[index]
                if op.up_ns != ref.up_ns or op.down_ns != ref.down_ns:
                    raise BatchFallback(
                        f"{direction} op {op.label!r} varies with packet "
                        "size; the batch engine amortises it as constant"
                    )
        self.pay_up = pay_up[inverse]
        self.pay_down = pay_down[inverse]

        payload_op = reference[payload_idx]
        if payload_op.per_packets != 1.0:
            raise BatchFallback(
                f"{direction} payload {payload_op.label!r} is batched "
                f"({payload_op.per_packets:g} packets); expected per-packet"
            )

        self.gates: list[_OpCols] = []
        for index in range(payload_idx):
            op = reference[index]
            batch = _integral_batch(op, direction)
            col = _OpCols(op.label, op.kind, batch)
            n = -(-p // batch)
            col.trig = np.arange(n, dtype=np.int64) * batch
            col.pmap = np.arange(p, dtype=np.int64) // batch
            col.up = np.full(n, op.up_ns)
            col.down = np.full(n, op.down_ns)
            self._register(col, link_up, link_down, col.trig, index)
            self.gates.append(col)

        self.payload = _OpCols(payload_op.label, payload_op.kind, 1)
        self.payload.up = self.pay_up
        self.payload.down = self.pay_down
        self._register(
            self.payload,
            link_up,
            link_down,
            np.arange(p, dtype=np.int64),
            payload_idx,
        )

        self.trailing: list[_OpCols] = []
        for index in range(payload_idx + 1, len(reference)):
            op = reference[index]
            batch = _integral_batch(op, direction)
            col = _OpCols(op.label, op.kind, batch)
            n = p // batch
            col.trig = (np.arange(n, dtype=np.int64) + 1) * batch - 1
            col.up = np.full(n, op.up_ns)
            col.down = np.full(n, op.down_ns)
            col.is_notify = index == self.notify_idx
            self._register(col, link_up, link_down, col.trig, index)
            self.trailing.append(col)

        self.dones = None
        self.notifies = None
        self.release_times = np.empty(0, dtype=np.float64)
        self.release_count = 0

    def _register(
        self,
        col: _OpCols,
        link_up: _Link,
        link_down: _Link,
        trigger,
        op_index: int,
    ) -> None:
        """Claim link columns in the order the scalar chain visits them.

        ``trigger * stride + op_index`` orders an instance against its
        peers; the two tie keys wrap it per the fed/dynamic split: the
        tier-0 key leads with the direction (same-time arrivals are fed
        tx first), the tier-1 key leads with the packet (a gate fire
        resumes blocked packets lowest index first, each visiting its
        ops in walk order).  A second leg (DMA-read completion,
        MMIO-read response) shares its instance's keys — its completion
        events were enqueued in that same walk order.
        """
        sub = trigger * _RANK_STRIDE + op_index
        rank0 = (self.dir_index << 32) + sub
        rank1 = _TIER1_BASE + (sub << 1) + self.dir_index
        kind = col.kind
        if kind is OpKind.DMA_READ:
            col.seg_up = _Seg(link_up, col.up, rank0, rank1)
            col.seg_down = _Seg(link_down, col.down, rank0, rank1)
        elif kind is OpKind.DMA_WRITE:
            col.seg_up = _Seg(link_up, col.up, rank0, rank1)
        elif kind is OpKind.MMIO_WRITE:
            col.seg_down = _Seg(link_down, col.down, rank0, rank1)
        else:  # MMIO_READ: request downstream, completion upstream
            col.seg_down = _Seg(link_down, col.down, rank0, rank1)
            col.seg_up = _Seg(link_up, col.up, rank0, rank1)

    def _advance_op(self, col: _OpCols, req, bootstrap: bool, fed=None):
        """Post one op's requests; returns its completion/fire column.

        Each arithmetic step keeps the scalar association order
        (``(start + up) + latency``) so uncongested runs stay
        bit-identical.  ``fed`` (arrival-fed tie tier, see
        :meth:`_Seg.set_req`) applies to the request leg only — the
        completion leg always fires from a dynamically scheduled event.
        """
        col.first_req = float(req[0]) if req.size else 0.0
        kind = col.kind
        if kind is OpKind.DMA_READ:
            col.seg_up.set_req(req, fed)
            up_start = col.seg_up.start(bootstrap)
            col.seg_down.set_req((up_start + col.up) + self.hrl)
            done = col.seg_down.start(bootstrap) + col.down
        elif kind is OpKind.DMA_WRITE:
            col.seg_up.set_req(req, fed)
            done = col.seg_up.start(bootstrap) + col.up
        elif kind is OpKind.MMIO_WRITE:
            col.seg_down.set_req(req, fed)
            done = col.seg_down.start(bootstrap) + col.down
        else:  # MMIO_READ
            col.seg_down.set_req(req, fed)
            down_start = col.seg_down.start(bootstrap)
            col.seg_up.set_req((down_start + col.down) + self.mmio)
            done = col.seg_up.start(bootstrap) + col.up
        col.completions = done
        return done

    def forward(self, bootstrap: bool = False) -> None:
        """One relaxation sweep: recompute every request time.

        The gate walk is the column form of ``_Datapath._step``: packet
        ``p`` waits instance ``p // B_i`` of gate ``i``, and instance
        ``m`` issues at the walk time of packet ``m * B_i`` — i.e. the
        running ``max`` of the post time and the fires of earlier gates.
        """
        w = self.arrivals
        for col in self.gates:
            req = w[col.trig]
            fed = req == self.arrivals[col.trig]
            fire = self._advance_op(col, req, bootstrap, fed)
            w = np.maximum(w, fire[col.pmap])
        done = self._advance_op(self.payload, w, bootstrap, w == self.arrivals)
        self.dones = done
        report = None
        for col in self.trailing:
            if col.trig.size == 0:
                continue
            completion = self._advance_op(col, done[col.trig], bootstrap)
            if col.is_notify:
                report = completion
        if self.notify_idx is None:
            # No completion report: the driver learns at payload done and
            # every packet frees its ring entry individually.
            self.notifies = done
            self.release_times = done
            self.release_count = 1
        elif report is not None:
            notify_col = next(col for col in self.trailing if col.is_notify)
            covered = notify_col.trig.size * notify_col.batch
            notifies = done.copy()
            notifies[:covered] = np.maximum(
                done[:covered], np.repeat(report, notify_col.batch)
            )
            self.notifies = notifies
            self.release_times = report
            self.release_count = notify_col.batch
        else:
            # The run ended before the first report batch filled; every
            # packet is recorded by ``finish`` with notify = done.
            self.notifies = done
            self.release_times = np.empty(0, dtype=np.float64)
            self.release_count = 0

    # -- ring accounting --------------------------------------------------------

    def ring_stats(self):
        """Replay the ring occupancy sweep; fall back if it ever fills.

        Admits (+1 at each arrival) and completion-report releases (−B)
        merge in event order with arrivals first on ties — the fed-
        before-dynamic rule of the event loop.  The occupancy integral
        accumulates term-by-term in that order, matching the scalar
        ``_advance`` float-for-float.
        """
        from .nicsim import RingStats

        p = self.arrivals.size
        releases = self.release_times
        times = np.concatenate((self.arrivals, releases))
        deltas = np.concatenate(
            (
                np.ones(p, dtype=np.int64),
                np.full(releases.size, -self.release_count, dtype=np.int64),
            )
        )
        kinds = np.concatenate(
            (np.zeros(p, dtype=np.int64), np.ones(releases.size, dtype=np.int64))
        )
        order = np.lexsort((kinds, times))
        occ = np.add.accumulate(deltas[order])
        peak = int(occ.max())
        if peak > self.ring_depth:
            raise BatchFallback(
                f"{self.direction} ring would exceed depth "
                f"{self.ring_depth} (peak {peak}); backpressure/drops "
                "need the scalar event loop"
            )
        admit_mask = kinds[order] == 0
        max_occupancy = int(occ[admit_mask].max())
        t_sorted = times[order]
        if t_sorted.size > 1:
            integral = float(
                np.add.accumulate(occ[:-1] * np.diff(t_sorted))[-1]
            )
            elapsed = float(t_sorted[-1] - t_sorted[0])
        else:
            integral = 0.0
            elapsed = 0.0
        return RingStats(
            depth=self.ring_depth,
            posts=p,
            drops=0,
            max_occupancy=max_occupancy,
            mean_occupancy=integral / elapsed if elapsed > 0 else 0.0,
        )

    # -- results ----------------------------------------------------------------

    def path_result(self, sim_config):
        from .nicsim import (
            PathResult,
            _path_statistics,
            _streaming_warmup_threshold,
            _StreamStats,
        )

        ring = self.ring_stats()
        p = self.arrivals.size
        if sim_config.retain_samples:
            throughput, rate, latency = _path_statistics(
                self.arrivals,
                self.dones,
                self.notifies,
                self.sizes,
                warmup_fraction=sim_config.warmup_fraction,
                ring_depth=sim_config.ring_depth,
            )
        else:
            stream = _StreamStats()
            threshold = _streaming_warmup_threshold(
                self.packets,
                warmup_fraction=sim_config.warmup_fraction,
                ring_depth=sim_config.ring_depth,
            )
            if p > threshold:
                latencies = (self.notifies - self.arrivals)[threshold:]
                stream.sketch.add_array(latencies)
                stream.count = p - threshold
                stream.payload_bytes = int(self.sizes[threshold:].sum())
                measured_dones = self.dones[threshold:]
                first = int(np.argmin(measured_dones))
                stream.first_done = float(measured_dones[first])
                stream.first_size = int(self.sizes[threshold + first])
                stream.last_done = float(measured_dones.max())
            throughput, rate, latency = stream.statistics()
        return PathResult(
            direction=self.direction,
            offered_packets=p,
            delivered_packets=p,
            drops=0,
            in_flight=0,
            payload_bytes=int(self.sizes.sum()),
            offered_bytes=int(self.sizes.sum()),
            dropped_bytes=0,
            throughput_gbps=throughput,
            packet_rate_pps=rate,
            latency=latency,
            ring=ring,
        )


def _reference_packet() -> int:
    from .nicsim import _REFERENCE_PACKET

    return _REFERENCE_PACKET


# ---------------------------------------------------------------------------
# The batch engine driver
# ---------------------------------------------------------------------------


def run_batch(
    simulator: "NicDatapathSimulator",
    workload: "Workload",
    packets: int,
    *,
    seed: int | None = None,
    tracer=None,
    metrics=None,
    device: str = "nic",
) -> "NicSimResult":
    """Run one workload through the vectorised batch engine.

    Mirrors :meth:`NicDatapathSimulator.run` end to end — same RNG
    stream, same result/record shapes, same ``last_traces`` /
    ``last_profile`` side channels — but advances all packets as columns.
    Raises :class:`BatchFallback` whenever the scalar loop is needed.

    Observability differences (documented, not silent): span tracing
    emits *aggregate* per-op spans (``batch:<op>``, packet id −1) rather
    than per-packet lifecycle stages, and a metrics registry receives
    end-of-run totals with a single sample row instead of the scalar
    path's window-sampled series.
    """
    require_numpy("--mode batch")
    from .engine import EventLoop, SerialResource
    from .nicsim import (
        NicSimResult,
        PathTrace,
        _COUNTER_MEASURES,
        _Datapath,
        _WarmupGate,
    )
    from .rng import DEFAULT_SEED, SimRng
    from ..obs.metrics import metric_segment
    from ..obs.trace import BATCH_PREFIX

    if packets <= 0:
        raise ValidationError(f"packets must be positive, got {packets}")
    sim_config = simulator.sim_config
    if sim_config.host is not None:
        raise BatchFallback("host coupling is an interaction point")
    if sim_config.dma_tags is not None:
        raise BatchFallback("a bounded DMA tag pool is an interaction point")
    if sim_config.num_queues != 1:
        raise BatchFallback("multi-queue arbitration is an interaction point")

    wall_start = perf_counter()
    resolved_seed = DEFAULT_SEED if seed is None else seed
    rng = SimRng(resolved_seed)
    link_up = _Link("nicsim.device_to_host")
    link_down = _Link("nicsim.host_to_device")

    solvers: list[_DirSolver] = []
    for direction in ("tx", "rx") if workload.duplex else ("tx",):
        # The throwaway scalar datapath performs sequence compilation and
        # the ring-depth/notify validation exactly as the event loop
        # would, so the batch path inherits both bit-for-bit.
        path = _Datapath(
            direction,
            simulator.model,
            simulator.config,
            sim_config,
            EventLoop(),
            SerialResource("fastpath.compile.up"),
            SerialResource("fastpath.compile.down"),
            warmup_gate=None if sim_config.retain_samples else _WarmupGate(0),
            device=device,
        )
        schedule = workload.generate(packets, rng, stream=direction)
        solvers.append(
            _DirSolver(
                direction,
                path,
                schedule.arrival_times_ns,
                schedule.sizes,
                link_up,
                link_down,
                sim_config,
                packets,
            )
        )
    link_up.finalize()
    link_down.finalize()

    solve_start = perf_counter()
    for solver in solvers:
        solver.forward(bootstrap=True)
    converged = False
    for sweep in range(MAX_RELAXATION_SWEEPS):
        changed = link_up.solve()
        changed = link_down.solve() or changed
        if not changed and sweep > 0:
            # Fixed point: the schedule is self-consistent, and on runs
            # with no service-order ambiguity it is bit-identical to the
            # scalar event loop.
            converged = True
            break
        for solver in solvers:
            solver.forward()
    # Final deep-polish rounds re-serve the settled schedule with the
    # full per-chain float-association budget (intermediate sweeps run
    # a truncated polish for speed) and propagate it until the starts
    # stop moving.  On a converged run these rounds are idempotent once
    # the association correction lands, which is what makes such runs
    # bit-identical to the scalar loop.  Exhausting the outer cap
    # instead is the congested (tolerance) regime: the rounds there are
    # effectively two more relaxation sweeps (a deep polish never
    # stabilises a saturated schedule, it only costs wall time), the
    # last forward pass recomputes every completion from the final link
    # schedule, and the per-segment causal clamp keeps the
    # approximation feasible (no completion precedes its own request
    # chain).
    # A run that exhausted the cap with only a small tail of starts
    # still moving is *near*-converged (a handful of service chains
    # settling, not a saturated frontier) — give it the full budget, it
    # usually lands on the exact fixed point.
    moving = link_up.moved + link_down.moved
    near = converged or moving * 4 <= link_up.req.size + link_down.req.size
    for _ in range(_FINAL_ROUNDS if near else _SATURATED_ROUNDS):
        changed = link_up.solve(_POLISH_FINAL)
        changed = link_down.solve(_POLISH_FINAL) or changed
        if not changed:
            break
        for solver in solvers:
            solver.forward()
    stats_start = perf_counter()

    results = [solver.path_result(sim_config) for solver in solvers]
    duration = max(float(solver.notifies.max()) for solver in solvers)
    events = int(link_up.req.size + link_down.req.size)

    simulator.last_traces = {
        solver.direction: PathTrace(
            direction=solver.direction,
            arrivals_ns=solver.arrivals,
            dones_ns=solver.dones,
            notifies_ns=solver.notifies,
            sizes=solver.sizes,
            queue_ids=np.zeros(solver.arrivals.size, dtype=np.int64),
        )
        for solver in solvers
    } if sim_config.retain_samples else {}

    if tracer is not None:
        for solver in solvers:
            lane = solver.direction
            for col in [*solver.gates, solver.payload, *solver.trailing]:
                if col.completions is None or col.completions.size == 0:
                    continue
                end = float(col.completions.max())
                tracer.record(
                    device,
                    lane,
                    -1,
                    BATCH_PREFIX + col.label,
                    col.first_req,
                    end - col.first_req,
                )
            first_arrival = float(solver.arrivals[0])
            tracer.record(
                device,
                lane,
                -1,
                BATCH_PREFIX + "packets",
                first_arrival,
                float(solver.notifies.max()) - first_arrival,
            )

    up_busy = link_up.busy_time()
    down_busy = link_down.busy_time()
    if metrics is not None:
        dev = metric_segment(device)
        for solver, result in zip(solvers, results):
            base = f"nicsim.{dev}.{solver.direction}"
            for measure, _attribute in _COUNTER_MEASURES:
                counter = metrics.counter(f"{base}.{measure}")
                total = {
                    "offered_packets": result.offered_packets,
                    "delivered_packets": result.delivered_packets,
                    "delivered_bytes": result.payload_bytes,
                    "dropped_bytes": result.dropped_bytes,
                }[measure]
                counter.add(total - counter.value)
            metrics.counter(base + ".drops")
            metrics.histogram(base + ".latency_ns").observe_many(
                (solver.notifies - solver.arrivals).tolist()
            )
        metrics.sample(duration)
        metrics.gauge(f"nicsim.{dev}.link.up_utilisation").set(
            min(1.0, up_busy / duration) if duration > 0 else 0.0
        )
        metrics.gauge(f"nicsim.{dev}.link.down_utilisation").set(
            min(1.0, down_busy / duration) if duration > 0 else 0.0
        )

    stats_end = perf_counter()
    simulator.last_profile = EngineProfile(
        label=f"nicsim {simulator.model.name} {workload.name}",
        build_s=solve_start - wall_start,
        events_s=stats_start - solve_start,
        stats_s=stats_end - stats_start,
        events=events,
        mode="batch",
        solve_s=stats_start - solve_start,
    )
    return NicSimResult(
        model=simulator.model.name,
        workload=workload.name,
        packets=packets,
        duration_ns=duration,
        tx=results[0],
        rx=results[1] if len(results) > 1 else None,
        link_utilisation_up=(
            min(1.0, up_busy / duration) if duration > 0 else 0.0
        ),
        link_utilisation_down=(
            min(1.0, down_busy / duration) if duration > 0 else 0.0
        ),
        metrics=metrics.as_dict() if metrics is not None else None,
    )


# ---------------------------------------------------------------------------
# Hybrid fluid mode
# ---------------------------------------------------------------------------


class SteadyStateMonitor:
    """Certifies steady state from consecutive agreeing latency windows.

    Feeds delivered latencies into :class:`~repro.stats.WindowedStats`;
    every ``window`` packets the frozen window's mean and p99 are
    compared to the previous window's, and ``required`` consecutive
    windows within the relative ``band`` certify the device.  The last
    packet-mode latencies double as the fluid mode's residual-noise
    reservoir.  ``reset`` (any re-entry trigger) de-certifies and
    restarts the agreement count.
    """

    __slots__ = (
        "window",
        "required",
        "band",
        "stats",
        "reservoir",
        "certified",
        "_stable",
        "_prev_mean",
        "_prev_p99",
    )

    def __init__(
        self, window: int = 48, required: int = 2, band: float = 0.2
    ) -> None:
        if window < 2:
            raise ValidationError(f"window must be >= 2, got {window}")
        if required < 1:
            raise ValidationError(f"required must be >= 1, got {required}")
        if band <= 0.0:
            raise ValidationError(f"band must be positive, got {band}")
        self.window = window
        self.required = required
        self.band = band
        self.stats = WindowedStats()
        self.reservoir: deque[float] = deque(maxlen=512)
        self.certified = False
        self._stable = 0
        self._prev_mean: float | None = None
        self._prev_p99: float | None = None

    def observe(self, latency_ns: float, residual_ns: float | None = None) -> None:
        """Feed one delivered packet.

        ``latency_ns`` (notify − arrival, the user-visible metric) drives
        certification; ``residual_ns`` is what lands in the residual
        reservoir — the fluid mode passes done − arrival here, because
        its own completion-report mechanics reproduce the notify-batch
        wait and adding a full-latency residual on top would double-count
        it.
        """
        self.reservoir.append(
            latency_ns if residual_ns is None else residual_ns
        )
        self.stats.record(latency_ns)
        if self.stats.window_count < self.window:
            return
        snap = self.stats.snapshot()
        mean = snap.moments.mean
        p99 = snap.quantile(0.99)
        prev_mean = self._prev_mean
        prev_p99 = self._prev_p99
        if (
            prev_mean is not None
            and prev_mean > 0.0
            and prev_p99 is not None
            and prev_p99 > 0.0
            and abs(mean - prev_mean) / prev_mean <= self.band
            and abs(p99 - prev_p99) / prev_p99 <= self.band
        ):
            self._stable += 1
            if self._stable >= self.required:
                self.certified = True
        else:
            self._stable = 0
        self._prev_mean = mean
        self._prev_p99 = p99

    def reset(self) -> None:
        """De-certify: a control action / knee / contention signal fired."""
        self.certified = False
        self._stable = 0
        self._prev_mean = None
        self._prev_p99 = None
        # Flush the partial window so stale samples cannot straddle the
        # re-entry boundary.
        self.stats.snapshot()

    def residuals(self):
        """The recent packet-mode latencies, sorted (the noise source)."""
        return np.sort(np.asarray(self.reservoir, dtype=np.float64))


_FLUID_CLASS = None


def fluid_datapath_class():
    """The ``mode="hybrid"`` datapath class (built lazily, cached).

    Lazy so importing this module never imports the scalar simulator —
    the import direction the optional-numpy contract relies on.
    """
    global _FLUID_CLASS
    if _FLUID_CLASS is not None:
        return _FLUID_CLASS
    require_numpy("--mode hybrid")
    from .nicsim import _Datapath

    class _FluidDatapath(_Datapath):
        """A datapath that collapses to fluid granularity in steady state.

        Packet mode is the inherited scalar walk plus a
        :class:`SteadyStateMonitor` fed from ``_record``.  Once
        certified, arrivals stop walking the gate chain: they buffer,
        claim their ring entry, and every ``fluid batch`` (the model's
        completion-report batch) one aggregate transaction claims both
        links for the batch's amortised serialisation time (routed
        through the host coupling's aggregate access when coupled).
        Per-packet completions are the certified residual quantiles
        sampled by a golden-ratio low-discrepancy walk, floored at the
        model's analytic wire time.  Control actions (``control_poke``),
        arrival-gap knees and ring pressure re-enter packet mode and
        replay any buffered packets through the scalar walk.  Traced
        runs stay in packet mode (fluid records have no per-packet
        lifecycle spans to keep the telescoping identity honest).
        """

        __slots__ = (
            "monitor",
            "fluid",
            "fluid_packets",
            "certifications",
            "re_entries",
            "re_entry_reasons",
            "_buffer",
            "_residuals",
            "_phase",
            "_fluid_batch",
            "_amortised",
            "_gap_ewma",
            "_cert_gap",
            "_last_arrival",
            "_poke",
            "_done_floor",
        )

        def __init__(self, *args, **kwargs) -> None:
            super().__init__(*args, **kwargs)
            self.monitor = SteadyStateMonitor()
            self.fluid = False
            self.fluid_packets = 0
            self.certifications = 0
            self.re_entries = 0
            self.re_entry_reasons: dict[str, int] = {}
            self._buffer: list[tuple[float, int]] = []
            self._residuals = None
            self._phase = 0.0
            if self._notify_idx is not None:
                reference = self._ops_for(_reference_packet())
                self._fluid_batch = max(
                    1, int(reference[self._notify_idx].per_packets)
                )
            else:
                self._fluid_batch = 8
            self._amortised: dict[int, tuple[float, float, float]] = {}
            self._gap_ewma = None
            self._cert_gap = None
            self._last_arrival = None
            self._poke = False
            self._done_floor = 0.0

        # -- cost model ---------------------------------------------------------

        def _costs(self, size: int) -> tuple[float, float, float]:
            """(amortised up ns, amortised down ns, analytic packet ns)."""
            cached = self._amortised.get(size)
            if cached is None:
                up = 0.0
                down = 0.0
                for op in self._ops_for(size):
                    up += op.up_ns / op.per_packets
                    down += op.down_ns / op.per_packets
                analytic = (
                    size * 8.0
                    / self._model.throughput_gbps(size, self._config)
                )
                cached = (up, down, analytic)
                self._amortised[size] = cached
            return cached

        # -- packet-mode hooks --------------------------------------------------

        def _record(self, arrival, done, notify, size) -> None:
            super()._record(arrival, done, notify, size)
            if not self.fluid:
                self.monitor.observe(notify - arrival, done - arrival)
                if self.monitor.certified and self.tracer is None:
                    self._enter_fluid()

        def _enter_fluid(self) -> None:
            residuals = self.monitor.residuals()
            if residuals.size == 0:
                return
            self.fluid = True
            self.certifications += 1
            self._residuals = residuals
            self._cert_gap = self._gap_ewma
            self._done_floor = 0.0

        def _re_enter(self, now: float, reason: str) -> None:
            self.fluid = False
            self.re_entries += 1
            self.re_entry_reasons[reason] = (
                self.re_entry_reasons.get(reason, 0) + 1
            )
            self._poke = False
            self.monitor.reset()
            buffered, self._buffer = self._buffer, []
            for arrival, size in buffered:
                # Buffered packets already hold their ring entry; resume
                # them mid-lifecycle through the gate walk.
                self._step(
                    self._ops_for(size),
                    0,
                    now if now > arrival else arrival,
                    arrival,
                    size,
                )

        def control_poke(self) -> None:
            """A control action landed: leave (or stay out of) fluid mode."""
            if self.fluid:
                self._poke = True
            else:
                self.monitor.reset()

        # -- arrivals -----------------------------------------------------------

        def on_arrival(self, now: float, size: int) -> None:
            last = self._last_arrival
            self._last_arrival = now
            if last is not None:
                gap = now - last
                ewma = self._gap_ewma
                self._gap_ewma = (
                    gap if ewma is None else 0.9 * ewma + 0.1 * gap
                )
            if not self.fluid:
                super().on_arrival(now, size)
                return
            if self._poke:
                self._re_enter(now, "control")
                super().on_arrival(now, size)
                return
            cert_gap = self._cert_gap
            ewma = self._gap_ewma
            if (
                cert_gap is not None
                and cert_gap > 0.0
                and ewma is not None
                and abs(ewma - cert_gap) / cert_gap > 2.0 * self.monitor.band
            ):
                self._re_enter(now, "knee")
                super().on_arrival(now, size)
                return
            if self.ring.occupancy >= self.ring.depth:
                self._re_enter(now, "contention")
                super().on_arrival(now, size)
                return
            self.offered += 1
            self.offered_bytes += size
            self.ring.admit(now, _absorb_post, wait=False)
            self._buffer.append((now, size))
            if len(self._buffer) >= self._fluid_batch:
                self._flush_fluid(now)

        # -- fluid transactions -------------------------------------------------

        def _flush_fluid(self, now: float) -> None:
            batch, self._buffer = self._buffer, []
            # Claim each packet's amortised link share at its own arrival
            # (plain occupy calls, no event-loop traffic) so the links
            # carry the bytes on the schedule the scalar walk would —
            # the completion report then lands where the analytic rate
            # says, not a whole batch-service later.
            wire = now
            link_up = self._link_up
            link_down = self._link_down
            for arrival, size in batch:
                up, down, _analytic = self._costs(size)
                if up > 0.0:
                    wire = max(wire, link_up.occupy(arrival, up) + up)
                if down > 0.0:
                    wire = max(wire, link_down.occupy(arrival, down) + down)
            if self._coupling is None:
                self._loop.at(
                    wire, lambda time, b=batch: self._fluid_complete(b, time)
                )
            else:
                payload_kind = self._ops_for(batch[0][1])[self._payload_idx].kind
                access = self._coupling.aggregate_access(
                    payload_kind,
                    direction=self.direction,
                    sizes=[size for _arrival, size in batch],
                )
                self._visit_host(
                    wire,
                    access,
                    lambda ready, b=batch: self._loop.at(
                        ready + access.latency_ns,
                        lambda time: self._fluid_complete(b, time),
                    ),
                )

        def _sample_residual(self) -> float:
            self._phase = (self._phase + _GOLDEN_RATIO_FRACTION) % 1.0
            residuals = self._residuals
            return float(residuals[int(self._phase * residuals.size)])

        def _fluid_complete(
            self, batch: list[tuple[float, int]], report: float
        ) -> None:
            self.ring.release(report, len(batch))
            floor = self._done_floor
            for arrival, size in batch:
                _up, _down, analytic = self._costs(size)
                done = arrival + self._sample_residual()
                wire_floor = arrival + analytic
                if done < wire_floor:
                    done = wire_floor
                if done < floor:
                    done = floor
                floor = done
                notify = done if done > report else report
                self._record(arrival, done, notify, size)
            self._done_floor = floor
            self.fluid_packets += len(batch)

        def finish(self) -> None:
            buffered, self._buffer = self._buffer, []
            floor = self._done_floor
            for arrival, size in buffered:
                _up, _down, analytic = self._costs(size)
                done = arrival + self._sample_residual()
                wire_floor = arrival + analytic
                if done < wire_floor:
                    done = wire_floor
                if done < floor:
                    done = floor
                floor = done
                self._record(arrival, done, done, size)
            self._done_floor = floor
            self.fluid_packets += len(buffered)
            super().finish()

        def fluid_summary(self) -> dict[str, object]:
            """Serialisable per-queue fluid accounting."""
            return {
                "certifications": self.certifications,
                "fluid_packets": self.fluid_packets,
                "re_entries": self.re_entries,
                "re_entry_reasons": dict(
                    sorted(self.re_entry_reasons.items())
                ),
            }

    _FLUID_CLASS = _FluidDatapath
    return _FluidDatapath


def _absorb_post(_now: float) -> None:
    """Ring-admit sink for fluid arrivals (the buffer holds the packet)."""


def fluid_result_summary(directions) -> dict[str, dict[str, object]]:
    """Aggregate per-direction fluid summaries for ``NicSimResult.fluid``."""
    summary: dict[str, dict[str, object]] = {}
    for direction, queues in directions:
        certifications = 0
        fluid_packets = 0
        re_entries = 0
        reasons: dict[str, int] = {}
        for queue in queues:
            per_queue = queue.fluid_summary()
            certifications += per_queue["certifications"]
            fluid_packets += per_queue["fluid_packets"]
            re_entries += per_queue["re_entries"]
            for reason, count in per_queue["re_entry_reasons"].items():
                reasons[reason] = reasons.get(reason, 0) + count
        summary[direction] = {
            "certifications": certifications,
            "fluid_packets": fluid_packets,
            "re_entries": re_entries,
            "re_entry_reasons": dict(sorted(reasons.items())),
        }
    return summary


__all__ = [
    "BatchFallback",
    "MODES",
    "SteadyStateMonitor",
    "fluid_datapath_class",
    "fluid_result_summary",
    "numpy_available",
    "require_numpy",
    "run_batch",
    "validate_mode",
]
