"""Composable fabric topologies: devices → switches → root port.

PR 4's shared-host fabric hard-wires the degenerate topology: every device
hangs directly off one root port, so the only arbitration point is the
root-level :class:`~repro.sim.engine.ArbitratedResource`.  Real PCIe
fabrics are *trees* — devices attach to N-port switches, switches cascade
into other switches, and exactly one link reaches the root port — and
arbitration composes level by level: a TLP first wins its switch's
upstream port, then the next switch up, then the root port.

This module supplies that layer:

* :class:`FabricTopology` is the frozen description — a ``child → parent``
  map over device names, switch names and the distinguished :data:`ROOT`
  node — with a compact textual form (``"victim=root,aggressor=sw0,
  sw0=root"``) used by the CLI and by serialised parameters.

* :func:`compile_topology` turns one topology into a
  :class:`CompiledTopology` for one shared serial resource (the
  root-complex ingress pipeline, the IOMMU page walker): one
  :class:`~repro.sim.engine.ArbitratedResource` per tree node, each
  arbitrating over that node's children with the configured scheme.  A
  request enters at its device's attachment node and ascends
  store-and-forward: each hop's port is occupied for the request's
  service demand, and the request moves one level up when that hop's
  service completes.  Each switch's upstream link is **credit flow
  controlled** (one outstanding request, the credit returned when the
  request's root-level service completes), so a switch cannot flood its
  parent's queues with a backlog the parent has not accepted.  Weights
  compose naturally — a switch competes at its parent with the *sum* of
  its subtree's device weights.

Two consequences the experiments lean on:

* The upstream credit makes a switch *absorb* a bulk aggressor's backlog:
  at most one of its requests is pending at the parent at any time, so a
  victim on its own root port waits behind at most one in-flight
  aggressor grant instead of the whole backlog — topology alone provides
  isolation, even under fcfs.
* A victim *sharing* a switch with the aggressor queues against the full
  per-port backlog at that switch (and pays the extra store-and-forward
  hop), the worst placement.

Degenerate-case contract: the flat topology (every device attached to
:data:`ROOT`) compiles to exactly one root-level arbiter with one client
per device, requests take the same code path as PR 4's flat fabric, and
multi-device runs reproduce the pre-topology results bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..errors import ValidationError
from .engine import ArbitratedResource, ArbiterClientStats, TagPool

#: Name of the distinguished root-port node every topology drains into.
ROOT = "root"


@dataclass(frozen=True)
class FabricTopology:
    """A fabric tree as ordered ``(child, parent)`` links.

    Children are device or switch names; parents are switch names or
    :data:`ROOT`.  A name that appears as some link's parent is a switch;
    every other child is a device.  Link order is meaningful: it fixes the
    client order (and therefore the deterministic tie-breaks) of each
    node's arbiter.
    """

    links: tuple[tuple[str, str], ...]

    def __post_init__(self) -> None:
        links = tuple((str(child), str(parent)) for child, parent in self.links)
        object.__setattr__(self, "links", links)
        if not links:
            raise ValidationError("a topology needs at least one link")
        children = [child for child, _ in links]
        if len(set(children)) != len(children):
            raise ValidationError(
                f"every node needs exactly one parent; duplicate children in "
                f"{children}"
            )
        if ROOT in children:
            raise ValidationError(f"{ROOT!r} is the root port; it has no parent")
        parent_map = dict(links)
        for child, parent in links:
            if child == parent:
                raise ValidationError(f"node {child!r} cannot be its own parent")
            if parent != ROOT and parent not in parent_map:
                raise ValidationError(
                    f"node {child!r} attaches to undeclared switch {parent!r}; "
                    f"declare it with {parent}=<parent>"
                )
        # Every node must reach the root without cycles.
        for child, _ in links:
            seen = {child}
            node = child
            while node != ROOT:
                node = parent_map[node]
                if node in seen:
                    raise ValidationError(
                        f"topology cycle through {sorted(seen)}"
                    )
                seen.add(node)

    # -- constructors ----------------------------------------------------------

    @classmethod
    def flat(cls, device_names: Sequence[str]) -> "FabricTopology":
        """The degenerate topology: every device directly on the root port."""
        return cls(tuple((name, ROOT) for name in device_names))

    @classmethod
    def parse(cls, text: str) -> "FabricTopology":
        """Parse the compact ``"a=root,b=sw0,sw0=root"`` form."""
        links = []
        for part in str(text).split(","):
            part = part.strip()
            if not part:
                continue
            child, separator, parent = part.partition("=")
            if not separator or not child.strip() or not parent.strip():
                raise ValidationError(
                    f"topology entry {part!r} is not CHILD=PARENT"
                )
            links.append((child.strip(), parent.strip()))
        if not links:
            raise ValidationError(f"empty topology spec {text!r}")
        return cls(tuple(links))

    # -- inspection ------------------------------------------------------------

    @property
    def switch_names(self) -> tuple[str, ...]:
        """Nodes that are parents of other nodes (in first-seen order)."""
        parents = []
        for _, parent in self.links:
            if parent != ROOT and parent not in parents:
                parents.append(parent)
        return tuple(parents)

    @property
    def device_names(self) -> tuple[str, ...]:
        """Leaf nodes (children that parent nothing), in link order."""
        switches = set(self.switch_names)
        return tuple(
            child for child, _ in self.links if child not in switches
        )

    @property
    def is_flat(self) -> bool:
        """Whether every device attaches directly to the root port."""
        return all(parent == ROOT for _, parent in self.links)

    def parent_of(self, name: str) -> str:
        """The parent node of ``name``."""
        for child, parent in self.links:
            if child == name:
                return parent
        raise ValidationError(f"no node {name!r} in this topology")

    def path_to_root(self, device: str) -> tuple[str, ...]:
        """Nodes a device's requests traverse, attachment first, ROOT last."""
        path = []
        node = self.parent_of(device)
        while True:
            path.append(node)
            if node == ROOT:
                return tuple(path)
            node = self.parent_of(node)

    def depth(self) -> int:
        """Hops of the deepest device (1 for the flat topology)."""
        return max(
            len(self.path_to_root(device)) for device in self.device_names
        )

    def validate_devices(self, device_names: Sequence[str]) -> None:
        """Check the topology's leaves are exactly the fabric's devices."""
        leaves = set(self.device_names)
        wanted = set(device_names)
        if leaves != wanted:
            missing = sorted(wanted - leaves)
            extra = sorted(leaves - wanted)
            detail = []
            if missing:
                detail.append(f"missing devices {missing}")
            if extra:
                detail.append(f"unknown leaves {extra}")
            raise ValidationError(
                "topology leaves must match the fabric's devices: "
                + "; ".join(detail)
            )

    def spec(self) -> str:
        """The canonical compact textual form (``parse`` round-trips it)."""
        return ",".join(f"{child}={parent}" for child, parent in self.links)


class _DeviceAccounting:
    """End-to-end per-device counters of one compiled topology.

    A device attached below a switch pays queueing at several arbiters;
    these counters fold the whole path into one view comparable with the
    flat case: ``busy`` counts the request's service demand once, ``wait``
    is everything beyond arrival plus ``hops * duration`` of
    store-and-forward service.
    """

    __slots__ = ("stats",)

    def __init__(self) -> None:
        self.stats = ArbiterClientStats()

    def record(self, asked: float, start: float, duration: float, hops: int) -> None:
        stats = self.stats
        stats.requests += 1
        stats.busy_ns_total += duration
        wait = (start + duration) - asked - hops * duration
        if wait > 0.0:
            stats.waited += 1
            stats.wait_ns_total += wait
            if wait > stats.wait_ns_max:
                stats.wait_ns_max = wait


class CompiledTopology:
    """One shared serial resource arbitrated through a topology tree.

    Exposes the same ``request(device_index, now, duration, grant)`` shape
    as a single :class:`~repro.sim.engine.ArbitratedResource`, so the
    datapath's upstream port does not care how deep the fabric is.  For
    the flat topology the request goes straight to the (single) root
    arbiter and per-device statistics are read from its client counters —
    the exact PR 4 code path.  For trees, requests ascend store-and-forward
    and per-device statistics are folded end to end.
    """

    def __init__(
        self,
        name: str,
        topology: FabricTopology,
        device_names: Sequence[str],
        *,
        schedule: Callable[[float, Callable[[float], None]], None],
        scheme: str = "fcfs",
        weights: Sequence[float] | None = None,
        quantum_ns: float | None = None,
        trace: Callable[[int, str, float, float, float], None] | None = None,
    ) -> None:
        topology.validate_devices(device_names)
        self.name = name
        #: Optional per-hop grant observer for the tracing layer:
        #: ``trace(device_index, node, asked, start, duration)`` fires at
        #: every hop grant along a request's ascent (once, at the root,
        #: for the flat topology).  ``None`` keeps the request paths on
        #: the exact historical code — the flat fast path stays a direct
        #: arbiter call with no wrapper closure.
        self._trace = trace
        self.topology = topology
        self.device_names = tuple(device_names)
        if weights is None:
            weights = (1.0,) * len(self.device_names)
        if len(weights) != len(self.device_names):
            raise ValidationError(
                f"need one weight per device ({len(self.device_names)}), "
                f"got {len(weights)}"
            )
        device_weight = dict(zip(self.device_names, weights))
        self._schedule = schedule

        # Children per node, in link order (fixes client indices).
        children: dict[str, list[str]] = {ROOT: []}
        for switch in topology.switch_names:
            children[switch] = []
        for child, parent in topology.links:
            children[parent].append(child)
        self._children = {node: tuple(kids) for node, kids in children.items()}

        def subtree_weight(node: str) -> float:
            if node in device_weight:
                return float(device_weight[node])
            return sum(subtree_weight(child) for child in children[node])

        self._arbiters: dict[str, ArbitratedResource] = {}
        for node, kids in children.items():
            label = name if node == ROOT else f"{name}.{node}"
            self._arbiters[node] = ArbitratedResource(
                label,
                len(kids),
                schedule=schedule,
                scheme=scheme,
                weights=tuple(subtree_weight(kid) for kid in kids),
                quantum_ns=quantum_ns,
            )
        self._client_index = {
            node: {kid: index for index, kid in enumerate(kids)}
            for node, kids in children.items()
        }
        # One upstream credit per switch: a request may only be submitted
        # to the parent while holding its switch's credit, returned when
        # the request's root-level service completes.  This is the
        # PCIe-style flow control that keeps a bulk backlog inside its own
        # switch instead of flooding the parent's queues.
        self._credits = {
            switch: TagPool(f"{name}.{switch}.upstream", 1)
            for switch in topology.switch_names
        }
        # Per-device ascent path as (node, client_index) pairs.
        self._paths: list[tuple[tuple[str, int], ...]] = []
        for device in self.device_names:
            hops = []
            child = device
            for node in topology.path_to_root(device):
                hops.append((node, self._client_index[node][child]))
                child = node
            self._paths.append(tuple(hops))
        self._accounting = [
            _DeviceAccounting() for _ in self.device_names
        ]

    @property
    def root(self) -> ArbitratedResource:
        """The root-port arbiter (the resource's true serialisation point)."""
        return self._arbiters[ROOT]

    def arbiter(self, node: str) -> ArbitratedResource:
        """The arbiter of one tree node (``ROOT`` or a switch name)."""
        try:
            return self._arbiters[node]
        except KeyError:
            raise ValidationError(
                f"no node {node!r} in topology {self.name}"
            ) from None

    def set_device_weights(self, weights: Sequence[float]) -> None:
        """Retune per-device weights mid-run (control-plane actuator).

        Recomputes every node's client weights — a switch still competes
        at its parent with its subtree's *summed* device weights — and
        installs them with
        :meth:`~repro.sim.engine.ArbitratedResource.set_weights`, so the
        new weights govern every grant from the next dispatch on without
        disturbing queued or in-flight requests.
        """
        if len(weights) != len(self.device_names):
            raise ValidationError(
                f"need one weight per device ({len(self.device_names)}), "
                f"got {len(weights)}"
            )
        if any(weight <= 0 for weight in weights):
            raise ValidationError(f"weights must be positive, got {tuple(weights)}")
        device_weight = dict(zip(self.device_names, weights))

        def subtree_weight(node: str) -> float:
            if node in device_weight:
                return float(device_weight[node])
            return sum(subtree_weight(child) for child in self._children[node])

        for node, kids in self._children.items():
            self._arbiters[node].set_weights(
                tuple(subtree_weight(kid) for kid in kids)
            )

    def attach_loop(self, loop) -> None:
        """Enable batched grants on every arbiter in the tree.

        ``loop`` must be the event loop behind the ``schedule`` hook this
        topology was compiled with (see
        :meth:`~repro.sim.engine.ArbitratedResource.attach_loop`).
        """
        for arbiter in self._arbiters.values():
            arbiter.attach_loop(loop)

    def request(
        self,
        device: int,
        now: float,
        duration: float,
        grant: Callable[[float], None],
    ) -> None:
        """Submit one request for ``duration`` of the shared resource.

        ``grant(start)`` fires with the root-level (possibly virtual, see
        the sliced scheme) start time, so ``start + duration`` is the time
        the resource's service completes — the same contract as a single
        :class:`~repro.sim.engine.ArbitratedResource`.
        """
        path = self._paths[device]
        trace = self._trace
        if len(path) == 1:
            # Flat attachment: the PR 4 fast path, no indirection.
            node, client = path[0]
            if trace is None:
                self._arbiters[node].request(client, now, duration, grant)
                return

            def traced_grant(start: float) -> None:
                trace(device, node, now, start, duration)
                grant(start)

            self._arbiters[node].request(client, now, duration, traced_grant)
            return
        accounting = self._accounting[device]
        hops = len(path)
        held: list[TagPool] = []

        def ascend(level: int, time: float) -> None:
            node, client = path[level]
            if level == hops - 1:
                def at_root(start: float) -> None:
                    # The request's service completes at start + duration
                    # (start is virtual under slicing); only then do the
                    # switches along the path regain their upstream credit.
                    completion = start + duration
                    for credit in held:
                        self._schedule(completion, credit.release)
                    accounting.record(now, start, duration, hops)
                    if trace is not None:
                        trace(device, node, time, start, duration)
                    grant(start)

                self._arbiters[node].request(client, time, duration, at_root)
            else:
                credit = self._credits[node]

                def forward(start: float) -> None:
                    # This hop's service ends at start + duration; the
                    # request then waits for the switch's upstream credit
                    # before it exists one level up — a switch can neither
                    # pre-book its parent nor flood it with a backlog.
                    if trace is not None:
                        trace(device, node, time, start, duration)

                    def with_credit(granted: float) -> None:
                        held.append(credit)
                        ascend(level + 1, granted)

                    self._schedule(
                        start + duration,
                        lambda later: credit.acquire(later, with_credit),
                    )

                self._arbiters[node].request(client, time, duration, forward)

        ascend(0, now)

    def client_stats(self, device: int) -> ArbiterClientStats:
        """Per-device end-to-end counters (flat: the root client's own)."""
        path = self._paths[device]
        if len(path) == 1:
            node, client = path[0]
            return self._arbiters[node].stats[client]
        return self._accounting[device].stats


def compile_topology(
    name: str,
    topology: FabricTopology | None,
    device_names: Sequence[str],
    *,
    schedule: Callable[[float, Callable[[float], None]], None],
    scheme: str = "fcfs",
    weights: Sequence[float] | None = None,
    quantum_ns: float | None = None,
    trace: Callable[[int, str, float, float, float], None] | None = None,
) -> CompiledTopology:
    """Compile a topology (``None`` means flat) for one shared resource."""
    if topology is None:
        topology = FabricTopology.flat(device_names)
    return CompiledTopology(
        name,
        topology,
        device_names,
        schedule=schedule,
        scheme=scheme,
        weights=weights,
        quantum_ns=quantum_ns,
        trace=trace,
    )
