"""NUMA topology model.

On multi-socket servers the PCIe root complex and the memory controllers are
integrated into each CPU package, so a DMA either targets memory local to
the socket the device is plugged into or must traverse the inter-socket
interconnect (QPI/UPI).  The paper measures a roughly constant 100 ns
latency adder for remote buffers and a 10-20 % bandwidth penalty for small
DMA reads (§6.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ValidationError

#: Latency added by one interconnect traversal, as measured in §6.4.
DEFAULT_REMOTE_PENALTY_NS = 100.0


@dataclass(frozen=True)
class NumaNode:
    """One socket: an id plus the memory capacity attached to it."""

    node_id: int
    memory_bytes: int = 64 * 1024**3

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise ValidationError(f"node_id must be >= 0, got {self.node_id}")
        if self.memory_bytes <= 0:
            raise ValidationError(
                f"memory_bytes must be positive, got {self.memory_bytes}"
            )


@dataclass(frozen=True)
class NumaTopology:
    """A host's socket layout and where the PCIe device is attached.

    Attributes:
        nodes: the sockets present in the system (a single-socket host has one).
        device_node: index of the node whose root complex hosts the PCIe device.
        remote_penalty_ns: extra latency for a DMA that targets memory on a
            different node than ``device_node``.
        remote_bandwidth_factor: multiplicative throughput de-rating applied
            to the interconnect path (1.0 means the interconnect itself never
            becomes the bottleneck for a single NIC, which holds for the
            40 Gb/s loads studied in the paper).
    """

    nodes: tuple[NumaNode, ...] = (NumaNode(0), NumaNode(1))
    device_node: int = 0
    remote_penalty_ns: float = DEFAULT_REMOTE_PENALTY_NS
    remote_bandwidth_factor: float = 1.0

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValidationError("a NUMA topology needs at least one node")
        node_ids = [node.node_id for node in self.nodes]
        if len(set(node_ids)) != len(node_ids):
            raise ValidationError(f"duplicate NUMA node ids: {node_ids}")
        if self.device_node not in node_ids:
            raise ValidationError(
                f"device_node {self.device_node} is not one of {node_ids}"
            )
        if self.remote_penalty_ns < 0:
            raise ValidationError("remote_penalty_ns must be non-negative")
        if not 0.0 < self.remote_bandwidth_factor <= 1.0:
            raise ValidationError(
                "remote_bandwidth_factor must be in (0, 1], got "
                f"{self.remote_bandwidth_factor}"
            )

    @classmethod
    def single_socket(cls) -> "NumaTopology":
        """Topology of the paper's single-socket systems (HSW, SNB, E3)."""
        return cls(nodes=(NumaNode(0),), device_node=0)

    @classmethod
    def dual_socket(
        cls, remote_penalty_ns: float = DEFAULT_REMOTE_PENALTY_NS
    ) -> "NumaTopology":
        """Topology of the paper's two-socket systems (BDW, IB)."""
        return cls(
            nodes=(NumaNode(0), NumaNode(1)),
            device_node=0,
            remote_penalty_ns=remote_penalty_ns,
        )

    @property
    def node_count(self) -> int:
        """Number of sockets."""
        return len(self.nodes)

    @property
    def is_numa(self) -> bool:
        """Whether remote placement is possible at all."""
        return self.node_count > 1

    def validate_node(self, node_id: int) -> None:
        """Raise if ``node_id`` does not exist in this topology."""
        if node_id not in {node.node_id for node in self.nodes}:
            raise ValidationError(
                f"NUMA node {node_id} does not exist "
                f"(nodes: {[node.node_id for node in self.nodes]})"
            )

    def is_local(self, buffer_node: int) -> bool:
        """Whether a buffer on ``buffer_node`` is local to the device."""
        self.validate_node(buffer_node)
        return buffer_node == self.device_node

    def access_penalty_ns(self, buffer_node: int) -> float:
        """Latency adder for a DMA targeting ``buffer_node``."""
        return 0.0 if self.is_local(buffer_node) else self.remote_penalty_ns

    def remote_node(self) -> int:
        """Some node other than the device's node (for remote placements)."""
        if not self.is_numa:
            raise ValidationError(
                "cannot place a buffer remotely on a single-socket system"
            )
        for node in self.nodes:
            if node.node_id != self.device_node:
                return node.node_id
        raise ValidationError("no remote node found")  # pragma: no cover
